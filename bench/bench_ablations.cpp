// E9 — ablations of the design decisions DESIGN.md calls out.
//
//  A1  Direct vs monotone view updates (Ricart-Agrawala). A max() update
//      looks harmless — it is what one writes to be "safe" against stale
//      messages — but it can never heal a corrupted-HIGH view, so
//      stabilization under process corruption is lost.
//  A2  Robust stale-entry retirement vs literal head-only dequeue
//      (Lamport). The paper's Insert modification corrects entries when a
//      NEW request arrives; retiring on any fresher message from the owner
//      extends that to owners who stay silent. The literal variant wedges.
//  A3  Refined vs unrefined wrapper (Section 4). The refined W sends only
//      to peers whose view is stale; the unrefined W sends to all. Both
//      stabilize; the refinement saves traffic.
//  A4  Client poll cadence vs recovery from process corruption.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "me/lamport.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig base_config(Algorithm algo, std::uint64_t seed) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

FaultScenario corruption_scenario() {
  FaultScenario scenario;
  scenario.warmup = 500;
  scenario.burst = 8;
  scenario.mix = net::FaultMix::process_only();
  scenario.observation = 7000;
  scenario.drain = 5000;
  return scenario;
}

std::string stab_cell(const RepeatedResult& r) {
  return std::to_string(r.stabilized) + "/" + std::to_string(r.trials);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 25));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  const SimTime polls[] = {1, 2, 5, 10, 25, 50};

  SpecGrid grid;
  for (const bool monotone : {false, true}) {
    HarnessConfig config = base_config(Algorithm::kRicartAgrawala, 3000);
    config.ra_options.monotone_views = monotone;
    grid.add(monotone ? "a1/monotone" : "a1/direct", config,
             corruption_scenario(), trials);
  }
  for (const bool head_only : {false, true}) {
    HarnessConfig config = base_config(Algorithm::kLamport, 4000);
    config.lamport_options.head_only_release = head_only;
    config.client.wants_cs = false;  // scripted request only

    FaultScenario scenario;
    scenario.warmup = 200;
    scenario.observation = 8000;
    scenario.drain = 6000;
    scenario.scripted_fault = [](SystemHarness& h) {
      // Plant a fabricated earliest queue entry for process 3 (which
      // never requests, so no release will ever dequeue it) at process 0,
      // then let 0 request. Timestamp {0,3} is lt every real request.
      auto& p0 = dynamic_cast<me::LamportMe&>(h.process(0));
      p0.fault_insert_queue_entry(3, clk::Timestamp{0, 3});
      h.process(0).request_cs();
    };
    // Deterministic scripted wedge: one trial is the whole experiment.
    grid.add(head_only ? "a2/head_only" : "a2/default", config, scenario, 1);
  }
  for (const bool unrefined : {false, true}) {
    HarnessConfig config = base_config(Algorithm::kRicartAgrawala, 5000);
    config.wrapper.unrefined_send_all = unrefined;
    FaultScenario scenario;
    scenario.warmup = 500;
    scenario.burst = 10;
    scenario.mix = net::FaultMix::all();
    scenario.observation = 7000;
    scenario.drain = 5000;
    grid.add(unrefined ? "a3/unrefined" : "a3/refined", config, scenario,
             trials);
  }
  for (const SimTime poll : polls) {
    HarnessConfig config = base_config(Algorithm::kRicartAgrawala, 6000);
    config.client.poll_interval = poll;
    grid.add("a4/poll=" + std::to_string(poll), config, corruption_scenario(),
             trials);
  }

  const GridResult result = engine.run(grid);

  std::cout << "E9: ablations (" << trials << " seeds per cell, "
            << result.jobs << " jobs)\n\n";

  {
    std::cout << "A1: Ricart-Agrawala view updates under process "
                 "corruption\n\n";
    Table table({"view update rule", "stabilized", "starved runs"});
    for (const bool monotone : {false, true}) {
      const RepeatedResult& r =
          result.cell(monotone ? "a1/monotone" : "a1/direct").result;
      table.row(monotone ? "monotone max() (ablation)" : "direct assignment",
                stab_cell(r), r.starved);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "A2: Lamport queue-entry retirement, scripted corrupted "
                 "entry for a silent process\n\n";
    Table table({"retirement rule", "outcome", "CS entries"});
    for (const bool head_only : {false, true}) {
      const RepeatedResult& r =
          result.cell(head_only ? "a2/head_only" : "a2/default").result;
      table.row(head_only ? "head-only dequeue (ablation)"
                          : "stale retirement (default)",
                r.stabilized == r.trials ? "recovered" : "WEDGED forever",
                static_cast<std::uint64_t>(r.cs_entries.sum()));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "A3: refined vs unrefined wrapper, mixed fault bursts\n\n";
    Table table({"wrapper", "stabilized", "wrapper msgs mean±sd",
                 "latency mean±sd"});
    for (const bool unrefined : {false, true}) {
      const RepeatedResult& r =
          result.cell(unrefined ? "a3/unrefined" : "a3/refined").result;
      table.row(unrefined ? "unrefined (send to all k)"
                          : "refined (stale peers only)",
                stab_cell(r), mean_pm_stddev(r.wrapper_messages, 0),
                mean_pm_stddev(r.latency, 0));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "A4: client poll cadence (the 'everywhere' Client Spec) "
                 "vs recovery from process corruption\n\n";
    Table table({"poll interval", "stabilized", "latency mean±sd",
                 "violations mean±sd"});
    for (const SimTime poll : polls) {
      const RepeatedResult& r =
          result.cell("a4/poll=" + std::to_string(poll)).result;
      table.row(poll, stab_cell(r), mean_pm_stddev(r.latency, 0),
                mean_pm_stddev(r.violations, 1));
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Expected shape: A1 — direct assignment stabilizes all trials, "
         "monotone loses some to permanent false beliefs; A2 — default "
         "recovers, head-only wedges forever; A3 — both stabilize, the "
         "refined wrapper sends substantially fewer messages (the paper's "
         "rationale for the refinement); A4 — every cadence stabilizes "
         "(the wrapper timer is an independent recovery path), with "
         "stabilization latency growing as polls — the bound on how fast a "
         "corruption is noticed — get sparser. (Violation COUNTS are "
         "per-observed-snapshot, so denser polling also counts the same "
         "window more often.)\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
