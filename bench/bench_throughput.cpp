// E8 — fault-free correctness and service metrics (Theorem 5: Lspec
// implementations implement TME Spec from initial states).
//
// Reports, per system size and algorithm: CS entries per 1000 ticks,
// protocol messages per CS entry (Ricart-Agrawala's optimal 2(n-1) vs
// Lamport's 3(n-1)), worst-case waiting time, and the violation counters
// (all of which must be zero). Runs BARE (no wrapper) so the per-entry
// message counts are exact protocol complexity; bench_interference
// quantifies what the wrapper adds on top.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"horizon", "run length in ticks (default 20000)"}});
  const SimTime horizon =
      static_cast<SimTime>(flags.get_int("horizon", 20000));

  std::cout << "E8: fault-free TME service metrics over " << horizon
            << " ticks (bare protocols; see E6 for wrapper overhead)\n\n";

  Table table({"n", "algorithm", "CS entries", "entries/1k ticks",
               "msgs/entry", "expected msgs/entry", "max wait",
               "violations"});
  for (const std::size_t n : {2u, 3u, 5u, 8u, 12u}) {
    for (const Algorithm algo :
         {Algorithm::kRicartAgrawala, Algorithm::kLamport}) {
      HarnessConfig config;
      config.n = n;
      config.algorithm = algo;
      config.wrapped = false;
      config.client.think_mean = 50;
      config.client.eat_mean = 8;
      config.seed = 42 + n;
      SystemHarness h(config);
      h.start();
      h.run_for(horizon);
      h.drain(5000);
      const RunStats stats = h.stats();
      const double protocol_msgs = static_cast<double>(
          stats.messages_sent - stats.wrapper_messages);
      const double per_entry =
          stats.cs_entries > 0
              ? protocol_msgs / static_cast<double>(stats.cs_entries)
              : 0.0;
      const std::uint64_t violations = stats.me1_violations +
                                       stats.me3_violations +
                                       stats.invariant_violations;
      char buf[32], buf2[32];
      std::snprintf(buf, sizeof buf, "%.1f", per_entry);
      std::snprintf(buf2, sizeof buf2, "%.1f",
                    static_cast<double>(stats.cs_entries) * 1000.0 /
                        static_cast<double>(horizon));
      table.row(n, to_string(algo), stats.cs_entries, buf2, buf,
                (algo == Algorithm::kRicartAgrawala ? 2 : 3) * (n - 1),
                stats.me2_max_wait, violations);
    }
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: zero violations everywhere (Theorem 5); "
         "msgs/entry equals 2(n-1) for Ricart-Agrawala (its optimality "
         "claim) and 3(n-1) for Lamport; throughput saturates and max wait "
         "grows with n as contention rises.\n";
  return 0;
}
