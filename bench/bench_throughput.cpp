// E8 — fault-free correctness and service metrics (Theorem 5: Lspec
// implementations implement TME Spec from initial states).
//
// Reports, per system size and algorithm: CS entries per 1000 ticks,
// protocol messages per CS entry (Ricart-Agrawala's optimal 2(n-1) vs
// Lamport's 3(n-1) vs Carvalho-Roucairol's amortized <= 2(n-1)),
// worst-case waiting time, and the violation counters
// (all of which must be zero). Runs BARE (no wrapper) so the per-entry
// message counts are exact protocol complexity; bench_interference
// quantifies what the wrapper adds on top.
#include <cstdio>
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

// Column key, registry name, and the textbook fault-free message complexity
// per CS entry. Carvalho-Roucairol's is an upper bound: retained
// permissions make consecutive entries cheaper than 2(n-1), down to 0 when
// the same process re-enters uncontended (the lease re-request keeps it
// above the theoretical floor here).
struct Impl {
  const char* column;
  const char* algo;
  int per_entry_factor;
  const char* bound;
};
constexpr Impl kImpls[] = {{"ra", "ricart-agrawala", 2, "="},
                           {"lamport", "lamport", 3, "="},
                           {"cr", "carvalho-roucairol", 2, "<="}};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              with_engine_flags(
                  {{"horizon", "run length in ticks (default 20000)"}}));
  const SimTime horizon =
      static_cast<SimTime>(flags.get_int("horizon", 20000));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  // Fault-free service measurement: the whole horizon is "warmup".
  FaultScenario scenario;
  scenario.warmup = horizon;
  scenario.burst = 0;
  scenario.observation = 0;
  scenario.drain = 5000;

  const std::size_t sizes[] = {2, 3, 5, 8, 12};

  SpecGrid grid;
  for (const std::size_t n : sizes) {
    for (const Impl& impl : kImpls) {
      HarnessConfig config;
      config.n = n;
      config.algorithm = impl.algo;
      config.wrapped = false;
      config.client.think_mean = 50;
      config.client.eat_mean = 8;
      config.seed = 42 + n;
      grid.add(std::string(impl.column) + "/n=" + std::to_string(n), config,
               scenario, trials);
    }
  }
  const GridResult result = engine.run(grid);

  std::cout << "E8: fault-free TME service metrics over " << horizon
            << " ticks (bare protocols, " << trials << " trials per cell, "
            << result.jobs
            << " jobs; see E6 for wrapper overhead)\n\n";

  Table table({"n", "algorithm", "CS entries mean", "entries/1k ticks",
               "msgs/entry", "expected msgs/entry", "max wait mean",
               "violations"});
  for (const std::size_t n : sizes) {
    for (const Impl& impl : kImpls) {
      const RepeatedResult& r =
          result.cell(std::string(impl.column) + "/n=" + std::to_string(n))
              .result;
      const double per_entry = r.cs_entries.sum() > 0
                                   ? r.protocol_messages.sum() /
                                         r.cs_entries.sum()
                                   : 0.0;
      char buf[32], buf2[32], buf3[32], buf4[32];
      std::snprintf(buf, sizeof buf, "%.1f", per_entry);
      std::snprintf(buf2, sizeof buf2, "%.1f",
                    r.cs_entries.mean() * 1000.0 /
                        static_cast<double>(horizon));
      std::snprintf(buf3, sizeof buf3, "%.0f", r.max_wait.mean());
      std::snprintf(buf4, sizeof buf4, "%s%zu", impl.bound,
                    static_cast<std::size_t>(impl.per_entry_factor) * (n - 1));
      table.row(n, impl.algo,
                static_cast<std::uint64_t>(r.cs_entries.mean()), buf2, buf,
                buf4, buf3,
                static_cast<std::uint64_t>(r.safety_violations.sum()));
    }
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: zero violations everywhere (Theorem 5); "
         "msgs/entry equals 2(n-1) for Ricart-Agrawala (its optimality "
         "claim) and 3(n-1) for Lamport, and stays at or below 2(n-1) for "
         "Carvalho-Roucairol, whose retained permissions amortize REQUEST/"
         "REPLY pairs across consecutive entries; throughput saturates and "
         "max wait grows with n as contention rises.\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
