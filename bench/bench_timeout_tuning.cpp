// E4 — tuning W' (paper Section 4, "Implementation of W").
//
// "The timeout mechanism can be employed to tune the wrapper to decrease
//  the unnecessary repetitions of the request messages when the system is
//  in the consistent states."
//
// The sweep measures, per timeout delta:
//   * stabilization latency after a mixed fault burst (mean over trials);
//   * wrapper resend traffic during the faulty run;
//   * wrapper resend traffic in a fault-free run of the same length (the
//     "unnecessary repetitions" the quote is about).
//
// Expected shape: latency grows with delta; wrapper traffic falls roughly
// as 1/delta; fault-free traffic falls to ~0 once delta exceeds typical
// request-service times — the tuning knob the paper describes.
#include <cstdio>
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig config_for(Algorithm algo, SimTime delta, std::uint64_t seed) {
  HarnessConfig config;
  config.n = 5;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = delta;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  return config;
}

const char* short_name(Algorithm algo) {
  return algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 15));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 12;
  scenario.mix = net::FaultMix::all();
  scenario.observation = 8000;
  scenario.drain = 5000;

  FaultScenario clean = scenario;
  clean.burst = 0;

  const SimTime deltas[] = {0, 2, 5, 10, 25, 50, 100, 200, 400};
  const Algorithm algos[] = {Algorithm::kRicartAgrawala, Algorithm::kLamport};

  SpecGrid grid;
  for (const Algorithm algo : algos) {
    for (const SimTime delta : deltas) {
      const std::string stem =
          std::string(short_name(algo)) + "/delta=" + std::to_string(delta);
      grid.add("faulty/" + stem, config_for(algo, delta, 1000), scenario,
               trials);
      grid.add("quiet/" + stem, config_for(algo, delta, 1000), clean, trials);
    }
  }
  const GridResult result = engine.run(grid);

  std::cout << "E4: W' timeout sweep, " << trials
            << " trials per cell, burst of " << scenario.burst
            << " mixed faults (" << result.jobs << " jobs)\n\n";

  for (const Algorithm algo : algos) {
    Table table({"delta", "stabilized", "latency mean±sd", "latency p95",
                 "wrapper msgs (faulty)", "wrapper msgs (fault-free)"});
    for (const SimTime delta : deltas) {
      const std::string stem =
          std::string(short_name(algo)) + "/delta=" + std::to_string(delta);
      const RepeatedResult& faulty = result.cell("faulty/" + stem).result;
      const RepeatedResult& quiet = result.cell("quiet/" + stem).result;

      char p95[32];
      std::snprintf(p95, sizeof p95, "%.0f", faulty.latency.percentile(95));
      table.row(delta,
                std::to_string(faulty.stabilized) + "/" +
                    std::to_string(faulty.trials),
                mean_pm_stddev(faulty.latency),
                p95,
                mean_pm_stddev(faulty.wrapper_messages, 0),
                mean_pm_stddev(quiet.wrapper_messages, 0));
    }
    std::cout << to_string(algo) << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: every cell stabilizes; latency rises with "
               "delta while wrapper traffic falls ~1/delta; fault-free "
               "traffic approaches zero for large delta (the paper's "
               "'decrease the unnecessary repetitions').\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
