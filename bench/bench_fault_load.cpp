// E12 — availability under sustained fault load.
//
// The paper's experiments end at a burst: inject, watch the system
// stabilize, stop. A deployed wrapper faces the other regime — faults keep
// arriving forever — and the interesting question becomes quantitative:
// how much critical-section service survives a continuous adversary, and
// how fast does the wrapped system reconverge after each hit? This bench
// drives the sustained fault-load subsystem (net::FaultProcess: Poisson
// per-kind message faults plus crash/recovery and partition/heal
// lifecycles) over a fault-rate x delta (wrapper resend period) x algorithm
// grid and reports availability (served/issued CS requests), violation
// density, and mean time-to-reconverge per fault arrival. The whole grid
// runs through ExperimentEngine, so BENCH_fault_load.json is byte-identical
// for every --jobs value.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

constexpr SimTime kWarmup = 500;
constexpr SimTime kObservation = 6000;
constexpr SimTime kDrain = 4000;

struct RateLevel {
  const char* name;
  /// Scales every stream's mean inter-arrival gap; 0 disables the load.
  double scale;
};

// "light" averages one message fault per ~100 ticks across the streams;
// "heavy" is one per ~25 ticks plus frequent crashes and partitions — well
// past the burst sizes of bench_stabilization_time, sustained forever.
constexpr RateLevel kRates[] = {
    {"off", 0.0}, {"light", 4.0}, {"medium", 1.5}, {"heavy", 0.6}};
constexpr SimTime kDeltas[] = {10, 25, 50};

net::FaultProcessConfig load_for(double scale) {
  net::FaultProcessConfig fp;
  if (scale <= 0) return fp;  // all-zero: subsystem stays idle
  fp.drop_mean = 150 * scale;
  fp.duplicate_mean = 400 * scale;
  fp.corrupt_mean = 400 * scale;
  fp.spurious_mean = 300 * scale;
  fp.process_corrupt_mean = 600 * scale;
  fp.channel_clear_mean = 900 * scale;
  fp.crash_mean = 1500 * scale;
  fp.downtime_mean = 150;
  fp.max_down = 1;
  fp.partition_mean = 2000 * scale;
  fp.partition_hold_mean = 120;
  // The load runs exactly over the observation window: warmup stays
  // fault-free and the drain is quiet, so the stabilization verdict keeps
  // its meaning (Theorem 8 speaks about runs where faults eventually stop).
  fp.start = kWarmup;
  fp.end = kWarmup + kObservation;
  return fp;
}

HarnessConfig config_for(Algorithm algo, SimTime delta, double scale) {
  HarnessConfig config;
  config.n = 5;
  config.algorithm = algo;
  config.wrapper.resend_period = delta;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = 12000;
  config.fault_process = load_for(scale);
  return config;
}

FaultScenario scenario_sustained() {
  FaultScenario scenario;
  scenario.warmup = kWarmup;
  scenario.burst = 0;  // the sustained load IS the adversary
  scenario.observation = kObservation;
  scenario.drain = kDrain;
  return scenario;
}

const char* short_name(Algorithm algo) {
  return algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
}

std::string cell_name(Algorithm algo, const RateLevel& rate, SimTime delta) {
  return std::string(short_name(algo)) + "/rate=" + rate.name +
         "/delta=" + std::to_string(delta);
}

std::string fmt(double v, int digits = 3) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 12));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  const Algorithm algos[] = {Algorithm::kRicartAgrawala, Algorithm::kLamport};

  SpecGrid grid;
  for (const Algorithm algo : algos)
    for (const RateLevel& rate : kRates)
      for (const SimTime delta : kDeltas)
        grid.add(cell_name(algo, rate, delta),
                 config_for(algo, delta, rate.scale), scenario_sustained(),
                 trials);

  const GridResult result = engine.run(grid);

  std::cout << "E12: availability under sustained fault load (" << trials
            << " trials per cell, " << result.jobs << " jobs)\n"
            << "Load runs across the whole " << kObservation
            << "-tick observation window; availability = served/issued CS "
               "requests,\nreconverge = mean ticks from a fault arrival to "
               "the last safety violation it caused.\n";

  for (const Algorithm algo : algos) {
    std::cout << "\n" << to_string(algo) << ":\n\n";
    Table table({"rate", "delta", "stabilized", "availability mean±sd",
                 "faults/trial", "violations/trial", "reconverge mean"});
    for (const RateLevel& rate : kRates) {
      for (const SimTime delta : kDeltas) {
        const RepeatedResult& r =
            result.cell(cell_name(algo, rate, delta)).result;
        table.row(rate.name, delta,
                  std::to_string(r.stabilized) + "/" +
                      std::to_string(r.trials),
                  mean_pm_stddev(r.availability, 3), fmt(r.faults.mean(), 1),
                  fmt(r.violations.mean(), 1), fmt(r.reconverge.mean(), 1));
      }
    }
    table.print(std::cout);
  }

  std::cout
      << "\nExpected shape: at rate=off availability is 1 and reconverge "
         "is 0. As the sustained rate climbs, violation density grows "
         "roughly linearly with the arrival count, but availability stays "
         "near 1 and reconvergence stays within a few ticks — the wrapper "
         "reconverges between arrivals instead of letting damage compound "
         "— and every cell still stabilizes once the load stops (Theorem "
         "8). Larger delta tends to stretch reconvergence: corrections "
         "ride the resend clock (see bench_timeout_tuning for that "
         "trade-off measured fault-free).\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
