// E11 — graybox design of other dependability properties (Section 6).
//
// "Our observation that local everywhere specifications are amenable to
//  graybox stabilization is also true for graybox masking and graybox
//  fail-safe."
//
// Randomized check of the transfer claim for all three tolerance flavours:
// whenever the wrapped specification A [] W is masking / fail-safe /
// nonmasking tolerant (to a LiveSpec, under a random fault relation), every
// everywhere implementation C [] W' inherits the property — and, as with
// stabilization, init-only implementations do NOT reliably inherit it.
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/tolerance.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

namespace {

using namespace graybox;
using namespace graybox::algebra;

struct Tally {
  long trials = 0;
  long premise_held = 0;
  long conclusion_failed = 0;
};

enum class Flavour { kMasking, kFailsafe, kNonmasking };

Tally sweep(Rng& rng, long trials, Flavour flavour, bool everywhere) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(6));
    const System aw = System::box(a, w);
    if (!aw.total()) continue;

    const System f =
        random_fault_relation(rng, a.num_states(), 1 + rng.index(4));
    LiveSpec spec;
    if (flavour == Flavour::kNonmasking) {
      spec = LiveSpec::trivial(a);
      if (!nonmasking_tolerant(aw, spec)) continue;
    } else {
      spec.safety = aw;
      spec.recurrent = Bitset(a.num_states());
      spec.recurrent.fill();
      const bool premise = flavour == Flavour::kMasking
                               ? masking_tolerant(aw, f, spec)
                               : failsafe_tolerant(aw, f, spec);
      if (!premise) continue;
    }

    const System c = everywhere ? random_everywhere_implementation(rng, a)
                                : random_init_implementation(rng, a);
    if (!everywhere && !implements_init(c, a)) continue;
    const System wi = random_everywhere_implementation(rng, w);
    const System cw = System::box(c, wi);
    if (!cw.initial().any()) continue;
    ++tally.premise_held;

    bool conclusion = true;
    switch (flavour) {
      case Flavour::kMasking:
        conclusion = masking_tolerant(cw, f, spec);
        break;
      case Flavour::kFailsafe:
        conclusion = failsafe_tolerant(cw, f, spec);
        break;
      case Flavour::kNonmasking:
        conclusion = nonmasking_tolerant(cw, spec);
        break;
    }
    if (!conclusion) ++tally.conclusion_failed;
  }
  return tally;
}

const char* name_of(Flavour flavour) {
  switch (flavour) {
    case Flavour::kMasking:
      return "masking";
    case Flavour::kFailsafe:
      return "fail-safe";
    case Flavour::kNonmasking:
      return "nonmasking (stabilization)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"trials", "trials per cell (default 5000)"},
               {"seed", "RNG seed (default 77)"}});
  const long trials = flags.get_int("trials", 5000);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 77)));

  std::cout << "E11: graybox transfer of masking / fail-safe / nonmasking "
               "tolerance (" << trials << " trials per cell)\n\n";

  Table table({"tolerance", "implementation premise", "trials",
               "premise held", "conclusion failed", "verdict"});
  for (const Flavour flavour :
       {Flavour::kMasking, Flavour::kFailsafe, Flavour::kNonmasking}) {
    const Tally everywhere = sweep(rng, trials, flavour, true);
    table.row(name_of(flavour), "[C => A] everywhere", everywhere.trials,
              everywhere.premise_held, everywhere.conclusion_failed,
              everywhere.conclusion_failed == 0 ? "transfers" : "UNEXPECTED");
    const Tally init_only = sweep(rng, trials * 2, flavour, false);
    table.row(name_of(flavour), "[C => A]init only", init_only.trials,
              init_only.premise_held, init_only.conclusion_failed,
              init_only.conclusion_failed > 0
                  ? "counterexamples exist (as paper says)"
                  : "no counterexample found");
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape (Section 6): with the everywhere premise, all "
         "three tolerance flavours transfer from the wrapped specification "
         "to every implementation — zero failures; with only the init-time "
         "premise, counterexamples appear for the flavours whose obligations "
         "extend beyond the initialized reachable region.\n";
  return 0;
}
