// E11 — graybox design of other dependability properties (Section 6).
//
// "Our observation that local everywhere specifications are amenable to
//  graybox stabilization is also true for graybox masking and graybox
//  fail-safe."
//
// Randomized check of the transfer claim for all three tolerance flavours:
// whenever the wrapped specification A [] W is masking / fail-safe /
// nonmasking tolerant (to a LiveSpec, under a random fault relation), every
// everywhere implementation C [] W' inherits the property — and, as with
// stabilization, init-only implementations do NOT reliably inherit it.
//
// Parallelism: trials shard into a fixed number of chunks with independent
// RNG streams (seed + chunk); chunk tallies merge in chunk order, so the
// totals are identical for every --jobs value.
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/tolerance.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/report.hpp"
#include "common/table.hpp"

namespace {

using namespace graybox;
using namespace graybox::algebra;

constexpr std::size_t kChunks = 64;

struct Tally {
  long trials = 0;
  long premise_held = 0;
  long conclusion_failed = 0;

  void merge(const Tally& other) {
    trials += other.trials;
    premise_held += other.premise_held;
    conclusion_failed += other.conclusion_failed;
  }
};

enum class Flavour { kMasking, kFailsafe, kNonmasking };

Tally sweep_serial(Rng& rng, long trials, Flavour flavour, bool everywhere) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(6));
    const System aw = System::box(a, w);
    if (!aw.total()) continue;

    const System f =
        random_fault_relation(rng, a.num_states(), 1 + rng.index(4));
    LiveSpec spec;
    if (flavour == Flavour::kNonmasking) {
      spec = LiveSpec::trivial(a);
      if (!nonmasking_tolerant(aw, spec)) continue;
    } else {
      spec.safety = aw;
      spec.recurrent = Bitset(a.num_states());
      spec.recurrent.fill();
      const bool premise = flavour == Flavour::kMasking
                               ? masking_tolerant(aw, f, spec)
                               : failsafe_tolerant(aw, f, spec);
      if (!premise) continue;
    }

    const System c = everywhere ? random_everywhere_implementation(rng, a)
                                : random_init_implementation(rng, a);
    if (!everywhere && !implements_init(c, a)) continue;
    const System wi = random_everywhere_implementation(rng, w);
    const System cw = System::box(c, wi);
    if (!cw.initial().any()) continue;
    ++tally.premise_held;

    bool conclusion = true;
    switch (flavour) {
      case Flavour::kMasking:
        conclusion = masking_tolerant(cw, f, spec);
        break;
      case Flavour::kFailsafe:
        conclusion = failsafe_tolerant(cw, f, spec);
        break;
      case Flavour::kNonmasking:
        conclusion = nonmasking_tolerant(cw, spec);
        break;
    }
    if (!conclusion) ++tally.conclusion_failed;
  }
  return tally;
}

Tally sweep(std::uint64_t seed, long trials, std::size_t jobs,
            Flavour flavour, bool everywhere) {
  std::vector<Tally> chunks(kChunks);
  parallel_tasks(kChunks, jobs, [&](std::size_t chunk) {
    const long base = trials / static_cast<long>(kChunks);
    const long extra =
        static_cast<long>(chunk) < trials % static_cast<long>(kChunks) ? 1 : 0;
    Rng rng(seed + chunk);
    chunks[chunk] = sweep_serial(rng, base + extra, flavour, everywhere);
  });
  Tally total;
  for (const Tally& chunk : chunks) total.merge(chunk);
  return total;
}

const char* name_of(Flavour flavour) {
  switch (flavour) {
    case Flavour::kMasking:
      return "masking";
    case Flavour::kFailsafe:
      return "fail-safe";
    case Flavour::kNonmasking:
      return "nonmasking (stabilization)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              with_engine_flags({{"seed", "RNG seed (default 77)"}}));
  const long trials = flags.get_int("trials", 5000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 77));
  const std::size_t jobs =
      resolve_jobs(static_cast<std::size_t>(flags.get_int("jobs", 0)));

  std::cout << "E11: graybox transfer of masking / fail-safe / nonmasking "
               "tolerance (" << trials << " trials per cell, " << jobs
            << " jobs, " << kChunks << " RNG chunks)\n\n";

  struct Row {
    std::string name;
    std::string premise;
    Tally tally;
    bool failures_expected;
  };
  std::vector<Row> rows;
  std::uint64_t salt = 0;
  for (const Flavour flavour :
       {Flavour::kMasking, Flavour::kFailsafe, Flavour::kNonmasking}) {
    rows.push_back({name_of(flavour), "[C => A] everywhere",
                    sweep(seed + salt, trials, jobs, flavour, true), false});
    salt += 1000;
    rows.push_back({name_of(flavour), "[C => A]init only",
                    sweep(seed + salt, trials * 2, jobs, flavour, false),
                    true});
    salt += 1000;
  }

  Table table({"tolerance", "implementation premise", "trials",
               "premise held", "conclusion failed", "verdict"});
  for (const Row& row : rows) {
    const Tally& t = row.tally;
    const char* verdict;
    if (row.failures_expected) {
      verdict = t.conclusion_failed > 0
                    ? "counterexamples exist (as paper says)"
                    : "no counterexample found";
    } else {
      verdict = t.conclusion_failed == 0 ? "transfers" : "UNEXPECTED";
    }
    table.row(row.name, row.premise, t.trials, t.premise_held,
              t.conclusion_failed, verdict);
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape (Section 6): with the everywhere premise, all "
         "three tolerance flavours transfer from the wrapped specification "
         "to every implementation — zero failures; with only the init-time "
         "premise, counterexamples appear for the flavours whose obligations "
         "extend beyond the initialized reachable region.\n";

  const std::string json_path =
      flags.get("json", report::default_bench_json_path(argv[0]));
  if (json_path != "-") {
    report::Json doc = report::Json::object();
    doc["bench"] = report::bench_name_from_program(argv[0]);
    doc["schema"] = 1;
    doc["jobs"] = static_cast<std::uint64_t>(jobs);
    doc["seed"] = seed;
    doc["chunks"] = static_cast<std::uint64_t>(kChunks);
    doc["cells"] = report::Json::array();
    for (const Row& row : rows) {
      report::Json cell = report::Json::object();
      cell["name"] = row.name;
      cell["premise"] = row.premise;
      cell["trials"] = static_cast<std::int64_t>(row.tally.trials);
      cell["premise_held"] =
          static_cast<std::int64_t>(row.tally.premise_held);
      cell["conclusion_failed"] =
          static_cast<std::int64_t>(row.tally.conclusion_failed);
      cell["failures_expected"] = row.failures_expected;
      doc["cells"].push_back(std::move(cell));
    }
    report::write_json_file(json_path, doc);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
