// E3 — the Section 4 deadlock scenario, end to end.
//
// "Suppose processes j and k have both requested CS [and] REQj and REQk are
//  both dropped from the channels ... the state of M has a deadlock."
//
// Part 1 runs the scripted scenario bare and wrapped for both programs:
// bare systems starve forever; the identical wrapper recovers both.
// Part 2 sweeps the W' timeout delta and reports time-to-recovery, showing
// the linear dependence of recovery latency on the resend period. The
// sweep rides the engine's custom-trial hook: each cell's trial callable
// measures recovery time and reports it through the normal latency field.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

FaultScenario deadlock_scenario() {
  FaultScenario scenario;
  scenario.warmup = 100;
  scenario.observation = 8000;
  scenario.drain = 6000;
  scenario.scripted_fault = [](SystemHarness& h) {
    h.process(0).request_cs();
    h.process(1).request_cs();
    const std::size_t n = h.network().size();
    for (ProcessId to = 0; to < n; ++to) {
      if (to != 0) h.network().channel(0, to).fault_clear();
      if (to != 1) h.network().channel(1, to).fault_clear();
    }
  };
  return scenario;
}

HarnessConfig config_for(Algorithm algo, bool wrapped, SimTime period) {
  HarnessConfig config;
  config.n = 3;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = period;
  config.client.wants_cs = false;  // scripted requests only
  config.seed = 7;
  return config;
}

/// Custom engine trial: time from the fault to the moment both scripted
/// requests were served, reported as `latency`; `stabilized` iff the run
/// did not time out. Thread-safe — every call owns its own harness.
ExperimentResult recovery_trial(const HarnessConfig& config,
                                const FaultScenario& scenario) {
  SystemHarness h(config);
  h.start();
  h.run_for(100);
  scenario.scripted_fault(h);
  const SimTime fault_at = h.scheduler().now();
  ExperimentResult result;
  result.report.faults_injected = true;
  result.report.last_fault = fault_at;
  while (h.scheduler().now() < fault_at + 100000) {
    h.run_for(2);
    if (h.process(0).cs_entries() + h.process(1).cs_entries() >= 2) {
      result.report.stabilized = true;
      result.report.latency = h.scheduler().now() - fault_at;
      break;
    }
  }
  result.report.starvation = !result.report.stabilized;
  h.drain(100);
  result.stats = h.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const ExperimentEngine engine(engine_options_from_flags(flags));

  const SimTime deltas[] = {0, 5, 10, 25, 50, 100, 200, 400};
  const Algorithm algos[] = {Algorithm::kRicartAgrawala, Algorithm::kLamport};

  SpecGrid grid;
  for (const Algorithm algo : algos) {
    const std::string stem =
        algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
    for (const bool wrapped : {false, true}) {
      // The scenario is fully scripted, so one trial is the experiment.
      grid.add("verdict/" + stem + (wrapped ? "/wrapped" : "/bare"),
               config_for(algo, wrapped, 20), deadlock_scenario(), 1);
    }
    for (const SimTime delta : deltas) {
      RunSpec spec;
      spec.name = "sweep/" + stem + "/delta=" + std::to_string(delta);
      spec.config = config_for(algo, true, delta);
      spec.scenario = deadlock_scenario();
      spec.trials = 1;
      spec.trial = recovery_trial;
      grid.add(std::move(spec));
    }
  }
  const GridResult result = engine.run(grid);

  std::cout << "E3: Section 4 deadlock — both requests dropped from the "
               "channels (" << result.jobs << " jobs)\n\n";

  Table verdicts({"algorithm", "wrapper", "outcome", "starvation at end",
                  "CS entries"});
  for (const Algorithm algo : algos) {
    const std::string stem =
        algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
    for (const bool wrapped : {false, true}) {
      const RepeatedResult& r =
          result.cell("verdict/" + stem + (wrapped ? "/wrapped" : "/bare"))
              .result;
      verdicts.row(to_string(algo), wrapped ? "W' (delta=20)" : "none",
                   r.all_stabilized() ? "recovered" : "DEADLOCKED forever",
                   r.starved > 0,
                   static_cast<std::uint64_t>(r.cs_entries.sum()));
    }
  }
  verdicts.print(std::cout);

  std::cout << "\nRecovery latency vs wrapper timeout delta (time until both "
               "wedged requests served):\n\n";
  Table sweep({"delta", "ricart-agrawala", "lamport"});
  for (const SimTime delta : deltas) {
    auto cell = [&](const char* stem) {
      const RepeatedResult& r =
          result
              .cell(std::string("sweep/") + stem +
                    "/delta=" + std::to_string(delta))
              .result;
      return r.all_stabilized()
                 ? std::to_string(
                       static_cast<std::uint64_t>(r.latency.mean()))
                 : std::string("never");
    };
    sweep.row(delta, cell("ra"), cell("lamport"));
  }
  sweep.print(std::cout);

  std::cout << "\nExpected shape: bare rows deadlock, wrapped rows recover "
               "(paper Theorem 8); recovery latency grows roughly linearly "
               "with delta (Section 4, 'Implementation of W').\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
