// E3 — the Section 4 deadlock scenario, end to end.
//
// "Suppose processes j and k have both requested CS [and] REQj and REQk are
//  both dropped from the channels ... the state of M has a deadlock."
//
// Part 1 runs the scripted scenario bare and wrapped for both programs:
// bare systems starve forever; the identical wrapper recovers both.
// Part 2 sweeps the W' timeout delta and reports time-to-recovery, showing
// the linear dependence of recovery latency on the resend period.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

FaultScenario deadlock_scenario() {
  FaultScenario scenario;
  scenario.warmup = 100;
  scenario.observation = 8000;
  scenario.drain = 6000;
  scenario.scripted_fault = [](SystemHarness& h) {
    h.process(0).request_cs();
    h.process(1).request_cs();
    const std::size_t n = h.network().size();
    for (ProcessId to = 0; to < n; ++to) {
      if (to != 0) h.network().channel(0, to).fault_clear();
      if (to != 1) h.network().channel(1, to).fault_clear();
    }
  };
  return scenario;
}

HarnessConfig config_for(Algorithm algo, bool wrapped, SimTime period) {
  HarnessConfig config;
  config.n = 3;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = period;
  config.client.wants_cs = false;  // scripted requests only
  config.seed = 7;
  return config;
}

/// Time from the fault to the moment both scripted requests were served;
/// kNever if the run ends with someone still hungry.
SimTime recovery_time(const HarnessConfig& config) {
  SystemHarness h(config);
  h.start();
  h.run_for(100);
  deadlock_scenario().scripted_fault(h);
  const SimTime fault_at = h.scheduler().now();
  while (h.scheduler().now() < fault_at + 100000) {
    h.run_for(2);
    if (h.process(0).cs_entries() + h.process(1).cs_entries() >= 2)
      return h.scheduler().now() - fault_at;
  }
  return kNever;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "base seed (default 7)"}});
  (void)flags;

  std::cout << "E3: Section 4 deadlock — both requests dropped from the "
               "channels\n\n";

  Table verdicts({"algorithm", "wrapper", "outcome", "starvation at end",
                  "CS entries"});
  for (const Algorithm algo :
       {Algorithm::kRicartAgrawala, Algorithm::kLamport}) {
    for (const bool wrapped : {false, true}) {
      const auto result = run_fault_experiment(config_for(algo, wrapped, 20),
                                               deadlock_scenario());
      verdicts.row(to_string(algo), wrapped ? "W' (delta=20)" : "none",
                   result.report.stabilized ? "recovered"
                                            : "DEADLOCKED forever",
                   result.report.starvation, result.stats.cs_entries);
    }
  }
  verdicts.print(std::cout);

  std::cout << "\nRecovery latency vs wrapper timeout delta (time until both "
               "wedged requests served):\n\n";
  Table sweep({"delta", "ricart-agrawala", "lamport"});
  for (const SimTime delta : {0, 5, 10, 25, 50, 100, 200, 400}) {
    auto cell = [&](Algorithm algo) {
      const SimTime t = recovery_time(config_for(algo, true, delta));
      return t == kNever ? std::string("never") : std::to_string(t);
    };
    sweep.row(delta, cell(Algorithm::kRicartAgrawala),
              cell(Algorithm::kLamport));
  }
  sweep.print(std::cout);

  std::cout << "\nExpected shape: bare rows deadlock, wrapped rows recover "
               "(paper Theorem 8); recovery latency grows roughly linearly "
               "with delta (Section 4, 'Implementation of W').\n";
  return 0;
}
