// E1 — Figure 1 (Section 2.1), executable.
//
// The paper's only figure is the counterexample motivating *everywhere*
// specifications: a system C that implements A from its initial states
// ([C => A]init) while A is stabilizing to A — and yet C is not stabilizing
// to A, because from the fault-introduced state s* the implementation spins
// forever. The repaired implementation (everywhere) is stabilizing, as
// Theorem 1 promises.
//
// This binary rebuilds all three systems in the finite-system algebra,
// decides every relation exactly, and prints the verdict table (and the
// same verdicts as a BENCH_fig1_counterexample.json artifact — exact
// decisions, so the file is byte-stable across runs and machines).
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "common/flags.hpp"
#include "common/report.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace graybox;
  using namespace graybox::algebra;

  Flags flags(argc, argv,
              {{"json", "verdict artifact path (default "
                        "BENCH_fig1_counterexample.json; '-' disables)"}});

  const System a = figure1_specification();
  const System c = figure1_implementation();
  const System fixed = figure1_everywhere_implementation();
  const auto names = figure1_state_names();

  std::cout << "E1: Figure 1 of 'Graybox Stabilization' (DSN 2001), "
               "machine-checked\n\n";
  std::cout << "Specification A (stabilizing to itself):\n"
            << a.to_string(names) << "\n";
  std::cout << "Implementation C (correct from s0, spins at s*):\n"
            << c.to_string(names) << "\n";
  std::cout << "Everywhere implementation C_fixed (s* repaired):\n"
            << fixed.to_string(names) << "\n";

  report::Json cells = report::Json::array();
  Table table({"system", "[X => A]init", "[X => A] everywhere",
               "stabilizes to A", "bad-step bound"});
  auto row = [&](const char* name, const System& x) {
    const bool init = implements_init(x, a);
    const bool everywhere = implements_everywhere(x, a);
    const bool stab = stabilizes_to(x, a);
    table.row(name, init, everywhere, stab,
              stab ? std::to_string(stabilization_bad_step_bound(x, a))
                   : std::string("-"));
    report::Json cell = report::Json::object();
    cell["name"] = name;
    cell["implements_init"] = init;
    cell["implements_everywhere"] = everywhere;
    cell["stabilizes"] = stab;
    if (stab) {
      cell["bad_step_bound"] =
          static_cast<std::uint64_t>(stabilization_bad_step_bound(x, a));
    }
    cells.push_back(std::move(cell));
  };
  row("A", a);
  row("C", c);
  row("C_fixed", fixed);
  table.print(std::cout);

  const auto verdict = stabilizes_to_verdict(c, a);
  std::cout << "\nWitness for C's failure: the cycle through "
            << names[verdict.witness_from] << " -> "
            << names[verdict.witness_to]
            << " never rejoins a computation of A from A's initial states.\n";
  std::cout << "\nPaper's claim reproduced: [C => A]init and A stabilizing "
               "to A do NOT imply C stabilizing to A; the everywhere premise "
               "restores the implication.\n";

  const std::string json_path =
      flags.get("json", report::default_bench_json_path(argv[0]));
  if (json_path != "-") {
    report::Json doc = report::Json::object();
    doc["bench"] = report::bench_name_from_program(argv[0]);
    doc["schema"] = 1;
    doc["cells"] = std::move(cells);
    report::Json witness = report::Json::object();
    witness["from"] = names[verdict.witness_from];
    witness["to"] = names[verdict.witness_to];
    doc["witness_cycle"] = std::move(witness);
    report::write_json_file(json_path, doc);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
