// E1 — Figure 1 (Section 2.1), executable.
//
// The paper's only figure is the counterexample motivating *everywhere*
// specifications: a system C that implements A from its initial states
// ([C => A]init) while A is stabilizing to A — and yet C is not stabilizing
// to A, because from the fault-introduced state s* the implementation spins
// forever. The repaired implementation (everywhere) is stabilizing, as
// Theorem 1 promises.
//
// This binary rebuilds all three systems in the finite-system algebra,
// decides every relation exactly, and prints the verdict table. Expected:
// row "C" shows implements-init yes / everywhere no / stabilizing NO; row
// "C_fixed" shows yes / yes / yes.
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "common/table.hpp"

int main() {
  using namespace graybox;
  using namespace graybox::algebra;

  const System a = figure1_specification();
  const System c = figure1_implementation();
  const System fixed = figure1_everywhere_implementation();
  const auto names = figure1_state_names();

  std::cout << "E1: Figure 1 of 'Graybox Stabilization' (DSN 2001), "
               "machine-checked\n\n";
  std::cout << "Specification A (stabilizing to itself):\n"
            << a.to_string(names) << "\n";
  std::cout << "Implementation C (correct from s0, spins at s*):\n"
            << c.to_string(names) << "\n";
  std::cout << "Everywhere implementation C_fixed (s* repaired):\n"
            << fixed.to_string(names) << "\n";

  Table table({"system", "[X => A]init", "[X => A] everywhere",
               "stabilizes to A", "bad-step bound"});
  auto row = [&](const char* name, const System& x) {
    const bool init = implements_init(x, a);
    const bool everywhere = implements_everywhere(x, a);
    const bool stab = stabilizes_to(x, a);
    table.row(name, init, everywhere, stab,
              stab ? std::to_string(stabilization_bad_step_bound(x, a))
                   : std::string("-"));
  };
  row("A", a);
  row("C", c);
  row("C_fixed", fixed);
  table.print(std::cout);

  const auto verdict = stabilizes_to_verdict(c, a);
  std::cout << "\nWitness for C's failure: the cycle through "
            << names[verdict.witness_from] << " -> "
            << names[verdict.witness_to]
            << " never rejoins a computation of A from A's initial states.\n";
  std::cout << "\nPaper's claim reproduced: [C => A]init and A stabilizing "
               "to A do NOT imply C stabilizing to A; the everywhere premise "
               "restores the implication.\n";
  return 0;
}
