// E10 — substrate microbenchmarks (google-benchmark).
//
// Costs of the building blocks: scheduler event dispatch, channel
// enqueue/deliver, full protocol round-trips, global snapshot + monitor
// observation, and the finite-system algebra decision procedures. These
// bound how large an experiment the simulator sustains and quantify the
// monitoring overhead that the HarnessConfig::install_monitors switch
// removes.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "lspec/snapshot.hpp"
#include "lspec/tme_monitors.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace graybox;

void BM_SchedulerScheduleExecute(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      sched.schedule_after(static_cast<SimTime>(i % 7), [&] { ++sink; });
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerScheduleExecute);

void BM_SchedulerCancel(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    sim::EventId ids[64];
    for (int i = 0; i < 64; ++i)
      ids[i] = sched.schedule_after(1000, [] {});
    for (int i = 0; i < 64; ++i) sched.cancel(ids[i]);
    while (sched.step()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerCancel);

void BM_ChannelEnqueueDeliver(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t delivered = 0;
  net::Channel channel(sched, net::DelayModel::fixed(1), Rng(1),
                       [&](const net::Message&) { ++delivered; });
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) channel.enqueue(msg);
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChannelEnqueueDeliver);

void BM_RicartAgrawalaFullCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Scheduler sched;
  net::Network net(sched, n, net::DelayModel::fixed(1), Rng(1));
  std::vector<std::unique_ptr<me::RicartAgrawala>> procs;
  for (ProcessId pid = 0; pid < n; ++pid) {
    procs.push_back(std::make_unique<me::RicartAgrawala>(pid, net));
    auto* p = procs.back().get();
    net.set_handler(pid, [p](const net::Message& m) { p->on_message(m); });
  }
  for (auto _ : state) {
    procs[0]->request_cs();
    while (sched.step()) {
    }
    procs[0]->release_cs();
    while (sched.step()) {
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("request->enter->release, n=" + std::to_string(n));
}
BENCHMARK(BM_RicartAgrawalaFullCycle)->Arg(3)->Arg(6)->Arg(12);

void BM_SnapshotCaptureAndMonitor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Scheduler sched;
  net::Network net(sched, n, net::DelayModel::fixed(1), Rng(1));
  std::vector<std::unique_ptr<me::RicartAgrawala>> procs;
  std::vector<me::TmeProcess*> raw;
  for (ProcessId pid = 0; pid < n; ++pid) {
    procs.push_back(std::make_unique<me::RicartAgrawala>(pid, net));
    raw.push_back(procs.back().get());
    auto* p = procs.back().get();
    net.set_handler(pid, [p](const net::Message& m) { p->on_message(m); });
  }
  lspec::SnapshotSource source(raw, net);
  lspec::TmeMonitorSet monitors;
  lspec::install_tme_monitors(monitors, n);
  SimTime t = 0;
  for (auto _ : state) {
    ++t;
    monitors.observe(t, source.capture(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotCaptureAndMonitor)->Arg(4)->Arg(8)->Arg(16);

void BM_HarnessSimulatedSecond(benchmark::State& state) {
  // One "simulated kilotick" of a busy 5-process wrapped system, with and
  // without monitors (range(0) = monitors on).
  const bool monitors = state.range(0) != 0;
  core::HarnessConfig config;
  config.n = 5;
  config.wrapped = true;
  config.install_monitors = monitors;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 12;
  core::SystemHarness h(config);
  h.start();
  for (auto _ : state) {
    h.run_for(1000);
  }
  state.SetLabel(monitors ? "monitors on" : "monitors off");
}
BENCHMARK(BM_HarnessSimulatedSecond)->Arg(0)->Arg(1);

void BM_AlgebraStabilizesTo(benchmark::State& state) {
  const auto states = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  algebra::RandomSystemParams params;
  params.num_states = states;
  const algebra::System a = algebra::random_system(rng, params);
  const algebra::System w = algebra::random_wrapper(rng, a, 8);
  const algebra::System aw = algebra::System::box(a, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::stabilizes_to(aw, a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlgebraStabilizesTo)->Arg(16)->Arg(64)->Arg(256);

void BM_AlgebraBoxCompose(benchmark::State& state) {
  const auto states = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  algebra::RandomSystemParams params;
  params.num_states = states;
  const algebra::System a = algebra::random_system(rng, params);
  const algebra::System b = algebra::random_system(rng, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::System::box(a, b));
  }
}
BENCHMARK(BM_AlgebraBoxCompose)->Arg(64)->Arg(256);

void BM_EngineSmallCell(benchmark::State& state) {
  // Engine overhead on a tiny cell (range(0) = jobs): spec construction,
  // fan-out, and the seed-order fold around four short trials.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  core::HarnessConfig config;
  config.n = 3;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 21;
  core::FaultScenario scenario;
  scenario.warmup = 200;
  scenario.burst = 4;
  scenario.observation = 800;
  scenario.drain = 500;
  const core::ExperimentEngine engine(core::EngineOptions{.jobs = jobs});
  for (auto _ : state) {
    core::SpecGrid grid;
    grid.add("cell", config, scenario, 4);
    benchmark::DoNotOptimize(engine.run(grid));
  }
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_EngineSmallCell)->Arg(1)->Arg(2);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): display results on the console
// AND write the google-benchmark JSON report as the binary's
// BENCH_substrate_micro.json artifact, matching the engine-backed benches.
int main(int argc, char** argv) {
  // The library requires --benchmark_out when a file reporter is passed to
  // RunSpecifiedBenchmarks; default it to the standard artifact path so a
  // bare invocation behaves like the engine-backed benches.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_substrate_micro.json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) args.push_back(out_flag.data());
  args.push_back(nullptr);
  int args_count = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::ConsoleReporter console;
  benchmark::JSONReporter json;
  benchmark::RunSpecifiedBenchmarks(&console, &json);
  benchmark::Shutdown();
  return 0;
}
