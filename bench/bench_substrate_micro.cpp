// E10 — substrate microbenchmarks (google-benchmark).
//
// Costs of the building blocks: scheduler event dispatch, channel
// enqueue/deliver, full protocol round-trips, global snapshot + monitor
// observation, and the finite-system algebra decision procedures. These
// bound how large an experiment the simulator sustains and quantify the
// monitoring overhead that the HarnessConfig::install_monitors switch
// removes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "obs/event_bus.hpp"
#include "obs/provenance.hpp"
#include "lspec/lspec_clause_monitors.hpp"
#include "lspec/snapshot.hpp"
#include "lspec/tme_monitors.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace graybox;

void BM_SchedulerScheduleExecute(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      sched.schedule_after(static_cast<SimTime>(i % 7), [&] { ++sink; });
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerScheduleExecute);

void BM_SchedulerCancel(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    sim::EventId ids[64];
    for (int i = 0; i < 64; ++i)
      ids[i] = sched.schedule_after(1000, [] {});
    for (int i = 0; i < 64; ++i) sched.cancel(ids[i]);
    while (sched.step()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerCancel);

void BM_ChannelEnqueueDeliver(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t delivered = 0;
  net::Channel channel(sched, net::DelayModel::fixed(1), Rng(1),
                       [&](const net::Message&) { ++delivered; });
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) channel.enqueue(msg);
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChannelEnqueueDeliver);

// --- Simulation-core hot path, before and after ------------------------------
//
// The scheduler was rebuilt from a (time, seq) binary heap with
// std::function callbacks and hash-set cancellation into a bucketed time
// wheel with inline-storage callbacks and generation-stamped slots; the
// channel queue went from std::deque to a slot-reusing ring. These pairs
// keep the "before" implementation alive inside the bench so the speedup
// stays measurable on any machine: each side reports events_per_sec, and
// the before/after ratio is a straight division of two JSON fields.

// The pre-wheel scheduler core, reduced to its hot path: heap entries,
// heap-allocated callbacks, tombstone skipping via a live-id map.
class ReferenceSchedulerCore {
 public:
  using Id = std::uint64_t;

  Id schedule_after(SimTime delay, std::function<void()> fn) {
    const Id id = next_id_++;
    queue_.push(Entry{now_ + delay, id});
    fns_.emplace(id, std::move(fn));
    return id;
  }

  bool cancel(Id id) { return fns_.erase(id) > 0; }

  bool step() {
    while (!queue_.empty() && fns_.find(queue_.top().id) == fns_.end())
      queue_.pop();
    if (queue_.empty()) return false;
    const Entry e = queue_.top();
    queue_.pop();
    auto node = fns_.extract(e.id);
    now_ = e.time;
    auto fn = std::move(node.mapped());
    fn();
    return true;
  }

  SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime time;
    Id id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<Id, std::function<void()>> fns_;
  SimTime now_ = 0;
  Id next_id_ = 1;
};

// Shared workload for the scheduler-core pair: near events with a far-future
// re-armed timer and a cancel stream — the engine's access pattern.
template <class S, class Id>
void scheduler_core_workload(S& sched, std::uint64_t& sink) {
  Id timer = sched.schedule_after(5'000, [] {});
  for (int i = 0; i < 64; ++i) {
    sched.schedule_after(static_cast<SimTime>(i % 7), [&sink] { ++sink; });
    if (i % 8 == 7) {
      sched.cancel(timer);
      timer = sched.schedule_after(5'000, [] {});
    }
  }
  sched.cancel(timer);
  while (sched.step()) {
  }
}

void set_core_counters(benchmark::State& state, std::uint64_t per_iter) {
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(per_iter));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * per_iter),
      benchmark::Counter::kIsRate);
}

void BM_SchedulerCore(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t sink = 0;
  for (auto _ : state)
    scheduler_core_workload<sim::Scheduler, sim::EventId>(sched, sink);
  benchmark::DoNotOptimize(sink);
  set_core_counters(state, 64);
  state.SetLabel("time wheel + inline callbacks (after)");
}
BENCHMARK(BM_SchedulerCore);

void BM_SchedulerCoreReference(benchmark::State& state) {
  ReferenceSchedulerCore sched;
  std::uint64_t sink = 0;
  for (auto _ : state)
    scheduler_core_workload<ReferenceSchedulerCore, ReferenceSchedulerCore::Id>(
        sched, sink);
  benchmark::DoNotOptimize(sink);
  set_core_counters(state, 64);
  state.SetLabel("binary heap + std::function (before)");
}
BENCHMARK(BM_SchedulerCoreReference);

void BM_ChannelEnqueue(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t delivered = 0;
  net::Channel channel(sched, net::DelayModel::fixed(1), Rng(1),
                       [&](const net::Message&) { ++delivered; });
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.vc = clk::ClockStamp::dense(clk::VectorClock(0, 12));  // realistic payload
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      net::Message m = msg;
      channel.enqueue(std::move(m));
    }
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(delivered);
  set_core_counters(state, 64);
  state.SetLabel("message ring + move enqueue (after)");
}
BENCHMARK(BM_ChannelEnqueue);

void BM_ChannelEnqueueReference(benchmark::State& state) {
  // The pre-ring queue on the pre-wheel scheduler: deque chunk churn plus
  // one heap-allocated tick callback per message.
  ReferenceSchedulerCore sched;
  std::uint64_t delivered = 0;
  std::deque<net::Message> queue;
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.vc = clk::ClockStamp::dense(clk::VectorClock(0, 12));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push_back(msg);
      sched.schedule_after(1, [&] {
        if (queue.empty()) return;
        net::Message m = std::move(queue.front());
        queue.pop_front();
        benchmark::DoNotOptimize(m);
        ++delivered;
      });
    }
    while (sched.step()) {
    }
  }
  benchmark::DoNotOptimize(delivered);
  set_core_counters(state, 64);
  state.SetLabel("std::deque + copy enqueue (before)");
}
BENCHMARK(BM_ChannelEnqueueReference);

void BM_RicartAgrawalaFullCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Scheduler sched;
  net::Network net(sched, n, net::DelayModel::fixed(1), Rng(1));
  std::vector<std::unique_ptr<me::RicartAgrawala>> procs;
  for (ProcessId pid = 0; pid < n; ++pid) {
    procs.push_back(std::make_unique<me::RicartAgrawala>(pid, net));
    auto* p = procs.back().get();
    net.set_handler(pid, [p](const net::Message& m) { p->on_message(m); });
  }
  for (auto _ : state) {
    procs[0]->request_cs();
    while (sched.step()) {
    }
    procs[0]->release_cs();
    while (sched.step()) {
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("request->enter->release, n=" + std::to_string(n));
}
BENCHMARK(BM_RicartAgrawalaFullCycle)->Arg(3)->Arg(6)->Arg(12);

// --- E10 centerpiece: the observation hot path, before and after ------------
//
// Three variants of "snapshot + full monitor battery per simulator event",
// identical systems and identical monitor sets:
//
//   FullReference   - the pre-delta pipeline: allocate a fresh snapshot,
//                     fill all N rows, copy it into the monitor set
//                     (SnapshotSource::capture_full + MonitorSet::observe).
//   DeltaDirtyRotation - the shipping pipeline under its design load: one
//                     process event per capture (the simulator's
//                     one-process-per-event guarantee), so exactly one row
//                     is rewritten and per-clause monitors check one row.
//   DeltaSteadyState - the shipping pipeline when nothing changed at all
//                     (kDirtyNone): the floor of the observation cost.
//
// Each reports events_per_sec and capture_ns_per_event counters, so the
// before/after ratio is a straight division of two JSON fields.

struct ObservationRig {
  explicit ObservationRig(std::size_t n)
      : net(sched, n, net::DelayModel::fixed(1), Rng(1)) {
    for (ProcessId pid = 0; pid < n; ++pid) {
      procs.push_back(std::make_unique<me::RicartAgrawala>(pid, net));
      raw.push_back(procs.back().get());
      auto* p = procs.back().get();
      net.set_handler(pid, [p](const net::Message& m) { p->on_message(m); });
    }
    source.emplace(raw, net);
    lspec::install_tme_monitors(monitors, n);
    lspec::install_lspec_clause_monitors(monitors, n);
  }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<me::RicartAgrawala>> procs;
  std::vector<me::TmeProcess*> raw;
  std::optional<lspec::SnapshotSource> source;
  lspec::TmeMonitorSet monitors;
};

void set_observation_counters(benchmark::State& state) {
  state.SetItemsProcessed(state.iterations());
  const auto events = static_cast<double>(state.iterations());
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["capture_ns_per_event"] = benchmark::Counter(
      events * 1e-9,
      benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                benchmark::Counter::kInvert));
}

void BM_ObserveFullReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ObservationRig rig(n);
  SimTime t = 0;
  for (auto _ : state) {
    ++t;
    rig.procs[t % n]->poll();  // one process event, as in a live run
    rig.monitors.observe(t, rig.source->capture_full(t));
  }
  set_observation_counters(state);
}
BENCHMARK(BM_ObserveFullReference)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_ObserveDeltaDirtyRotation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ObservationRig rig(n);
  SimTime t = 0;
  for (auto _ : state) {
    ++t;
    rig.procs[t % n]->poll();  // dirties exactly one observation row
    const lspec::GlobalSnapshot& cur = rig.source->capture(t);
    rig.monitors.observe_ref(t, cur, rig.source->last_dirty());
  }
  set_observation_counters(state);
}
BENCHMARK(BM_ObserveDeltaDirtyRotation)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24);

void BM_ObserveDeltaSteadyState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ObservationRig rig(n);
  SimTime t = 0;
  for (auto _ : state) {
    ++t;
    const lspec::GlobalSnapshot& cur = rig.source->capture(t);
    rig.monitors.observe_ref(t, cur, rig.source->last_dirty());
  }
  set_observation_counters(state);
}
BENCHMARK(BM_ObserveDeltaSteadyState)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24);

// --- observability layer costs ----------------------------------------------
//
// The acceptance bar for the obs subsystem: producers stay permanently
// attached to the EventBus, so with recording disabled (capacity 0) every
// would-be event costs exactly one predicted branch — the events_per_sec of
// the Observe* benches above and of the disabled side here must stay within
// noise (<2%) of the pre-obs baseline. The enabled side prices the ring
// write plus the aggregate update.

void BM_EventBusRecord(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  sim::Scheduler sched;
  obs::EventBus bus(sched, capacity);
  obs::Event e;
  e.kind = obs::EventKind::kSend;
  e.pid = 0;
  e.peer = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      e.payload = static_cast<std::uint64_t>(i);
      bus.record(e);
      // Producers call record() from separate frames; don't let the
      // optimizer hoist the enabled check out of the loop.
      benchmark::ClobberMemory();
    }
  }
  benchmark::DoNotOptimize(bus.total_recorded());
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(capacity == 0 ? "disabled"
                               : "ring=" + std::to_string(capacity));
}
BENCHMARK(BM_EventBusRecord)->Arg(0)->Arg(4096);

void BM_ProvenanceRecord(benchmark::State& state) {
  // The per-event provenance hook in both gears. Disabled prices the
  // null-tracker predicted branch every producer pays (the Network send
  // path); enabled prices the full tainted-send round trip: copy the
  // sender's taint onto the message, account it, merge into the receiver.
  // No allocation on either side — mint() is the only allocating call and
  // happens once per fault, outside this loop.
  const bool enabled = state.range(0) != 0;
  obs::ProvenanceTracker tracker(8);
  obs::ProvenanceTracker* prov = enabled ? &tracker : nullptr;
  if (enabled) {
    tracker.taint_process(0, tracker.mint(/*code=*/2, /*origin=*/0,
                                          /*now=*/1));
  }
  obs::TaintSet msg_taint;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      if (prov != nullptr) {
        msg_taint = prov->process_taint(0);
        if (!msg_taint.empty()) prov->note_message_taint(msg_taint);
        prov->merge_process(1, msg_taint);
      }
      // Hooks fire from separate producer frames; keep the branch live.
      benchmark::ClobberMemory();
    }
  }
  benchmark::DoNotOptimize(msg_taint.count);
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_ProvenanceRecord)->Arg(0)->Arg(1);

void BM_HarnessObservability(benchmark::State& state) {
  // One simulated kilotick of the busy wrapped 5-process system under the
  // three observability levels: off (the default every experiment runs
  // with), typed event trace retained, trace + metrics instrumentation.
  const auto mode = state.range(0);
  core::HarnessConfig config;
  config.n = 5;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 12;
  if (mode >= 1) config.trace_capacity = 1 << 16;
  if (mode >= 2) config.collect_metrics = true;
  core::SystemHarness h(config);
  h.start();
  for (auto _ : state) {
    h.run_for(1000);
  }
  state.SetLabel(mode == 0 ? "obs off"
                           : mode == 1 ? "event trace" : "trace+metrics");
}
BENCHMARK(BM_HarnessObservability)->Arg(0)->Arg(1)->Arg(2);

void BM_HarnessSimulatedSecond(benchmark::State& state) {
  // One "simulated kilotick" of a busy 5-process wrapped system, with and
  // without monitors (range(0) = monitors on).
  const bool monitors = state.range(0) != 0;
  core::HarnessConfig config;
  config.n = 5;
  config.wrapped = true;
  config.install_monitors = monitors;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 12;
  core::SystemHarness h(config);
  h.start();
  for (auto _ : state) {
    h.run_for(1000);
  }
  state.SetLabel(monitors ? "monitors on" : "monitors off");
}
BENCHMARK(BM_HarnessSimulatedSecond)->Arg(0)->Arg(1);

void BM_AlgebraStabilizesTo(benchmark::State& state) {
  const auto states = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  algebra::RandomSystemParams params;
  params.num_states = states;
  const algebra::System a = algebra::random_system(rng, params);
  const algebra::System w = algebra::random_wrapper(rng, a, 8);
  const algebra::System aw = algebra::System::box(a, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::stabilizes_to(aw, a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlgebraStabilizesTo)->Arg(16)->Arg(64)->Arg(256);

void BM_AlgebraBoxCompose(benchmark::State& state) {
  const auto states = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  algebra::RandomSystemParams params;
  params.num_states = states;
  const algebra::System a = algebra::random_system(rng, params);
  const algebra::System b = algebra::random_system(rng, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::System::box(a, b));
  }
}
BENCHMARK(BM_AlgebraBoxCompose)->Arg(64)->Arg(256);

void BM_EngineSmallCell(benchmark::State& state) {
  // Engine overhead on a tiny cell (range(0) = jobs): spec construction,
  // fan-out, and the seed-order fold around four short trials.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  core::HarnessConfig config;
  config.n = 3;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 21;
  core::FaultScenario scenario;
  scenario.warmup = 200;
  scenario.burst = 4;
  scenario.observation = 800;
  scenario.drain = 500;
  const core::ExperimentEngine engine(core::EngineOptions{.jobs = jobs});
  for (auto _ : state) {
    core::SpecGrid grid;
    grid.add("cell", config, scenario, 4);
    benchmark::DoNotOptimize(engine.run(grid));
  }
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_EngineSmallCell)->Arg(1)->Arg(2);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): display results on the console
// AND write the google-benchmark JSON report as the binary's
// BENCH_substrate_micro.json artifact, matching the engine-backed benches.
//
// For uniformity with those benches the engine-style flags are accepted and
// translated to google-benchmark ones:
//
//   --trials N   -> --benchmark_min_time=<0.05*N>  (N=1 is the CI smoke:
//                   one short measurement pass per benchmark)
//   --json PATH  -> --benchmark_out=PATH; "--json -" suppresses the file
//                   artifact entirely (console output only)
//   --jobs N     -> accepted and ignored (microbenchmarks are inherently
//                   sequential); CI reruns at --jobs 1 and --jobs 8 and
//                   diffs the stripped artifacts to pin that the flag
//                   cannot change the output
int main(int argc, char** argv) {
  std::vector<std::string> translated;
  bool has_out = false;
  bool suppress_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      // Accepts "--flag value" and "--flag=value".
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.rfind(flag + "=", 0) == 0) return arg.substr(flag.size() + 1);
      return {};
    };
    if (arg == "--trials" || arg.rfind("--trials=", 0) == 0) {
      const double trials = std::max(1.0, std::atof(value_of("--trials").c_str()));
      translated.push_back("--benchmark_min_time=" +
                           std::to_string(0.05 * trials));
      continue;
    }
    if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      (void)value_of("--jobs");
      continue;
    }
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path = value_of("--json");
      if (path == "-") {
        suppress_out = true;
      } else if (!path.empty()) {
        translated.push_back("--benchmark_out=" + path);
        has_out = true;
      }
      continue;
    }
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
    translated.push_back(arg);
  }
  // The library requires --benchmark_out when a file reporter is passed to
  // RunSpecifiedBenchmarks; default it to the standard artifact path so a
  // bare invocation behaves like the engine-backed benches.
  if (!has_out && !suppress_out) {
    translated.push_back("--benchmark_out=BENCH_substrate_micro.json");
  }

  std::vector<std::string> arg_storage;
  arg_storage.push_back(argv[0]);
  for (auto& a : translated) arg_storage.push_back(a);
  std::vector<char*> args;
  for (auto& a : arg_storage) args.push_back(a.data());
  args.push_back(nullptr);
  int args_count = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::ConsoleReporter console;
  if (suppress_out) {
    benchmark::RunSpecifiedBenchmarks(&console);
  } else {
    benchmark::JSONReporter json;
    benchmark::RunSpecifiedBenchmarks(&console, &json);
  }
  benchmark::Shutdown();
  return 0;
}
