// E14 — substrate scaling study: N in {16, 64, 128, 256}.
//
// The N=256 tentpole claims the monitoring substrate's per-event cost grows
// with the number of *dirty rows*, not with N² — sparse clock stamps on the
// wire, row-sparse snapshot matrices, and incremental clause monitors. This
// bench measures, per (N, algorithm, bare/wrapped) cell under a
// contention-heavy client (think_mean = 8N keeps the request rate per tick
// roughly constant as N grows):
//
//   * events/sec — end-to-end simulator throughput (wall-clock, volatile);
//   * observe_ns/event — the monitoring hot path alone (volatile);
//   * stabilization latency after a 12-fault burst vs N (deterministic).
//
// It also runs the PR-gating before/after pair at N=256 wrapped
// Ricart-Agrawala: the same cell with the reference paths forced back on
// (reference_dense_clocks + reference_full_sweep_monitors — the pre-sparse
// substrate, kept precisely for this comparison) must be >= 5x slower on
// events/sec. Both halves live in this binary so the comparison is one
// build, one machine, one invocation — PR 6's bench_substrate_micro style.
//
// N > 64 cells use random fault bursts only: partition streams are capped
// at 64 processes (SystemHarness::partition's uint64 masks) and E14 does
// not request them.
//
// The JSON artifact is byte-identical across --jobs values modulo the
// volatile (wall/ns) lines — pinned by the CI smoke run (--nmax 64
// --trials 1 --pair 0 under --jobs 1 vs --jobs 8).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

struct Impl {
  const char* column;
  const char* algo;
};
constexpr Impl kImpls[] = {{"ra", "ricart-agrawala"},
                           {"lamport", "lamport"},
                           {"cr", "carvalho-roucairol"}};

HarnessConfig cell_config(std::size_t n, const char* algo, bool wrapped,
                          std::uint64_t seed) {
  HarnessConfig config;
  config.n = n;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  // Contention-heavy: each process thinks ~8N ticks, so ~1/8 of the system
  // is requesting at any time at every N — the per-tick message load grows
  // linearly with N and the observation substrate is what's being priced.
  config.client.think_mean = 8 * static_cast<SimTime>(n);
  config.client.eat_mean = 8;
  config.seed = seed;
  return config;
}

std::string cell_name(const char* mode, const char* column, std::size_t n) {
  return std::string(mode) + "/" + column + "/n=" + std::to_string(n);
}

double cell_events_per_sec(const CellResult& cell) {
  const double events = cell.result.events.sum();
  return cell.wall_seconds > 0 ? events / cell.wall_seconds : 0.0;
}

double cell_observe_ns_per_event(const CellResult& cell) {
  const double events = cell.result.events.sum();
  return events > 0 ? cell.result.observe_ns_total / events : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      with_engine_flags(
          {{"nmax", "largest system size to run (default 256)"},
           {"grid", "run the full N-grid (default 1; 0 = pair only)"},
           {"pair", "run the N=256 sparse-vs-reference pair (default 1)"}}));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 3));
  const std::size_t nmax = static_cast<std::size_t>(flags.get_int("nmax", 256));
  const bool run_grid = flags.get_bool("grid", true);
  const bool run_pair = flags.get_bool("pair", true) && nmax >= 256;
  const ExperimentEngine engine(engine_options_from_flags(flags));

  // One burst mid-run; the observation window is sized so every wrapped
  // cell has room to stabilize even at N=256.
  FaultScenario scenario;
  scenario.warmup = 400;
  scenario.burst = 12;
  scenario.observation = 3000;
  scenario.drain = 2000;

  const std::size_t all_sizes[] = {16, 64, 128, 256};
  std::vector<std::size_t> sizes;
  for (const std::size_t n : all_sizes) {
    if (run_grid && n <= nmax) sizes.push_back(n);
  }

  SpecGrid grid;
  for (const std::size_t n : sizes) {
    for (const Impl& impl : kImpls) {
      for (const bool wrapped : {false, true}) {
        const char* mode = wrapped ? "wrapped" : "bare";
        grid.add(cell_name(mode, impl.column, n),
                 cell_config(n, impl.algo, wrapped, 1400 + n), scenario,
                 trials);
      }
    }
  }

  GridResult result = engine.run(grid);

  // Before/after pair: identical config and scenario, reference substrate
  // on vs off, one seed — the denominator of the ">= 5x" claim. The
  // observation window is long enough to amortize the N=256 harness setup
  // (65k channels) that both halves pay equally; the pair runs in its own
  // fully serial engine pass so neither half's wall clock is polluted by
  // co-running cells, whatever --jobs the grid used.
  if (run_pair) {
    FaultScenario pair_scenario;
    pair_scenario.warmup = 200;
    pair_scenario.burst = 8;
    pair_scenario.observation = 2400;
    pair_scenario.drain = 400;
    SpecGrid pair_grid;
    HarnessConfig sparse = cell_config(256, "ricart-agrawala", true, 99);
    pair_grid.add("pair/ra/n=256/sparse", sparse, pair_scenario, 1);
    HarnessConfig reference = sparse;
    reference.reference_dense_clocks = true;
    reference.reference_full_sweep_monitors = true;
    pair_grid.add("pair/ra/n=256/reference", reference, pair_scenario, 1);
    EngineOptions pair_options = engine_options_from_flags(flags);
    pair_options.jobs = 1;
    const GridResult pair_result = ExperimentEngine(pair_options).run(pair_grid);
    for (const CellResult& cell : pair_result.cells) {
      result.cells.push_back(cell);
    }
    result.wall_seconds += pair_result.wall_seconds;
  }

  std::cout << "E14: substrate scaling, N in {";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::cout << (i ? ", " : "") << sizes[i];
  }
  std::cout << "} (" << trials << " trials per cell, " << result.jobs
            << " jobs; think_mean = 8N keeps per-tick load ~linear in N)\n\n";

  Table table({"n", "algorithm", "mode", "events mean", "events/sec",
               "observe ns/ev", "stabilized", "latency mean", "safety viol"});
  for (const std::size_t n : sizes) {
    for (const Impl& impl : kImpls) {
      for (const bool wrapped : {false, true}) {
        const char* mode = wrapped ? "wrapped" : "bare";
        const CellResult& cell = result.cell(cell_name(mode, impl.column, n));
        const RepeatedResult& r = cell.result;
        char eps[32], ons[32], lat[32];
        std::snprintf(eps, sizeof eps, "%.0f", cell_events_per_sec(cell));
        std::snprintf(ons, sizeof ons, "%.0f", cell_observe_ns_per_event(cell));
        std::snprintf(lat, sizeof lat, "%.0f", r.latency.mean());
        table.row(n, impl.algo, mode,
                  static_cast<std::uint64_t>(r.events.mean()), eps, ons,
                  std::to_string(r.stabilized) + "/" +
                      std::to_string(r.trials),
                  lat, static_cast<std::uint64_t>(r.safety_violations.sum()));
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: events/sec decays far slower than 1/N² and "
         "observe ns/event stays near-flat in N (dirty-row work, not N² "
         "sweeps); wrapped cells stabilize at every N while bare cells keep "
         "their post-burst violations; stabilization latency grows mildly "
         "with N as wrapper round-trips lengthen.\n";

  if (run_pair) {
    const CellResult& sparse = result.cell("pair/ra/n=256/sparse");
    const CellResult& reference = result.cell("pair/ra/n=256/reference");
    const double sparse_eps = cell_events_per_sec(sparse);
    const double reference_eps = cell_events_per_sec(reference);
    const double speedup =
        reference_eps > 0 ? sparse_eps / reference_eps : 0.0;
    char line[256];
    std::snprintf(line, sizeof line,
                  "\nN=256 wrapped RA before/after (same seed, same burst): "
                  "sparse %.0f events/sec vs reference %.0f events/sec "
                  "=> %.1fx (gate: >= 5x)\n",
                  sparse_eps, reference_eps, speedup);
    std::cout << line;
    // The two substrates must also agree on every deterministic outcome —
    // the equivalence the golden suite pins, spot-checked here end to end.
    if (sparse.result.events.sum() != reference.result.events.sum() ||
        sparse.result.violations.sum() != reference.result.violations.sum()) {
      std::cout << "ERROR: sparse and reference substrates diverged\n";
      return 1;
    }
    if (speedup < 5.0) {
      std::cout << "ERROR: speedup gate failed (< 5x)\n";
      return 1;
    }
  }

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
