// E5 — reusability of the wrapper (paper Section 5, Corollary 11).
//
// "It follows that the wrapper W renders both [Ricart-Agrawala and Lamport]
//  to be stabilizing tolerant to Lspec."
//
// One wrapper configuration — byte-identical code, identical parameters —
// is attached to every implementation in the protocol registry and
// subjected to every fault kind of Section 3.1 across many seeds. Expected:
// the everywhere-implementations (Ricart-Agrawala, Lamport,
// Carvalho-Roucairol, and a mixed system) stabilize in every run; the
// fragile (init-only) implementation fails under process corruption, which
// is the premise violation Theorem 8 warns about. Carvalho-Roucairol is
// the extended-reusability column: the wrapper was written before that
// algorithm existed in this repo and is attached here unchanged.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig config_for(const char* algo, std::uint64_t seed) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 20;  // the ONE wrapper, everywhere
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

std::string render(const RepeatedResult& r) {
  std::string out = std::to_string(r.stabilized) + "/" +
                    std::to_string(r.trials) + " stabilized";
  if (r.stabilized > 0 && r.latency.count() > 0) {
    out += ", lat " + mean_pm_stddev(r.latency, 0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 20));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  const net::FaultKind kinds[] = {
      net::FaultKind::kMessageDrop,     net::FaultKind::kMessageDuplicate,
      net::FaultKind::kMessageCorrupt,  net::FaultKind::kMessageReorder,
      net::FaultKind::kSpuriousMessage, net::FaultKind::kProcessCorrupt,
      net::FaultKind::kChannelClear};
  const struct {
    const char* column;
    const char* algo;
    bool mixed;
  } impls[] = {{"ra", "ricart-agrawala", false},
               {"lamport", "lamport", false},
               {"cr", "carvalho-roucairol", false},
               {"mixed", "ricart-agrawala", true},
               {"fragile", "fragile-ra", false}};

  SpecGrid grid;
  for (const auto kind : kinds) {
    FaultScenario scenario;
    scenario.warmup = 500;
    scenario.burst = 8;
    scenario.mix = net::FaultMix::only(kind);
    scenario.observation = 7000;
    scenario.drain = 5000;

    for (const auto& impl : impls) {
      HarnessConfig config = config_for(impl.algo, 500);
      // Lspec is a LOCAL everywhere spec: a system MIXING implementations
      // is still covered by Theorem 4, and the same wrapper must stabilize
      // it.
      if (impl.mixed) {
        config.per_process_algorithms = {"ricart-agrawala", "lamport",
                                         "ricart-agrawala", "lamport"};
      }
      grid.add(std::string(net::to_string(kind)) + "/" + impl.column, config,
               scenario, trials);
    }
  }
  const GridResult result = engine.run(grid);

  std::cout << "E5: one graybox wrapper, every registered implementation, "
               "full fault model (" << trials << " seeds per cell, "
            << result.jobs << " jobs)\n\n";

  Table table({"fault kind", "ricart-agrawala", "lamport",
               "carvalho-roucairol", "mixed (2 RA + 2 Lamport)",
               "fragile-ra (negative control)"});
  for (const auto kind : kinds) {
    auto cell = [&](const char* column) {
      return render(
          result.cell(std::string(net::to_string(kind)) + "/" + column)
              .result);
    };
    table.row(net::to_string(kind), cell("ra"), cell("lamport"), cell("cr"),
              cell("mixed"), cell("fragile"));
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape (Corollary 11 + Theorem 4): ricart-agrawala, "
         "lamport, carvalho-roucairol, and even the MIXED system stabilize "
         "in every cell with "
         "the SAME wrapper — Lspec being local-everywhere means process "
         "implementations need not match. fragile-ra — which implements "
         "Lspec only from initial states — loses runs under process "
         "corruption, demonstrating that the everywhere premise is what "
         "the wrapper's guarantee rides on. (Bare mixed systems, by "
         "contrast, can starve even fault-free: RA ignores Lamport's "
         "RELEASE broadcasts — see tests/test_heterogeneous.cpp.)\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
