// E2 — randomized verification of the Section 2 theorems.
//
// For each result we draw thousands of random finite systems, discard the
// draws that fail the theorem's premises, and check the conclusion on the
// rest. Expected: zero conclusion failures for Lemma 0, Theorem 1, Lemma 2,
// and Theorem 4 — and a NONZERO number of failures for the negative control
// (init-only implementations), which is exactly the gap Figure 1 exhibits.
//
// Parallelism: trials are sharded into a FIXED number of chunks, each with
// its own Rng seeded seed+chunk; chunk tallies merge in chunk order. The
// totals are therefore identical for every --jobs value (the chunking — not
// the thread count — defines the random stream).
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/synthesis.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/report.hpp"
#include "common/table.hpp"

namespace {

using namespace graybox;
using namespace graybox::algebra;

constexpr std::size_t kChunks = 64;

struct Tally {
  long trials = 0;
  long premise_held = 0;
  long conclusion_failed = 0;

  void merge(const Tally& other) {
    trials += other.trials;
    premise_held += other.premise_held;
    conclusion_failed += other.conclusion_failed;
  }
};

/// Shard `trials` over kChunks independent RNG streams, run the chunks on
/// `jobs` workers, and merge in chunk order.
Tally run_chunked(std::uint64_t seed, long trials, std::size_t jobs,
                  const std::function<Tally(Rng&, long)>& body) {
  std::vector<Tally> chunks(kChunks);
  parallel_tasks(kChunks, jobs, [&](std::size_t chunk) {
    const long base = trials / static_cast<long>(kChunks);
    const long extra =
        static_cast<long>(chunk) < trials % static_cast<long>(kChunks) ? 1 : 0;
    Rng rng(seed + chunk);
    chunks[chunk] = body(rng, base + extra);
  });
  Tally total;
  for (const Tally& chunk : chunks) total.merge(chunk);
  return total;
}

Tally check_lemma0(Rng& rng, long trials) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(10);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, rng.index(8));
    const System c = random_everywhere_implementation(rng, a);
    const System wi = random_everywhere_implementation(rng, w);
    ++tally.premise_held;  // premises hold by construction
    if (!implements_everywhere(System::box(c, wi), System::box(a, w)))
      ++tally.conclusion_failed;
  }
  return tally;
}

Tally check_theorem1(Rng& rng, long trials, bool everywhere_premise) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(8));
    const System aw = System::box(a, w);
    if (!aw.total() || !stabilizes_to(aw, a)) continue;
    const System c = everywhere_premise
                         ? random_everywhere_implementation(rng, a)
                         : random_init_implementation(rng, a);
    if (!everywhere_premise && !implements_init(c, a)) continue;
    const System wi = random_everywhere_implementation(rng, w);
    ++tally.premise_held;
    if (!stabilizes_to(System::box(c, wi), a)) ++tally.conclusion_failed;
  }
  return tally;
}

Tally check_theorem4(Rng& rng, long trials) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 2 + rng.index(3);
    const System a0 = random_system(rng, params);
    params.num_states = 2 + rng.index(3);
    const System a1 = random_system(rng, params);
    const std::size_t lo = a0.num_states(), hi = a1.num_states();
    const System a =
        System::box(lift_local(a0, 0, lo, hi), lift_local(a1, 1, lo, hi));
    const System w0 = random_wrapper(rng, a0, rng.index(4));
    const System w1 = random_wrapper(rng, a1, rng.index(4));
    const System w =
        System::box(lift_local(w0, 0, lo, hi), lift_local(w1, 1, lo, hi));
    const System aw = System::box(a, w);
    if (!aw.total() || !stabilizes_to(aw, a)) continue;
    ++tally.premise_held;
    const System c = System::box(
        lift_local(random_everywhere_implementation(rng, a0), 0, lo, hi),
        lift_local(random_everywhere_implementation(rng, a1), 1, lo, hi));
    const System wi = System::box(
        lift_local(random_everywhere_implementation(rng, w0), 0, lo, hi),
        lift_local(random_everywhere_implementation(rng, w1), 1, lo, hi));
    if (!stabilizes_to(System::box(c, wi), a)) ++tally.conclusion_failed;
  }
  return tally;
}

/// Synthesis sweep tallies (Section 6) — merged in chunk order like Tally.
struct SynthTally {
  Tally base;
  long fairness_needed = 0;
  std::size_t wrapper_edges = 0;

  void merge(const SynthTally& other) {
    base.merge(other.base);
    fairness_needed += other.fairness_needed;
    wrapper_edges += other.wrapper_edges;
  }
};

SynthTally check_synthesis(Rng& rng, long trials) {
  SynthTally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.base.trials;
    RandomSystemParams params;
    params.num_states = 4 + rng.index(8);
    params.initial_density = 0.2;
    const System a = random_system(rng, params);
    const System w = synthesize_reset_wrapper(a);
    tally.wrapper_edges += w.num_transitions();
    const System c = random_everywhere_implementation(rng, a);
    ++tally.base.premise_held;
    if (!fair_stabilizes_to(a, w, a) || !fair_stabilizes_to(c, w, a))
      ++tally.base.conclusion_failed;
    if (!stabilizes_to(System::box(a, w), a)) ++tally.fairness_needed;
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              with_engine_flags({{"seed", "RNG seed (default 42)"}}));
  const long trials = flags.get_int("trials", 5000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::size_t jobs =
      resolve_jobs(static_cast<std::size_t>(flags.get_int("jobs", 0)));

  std::cout << "E2: randomized property check of the Section 2 theorems ("
            << trials << " trials each, " << jobs << " jobs, " << kChunks
            << " RNG chunks)\n\n";

  struct Row {
    const char* name;
    Tally tally;
    bool failures_expected;
  };
  Row rows[] = {
      {"Lemma 0 (box monotonicity)",
       run_chunked(seed, trials, jobs, check_lemma0), false},
      {"Theorem 1 (graybox stabilization)",
       run_chunked(seed + 1000, trials, jobs,
                   [](Rng& rng, long t) { return check_theorem1(rng, t, true); }),
       false},
      {"Theorem 4 (local everywhere composition)",
       run_chunked(seed + 2000, trials, jobs, check_theorem4), false},
      {"negative: Theorem 1 with [C=>A]init only",
       run_chunked(seed + 3000, trials * 2, jobs,
                   [](Rng& rng, long t) { return check_theorem1(rng, t, false); }),
       true},
  };

  Table table({"result", "trials", "premise held", "conclusion failed",
               "verdict"});
  for (const Row& row : rows) {
    const Tally& t = row.tally;
    const bool ok = row.failures_expected ? t.conclusion_failed > 0
                                          : t.conclusion_failed == 0;
    table.row(row.name, t.trials, t.premise_held, t.conclusion_failed,
              ok ? (row.failures_expected
                        ? "counterexamples exist (as paper says)"
                        : "holds")
                 : "UNEXPECTED");
  }
  table.print(std::cout);

  // --- Section 6: automatic synthesis of graybox stabilization -----------
  // For every random spec A, synthesize the reset wrapper from A alone and
  // check it fairly stabilizes A and every everywhere implementation.
  // Also count how often fairness is doing real work: the demonic
  // semantics cannot repair A (its stray states cycle) while the fair one
  // can — this is the formal role of W's timeout.
  std::vector<SynthTally> synth_chunks(kChunks);
  parallel_tasks(kChunks, jobs, [&](std::size_t chunk) {
    const long base = trials / static_cast<long>(kChunks);
    const long extra =
        static_cast<long>(chunk) < trials % static_cast<long>(kChunks) ? 1 : 0;
    Rng rng(seed + 4000 + chunk);
    synth_chunks[chunk] = check_synthesis(rng, base + extra);
  });
  SynthTally synth;
  for (const SynthTally& chunk : synth_chunks) synth.merge(chunk);

  std::cout << "\nSection 6 synthesis (reset wrapper from A alone, fair "
               "wrapper execution):\n\n";
  Table synth_table({"metric", "value"});
  synth_table.row("specs synthesized for", synth.base.trials);
  synth_table.row("fair stabilization failures (A and impls)",
                  synth.base.conclusion_failed);
  synth_table.row("specs where fairness was necessary (demonic box fails)",
                  synth.fairness_needed);
  synth_table.row("mean wrapper recovery edges",
                  synth.wrapper_edges /
                      static_cast<std::size_t>(synth.base.trials));
  synth_table.print(std::cout);

  std::cout << "\nExpected shape: the three positive rows never fail; the\n"
               "negative row fails on some draws, showing the everywhere\n"
               "premise is necessary (Figure 1's lesson); synthesis never\n"
               "fails, and on a sizable fraction of specs only the FAIR\n"
               "semantics stabilizes - the algebraic reason the deployable\n"
               "wrapper W' carries a timer.\n";

  // Artifact: one cell per theorem row plus the synthesis block.
  const std::string json_path =
      flags.get("json", report::default_bench_json_path(argv[0]));
  if (json_path != "-") {
    report::Json doc = report::Json::object();
    doc["bench"] = report::bench_name_from_program(argv[0]);
    doc["schema"] = 1;
    doc["jobs"] = static_cast<std::uint64_t>(jobs);
    doc["seed"] = seed;
    doc["chunks"] = static_cast<std::uint64_t>(kChunks);
    doc["cells"] = report::Json::array();
    for (const Row& row : rows) {
      report::Json cell = report::Json::object();
      cell["name"] = row.name;
      cell["trials"] = static_cast<std::int64_t>(row.tally.trials);
      cell["premise_held"] =
          static_cast<std::int64_t>(row.tally.premise_held);
      cell["conclusion_failed"] =
          static_cast<std::int64_t>(row.tally.conclusion_failed);
      cell["failures_expected"] = row.failures_expected;
      doc["cells"].push_back(std::move(cell));
    }
    report::Json s = report::Json::object();
    s["specs"] = static_cast<std::int64_t>(synth.base.trials);
    s["fair_stabilization_failures"] =
        static_cast<std::int64_t>(synth.base.conclusion_failed);
    s["fairness_needed"] = static_cast<std::int64_t>(synth.fairness_needed);
    s["total_wrapper_edges"] =
        static_cast<std::uint64_t>(synth.wrapper_edges);
    doc["synthesis"] = std::move(s);
    report::write_json_file(json_path, doc);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
