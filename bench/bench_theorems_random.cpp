// E2 — randomized verification of the Section 2 theorems.
//
// For each result we draw thousands of random finite systems, discard the
// draws that fail the theorem's premises, and check the conclusion on the
// rest. Expected: zero conclusion failures for Lemma 0, Theorem 1, Lemma 2,
// and Theorem 4 — and a NONZERO number of failures for the negative control
// (init-only implementations), which is exactly the gap Figure 1 exhibits.
#include <iostream>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/synthesis.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

namespace {

using namespace graybox;
using namespace graybox::algebra;

struct Tally {
  long trials = 0;
  long premise_held = 0;
  long conclusion_failed = 0;
};

Tally check_lemma0(Rng& rng, long trials) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(10);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, rng.index(8));
    const System c = random_everywhere_implementation(rng, a);
    const System wi = random_everywhere_implementation(rng, w);
    ++tally.premise_held;  // premises hold by construction
    if (!implements_everywhere(System::box(c, wi), System::box(a, w)))
      ++tally.conclusion_failed;
  }
  return tally;
}

Tally check_theorem1(Rng& rng, long trials, bool everywhere_premise) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(8));
    const System aw = System::box(a, w);
    if (!aw.total() || !stabilizes_to(aw, a)) continue;
    const System c = everywhere_premise
                         ? random_everywhere_implementation(rng, a)
                         : random_init_implementation(rng, a);
    if (!everywhere_premise && !implements_init(c, a)) continue;
    const System wi = random_everywhere_implementation(rng, w);
    ++tally.premise_held;
    if (!stabilizes_to(System::box(c, wi), a)) ++tally.conclusion_failed;
  }
  return tally;
}

Tally check_theorem4(Rng& rng, long trials) {
  Tally tally;
  for (long i = 0; i < trials; ++i) {
    ++tally.trials;
    RandomSystemParams params;
    params.num_states = 2 + rng.index(3);
    const System a0 = random_system(rng, params);
    params.num_states = 2 + rng.index(3);
    const System a1 = random_system(rng, params);
    const std::size_t lo = a0.num_states(), hi = a1.num_states();
    const System a =
        System::box(lift_local(a0, 0, lo, hi), lift_local(a1, 1, lo, hi));
    const System w0 = random_wrapper(rng, a0, rng.index(4));
    const System w1 = random_wrapper(rng, a1, rng.index(4));
    const System w =
        System::box(lift_local(w0, 0, lo, hi), lift_local(w1, 1, lo, hi));
    const System aw = System::box(a, w);
    if (!aw.total() || !stabilizes_to(aw, a)) continue;
    ++tally.premise_held;
    const System c = System::box(
        lift_local(random_everywhere_implementation(rng, a0), 0, lo, hi),
        lift_local(random_everywhere_implementation(rng, a1), 1, lo, hi));
    const System wi = System::box(
        lift_local(random_everywhere_implementation(rng, w0), 0, lo, hi),
        lift_local(random_everywhere_implementation(rng, w1), 1, lo, hi));
    if (!stabilizes_to(System::box(c, wi), a)) ++tally.conclusion_failed;
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"trials", "trials per theorem (default 5000)"},
               {"seed", "RNG seed (default 42)"}});
  const long trials = flags.get_int("trials", 5000);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  std::cout << "E2: randomized property check of the Section 2 theorems ("
            << trials << " trials each)\n\n";

  Table table({"result", "trials", "premise held", "conclusion failed",
               "verdict"});
  auto add = [&](const char* name, const Tally& t, bool failures_expected) {
    const bool ok = failures_expected ? t.conclusion_failed > 0
                                      : t.conclusion_failed == 0;
    table.row(name, t.trials, t.premise_held, t.conclusion_failed,
              ok ? (failures_expected ? "counterexamples exist (as paper says)"
                                      : "holds")
                 : "UNEXPECTED");
  };

  add("Lemma 0 (box monotonicity)", check_lemma0(rng, trials), false);
  add("Theorem 1 (graybox stabilization)",
      check_theorem1(rng, trials, true), false);
  add("Theorem 4 (local everywhere composition)",
      check_theorem4(rng, trials), false);
  add("negative: Theorem 1 with [C=>A]init only",
      check_theorem1(rng, trials * 2, false), true);
  table.print(std::cout);

  // --- Section 6: automatic synthesis of graybox stabilization -----------
  // For every random spec A, synthesize the reset wrapper from A alone and
  // check it fairly stabilizes A and every everywhere implementation.
  // Also count how often fairness is doing real work: the demonic
  // semantics cannot repair A (its stray states cycle) while the fair one
  // can — this is the formal role of W's timeout.
  Tally synth;
  long fairness_needed = 0;
  std::size_t wrapper_edges = 0;
  for (long i = 0; i < trials; ++i) {
    ++synth.trials;
    RandomSystemParams params;
    params.num_states = 4 + rng.index(8);
    params.initial_density = 0.2;
    const System a = random_system(rng, params);
    const System w = synthesize_reset_wrapper(a);
    wrapper_edges += w.num_transitions();
    const System c = random_everywhere_implementation(rng, a);
    ++synth.premise_held;
    if (!fair_stabilizes_to(a, w, a) || !fair_stabilizes_to(c, w, a))
      ++synth.conclusion_failed;
    if (!stabilizes_to(System::box(a, w), a)) ++fairness_needed;
  }
  std::cout << "\nSection 6 synthesis (reset wrapper from A alone, fair "
               "wrapper execution):\n\n";
  Table synth_table({"metric", "value"});
  synth_table.row("specs synthesized for", synth.trials);
  synth_table.row("fair stabilization failures (A and impls)",
                  synth.conclusion_failed);
  synth_table.row("specs where fairness was necessary (demonic box fails)",
                  fairness_needed);
  synth_table.row("mean wrapper recovery edges",
                  wrapper_edges / static_cast<std::size_t>(synth.trials));
  synth_table.print(std::cout);

  std::cout << "\nExpected shape: the three positive rows never fail; the\n"
               "negative row fails on some draws, showing the everywhere\n"
               "premise is necessary (Figure 1's lesson); synthesis never\n"
               "fails, and on a sizable fraction of specs only the FAIR\n"
               "semantics stabilizes - the algebraic reason the deployable\n"
               "wrapper W' carries a timer.\n";
  return 0;
}
