// E6 — interference freedom (paper Lemma 6): "Lspec [] W everywhere
// implements Lspec".
//
// Executable reading: in fault-free runs, adding the wrapper must not
// change the system's observable correctness or schedule — zero TME Spec
// violations, the same CS entries, the same protocol message counts — and
// its own cost is only the resend traffic, quantified per delta.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

struct Sample {
  RunStats stats;
  bool clean;
};

Sample run(Algorithm algo, bool wrapped, SimTime delta, std::uint64_t seed) {
  HarnessConfig config;
  config.n = 5;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = delta;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  SystemHarness h(config);
  h.start();
  h.run_for(10000);
  h.drain(4000);
  Sample sample;
  sample.stats = h.stats();
  sample.clean = h.stabilization_report().stabilized &&
                 sample.stats.me1_violations == 0 &&
                 sample.stats.me3_violations == 0 &&
                 sample.stats.invariant_violations == 0;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "seed (default 2026)"}});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2026));

  std::cout << "E6: interference freedom (Lemma 6) — fault-free, wrapped vs "
               "bare, identical seeds\n\n";

  for (const Algorithm algo :
       {Algorithm::kRicartAgrawala, Algorithm::kLamport}) {
    Table table({"configuration", "violations", "CS entries",
                 "protocol msgs", "wrapper msgs", "max wait"});
    const Sample bare = run(algo, false, 0, seed);
    table.row("bare", bare.clean ? "none" : "SOME", bare.stats.cs_entries,
              bare.stats.messages_sent - bare.stats.wrapper_messages,
              bare.stats.wrapper_messages, bare.stats.me2_max_wait);
    for (const SimTime delta : {5, 25, 100, 400}) {
      const Sample wrapped = run(algo, true, delta, seed);
      table.row("W' delta=" + std::to_string(delta),
                wrapped.clean ? "none" : "SOME", wrapped.stats.cs_entries,
                wrapped.stats.messages_sent - wrapped.stats.wrapper_messages,
                wrapped.stats.wrapper_messages, wrapped.stats.me2_max_wait);
    }
    std::cout << to_string(algo) << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Expected shape (Lemma 6): every row is violation-free; CS entry "
         "counts stay within a fraction of a percent of the bare run (the "
         "wrapper adds no behaviour Lspec does not already allow — resends "
         "only perturb timing); the only cost is wrapper resend traffic, "
         "which shrinks as delta grows. Note: extra wrapper resends induce "
         "extra replies, so protocol messages exceed the bare count at "
         "small delta — replies are Lspec traffic the spec already mandates "
         "on request receipt.\n";
  return 0;
}
