// E6 — interference freedom (paper Lemma 6): "Lspec [] W everywhere
// implements Lspec".
//
// Executable reading: in fault-free runs, adding the wrapper must not
// change the system's observable correctness or schedule — zero TME Spec
// violations, statistically identical CS entries and protocol message
// counts — and its own cost is only the resend traffic, quantified per
// delta. Each configuration runs `trials` seeds through the engine so the
// comparison is distributional rather than a single lucky schedule.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig config_for(Algorithm algo, bool wrapped, SimTime delta,
                         std::uint64_t seed) {
  HarnessConfig config;
  config.n = 5;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = delta;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  return config;
}

const char* short_name(Algorithm algo) {
  return algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags({{"seed", "base seed (default 2026)"}}));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2026));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 10));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  // Fault-free: the whole run is "warmup", then drain — burst of zero.
  FaultScenario scenario;
  scenario.warmup = 10000;
  scenario.burst = 0;
  scenario.observation = 0;
  scenario.drain = 4000;

  const SimTime deltas[] = {5, 25, 100, 400};
  const Algorithm algos[] = {Algorithm::kRicartAgrawala, Algorithm::kLamport};

  SpecGrid grid;
  for (const Algorithm algo : algos) {
    grid.add(std::string(short_name(algo)) + "/bare",
             config_for(algo, false, 0, seed), scenario, trials);
    for (const SimTime delta : deltas) {
      grid.add(std::string(short_name(algo)) + "/delta=" +
                   std::to_string(delta),
               config_for(algo, true, delta, seed), scenario, trials);
    }
  }
  const GridResult result = engine.run(grid);

  std::cout << "E6: interference freedom (Lemma 6) — fault-free, wrapped vs "
               "bare, identical seeds (" << trials << " trials per cell, "
            << result.jobs << " jobs)\n\n";

  for (const Algorithm algo : algos) {
    Table table({"configuration", "safety violations", "CS entries mean±sd",
                 "protocol msgs mean±sd", "wrapper msgs mean±sd",
                 "max wait mean±sd"});
    auto row = [&](const std::string& label, const std::string& cell_name) {
      const RepeatedResult& r = result.cell(cell_name).result;
      table.row(label,
                r.safety_violations.sum() == 0.0 ? "none" : "SOME",
                mean_pm_stddev(r.cs_entries, 0),
                mean_pm_stddev(r.protocol_messages, 0),
                mean_pm_stddev(r.wrapper_messages, 0),
                mean_pm_stddev(r.max_wait, 0));
    };
    row("bare", std::string(short_name(algo)) + "/bare");
    for (const SimTime delta : deltas) {
      row("W' delta=" + std::to_string(delta),
          std::string(short_name(algo)) + "/delta=" + std::to_string(delta));
    }
    std::cout << to_string(algo) << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Expected shape (Lemma 6): every row is violation-free; CS entry "
         "counts stay within a fraction of a percent of the bare run (the "
         "wrapper adds no behaviour Lspec does not already allow — resends "
         "only perturb timing); the only cost is wrapper resend traffic, "
         "which shrinks as delta grows. Note: extra wrapper resends induce "
         "extra replies, so protocol messages exceed the bare count at "
         "small delta — replies are Lspec traffic the spec already mandates "
         "on request receipt.\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
