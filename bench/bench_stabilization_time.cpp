// E7 — stabilization time (Theorem 8 quantified).
//
// The paper proves that wrapped everywhere-implementations stabilize but
// reports no measurements. This bench produces the numbers the evaluation
// would have shown: stabilization latency (last fault -> last TME Spec
// violation) as a function of system size and of fault burst size, for both
// programs, wrapped vs bare. The whole grid runs through ExperimentEngine:
// trials fan out across --jobs cores and the aggregates land in
// BENCH_stabilization_time.json.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig config_for(Algorithm algo, std::size_t n, bool wrapped) {
  HarnessConfig config;
  config.n = n;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = 9000;
  return config;
}

FaultScenario scenario_for(std::size_t burst) {
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = burst;
  scenario.mix = net::FaultMix::all();
  scenario.observation = 9000;
  scenario.drain = 6000;
  return scenario;
}

std::string stab_cell(const RepeatedResult& r) {
  return std::to_string(r.stabilized) + "/" + std::to_string(r.trials);
}

const char* short_name(Algorithm algo) {
  return algo == Algorithm::kRicartAgrawala ? "ra" : "lamport";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, with_engine_flags());
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 15));
  const ExperimentEngine engine(engine_options_from_flags(flags));

  const std::size_t sizes[] = {2, 3, 4, 6, 8, 10, 12, 16, 24};
  const std::size_t bursts[] = {2, 5, 10, 20, 40, 80};
  const std::size_t bare_bursts[] = {10, 40, 80};
  const Algorithm algos[] = {Algorithm::kRicartAgrawala, Algorithm::kLamport};

  SpecGrid grid;
  for (const Algorithm algo : algos) {
    for (const std::size_t n : sizes) {
      grid.add("by_n/" + std::string(short_name(algo)) +
                   "/n=" + std::to_string(n),
               config_for(algo, n, true), scenario_for(10), trials);
    }
    for (const std::size_t burst : bursts) {
      grid.add("by_burst/" + std::string(short_name(algo)) +
                   "/burst=" + std::to_string(burst),
               config_for(algo, 5, true), scenario_for(burst), trials);
    }
    for (const std::size_t burst : bare_bursts) {
      FaultScenario scenario = scenario_for(burst);
      // Losses are what wedge a bare system (Section 4): drop-only mix.
      scenario.mix = net::FaultMix::only(net::FaultKind::kMessageDrop);
      scenario.mix.channel_clear = true;
      grid.add("bare/" + std::string(short_name(algo)) +
                   "/burst=" + std::to_string(burst),
               config_for(algo, 5, false), scenario, trials);
    }
  }

  const GridResult result = engine.run(grid);

  std::cout << "E7: stabilization latency after a mixed fault burst ("
            << trials << " trials per cell, " << result.jobs << " jobs)\n\n";

  std::cout << "Latency vs system size (burst = 10 faults), wrapped:\n\n";
  Table by_n({"n", "ra stabilized", "ra latency mean±sd", "lamport stabilized",
              "lamport latency mean±sd"});
  for (const std::size_t n : sizes) {
    const RepeatedResult& ra =
        result.cell("by_n/ra/n=" + std::to_string(n)).result;
    const RepeatedResult& lam =
        result.cell("by_n/lamport/n=" + std::to_string(n)).result;
    by_n.row(n, stab_cell(ra), mean_pm_stddev(ra.latency, 0), stab_cell(lam),
             mean_pm_stddev(lam.latency, 0));
  }
  by_n.print(std::cout);

  std::cout << "\nLatency vs burst size (n = 5), wrapped:\n\n";
  Table by_burst({"burst", "ra stabilized", "ra latency mean±sd",
                  "lamport stabilized", "lamport latency mean±sd"});
  for (const std::size_t burst : bursts) {
    const RepeatedResult& ra =
        result.cell("by_burst/ra/burst=" + std::to_string(burst)).result;
    const RepeatedResult& lam =
        result.cell("by_burst/lamport/burst=" + std::to_string(burst)).result;
    by_burst.row(burst, stab_cell(ra), mean_pm_stddev(ra.latency, 0),
                 stab_cell(lam), mean_pm_stddev(lam.latency, 0));
  }
  by_burst.print(std::cout);

  std::cout << "\nBare baseline (n = 5): how often luck suffices without "
               "the wrapper, as the loss-heavy adversary strengthens:\n\n";
  Table bare({"algorithm", "burst 10", "burst 40", "burst 80"});
  for (const Algorithm algo : algos) {
    std::vector<std::string> cells;
    for (const std::size_t burst : bare_bursts) {
      const RepeatedResult& r =
          result
              .cell("bare/" + std::string(short_name(algo)) +
                    "/burst=" + std::to_string(burst))
              .result;
      cells.push_back(stab_cell(r) + " stabilized");
    }
    bare.row(to_string(algo), cells[0], cells[1], cells[2]);
  }
  bare.print(std::cout);

  std::cout << "\nExpected shape: wrapped cells stabilize in EVERY trial at "
               "every n and burst size (Theorem 8), with latency growing "
               "mildly in both. Bare systems survive most RANDOM bursts by "
               "luck — ongoing requests double as repair traffic — but they "
               "carry no guarantee: some trials starve, and the scripted "
               "Section 4 loss pattern (bench_deadlock_recovery) wedges "
               "them deterministically. The wrapper converts 'usually "
               "recovers' into 'always recovers'.\n";

  const std::string path = emit_bench_artifact(flags, result);
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
