// E7 — stabilization time (Theorem 8 quantified).
//
// The paper proves that wrapped everywhere-implementations stabilize but
// reports no measurements. This bench produces the numbers the evaluation
// would have shown: stabilization latency (last fault -> last TME Spec
// violation) as a function of system size and of fault burst size, for both
// programs, wrapped vs bare.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace {

using namespace graybox;
using namespace graybox::core;

HarnessConfig config_for(Algorithm algo, std::size_t n, bool wrapped) {
  HarnessConfig config;
  config.n = n;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = 9000;
  return config;
}

FaultScenario scenario_for(std::size_t burst) {
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = burst;
  scenario.mix = net::FaultMix::all();
  scenario.observation = 9000;
  scenario.drain = 6000;
  return scenario;
}

std::string stab_cell(const RepeatedResult& r) {
  return std::to_string(r.stabilized) + "/" + std::to_string(r.trials);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"trials", "trials per cell (default 15)"}});
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 15));

  std::cout << "E7: stabilization latency after a mixed fault burst ("
            << trials << " trials per cell)\n\n";

  std::cout << "Latency vs system size (burst = 10 faults), wrapped:\n\n";
  Table by_n({"n", "ra stabilized", "ra latency mean±sd", "lamport stabilized",
              "lamport latency mean±sd"});
  for (const std::size_t n : {2u, 3u, 4u, 6u, 8u, 10u, 12u}) {
    const RepeatedResult ra = repeat_fault_experiment(
        config_for(Algorithm::kRicartAgrawala, n, true), scenario_for(10),
        trials);
    const RepeatedResult lam = repeat_fault_experiment(
        config_for(Algorithm::kLamport, n, true), scenario_for(10), trials);
    by_n.row(n, stab_cell(ra), mean_pm_stddev(ra.latency, 0), stab_cell(lam),
             mean_pm_stddev(lam.latency, 0));
  }
  by_n.print(std::cout);

  std::cout << "\nLatency vs burst size (n = 5), wrapped:\n\n";
  Table by_burst({"burst", "ra stabilized", "ra latency mean±sd",
                  "lamport stabilized", "lamport latency mean±sd"});
  for (const std::size_t burst : {2u, 5u, 10u, 20u, 40u, 80u}) {
    const RepeatedResult ra = repeat_fault_experiment(
        config_for(Algorithm::kRicartAgrawala, 5, true), scenario_for(burst),
        trials);
    const RepeatedResult lam = repeat_fault_experiment(
        config_for(Algorithm::kLamport, 5, true), scenario_for(burst),
        trials);
    by_burst.row(burst, stab_cell(ra), mean_pm_stddev(ra.latency, 0),
                 stab_cell(lam), mean_pm_stddev(lam.latency, 0));
  }
  by_burst.print(std::cout);

  std::cout << "\nBare baseline (n = 5): how often luck suffices without "
               "the wrapper, as the loss-heavy adversary strengthens:\n\n";
  Table bare({"algorithm", "burst 10", "burst 40", "burst 80"});
  for (const Algorithm algo :
       {Algorithm::kRicartAgrawala, Algorithm::kLamport}) {
    std::vector<std::string> cells;
    for (const std::size_t burst : {10u, 40u, 80u}) {
      FaultScenario scenario = scenario_for(burst);
      // Losses are what wedge a bare system (Section 4): drop-only mix.
      scenario.mix = net::FaultMix::only(net::FaultKind::kMessageDrop);
      scenario.mix.channel_clear = true;
      const RepeatedResult r = repeat_fault_experiment(
          config_for(algo, 5, false), scenario, trials);
      cells.push_back(stab_cell(r) + " stabilized");
    }
    bare.row(to_string(algo), cells[0], cells[1], cells[2]);
  }
  bare.print(std::cout);

  std::cout << "\nExpected shape: wrapped cells stabilize in EVERY trial at "
               "every n and burst size (Theorem 8), with latency growing "
               "mildly in both. Bare systems survive most RANDOM bursts by "
               "luck — ongoing requests double as repair traffic — but they "
               "carry no guarantee: some trials starve, and the scripted "
               "Section 4 loss pattern (bench_deadlock_recovery) wedges "
               "them deterministically. The wrapper converts 'usually "
               "recovers' into 'always recovers'.\n";
  return 0;
}
