// The level-1 (intra-process consistency) wrapper for TME.
//
// Section 2.2 of the paper splits stabilization wrappers into two tiers:
// level-1 restores *local* consistency — each process's own state satisfies
// the always-section of its local spec — and level-2 (GrayboxWrapper, the
// paper's W') restores *mutual* consistency between processes. For TME the
// paper proves the programs' own handlers already restore local consistency
// (every handler is total), so no level-1 wrapper is *required* — but one
// is still *derivable* from Lspec, and deploying it shortens the window in
// which a corrupted process acts on locally-inconsistent state instead of
// waiting for the next program event to overwrite it.
//
// The wrapper checks exactly the intra-process clauses of Lspec that are
// state predicates (no quantification over peers):
//
//   P1 (Release Spec)  t.j  =>  REQj = ts.j
//   P2 (ownership)     ~t.j =>  REQj.pid = j      (REQj was issued by j)
//   P3 (Timestamp)     ~t.j =>  ~(ts.j lt REQj)   (j's clock has witnessed
//                                                  its own request)
//
// and on violation restores the nearest locally-consistent state: P1 glues
// REQ back to the clock; P2/P3 mean the recorded request cannot be one this
// process issued, so the request is abandoned (reset to thinking, REQ glued
// to the clock) and the client re-requests on its next poll. All three are
// provably silent in fault-free runs: while thinking the base class glues
// REQ to the clock after every event, and a genuine request is a fresh
// tick of the process's own clock.
//
// Grayboxness is the same as GrayboxWrapper's: the corrector reads and
// writes only the TmeProcess graybox surface (state/req/clock and the
// fault-jump setters), so one wrapper object serves every implementation.
// It is composable with level-2 — the harness can run either tier or both
// per process (HarnessConfig::per_process_tiers).
#pragma once

#include "me/tme_process.hpp"
#include "obs/event_bus.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace graybox::wrapper {

struct LocalWrapperConfig {
  /// Timeout between consistency checks (the level-1 analogue of W' delta).
  /// 0 = check at the maximal rate the simulation admits (one tick).
  SimTime check_period = 25;
};

class LocalWrapper {
 public:
  /// Which predicate a correction repaired (recorded in Event::a of the
  /// kLocalCorrection event).
  enum Predicate : std::uint8_t {
    kReqTracksClock = 0,  ///< P1: thinking REQ not glued to the clock
    kForeignReq = 1,      ///< P2: competing on a request j never issued
    kReqAboveClock = 2,   ///< P3: competing on a request above own clock
  };

  /// Wraps `process`. Starts disarmed; call start().
  LocalWrapper(sim::Scheduler& sched, me::TmeProcess& process,
               LocalWrapperConfig config = {});

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }
  bool running() const { return timer_.running(); }

  SimTime check_period() const { return config_.check_period; }

  /// Number of local state repairs applied.
  std::uint64_t corrections() const { return corrections_; }
  /// Number of timer expirations (consistency-check evaluations).
  std::uint64_t checks() const { return timer_.fired(); }

  /// One level-1 action: check P1-P3 and repair. Exposed for tests;
  /// normally driven by the internal timer.
  void evaluate();

  /// Attach the observability bus; every repair is recorded as a
  /// kLocalCorrection event with the Predicate in Event::a.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Attach the provenance tracker; a repair then clears the process's
  /// taint (local consistency is restored, the corruption is contained).
  /// The kLocalCorrection event itself still carries the taint.
  void set_provenance(obs::ProvenanceTracker* prov) { prov_ = prov; }

 private:
  void correct(Predicate which);

  me::TmeProcess& process_;
  LocalWrapperConfig config_;
  sim::PeriodicTimer timer_;
  std::uint64_t corrections_ = 0;
  obs::EventBus* bus_ = nullptr;
  obs::ProvenanceTracker* prov_ = nullptr;
};

}  // namespace graybox::wrapper
