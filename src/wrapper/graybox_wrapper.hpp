// The graybox stabilization wrapper for TME (paper Section 4).
//
// The paper derives, from Lspec alone, the level-2 (inter-process
// consistency) wrapper
//
//   Wj  ::  h.j  ->  (forall k : k != j /\ j.REQk lt REQj :
//                        send(REQj, j, k))
//
// and its deployable refinement with a timeout:
//
//   W'j ::  timer.j = 0 /\ h.j  ->  (forall k : k != j /\ j.REQk lt REQj :
//                        send(REQj, j, k));  timer.j := delta.j
//
// "W' is equivalent to W when delta = 0"; a positive delta only reduces
// redundant resends while the system is consistent. GrayboxWrapper is W'
// with delta configurable per process; resend_period = 0 requests the
// maximal rate the discrete-event simulation admits (one tick).
//
// Grayboxness is structural: the wrapper holds a reference to the
// TmeProcess *interface* — state(), req(), knows_earlier() — which exposes
// exactly the Lspec observables and none of the implementation variables.
// The identical wrapper object therefore stabilizes RicartAgrawala,
// LamportMe, or any future everywhere-implementation of Lspec (Theorem 8,
// Corollary 11), and the compiler enforces that it cannot peek further.
//
// The unrefined send-to-all variant (paper's first formulation of Wj, which
// resends to every peer rather than only the stale ones) is provided for
// the A3 ablation measuring how much traffic the refinement saves.
#pragma once

#include "me/tme_process.hpp"
#include "net/network.hpp"
#include "obs/event_bus.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace graybox::wrapper {

struct WrapperConfig {
  /// delta.j: the timeout between wrapper evaluations. 0 = the unrelaxed W.
  SimTime resend_period = 0;
  /// Ablation A3: if true, resend REQj to *all* peers while hungry (the
  /// paper's unrefined Wj) instead of only to peers whose view is stale.
  bool unrefined_send_all = false;
};

class GrayboxWrapper {
 public:
  /// Wraps `process`, sending through `net`. The wrapper starts disarmed;
  /// call start().
  GrayboxWrapper(sim::Scheduler& sched, net::Network& net,
                 me::TmeProcess& process, WrapperConfig config = {});

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }
  bool running() const { return timer_.running(); }

  SimTime resend_period() const { return config_.resend_period; }

  /// Number of REQUEST messages this wrapper has (re)sent.
  std::uint64_t resends() const { return resends_; }
  /// Number of timer expirations (wrapper action evaluations).
  std::uint64_t evaluations() const { return timer_.fired(); }

  /// One W'j action: evaluate the guard and resend where needed. Exposed
  /// for tests; normally driven by the internal timer.
  void evaluate();

  /// Attach the observability bus; every resend is recorded as a
  /// kWrapperCorrection event (in addition to the network's kSend).
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Attach the provenance tracker; a correcting evaluation (>= 1 resend)
  /// then clears the wrapped process's taint — the divergence it was
  /// spreading is contained by the correction. The correction events and
  /// resends themselves still carry the taint (that is the attribution).
  void set_provenance(obs::ProvenanceTracker* prov) { prov_ = prov; }

 private:
  sim::Scheduler& sched_;
  net::Network& net_;
  me::TmeProcess& process_;
  WrapperConfig config_;
  sim::PeriodicTimer timer_;
  std::uint64_t resends_ = 0;
  obs::EventBus* bus_ = nullptr;
  obs::ProvenanceTracker* prov_ = nullptr;
};

}  // namespace graybox::wrapper
