#include "wrapper/graybox_wrapper.hpp"

namespace graybox::wrapper {

GrayboxWrapper::GrayboxWrapper(sim::Scheduler& sched, net::Network& net,
                               me::TmeProcess& process, WrapperConfig config)
    : sched_(sched),
      net_(net),
      process_(process),
      config_(config),
      timer_(sched, config.resend_period, [this] { evaluate(); }) {}

void GrayboxWrapper::evaluate() {
  (void)sched_;
  // Guard: h.j. Internal consistency is Lspec's obligation (the paper shows
  // no level-1 wrapper is needed), so W only repairs *mutual* consistency,
  // and only while this process is actually competing for the CS.
  if (!process_.hungry()) return;

  const ProcessId j = process_.pid();
  const clk::Timestamp req = process_.req();
  bool corrected = false;
  for (ProcessId k = 0; k < process_.peers(); ++k) {
    if (k == j) continue;
    // Refinement (Section 4): k's view of us only needs correction when
    // our view of k does not already justify entry — "j.REQk lt REQj".
    // For k in the complement, either h.k holds and Wk fixes the pair, or
    // ~h.k and the pair needs no fix.
    if (!config_.unrefined_send_all && process_.knows_earlier(k)) continue;
    ++resends_;
    if (bus_ != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::kWrapperCorrection;
      e.pid = j;
      e.peer = k;
      if (prov_ != nullptr) e.taint = prov_->process_taint(j);
      bus_->record(e);
    }
    net_.send(j, k, net::MsgType::kRequest, req, /*from_wrapper=*/true);
    corrected = true;
  }
  // Re-arming (timer.j := delta.j) is handled by PeriodicTimer.

  // The resends above re-established mutual consistency with every stale
  // peer, so whatever fault taint j carried is contained here: the
  // corrections (recorded tainted, above) are the last trace of it.
  if (corrected && prov_ != nullptr) prov_->clear_process(j);
}

}  // namespace graybox::wrapper
