#include "wrapper/local_wrapper.hpp"

namespace graybox::wrapper {

LocalWrapper::LocalWrapper(sim::Scheduler& sched, me::TmeProcess& process,
                           LocalWrapperConfig config)
    : process_(process),
      config_(config),
      timer_(sched, config.check_period, [this] { evaluate(); }) {}

void LocalWrapper::evaluate() {
  const clk::Timestamp now = process_.clock().now();
  if (process_.thinking()) {
    // P1 (Release Spec): t.j => REQj = ts.j.
    if (process_.req() != now) {
      process_.fault_set_req(now);
      correct(kReqTracksClock);
    }
    return;
  }
  // Competing (hungry or eating): the request must be one this process
  // issued — its own pid, already witnessed by its own clock. A request
  // failing either test cannot be re-derived locally (the genuine value is
  // gone), so the consistent state restored is "not requesting": reset to
  // thinking with REQ glued to the clock, and let the client re-request.
  if (process_.req().pid != process_.pid()) {
    process_.fault_set_state(me::TmeState::kThinking);
    process_.fault_set_req(now);
    correct(kForeignReq);
    return;
  }
  // P3: a genuine request is a tick of the own clock, so ts.j is at or
  // above REQj ever after.
  if (clk::lt(now, process_.req())) {
    process_.fault_set_state(me::TmeState::kThinking);
    process_.fault_set_req(now);
    correct(kReqAboveClock);
  }
}

void LocalWrapper::correct(Predicate which) {
  ++corrections_;
  if (bus_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::kLocalCorrection;
    e.pid = process_.pid();
    e.a = which;
    if (prov_ != nullptr) e.taint = prov_->process_taint(process_.pid());
    bus_->record(e);
  }
  // The repair restored local consistency, so the corruption this process
  // carried is contained here (the correction event above is attributed).
  if (prov_ != nullptr) prov_->clear_process(process_.pid());
}

}  // namespace graybox::wrapper
