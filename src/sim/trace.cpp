#include "sim/trace.hpp"

#include <ostream>

namespace graybox::sim {

void Trace::record(SimTime t, std::string text) {
  if (capacity_ == 0) return;
  records_.push_back(Record{t, std::move(text)});
  ++total_;
  while (records_.size() > capacity_) records_.pop_front();
}

void Trace::clear() {
  records_.clear();
  total_ = 0;
}

void Trace::dump(std::ostream& os, std::size_t last_n) const {
  std::size_t start = 0;
  if (records_.size() > last_n) start = records_.size() - last_n;
  for (std::size_t i = start; i < records_.size(); ++i)
    os << '[' << records_[i].time << "] " << records_[i].text << '\n';
}

}  // namespace graybox::sim
