#include "sim/trace.hpp"

#include <ostream>

#include "common/contracts.hpp"

namespace graybox::sim {

void Trace::record(SimTime t, std::string_view text) {
  if (capacity_ == 0) return;
  const std::size_t slot = (head_ + size_) % capacity_;
  Record& r = slots_[slot];
  r.time = t;
  r.text.assign(text);  // reuses the evicted record's buffer
  if (size_ < capacity_) {
    ++size_;
  } else {
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

const Trace::Record& Trace::at(std::size_t i) const {
  GBX_EXPECTS(i < size_);
  return slots_[(head_ + i) % capacity_];
}

void Trace::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

void Trace::dump(std::ostream& os, std::size_t last_n) const {
  std::size_t start = 0;
  if (size_ > last_n) start = size_ - last_n;
  for (std::size_t i = start; i < size_; ++i) {
    const Record& r = at(i);
    os << '[' << r.time << "] " << r.text << '\n';
  }
}

}  // namespace graybox::sim
