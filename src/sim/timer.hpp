// Periodic timer built on the Scheduler.
//
// The refined wrapper W' (Section 4, "Implementation of W") replaces W's
// continuous guard evaluation with a timeout: the wrapper action runs only
// when timer.j expires, and the timer is then re-armed with period delta.j.
// PeriodicTimer is that mechanism. A period of 0 is normalized to 1 tick —
// the highest rate a discrete-event simulation admits — which is the
// executable reading of the paper's "W' is equivalent to W when delta = 0".
#pragma once

#include <functional>

#include "sim/scheduler.hpp"

namespace graybox::sim {

class PeriodicTimer {
 public:
  using TickFn = std::function<void()>;

  /// Creates a stopped timer. `fn` runs once per period while started.
  PeriodicTimer(Scheduler& sched, SimTime period, TickFn fn);
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arm the timer; the first tick fires one period from now. No-op if
  /// already running.
  void start();

  /// Disarm; pending tick is cancelled. No-op if stopped.
  void stop();

  bool running() const { return running_; }
  SimTime period() const { return period_; }

  /// Change the period; takes effect from the next (re)arming. A running
  /// timer is re-armed immediately with the new period. Safe to call from
  /// inside the tick callback: the in-progress tick's re-arm picks up the
  /// new period (no second chain is armed).
  void set_period(SimTime period);

  /// Number of times the tick function has fired.
  std::uint64_t fired() const { return fired_; }

 private:
  void arm();
  void on_tick();

  Scheduler& sched_;
  SimTime period_;
  TickFn fn_;
  EventId pending_ = 0;
  bool running_ = false;
  bool in_tick_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace graybox::sim
