#include "sim/timer.hpp"

#include "common/contracts.hpp"

namespace graybox::sim {

namespace {
SimTime normalize(SimTime period) { return period == 0 ? 1 : period; }
}  // namespace

PeriodicTimer::PeriodicTimer(Scheduler& sched, SimTime period, TickFn fn)
    : sched_(sched), period_(normalize(period)), fn_(std::move(fn)) {
  GBX_EXPECTS(fn_ != nullptr);
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sched_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::set_period(SimTime period) {
  period_ = normalize(period);
  // When called from inside the tick callback there is no pending event to
  // cancel (on_tick cleared it) and on_tick will re-arm with the new period
  // after fn_ returns; arming here too would start a second, parallel tick
  // chain and permanently double the rate.
  if (in_tick_) return;
  if (running_) {
    if (pending_ != 0) sched_.cancel(pending_);
    arm();
  }
}

void PeriodicTimer::arm() {
  pending_ = sched_.schedule_after(period_, [this] { on_tick(); });
}

void PeriodicTimer::on_tick() {
  pending_ = 0;
  ++fired_;
  in_tick_ = true;
  fn_();
  in_tick_ = false;
  // pending_ != 0 here means fn_ re-armed us itself (stop()+start()); a
  // second arm would fork the tick chain.
  if (running_ && pending_ == 0) arm();
}

}  // namespace graybox::sim
