#include "sim/timer.hpp"

#include "common/contracts.hpp"

namespace graybox::sim {

namespace {
SimTime normalize(SimTime period) { return period == 0 ? 1 : period; }
}  // namespace

PeriodicTimer::PeriodicTimer(Scheduler& sched, SimTime period, TickFn fn)
    : sched_(sched), period_(normalize(period)), fn_(std::move(fn)) {
  GBX_EXPECTS(fn_ != nullptr);
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sched_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::set_period(SimTime period) {
  period_ = normalize(period);
  if (running_) {
    if (pending_ != 0) sched_.cancel(pending_);
    arm();
  }
}

void PeriodicTimer::arm() {
  pending_ = sched_.schedule_after(period_, [this] { on_tick(); });
}

void PeriodicTimer::on_tick() {
  pending_ = 0;
  ++fired_;
  fn_();
  if (running_) arm();
}

}  // namespace graybox::sim
