// Small-buffer-optimized callable for the simulation hot path.
//
// Every simulated event carries a callback; with std::function those
// callbacks are the dominant per-event allocation (libstdc++ only stores
// captures <= 16 bytes inline, and even inline storage pays a virtual-ish
// manager dispatch on destruction). InplaceFunction stores any callable
// whose captures fit `Capacity` bytes directly in the object — every event
// callback in src/ today captures at most {this, two scalars}, far under
// the 48-byte default — and falls back to the heap only for oversized
// callables (test conveniences), so steady-state scheduling allocates
// nothing. Move-only: events are scheduled once and executed once, so
// copyability would only invite accidental capture copies.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace graybox::sim {

template <class Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= Capacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage()) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(storage(), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr Ops inline_ops = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(static_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(static_cast<D*>(s))->~D(); }};

  template <class D>
  static constexpr Ops heap_ops = {
      [](void* s, Args&&... args) -> R {
        return (**std::launder(static_cast<D**>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        // Pointers are trivially destructible; relocation is a raw copy.
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(static_cast<D**>(s)); }};

  void* storage() { return &storage_; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  void move_from(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage(), other.storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace graybox::sim
