#include "sim/scheduler.hpp"

#include "common/contracts.hpp"

namespace graybox::sim {

EventId Scheduler::schedule_at(SimTime t, EventFn fn) {
  GBX_EXPECTS(t >= now_);
  GBX_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Scheduler::schedule_after(SimTime delay, EventFn fn) {
  GBX_EXPECTS(delay <= kNever - now_);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  compact_if_worthwhile();
  return true;
}

void Scheduler::compact_if_worthwhile() {
  // Lazy deletion leaves (entry, tombstone) pairs in memory until the
  // entry's time is reached — which for repeatedly re-armed far-future
  // timers may be never. Rebuild once tombstones outnumber live events.
  if (cancelled_.size() < 64 || cancelled_.size() <= pending_ids_.size())
    return;
  std::vector<Entry> live;
  live.reserve(pending_ids_.size());
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;
    live.push_back(std::move(entry));
  }
  for (Entry& entry : live) queue_.push(std::move(entry));
  GBX_ENSURES(cancelled_.empty());
  GBX_ENSURES(queue_.size() == pending_ids_.size());
}

ObserverId Scheduler::add_observer(Observer obs) {
  GBX_EXPECTS(obs != nullptr);
  const ObserverId id = next_observer_id_++;
  observers_.push_back(ObserverSlot{id, std::move(obs)});
  return id;
}

bool Scheduler::remove_observer(ObserverId id) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->id != id) continue;
    if (dispatching_observers_) {
      it->fn = nullptr;  // reclaimed after the dispatch round
    } else {
      observers_.erase(it);
    }
    return true;
  }
  return false;
}

std::size_t Scheduler::observer_count() const {
  std::size_t count = 0;
  for (const auto& slot : observers_)
    if (slot.fn) ++count;
  return count;
}

void Scheduler::execute(Entry entry) {
  now_ = entry.time;
  pending_ids_.erase(entry.id);
  ++executed_;
  entry.fn();
  dispatching_observers_ = true;
  // Index loop: an observer may register further observers, which fire
  // starting with the next event.
  const std::size_t count = observers_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (observers_[i].fn) observers_[i].fn(now_);
  }
  dispatching_observers_ = false;
  std::erase_if(observers_, [](const ObserverSlot& s) { return !s.fn; });
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;  // skip cancelled
    execute(std::move(entry));
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t) {
  GBX_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = t;
}

void Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (step()) {
    GBX_ASSERT(++ran <= max_events);
  }
}

}  // namespace graybox::sim
