#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"

namespace graybox::sim {

Scheduler::Scheduler() : buckets_(kWheelSize) {}

std::uint32_t Scheduler::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.gen;
  if (s.gen == 0) ++s.gen;  // generation 0 is reserved for "never valid"
  free_slots_.push_back(slot);
}

EventId Scheduler::schedule_at(SimTime t, EventFn fn) {
  return schedule_at_tagged(t, 0, std::move(fn));
}

EventId Scheduler::schedule_at_tagged(SimTime t, std::uint64_t tag,
                                      EventFn fn) {
  GBX_EXPECTS(t >= now_);
  GBX_EXPECTS(fn != nullptr);
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.tag = tag;
  ++live_;
  // t >= now_ >= wheel_base_, so the subtraction cannot underflow.
  if (t - wheel_base_ < kWheelSize) {
    const std::size_t idx = t & kWheelMask;
    buckets_[idx].entries.push_back(BucketEntry{slot, s.gen});
    mark_occupied(idx);
    s.in_spill = false;
    ++wheel_live_;
  } else {
    spill_.push_back(SpillEntry{t, next_seq_++, slot, s.gen});
    std::push_heap(spill_.begin(), spill_.end(), SpillLater{});
    s.in_spill = true;
  }
  return make_id(slot, s.gen);
}

EventId Scheduler::schedule_after(SimTime delay, EventFn fn) {
  GBX_EXPECTS(delay <= kNever - now_);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen) return false;  // already ran, cancelled, or recycled
  // One O(1) invalidation: bumping the generation orphans the queue entry
  // (it is skipped when visited); the slot itself is reusable immediately.
  --live_;
  if (s.in_spill) {
    ++spill_stale_;
  } else {
    ++bucket_stale_;
    --wheel_live_;
  }
  free_slot(slot);
  if (s.in_spill) compact_spill_if_worthwhile();
  return true;
}

void Scheduler::compact_spill_if_worthwhile() {
  // Stale spill entries linger until popped — which for repeatedly
  // re-armed far-future timers may be never. Rebuild once they outnumber
  // live spill events.
  const std::size_t live_spill = spill_.size() - spill_stale_;
  if (spill_stale_ < 64 || spill_stale_ <= live_spill) return;
  std::erase_if(spill_, [this](const SpillEntry& e) {
    return slots_[e.slot].gen != e.gen;
  });
  std::make_heap(spill_.begin(), spill_.end(), SpillLater{});
  spill_stale_ = 0;
  GBX_ENSURES(spill_.size() == live_spill);
}

void Scheduler::purge_stale() {
  if (bucket_stale_ > 0) {
    for (std::size_t word = 0; word < kBitmapWords; ++word) {
      std::uint64_t bits = occupied_[word];
      while (bits != 0) {
        const std::size_t idx =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        buckets_[idx].entries.clear();
        buckets_[idx].head = 0;
      }
      occupied_[word] = 0;
    }
    bucket_stale_ = 0;
  }
  spill_.clear();
  spill_stale_ = 0;
}

std::size_t Scheduler::next_occupied_distance() const {
  const std::size_t base = wheel_base_ & kWheelMask;
  std::size_t word = base >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (base & 63));
  for (std::size_t scanned = 0;; ++scanned) {
    if (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      return (idx - base) & kWheelMask;
    }
    if (scanned == kBitmapWords) return kWheelSize;
    word = (word + 1) & (kBitmapWords - 1);
    bits = occupied_[word];
    if (scanned == kBitmapWords - 1) {
      // Final visit of the base word: only the bits before `base` are
      // still unexamined (circular wrap).
      bits &= ~(~std::uint64_t{0} << (base & 63));
    }
  }
}

void Scheduler::promote_spill() {
  const SimTime horizon_end = wheel_base_ + kWheelSize;
  while (!spill_.empty() && spill_.front().time < horizon_end) {
    const SpillEntry e = spill_.front();
    std::pop_heap(spill_.begin(), spill_.end(), SpillLater{});
    spill_.pop_back();
    Slot& s = slots_[e.slot];
    if (s.gen != e.gen) {
      --spill_stale_;
      continue;
    }
    // Heap pop order is (time, seq) = global insertion order per tick, and
    // no direct insert can have targeted this tick yet (it only just
    // entered the wheel horizon), so append order stays deterministic.
    const std::size_t idx = e.time & kWheelMask;
    buckets_[idx].entries.push_back(BucketEntry{e.slot, e.gen});
    mark_occupied(idx);
    s.in_spill = false;
    ++wheel_live_;
  }
}

void Scheduler::advance_to_spill() {
  // No live event in the wheel: every pending event is in the spill level.
  while (!spill_.empty() && slots_[spill_.front().slot].gen != spill_.front().gen) {
    std::pop_heap(spill_.begin(), spill_.end(), SpillLater{});
    spill_.pop_back();
    --spill_stale_;
  }
  GBX_ASSERT(!spill_.empty());
  wheel_base_ = spill_.front().time;
  promote_spill();
}

bool Scheduler::step_bounded(SimTime limit) {
  if (live_ == 0) {
    // An idle scheduler keeps no tombstones (stale entries only matter
    // while events are pending to skip around).
    if (bucket_stale_ + spill_stale_ > 0) purge_stale();
    return false;
  }
  if (wheel_live_ == 0) {
    // Everything pending sits in the spill level. Drop stale tops so the
    // peek below sees a live event, and refuse to advance the base past
    // `limit`: wheel_base_ must never overtake now_ (run_until only moves
    // now_ to its limit), or a later schedule_at targeting a time between
    // now_ and the runaway base would underflow the horizon test, misfile
    // into the spill, and execute at a misread wheel position.
    while (!spill_.empty() &&
           slots_[spill_.front().slot].gen != spill_.front().gen) {
      std::pop_heap(spill_.begin(), spill_.end(), SpillLater{});
      spill_.pop_back();
      --spill_stale_;
    }
    GBX_ASSERT(!spill_.empty());  // live_ > 0 and the wheel is empty
    if (spill_.front().time > limit) return false;
    advance_to_spill();
  }
  while (true) {
    const std::size_t d = next_occupied_distance();
    GBX_ASSERT(d < kWheelSize);  // wheel_live_ > 0
    const std::size_t idx = (wheel_base_ + d) & kWheelMask;
    Bucket& b = buckets_[idx];
    bool executed_one = false;
    while (b.head < b.entries.size()) {
      {
        const BucketEntry e0 = b.entries[b.head];
        if (slots_[e0.slot].gen != e0.gen) {  // stale: cancelled in bucket
          ++b.head;
          --bucket_stale_;
          continue;
        }
      }
      const SimTime t = wheel_base_ + d;
      if (t > limit) return false;
      std::size_t pick = b.head;
      if (choice_hook_ != nullptr) {
        // Compact the unconsumed tail in place so the hook sees exactly
        // the live same-tick events, in insertion order. A bucket maps a
        // single tick inside the wheel horizon, so every live entry here
        // is ready now.
        std::size_t w = b.head;
        for (std::size_t r = b.head; r < b.entries.size(); ++r) {
          const BucketEntry& e = b.entries[r];
          if (slots_[e.slot].gen != e.gen) {
            --bucket_stale_;
            continue;
          }
          b.entries[w++] = e;
        }
        b.entries.resize(w);
        const std::size_t count = w - b.head;
        if (count >= 2) {
          choice_tags_.clear();
          for (std::size_t i = b.head; i < w; ++i)
            choice_tags_.push_back(slots_[b.entries[i].slot].tag);
          const std::size_t k =
              choice_hook_->choose(t, choice_tags_.data(), count);
          GBX_ASSERT(k < count);
          pick = b.head + k;
        }
      }
      const BucketEntry e = b.entries[pick];
      if (pick == b.head) {
        ++b.head;
      } else {
        // Out-of-order pick: remove it, keeping the rest in insertion
        // order (what the hook will be shown again next round).
        b.entries.erase(b.entries.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      }
      if (b.head == b.entries.size()) {
        b.entries.clear();
        b.head = 0;
        clear_occupied(idx);
      }
      if (d > 0) {
        // The base moves past ticks that can no longer receive events
        // (they are all < t <= any future schedule time), widening the
        // wheel horizon; newly covered spill events must enter their
        // buckets before any direct insert can target those ticks.
        wheel_base_ = t;
        promote_spill();
      }
      Slot& s = slots_[e.slot];
      EventFn fn = std::move(s.fn);
      --live_;
      --wheel_live_;
      free_slot(e.slot);
      now_ = t;
      ++executed_;
      fn();
      dispatch_observers();
      executed_one = true;
      break;
    }
    if (executed_one) return true;
    // Bucket held only stale entries; reset it and keep scanning.
    b.entries.clear();
    b.head = 0;
    clear_occupied(idx);
  }
}

void Scheduler::dispatch_observers() {
  dispatching_observers_ = true;
  // Index loop: an observer may register further observers, which fire
  // starting with the next event.
  const std::size_t count = observers_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (observers_[i].fn) observers_[i].fn(now_);
  }
  dispatching_observers_ = false;
  std::erase_if(observers_, [](const ObserverSlot& s) { return !s.fn; });
}

void Scheduler::run_until(SimTime t) {
  GBX_EXPECTS(t >= now_);
  while (step_bounded(t)) {
  }
  now_ = t;
}

void Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (step()) {
    GBX_ASSERT(++ran <= max_events);
  }
}

ObserverId Scheduler::add_observer(Observer obs) {
  GBX_EXPECTS(obs != nullptr);
  const ObserverId id = next_observer_id_++;
  observers_.push_back(ObserverSlot{id, std::move(obs)});
  return id;
}

bool Scheduler::remove_observer(ObserverId id) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->id != id) continue;
    if (dispatching_observers_) {
      it->fn = nullptr;  // reclaimed after the dispatch round
    } else {
      observers_.erase(it);
    }
    return true;
  }
  return false;
}

std::size_t Scheduler::observer_count() const {
  std::size_t count = 0;
  for (const auto& slot : observers_)
    if (slot.fn) ++count;
  return count;
}

}  // namespace graybox::sim
