#include "sim/scheduler.hpp"

#include "common/contracts.hpp"

namespace graybox::sim {

EventId Scheduler::schedule_at(SimTime t, EventFn fn) {
  GBX_EXPECTS(t >= now_);
  GBX_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Scheduler::schedule_after(SimTime delay, EventFn fn) {
  GBX_EXPECTS(delay <= kNever - now_);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void Scheduler::execute(Entry entry) {
  now_ = entry.time;
  pending_ids_.erase(entry.id);
  ++executed_;
  entry.fn();
  for (const auto& obs : observers_) obs(now_);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;  // skip cancelled
    execute(std::move(entry));
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t) {
  GBX_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = t;
}

void Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (step()) {
    GBX_ASSERT(++ran <= max_events);
  }
}

}  // namespace graybox::sim
