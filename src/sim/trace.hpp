// Bounded textual trace of simulator activity.
//
// The trace is a debugging aid, not the monitoring substrate: specification
// conformance is judged by src/spec and src/lspec over typed snapshots, and
// the typed record of "what happened" is the obs::EventBus. The trace exists
// so that failing tests and example binaries can print the tail of a run in
// human terms; the harness keeps it as a lazily-rendered text view over the
// event bus.
//
// Storage is a circular buffer allocated once from `capacity`; eviction
// reuses the evicted slot's string buffer (assign, not reallocate), so a
// steady-state trace performs no per-record allocation once every retained
// string has grown to its high-water length.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace graybox::sim {

class Trace {
 public:
  /// Keep at most `capacity` most-recent records. 0 disables recording.
  explicit Trace(std::size_t capacity = 4096)
      : capacity_(capacity), slots_(capacity) {}

  void record(SimTime t, std::string_view text);

  struct Record {
    SimTime time = 0;
    std::string text;
  };

  /// Number of retained records (<= capacity).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  /// i-th retained record, 0 = oldest.
  const Record& at(std::size_t i) const;

  /// Total records ever recorded, retained or evicted.
  std::uint64_t total_recorded() const { return total_; }
  void clear();

  /// Print the retained tail, one "[time] text" line per record.
  void dump(std::ostream& os, std::size_t last_n = 64) const;

 private:
  std::size_t capacity_;
  std::vector<Record> slots_;
  std::size_t head_ = 0;  ///< index of the oldest retained record
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace graybox::sim
