// Bounded textual trace of simulator activity.
//
// The trace is a debugging aid, not the monitoring substrate: specification
// conformance is judged by src/spec and src/lspec over typed snapshots. The
// trace exists so that failing tests and example binaries can print the tail
// of "what happened" in human terms.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace graybox::sim {

class Trace {
 public:
  /// Keep at most `capacity` most-recent records.
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(SimTime t, std::string text);

  /// Oldest-first access to the retained records.
  struct Record {
    SimTime time;
    std::string text;
  };
  const std::deque<Record>& records() const { return records_; }

  std::uint64_t total_recorded() const { return total_; }
  void clear();

  /// Print the retained tail, one "[time] text" line per record.
  void dump(std::ostream& os, std::size_t last_n = 64) const;

 private:
  std::size_t capacity_;
  std::deque<Record> records_;
  std::uint64_t total_ = 0;
};

}  // namespace graybox::sim
