// Deterministic discrete-event scheduler.
//
// The paper's execution model (Section 3.1) is asynchronous: "every process
// executes at its own speed and messages in the channels are subject to
// arbitrary but finite transmission delays". We realize that model as a
// single-threaded discrete-event simulation: every process step, message
// delivery, client decision, fault injection, and wrapper timeout is an
// event with a simulated timestamp; the scheduler executes events in
// (time, insertion-order) order, so a run is a pure function of its seed.
//
// Monitors (src/spec, src/lspec) attach as observers and are invoked after
// every executed event, which gives them the per-step global snapshots that
// the UNITY operators (unless / stable / leads-to) are defined over.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace graybox::sim {

/// Handle for a scheduled event; usable with Scheduler::cancel.
using EventId = std::uint64_t;

/// Handle for a registered observer; usable with Scheduler::remove_observer.
using ObserverId = std::uint64_t;

class Scheduler {
 public:
  using EventFn = std::function<void()>;
  /// Observers run after each executed event with the current time.
  using Observer = std::function<void(SimTime)>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only while events execute.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal times run
  /// in scheduling order, which keeps runs deterministic.
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedule `fn` `delay` ticks from now.
  EventId schedule_after(SimTime delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Execute the single earliest pending event. Returns false when idle.
  bool step();

  /// Execute every event with time <= t, then set now to t.
  void run_until(SimTime t);

  /// Execute events for `duration` ticks from the current time.
  void run_for(SimTime duration) { run_until(now_ + duration); }

  /// Drain the queue completely. `max_events` bounds runaway event chains
  /// (a chain that exceeds it aborts via contract failure, since no
  /// experiment in this repository legitimately schedules that many).
  void run_all(std::uint64_t max_events = 50'000'000);

  bool idle() const { return pending_ids_.empty(); }
  std::size_t pending() const { return pending_ids_.size(); }

  /// Total number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Register a post-event observer (monitor hook). Observers fire in
  /// registration order; the returned handle removes one again.
  ObserverId add_observer(Observer obs);

  /// Unregister an observer. Safe to call from within an observer callback
  /// (the slot is emptied immediately and reclaimed after the dispatch
  /// round). Returns false for an unknown or already-removed handle.
  bool remove_observer(ObserverId id);

  std::size_t observer_count() const;

  /// Cancelled-but-not-yet-reclaimed events. Cancellation is lazy (the
  /// queue entry stays until popped or compacted); compaction in cancel()
  /// keeps this bounded by the live event count, so long engine runs that
  /// cancel far-future timers repeatedly cannot leak.
  std::size_t tombstones() const { return cancelled_.size(); }

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as the FIFO tiebreaker at equal times
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };
  struct ObserverSlot {
    ObserverId id;
    Observer fn;  // empty after removal
  };

  void execute(Entry entry);
  /// Rebuild the queue without the cancelled entries once tombstones
  /// outnumber live events (amortized O(1) per cancel).
  void compact_if_worthwhile();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;  // lazy-deletion tombstones
  std::vector<ObserverSlot> observers_;
  bool dispatching_observers_ = false;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  ObserverId next_observer_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace graybox::sim
