// Deterministic discrete-event scheduler.
//
// The paper's execution model (Section 3.1) is asynchronous: "every process
// executes at its own speed and messages in the channels are subject to
// arbitrary but finite transmission delays". We realize that model as a
// single-threaded discrete-event simulation: every process step, message
// delivery, client decision, fault injection, and wrapper timeout is an
// event with a simulated timestamp; the scheduler executes events in
// (time, insertion-order) order, so a run is a pure function of its seed.
//
// Monitors (src/spec, src/lspec) attach as observers and are invoked after
// every executed event, which gives them the per-step global snapshots that
// the UNITY operators (unless / stable / leads-to) are defined over.
//
// Hot-path layout (the simulator substrate is the dominant cost of every
// BENCH_* grid, so the core is allocation-free in steady state):
//
//   * Callbacks are InplaceFunction<void(), 48> — captures up to 48 bytes
//     live inside the event slot, so scheduling allocates nothing.
//   * Events live in a two-level bucketed time wheel. Near events
//     (time - wheel base < kWheelSize) go into per-tick FIFO buckets —
//     append order IS insertion order, which preserves the deterministic
//     equal-time tiebreak without any comparator. Far events overflow into
//     a (time, seq) min-heap spill level and are promoted into buckets,
//     in insertion order, when the wheel base advances — and the base only
//     advances past a tick once no event can be scheduled at it anymore,
//     so promoted events always precede later direct inserts at the same
//     tick. Execution order is therefore bit-identical to the previous
//     binary-heap implementation.
//   * Event slots are generation-stamped and recycled through a free list:
//     an EventId is (generation << 32 | slot), so cancel() is a single
//     array probe — no hashing, no tombstone set. Queue entries whose
//     generation no longer matches their slot are stale and skipped.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/inplace_function.hpp"

namespace graybox::sim {

/// Handle for a scheduled event; usable with Scheduler::cancel.
/// Encodes (generation << 32 | slot); 0 is never a valid handle.
using EventId = std::uint64_t;

/// Handle for a registered observer; usable with Scheduler::remove_observer.
using ObserverId = std::uint64_t;

/// Same-tick choice hook for systematic exploration (src/mc). When two or
/// more live events are ready at the current tick the scheduler asks the
/// hook which one runs next instead of taking insertion order. With no hook
/// installed (the default) execution stays bit-identical to the legacy
/// insertion-order tiebreak.
class ChoiceHook {
 public:
  virtual ~ChoiceHook() = default;
  /// `tags[i]` is the i-th ready event's tag in insertion order (0 for
  /// untagged events — timers, polls). Must return an index < count; the
  /// indexed event executes now, the rest stay queued in their original
  /// relative order.
  virtual std::size_t choose(SimTime now, const std::uint64_t* tags,
                             std::size_t count) = 0;
};

class Scheduler {
 public:
  /// Event callbacks: captures <= 48 bytes are stored inline in the event
  /// slot (every callback in src/ fits), larger ones fall back to the heap.
  using EventFn = InplaceFunction<void(), 48>;
  /// Observers run after each executed event with the current time. Same
  /// inline-storage dispatch as EventFn: the per-event observer fan-out is
  /// on the hot path, so it must not bounce through std::function.
  using Observer = InplaceFunction<void(SimTime), 48>;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only while events execute.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal times run
  /// in scheduling order, which keeps runs deterministic.
  EventId schedule_at(SimTime t, EventFn fn);

  /// schedule_at with a caller-chosen 64-bit tag, surfaced to an installed
  /// ChoiceHook when this event ties with others at its tick. Tag 0 means
  /// "untagged" (what plain schedule_at stamps).
  EventId schedule_at_tagged(SimTime t, std::uint64_t tag, EventFn fn);

  /// Schedule `fn` `delay` ticks from now.
  EventId schedule_after(SimTime delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed. O(1): one slot probe, no hashing.
  bool cancel(EventId id);

  /// Execute the single earliest pending event. Returns false when idle.
  bool step() { return step_bounded(kNever); }

  /// Execute the single earliest pending event if its time is <= limit.
  /// Returns false when idle or when the next event lies beyond the limit
  /// (now() is left untouched in that case). The model checker's drive
  /// loop uses this to run one decision at a time under a horizon.
  bool step_until(SimTime limit) { return step_bounded(limit); }

  /// Execute every event with time <= t, then set now to t.
  void run_until(SimTime t);

  /// Execute events for `duration` ticks from the current time, saturating
  /// at kNever: a duration that would wrap past the end of simulated time
  /// runs to kNever instead of tripping run_until's t >= now precondition.
  void run_for(SimTime duration) {
    run_until(duration >= kNever - now_ ? kNever : now_ + duration);
  }

  /// Install (or with nullptr remove) the same-tick choice hook. The hook
  /// must outlive the scheduler or be removed before it dies.
  void set_choice_hook(ChoiceHook* hook) { choice_hook_ = hook; }
  ChoiceHook* choice_hook() const { return choice_hook_; }

  /// Drain the queue completely. `max_events` bounds runaway event chains
  /// (a chain that exceeds it aborts via contract failure, since no
  /// experiment in this repository legitimately schedules that many).
  void run_all(std::uint64_t max_events = 50'000'000);

  bool idle() const { return live_ == 0; }
  std::size_t pending() const { return live_; }

  /// Total number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Register a post-event observer (monitor hook). Observers fire in
  /// registration order; the returned handle removes one again.
  ObserverId add_observer(Observer obs);

  /// Unregister an observer. Safe to call from within an observer callback
  /// (the slot is emptied immediately and reclaimed after the dispatch
  /// round). Returns false for an unknown or already-removed handle.
  bool remove_observer(ObserverId id);

  std::size_t observer_count() const;

  /// Cancelled-but-not-yet-reclaimed queue entries. Cancellation itself is
  /// O(1) (the slot is freed immediately; only the 8-byte queue entry
  /// lingers until visited); spill-level compaction keeps this bounded by
  /// the live event count, so long engine runs that cancel far-future
  /// timers repeatedly cannot leak.
  std::size_t tombstones() const { return bucket_stale_ + spill_stale_; }

 private:
  static constexpr std::size_t kWheelBits = 10;
  static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSize - 1;
  static constexpr std::size_t kBitmapWords = kWheelSize / 64;

  /// One allocated event. `gen` increments every time the slot is freed
  /// (cancel or execution), invalidating any queue entry that still points
  /// here with the old generation.
  struct Slot {
    EventFn fn;
    /// Choice-hook tag (0 = untagged); stamped by schedule_at_tagged.
    std::uint64_t tag = 0;
    std::uint32_t gen = 1;
    bool in_spill = false;
  };
  /// Wheel bucket entry: 8 bytes, validated against the slot's generation.
  struct BucketEntry {
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Per-tick FIFO bucket. `head` indexes the next unconsumed entry so a
  /// partially drained bucket never shifts its tail.
  struct Bucket {
    std::vector<BucketEntry> entries;
    std::size_t head = 0;
  };
  /// Spill-level entry for events beyond the wheel horizon. `seq` is the
  /// global insertion tiebreaker (the wheel itself needs none: bucket
  /// append order is insertion order).
  struct SpillEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct SpillLater {
    bool operator()(const SpillEntry& a, const SpillEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct ObserverSlot {
    ObserverId id;
    Observer fn;  // empty after removal
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool bucket_occupied(std::size_t idx) const {
    return (occupied_[idx >> 6] >> (idx & 63)) & 1u;
  }
  void mark_occupied(std::size_t idx) {
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void clear_occupied(std::size_t idx) {
    occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }
  /// Circular distance (in ticks) from the wheel base to the first occupied
  /// bucket, or kWheelSize when the wheel is empty.
  std::size_t next_occupied_distance() const;

  /// Move every spill event with time < wheel_base_ + kWheelSize into its
  /// bucket, in (time, seq) order.
  void promote_spill();
  /// With no live event in the wheel, jump the base to the earliest live
  /// spill time and promote.
  void advance_to_spill();
  /// Rebuild the spill heap without stale entries once they outnumber live
  /// ones (amortized O(1) per cancel).
  void compact_spill_if_worthwhile();
  /// Drop every stale queue entry (wheel + spill). Called when the last
  /// live event is gone so an idle scheduler holds no tombstones.
  void purge_stale();

  /// Execute the earliest pending event if its time is <= limit.
  bool step_bounded(SimTime limit);
  void dispatch_observers();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Bucket> buckets_;
  std::array<std::uint64_t, kBitmapWords> occupied_{};
  std::vector<SpillEntry> spill_;  // binary heap ordered by SpillLater
  /// Lowest simulated time currently mapped by the wheel. Never advances
  /// past a pending wheel event; always <= now_.
  SimTime wheel_base_ = 0;
  std::size_t live_ = 0;        // pending events, wheel + spill
  std::size_t wheel_live_ = 0;  // pending events currently in buckets
  std::size_t bucket_stale_ = 0;
  std::size_t spill_stale_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<ObserverSlot> observers_;
  ChoiceHook* choice_hook_ = nullptr;
  /// Scratch for the hook call; member so the hot path never allocates
  /// once it has grown to the largest same-tick tie seen.
  std::vector<std::uint64_t> choice_tags_;
  bool dispatching_observers_ = false;
  SimTime now_ = 0;
  ObserverId next_observer_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace graybox::sim
