// Umbrella header for the graybox-stabilization library.
//
// Most applications only need core/harness.hpp (the assembled system) or
// wrapper/graybox_wrapper.hpp (to wrap their own TmeProcess); this header
// pulls in the full public API for exploratory use:
//
//   #include "graybox.hpp"
//   using namespace graybox;
//
// Layers, bottom to top (each only depends on the ones above it):
//   common  -> sim, clock -> net -> algebra, spec -> me -> lspec
//           -> wrapper -> core
#pragma once

#include "common/flags.hpp"     // IWYU pragma: export
#include "common/parallel.hpp"  // IWYU pragma: export
#include "common/report.hpp"    // IWYU pragma: export
#include "common/rng.hpp"       // IWYU pragma: export
#include "common/stats.hpp"     // IWYU pragma: export
#include "common/table.hpp"     // IWYU pragma: export
#include "common/types.hpp"     // IWYU pragma: export

#include "sim/scheduler.hpp"    // IWYU pragma: export
#include "sim/timer.hpp"        // IWYU pragma: export
#include "sim/trace.hpp"        // IWYU pragma: export

#include "clock/logical_clock.hpp"  // IWYU pragma: export
#include "clock/timestamp.hpp"      // IWYU pragma: export
#include "clock/vector_clock.hpp"   // IWYU pragma: export

#include "net/channel.hpp"         // IWYU pragma: export
#include "net/delay.hpp"           // IWYU pragma: export
#include "net/fault_injector.hpp"  // IWYU pragma: export
#include "net/message.hpp"         // IWYU pragma: export
#include "net/network.hpp"         // IWYU pragma: export

#include "algebra/bitset.hpp"     // IWYU pragma: export
#include "algebra/checks.hpp"     // IWYU pragma: export
#include "algebra/generate.hpp"   // IWYU pragma: export
#include "algebra/scc.hpp"        // IWYU pragma: export
#include "algebra/synthesis.hpp"  // IWYU pragma: export
#include "algebra/system.hpp"     // IWYU pragma: export
#include "algebra/tolerance.hpp"  // IWYU pragma: export

#include "spec/monitor.hpp"    // IWYU pragma: export
#include "spec/unity.hpp"      // IWYU pragma: export
#include "spec/violation.hpp"  // IWYU pragma: export

#include "me/client.hpp"           // IWYU pragma: export
#include "me/fragile.hpp"          // IWYU pragma: export
#include "me/lamport.hpp"          // IWYU pragma: export
#include "me/ricart_agrawala.hpp"  // IWYU pragma: export
#include "me/tme_process.hpp"      // IWYU pragma: export

#include "lspec/lspec_clause_monitors.hpp"  // IWYU pragma: export
#include "lspec/program_monitors.hpp"       // IWYU pragma: export
#include "lspec/snapshot.hpp"               // IWYU pragma: export
#include "lspec/tme_monitors.hpp"           // IWYU pragma: export

#include "wrapper/graybox_wrapper.hpp"  // IWYU pragma: export

#include "core/engine.hpp"         // IWYU pragma: export
#include "core/experiment.hpp"     // IWYU pragma: export
#include "core/harness.hpp"        // IWYU pragma: export
#include "core/stabilization.hpp"  // IWYU pragma: export
