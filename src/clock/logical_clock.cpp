#include "clock/logical_clock.hpp"

#include <algorithm>

namespace graybox::clk {

Timestamp LogicalClock::tick() {
  ++counter_;
  return now();
}

Timestamp LogicalClock::witness(const Timestamp& observed) {
  counter_ = std::max(counter_, observed.counter);
  return tick();
}

}  // namespace graybox::clk
