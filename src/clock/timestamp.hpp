// Timestamps and the `lt` total order (paper Section 3.2, Timestamp Spec).
//
// The Environment Spec requires timestamps "from a total domain" such that
// e hb f implies ts.e < ts.f. Following the paper's instantiation, a
// timestamp is a Lamport logical-clock value paired with the process id as
// tiebreaker:
//
//   lc.e lt lc.f  ==  lc.e < lc.f  \/  (lc.e = lc.f  /\  j < k)
//
// Timestamp is a regular value type: totally ordered, hashable, cheap to
// copy. Counter 0 with pid p is the initial "no event yet" timestamp of
// process p (Init: ts.j = 0 /\ REQ.j = 0).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace graybox::clk {

struct Timestamp {
  std::uint64_t counter = 0;
  ProcessId pid = 0;

  /// The paper's `lt` relation is exactly lexicographic (counter, pid)
  /// comparison, so defaulted three-way comparison implements it.
  friend constexpr auto operator<=>(const Timestamp&,
                                    const Timestamp&) = default;

  std::string to_string() const;
};

/// The paper's `lt` predicate, named for readability at call sites that
/// quote Lspec clauses ("j.REQk lt REQj").
constexpr bool lt(const Timestamp& a, const Timestamp& b) { return a < b; }

std::ostream& operator<<(std::ostream& os, const Timestamp& ts);

}  // namespace graybox::clk
