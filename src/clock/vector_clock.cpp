#include "clock/vector_clock.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::clk {

VectorClock::VectorClock(ProcessId pid, std::size_t n)
    : components_(n, 0), pid_(pid) {
  GBX_EXPECTS(pid < n);
}

void VectorClock::tick() {
  GBX_EXPECTS(!components_.empty());
  ++components_[pid_];
}

void VectorClock::witness(const VectorClock& other) {
  GBX_EXPECTS(other.components_.size() == components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i)
    components_[i] = std::max(components_[i], other.components_[i]);
  tick();
}

bool VectorClock::happened_before(const VectorClock& other) const {
  GBX_EXPECTS(other.components_.size() == components_.size());
  bool some_strict = false;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] > other.components_[i]) return false;
    if (components_[i] < other.components_[i]) some_strict = true;
  }
  return some_strict;
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !happened_before(other) && !other.happened_before(*this) &&
         components_ != other.components_;
}

std::string VectorClock::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(components_[i]);
  }
  out += ">";
  return out;
}

}  // namespace graybox::clk
