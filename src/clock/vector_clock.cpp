#include "clock/vector_clock.hpp"

#include <algorithm>

namespace graybox::clk {

VectorClock::VectorClock(ProcessId pid, std::size_t n) : pid_(pid) {
  GBX_EXPECTS(pid < n);
  size_ = static_cast<std::uint32_t>(n);
  if (n > kInlineComponents) heap_ = std::make_unique<std::uint64_t[]>(n);
  std::fill_n(data(), n, 0);
}

void VectorClock::copy_from(const VectorClock& other) {
  if (other.size_ > kInlineComponents) {
    // Reuse an existing heap block of the right size instead of
    // reallocating (clocks in a system all share one n).
    if (!heap_ || size_ != other.size_)
      heap_ = std::make_unique<std::uint64_t[]>(other.size_);
  } else {
    heap_.reset();
  }
  size_ = other.size_;
  pid_ = other.pid_;
  std::copy_n(other.data(), size_, data());
}

void VectorClock::move_from(VectorClock& other) noexcept {
  heap_ = std::move(other.heap_);
  size_ = other.size_;
  pid_ = other.pid_;
  if (!heap_) std::copy_n(other.inline_, size_, inline_);
  other.size_ = 0;
  other.pid_ = 0;
}

void VectorClock::tick() {
  GBX_EXPECTS(size_ > 0);
  ++data()[pid_];
}

void VectorClock::witness(const VectorClock& other) {
  GBX_EXPECTS(other.size_ == size_);
  std::uint64_t* mine = data();
  const std::uint64_t* theirs = other.data();
  for (std::size_t i = 0; i < size_; ++i)
    mine[i] = std::max(mine[i], theirs[i]);
  tick();
}

bool VectorClock::happened_before(const VectorClock& other) const {
  GBX_EXPECTS(other.size_ == size_);
  const std::uint64_t* mine = data();
  const std::uint64_t* theirs = other.data();
  bool some_strict = false;
  for (std::size_t i = 0; i < size_; ++i) {
    if (mine[i] > theirs[i]) return false;
    if (mine[i] < theirs[i]) some_strict = true;
  }
  return some_strict;
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  if (happened_before(other) || other.happened_before(*this)) return false;
  return !std::equal(data(), data() + size_, other.data(),
                     other.data() + other.size_);
}

bool operator==(const VectorClock& a, const VectorClock& b) {
  // Same observable semantics as the old vector-backed default: equal
  // components and equal owner.
  return a.pid_ == b.pid_ && a.size_ == b.size_ &&
         std::equal(a.data(), a.data() + a.size_, b.data());
}

std::string VectorClock::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(data()[i]);
  }
  out += ">";
  return out;
}

}  // namespace graybox::clk
