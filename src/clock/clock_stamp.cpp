#include "clock/clock_stamp.hpp"

namespace graybox::clk {

ClockStamp ClockStamp::dense(const VectorClock& clock) {
  ClockStamp s;
  s.mode_ = Mode::kDense;
  s.dense_ = clock;
  s.n_ = static_cast<std::uint32_t>(clock.size());
  s.origin_ = clock.owner();
  return s;
}

ClockStamp ClockStamp::delta(ProcessId origin, std::size_t n) {
  ClockStamp s;
  s.mode_ = Mode::kDelta;
  s.origin_ = origin;
  s.n_ = static_cast<std::uint32_t>(n);
  return s;
}

void ClockStamp::copy_from(const ClockStamp& other) {
  mode_ = other.mode_;
  count_ = other.count_;
  origin_ = other.origin_;
  n_ = other.n_;
  for (std::uint16_t i = 0; i < count_; ++i) inline_[i] = other.inline_[i];
  spill_ = other.spill_ ? std::make_unique<std::vector<Entry>>(*other.spill_)
                        : nullptr;
  dense_ = other.dense_;
}

std::size_t ClockStamp::size() const {
  switch (mode_) {
    case Mode::kEmpty:
      return 0;
    case Mode::kDense:
      return dense_.size();
    case Mode::kDelta:
      return n_;
  }
  return 0;
}

bool ClockStamp::add_entry(std::uint32_t comp, std::uint64_t value) {
  GBX_EXPECTS(is_delta());
  GBX_EXPECTS(comp < n_);
  if (spill_) {
    spill_->push_back({comp, value});
    return true;
  }
  if (count_ == kInlineEntries) return false;
  inline_[count_++] = {comp, value};
  return true;
}

bool ClockStamp::contains(std::uint32_t comp) const {
  for (const Entry& e : entries())
    if (e.comp == comp) return true;
  return false;
}

void ClockStamp::push_unchecked(Entry e) {
  if (!spill_ && count_ < kInlineEntries) {
    inline_[count_++] = e;
    return;
  }
  if (!spill_) {
    spill_ = std::make_unique<std::vector<Entry>>(inline_, inline_ + count_);
    count_ = 0;
  }
  spill_->push_back(e);
}

void ClockStamp::absorb_older(const ClockStamp& older) {
  if (is_dense() || older.empty()) return;
  GBX_EXPECTS(is_delta());
  if (older.is_dense()) {
    // The older full clock overlaid with this stamp's newer entries is
    // exactly this message's at-send clock: every component not in the
    // delta was unchanged since the older stamp was taken.
    VectorClock full = older.dense_clock();
    for (const Entry& e : entries()) full.set_component(e.comp, e.value);
    ClockStamp densified = ClockStamp::dense(full);
    densified.origin_ = origin_;
    *this = std::move(densified);
    return;
  }
  for (const Entry& e : older.entries())
    if (!contains(e.comp)) push_unchecked(e);
}

VectorClock ClockStamp::to_clock() const {
  if (is_dense()) return dense_;
  VectorClock clock(origin_, n_);
  if (is_delta())
    for (const Entry& e : entries()) clock.set_component(e.comp, e.value);
  return clock;
}

std::string ClockStamp::to_string() const {
  switch (mode_) {
    case Mode::kEmpty:
      return "stamp{}";
    case Mode::kDense:
      return "stamp{dense " + dense_.to_string() + "}";
    case Mode::kDelta: {
      std::string out = "stamp{delta p" + std::to_string(origin_) + "/" +
                        std::to_string(n_) + ":";
      for (const Entry& e : entries())
        out += " " + std::to_string(e.comp) + "=" + std::to_string(e.value);
      out += "}";
      return out;
    }
  }
  return "stamp{?}";
}

}  // namespace graybox::clk
