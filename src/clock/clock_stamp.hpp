// The wire representation of a monitor-side vector clock.
//
// Dense clocks made every message at N=256 carry (and heap-copy) a 2KB
// component array even though, between two consecutive sends on one channel,
// only the components the sender witnessed in that window actually changed.
// A ClockStamp carries just that changed set as {component, value} entries;
// the receiver folds them (componentwise max) into its own clock, which is
// bit-identical to witnessing the full dense clock because every omitted
// component is unchanged since the previous stamp enqueued on the same FIFO
// channel — the receiver already folded a value at least as large.
//
// Three modes:
//   * empty — fault-fabricated messages; delivery just ticks (pre-existing
//     semantics for size-mismatched clocks);
//   * dense — a full VectorClock, used when the changed set exceeds the
//     entry budget, for the first send on a channel after a clear, and in
//     reference mode (Network::set_dense_stamps) for golden equivalence;
//   * delta — the changed components only, inline up to kInlineEntries and
//     spilling to the heap only when fault repairs union stamps together.
//
// The delta encoding leans on channel FIFO order. Faults that remove or
// reorder queued messages break the "previous stamp was folded first"
// induction, so the channel repairs stamps at fault time (absorb_older):
// the surviving successor absorbs the removed stamp's entries, restoring
// exactly the information a dense stamp would have carried.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clock/vector_clock.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"

namespace graybox::clk {

class ClockStamp {
 public:
  /// Entries kept inline in the message; beyond this a send falls back to a
  /// dense stamp (fault repairs may still spill past it, see absorb_older).
  static constexpr std::size_t kInlineEntries = 14;

  struct Entry {
    std::uint32_t comp = 0;
    std::uint64_t value = 0;
  };

  /// Empty stamp: a fabricated message with no clock information.
  ClockStamp() = default;

  ClockStamp(const ClockStamp& other) { copy_from(other); }
  ClockStamp& operator=(const ClockStamp& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  ClockStamp(ClockStamp&&) noexcept = default;
  ClockStamp& operator=(ClockStamp&&) noexcept = default;

  /// Full-clock stamp (the pre-sparse encoding, byte-for-byte).
  static ClockStamp dense(const VectorClock& clock);

  /// Empty delta stamp for a system of `n` processes; fill via add_entry.
  static ClockStamp delta(ProcessId origin, std::size_t n);

  bool empty() const { return mode_ == Mode::kEmpty; }
  bool is_dense() const { return mode_ == Mode::kDense; }
  bool is_delta() const { return mode_ == Mode::kDelta; }

  /// Number of clock components this stamp speaks for (0 when empty).
  /// Network::deliver treats size() == n as "genuine", matching the old
  /// dense-clock check.
  std::size_t size() const;

  ProcessId origin() const { return origin_; }

  /// The full clock; requires is_dense().
  const VectorClock& dense_clock() const {
    GBX_EXPECTS(is_dense());
    return dense_;
  }

  /// The changed components; requires is_delta().
  std::span<const Entry> entries() const {
    GBX_EXPECTS(is_delta());
    return spill_ ? std::span<const Entry>(spill_->data(), spill_->size())
                  : std::span<const Entry>(inline_, count_);
  }

  /// Append one changed component to a delta stamp. Returns false when the
  /// inline budget is exhausted — the caller falls back to a dense stamp.
  /// (Only absorb_older may grow a stamp past the inline budget.)
  bool add_entry(std::uint32_t comp, std::uint64_t value);

  /// Fault repair: incorporate a stamp that was enqueued *before* this one
  /// on the same channel but will no longer be delivered first (dropped,
  /// cleared, or reordered behind). This stamp's entries win on conflict —
  /// same-sender clocks are componentwise monotone, so the newer value
  /// already dominates. A delta absorbing a dense stamp densifies: the
  /// older full clock overlaid with this stamp's entries reconstructs this
  /// message's full at-send clock exactly.
  void absorb_older(const ClockStamp& older);

  /// Materialize as a VectorClock (delta entries over zeros). Test/debug
  /// helper — the hot paths fold entries directly.
  VectorClock to_clock() const;

  std::string to_string() const;

 private:
  enum class Mode : std::uint8_t { kEmpty, kDense, kDelta };

  bool contains(std::uint32_t comp) const;
  void push_unchecked(Entry e);
  void copy_from(const ClockStamp& other);

  Mode mode_ = Mode::kEmpty;
  std::uint16_t count_ = 0;   // valid entries in inline_ (unused when spilled)
  ProcessId origin_ = 0;
  std::uint32_t n_ = 0;       // system size a delta stamp speaks for
  Entry inline_[kInlineEntries];
  /// Heap overflow, engaged only by fault-repair unions; when set it holds
  /// ALL entries and inline_ is abandoned.
  std::unique_ptr<std::vector<Entry>> spill_;
  VectorClock dense_;         // engaged only in dense mode
};

}  // namespace graybox::clk
