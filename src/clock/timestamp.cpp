#include "clock/timestamp.hpp"

#include <ostream>

namespace graybox::clk {

std::string Timestamp::to_string() const {
  return std::to_string(counter) + "." + std::to_string(pid);
}

std::ostream& operator<<(std::ostream& os, const Timestamp& ts) {
  return os << ts.to_string();
}

}  // namespace graybox::clk
