// Lamport logical clock [Lamport 78], the paper's example of a component
// that *everywhere implements* Timestamp Spec: no matter what value the
// counter holds (including an adversarially corrupted one), ticking and
// witnessing preserve "hb implies lt" for all subsequent events.
//
// That everywhere property is what makes clock corruption a recoverable
// fault: a sky-high corrupted counter propagates (other clocks witness it
// and jump forward) but never stalls the system, and a corrupted-low counter
// is healed by the first message received from any peer ahead of it.
#pragma once

#include "clock/timestamp.hpp"

namespace graybox::clk {

class LogicalClock {
 public:
  explicit LogicalClock(ProcessId pid) : pid_(pid) {}

  /// Current value; the timestamp of the most recent local event.
  Timestamp now() const { return Timestamp{counter_, pid_}; }

  /// Advance for a local event (including sends) and return the new value.
  Timestamp tick();

  /// Incorporate a timestamp observed on a received message: the clock
  /// jumps above it, then ticks for the receive event itself.
  Timestamp witness(const Timestamp& observed);

  /// Fault hook: overwrite the counter with an arbitrary value. Models the
  /// "transiently and arbitrarily corrupted" process state of Section 3.1.
  void corrupt(std::uint64_t counter) { counter_ = counter; }

  ProcessId pid() const { return pid_; }

 private:
  std::uint64_t counter_ = 0;
  ProcessId pid_;
};

}  // namespace graybox::clk
