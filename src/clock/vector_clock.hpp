// Vector clocks, used only on the monitoring side.
//
// ME3 (first-come first-serve) is stated over Lamport's happened-before
// relation: "h.j /\ REQj hb REQk implies ts(e.j) < ts(e.k)". Lamport
// timestamps are consistent with hb but cannot *decide* it, so the TME Spec
// monitor tracks causality with vector clocks threaded through simulated
// messages as monitor-only metadata. The mutual-exclusion programs never
// read them — the substrate under test stays exactly the paper's.
//
// Storage: a clock travels by value inside every net::Message, so the
// component array lives inline for systems of up to kInlineComponents
// processes (every committed experiment fits) and only falls back to the
// heap beyond that. Copying a clock copies size() components, not the
// whole inline buffer, and steady-state message traffic allocates nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace graybox::clk {

class VectorClock {
 public:
  /// Systems up to this size keep their component array inline (no heap).
  static constexpr std::size_t kInlineComponents = 32;

  VectorClock() = default;
  /// Clock for `pid` in a system of `n` processes, all components zero.
  VectorClock(ProcessId pid, std::size_t n);

  VectorClock(const VectorClock& other) { copy_from(other); }
  VectorClock& operator=(const VectorClock& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  VectorClock(VectorClock&& other) noexcept { move_from(other); }
  VectorClock& operator=(VectorClock&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }

  /// Advance the owner's component for a local event.
  void tick();

  /// Merge a received clock (componentwise max), then tick.
  void witness(const VectorClock& other);

  /// True iff this clock's event happened-before the other's (strictly:
  /// componentwise <= and at least one strict <).
  bool happened_before(const VectorClock& other) const;

  /// Neither happened-before the other and they differ.
  bool concurrent_with(const VectorClock& other) const;

  std::size_t size() const { return size_; }
  /// Component access on the monitor hot loop: unchecked indexing behind a
  /// contract (the bounds-checked .at() it replaces paid an exception
  /// branch per read in every snapshot row fill).
  std::uint64_t component(std::size_t i) const {
    GBX_EXPECTS(i < size_);
    return data()[i];
  }
  /// Raw component array (monitor-side flattened snapshot rows copy it).
  std::span<const std::uint64_t> components() const { return {data(), size_}; }

  ProcessId owner() const { return pid_; }

  /// Overwrite one component. Used by delta-stamp materialization and by
  /// fault repairs that overlay newer entries onto an older dense clock.
  void set_component(std::size_t i, std::uint64_t v) {
    GBX_EXPECTS(i < size_);
    data()[i] = v;
  }

  /// Max-in one received component, without the tick that witness()
  /// performs. Returns true when the component advanced. Folding a delta
  /// stamp entrywise and then ticking is bit-identical to witness() on the
  /// corresponding dense clock.
  bool fold(std::size_t i, std::uint64_t v) {
    GBX_EXPECTS(i < size_);
    if (v <= data()[i]) return false;
    data()[i] = v;
    return true;
  }

  std::string to_string() const;

  friend bool operator==(const VectorClock& a, const VectorClock& b);

 private:
  const std::uint64_t* data() const { return heap_ ? heap_.get() : inline_; }
  std::uint64_t* data() { return heap_ ? heap_.get() : inline_; }
  void copy_from(const VectorClock& other);
  void move_from(VectorClock& other) noexcept;

  std::uint64_t inline_[kInlineComponents];
  /// Heap fallback, engaged only when size_ > kInlineComponents.
  std::unique_ptr<std::uint64_t[]> heap_;
  std::uint32_t size_ = 0;
  ProcessId pid_ = 0;
};

}  // namespace graybox::clk
