// Vector clocks, used only on the monitoring side.
//
// ME3 (first-come first-serve) is stated over Lamport's happened-before
// relation: "h.j /\ REQj hb REQk implies ts(e.j) < ts(e.k)". Lamport
// timestamps are consistent with hb but cannot *decide* it, so the TME Spec
// monitor tracks causality with vector clocks threaded through simulated
// messages as monitor-only metadata. The mutual-exclusion programs never
// read them — the substrate under test stays exactly the paper's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace graybox::clk {

class VectorClock {
 public:
  VectorClock() = default;
  /// Clock for `pid` in a system of `n` processes, all components zero.
  VectorClock(ProcessId pid, std::size_t n);

  /// Advance the owner's component for a local event.
  void tick();

  /// Merge a received clock (componentwise max), then tick.
  void witness(const VectorClock& other);

  /// True iff this clock's event happened-before the other's (strictly:
  /// componentwise <= and at least one strict <).
  bool happened_before(const VectorClock& other) const;

  /// Neither happened-before the other and they differ.
  bool concurrent_with(const VectorClock& other) const;

  std::size_t size() const { return components_.size(); }
  std::uint64_t component(std::size_t i) const { return components_.at(i); }
  /// Raw component array (monitor-side flattened snapshot rows copy it).
  const std::vector<std::uint64_t>& components() const { return components_; }

  std::string to_string() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::uint64_t> components_;
  ProcessId pid_ = 0;
};

}  // namespace graybox::clk
