// Automatic synthesis of graybox stabilization (paper Section 6: "Another
// direction we are pursuing is automatic synthesis of graybox
// dependability.").
//
// Over the finite-system algebra the synthesis question is concrete: given
// only the specification A, construct a wrapper W such that A [] W — and by
// the graybox argument every everywhere implementation boxed with W — is
// stabilizing to A.
//
// One subtlety makes this interesting. Under the *demonic* all-paths
// semantics of checks.hpp, boxing can only ADD computations, so no wrapper
// can repair a specification whose own stray states cycle: the adversary
// simply never takes the wrapper's recovery edges. What makes real wrappers
// work is the fairness of their execution model — the paper writes W in
// UNITY, whose semantics executes every action infinitely often, and the
// deployable W' realizes exactly that with its timeout. (This is why the
// wrapper has a timer at all.)
//
// Accordingly this module provides both halves:
//
//   * synthesize_reset_wrapper(A): the canonical recovery wrapper — one
//     reset edge from every state outside Reach_A(A.init) to an initial
//     state of A. Derived from A alone: graybox by construction.
//
//   * fair_stabilizes_to(C, W, A): stabilization of C [] W under
//     unconditional fairness of the wrapper action (each execution takes a
//     wrapper step infinitely often; a wrapper step at a state where W has
//     no edge skips). Decided exactly by an adversary-graph construction:
//     the adversary avoids convergence iff the "bad" region contains a
//     cycle it can traverse while serving wrapper steps harmlessly.
//
// tests/test_synthesis.cpp property-checks the synthesis theorem (the
// synthesized wrapper fairly stabilizes every everywhere implementation of
// A) and the relation between the demonic and fair semantics; the
// bench_theorems_random binary measures how often fairness is *necessary*.
#pragma once

#include "algebra/system.hpp"

namespace graybox::algebra {

/// The canonical graybox recovery wrapper for specification `a`: for every
/// state outside Reach_a(a.init), one reset edge to the lowest-index
/// initial state of `a`; no edges elsewhere; initial states = all states
/// (a wrapper does not constrain initialization). Requires a well-formed
/// `a`. The result is NOT total on its own — it acts only where repair is
/// needed — which is fine: it is a wrapper, boxed onto total systems.
System synthesize_reset_wrapper(const System& a);

/// Stabilization of C [] W to A under unconditional fairness of the
/// wrapper action. Exact over ultimately-periodic computations:
///
///   1. G := greatest subset of Reach_A(A.init) closed under C u W whose
///      internal edges are A-edges (once inside G, every continuation is a
///      suffix of an A-computation from A's initial states);
///   2. the adversary wins iff the region B = States \ G contains a cycle
///      of (C u W)-edges that either uses a W-edge staying in B or passes
///      through a state where W has no edge — along such a cycle every
///      fairness obligation can be served (by that W-edge, or by skipping
///      at the W-edgeless state) without ever being ejected into G.
///
/// fair_stabilizes_to == no such cycle. The procedure is exact when the
/// wrapper acts only outside Reach_A(A.init) (recovery wrappers, including
/// every synthesized one); wrappers that also act inside the reachable
/// region can shrink G below the true convergence set, making the verdict
/// conservative (it may say "no" where the true fair semantics stabilizes,
/// never the reverse). With W empty and C an everywhere implementation it
/// coincides with stabilizes_to(C, A).
bool fair_stabilizes_to(const System& c, const System& w, const System& a);

/// The convergence region G used by fair_stabilizes_to (exposed for tests
/// and diagnostics).
Bitset fair_convergence_region(const System& c, const System& w,
                               const System& a);

}  // namespace graybox::algebra
