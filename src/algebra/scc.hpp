// Strongly connected components (iterative Tarjan) over a System's
// transition graph. stabilizes_to reduces to "no cycle through a bad
// transition", and an edge lies on a cycle exactly when its endpoints share
// an SCC (or it is a self-loop), so SCC decomposition is the workhorse of
// the stabilization decision procedure.
#pragma once

#include <vector>

#include "algebra/system.hpp"

namespace graybox::algebra {

struct SccResult {
  /// Component id per state; ids are dense in [0, num_components).
  std::vector<std::size_t> component;
  std::size_t num_components = 0;

  bool same_component(State a, State b) const {
    return component[a] == component[b];
  }
};

SccResult strongly_connected_components(const System& system);

/// True iff the edge (from, to) — which must exist — lies on some cycle of
/// the system's transition graph.
bool edge_on_cycle(const System& system, const SccResult& scc, State from,
                   State to);

}  // namespace graybox::algebra
