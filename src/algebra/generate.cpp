#include "algebra/generate.hpp"

#include "common/contracts.hpp"

namespace graybox::algebra {

std::vector<std::string> figure1_state_names() {
  return {"s*", "s0", "s1", "s2", "s3"};
}

System figure1_specification() {
  System a(kFig1NumStates);
  a.add_transition(kFig1S0, kFig1S1);
  a.add_transition(kFig1S1, kFig1S2);
  a.add_transition(kFig1S2, kFig1S3);
  a.add_transition(kFig1S3, kFig1S3);
  // From the fault-introduced state s*, the specification's computation
  // "s*, s2, s3, ..." rejoins the initial computation: A stabilizes to A.
  a.add_transition(kFig1StateCorrupt, kFig1S2);
  a.set_initial(kFig1S0);
  return a;
}

System figure1_implementation() {
  System c(kFig1NumStates);
  c.add_transition(kFig1S0, kFig1S1);
  c.add_transition(kFig1S1, kFig1S2);
  c.add_transition(kFig1S2, kFig1S3);
  c.add_transition(kFig1S3, kFig1S3);
  // The implementation was never designed for s*: from there it spins and
  // never re-joins any computation of A from A's initial states.
  c.add_transition(kFig1StateCorrupt, kFig1StateCorrupt);
  c.set_initial(kFig1S0);
  return c;
}

System figure1_everywhere_implementation() {
  System c = figure1_implementation();
  c.remove_transition(kFig1StateCorrupt, kFig1StateCorrupt);
  c.add_transition(kFig1StateCorrupt, kFig1S2);
  return c;
}

System random_system(Rng& rng, const RandomSystemParams& params) {
  GBX_EXPECTS(params.num_states >= 1);
  System sys(params.num_states);
  for (State s = 0; s < params.num_states; ++s) {
    for (State t = 0; t < params.num_states; ++t) {
      if (rng.chance(params.edge_density)) sys.add_transition(s, t);
    }
  }
  sys.ensure_total();
  for (State s = 0; s < params.num_states; ++s) {
    if (rng.chance(params.initial_density)) sys.set_initial(s);
  }
  if (!sys.initial().any()) sys.set_initial(rng.index(params.num_states));
  GBX_ENSURES(sys.well_formed());
  return sys;
}

System random_everywhere_implementation(Rng& rng, const System& a) {
  GBX_EXPECTS(a.well_formed());
  System c(a.num_states());
  for (State s = 0; s < a.num_states(); ++s) {
    // Keep a random nonempty subset of a's successors: pick one guaranteed
    // survivor, then keep each other edge with probability 1/2.
    std::vector<State> successors;
    for (const auto t : bits(a.successors(s))) successors.push_back(t);
    const State survivor = successors[rng.index(successors.size())];
    for (const auto t : successors) {
      if (t == survivor || rng.chance(0.5)) c.add_transition(s, t);
    }
  }
  // Initial states: nonempty random subset of a's.
  std::vector<State> inits;
  for (const auto s : bits(a.initial())) inits.push_back(s);
  const State kept = inits[rng.index(inits.size())];
  for (const auto s : inits) {
    if (s == kept || rng.chance(0.5)) c.set_initial(s);
  }
  GBX_ENSURES(c.well_formed());
  return c;
}

System random_init_implementation(Rng& rng, const System& a) {
  System c = random_everywhere_implementation(rng, a);
  // Rewrite the rows of states unreachable from c's initial states with
  // arbitrary behaviour; [c => a]init is insensitive to them, but everywhere
  // implementation and stabilization generally break (Figure 1's shape).
  const Bitset reach = c.reachable_from_initial();
  for (State s = 0; s < c.num_states(); ++s) {
    if (reach.test(s)) continue;
    for (State t = 0; t < c.num_states(); ++t) {
      if (rng.chance(0.3))
        c.add_transition(s, t);
      else if (rng.chance(0.3))
        c.remove_transition(s, t);
    }
    if (c.successors(s).none()) c.add_transition(s, s);
  }
  GBX_ENSURES(c.well_formed());
  return c;
}

System random_wrapper(Rng& rng, const System& a, std::size_t extra_edges) {
  GBX_EXPECTS(a.well_formed());
  // A wrapper typically *adds* recovery transitions: start from a sparse
  // sub-relation of a (so that boxing does not remove behaviour a needs)
  // and sprinkle extra edges, often aimed back at a's reachable region.
  System w = random_everywhere_implementation(rng, a);
  const Bitset a_reach = a.reachable_from_initial();
  std::vector<State> reach_states;
  for (const auto s : bits(a_reach)) reach_states.push_back(s);
  for (std::size_t i = 0; i < extra_edges; ++i) {
    const State from = rng.index(a.num_states());
    const State to = rng.chance(0.7) && !reach_states.empty()
                         ? reach_states[rng.index(reach_states.size())]
                         : rng.index(a.num_states());
    w.add_transition(from, to);
  }
  // Wrappers are agnostic to initialization: allow every state, so boxing
  // with any system preserves that system's initial states.
  for (State s = 0; s < w.num_states(); ++s) w.set_initial(s);
  GBX_ENSURES(w.well_formed());
  return w;
}

System lift_local(const System& local, int which, std::size_t low_states,
                  std::size_t high_states) {
  GBX_EXPECTS(which == 0 || which == 1);
  GBX_EXPECTS(local.num_states() == (which == 0 ? low_states : high_states));
  const std::size_t product = low_states * high_states;
  System lifted(product);
  auto encode = [low_states](State low, State high) {
    return high * low_states + low;
  };
  for (State u = 0; u < local.num_states(); ++u) {
    for (const auto v : bits(local.successors(u))) {
      if (which == 0) {
        for (State w = 0; w < high_states; ++w)
          lifted.add_transition(encode(u, w), encode(v, w));
      } else {
        for (State w = 0; w < low_states; ++w)
          lifted.add_transition(encode(w, u), encode(w, v));
      }
    }
  }
  for (State u = 0; u < local.num_states(); ++u) {
    if (!local.is_initial(u)) continue;
    if (which == 0) {
      for (State w = 0; w < high_states; ++w) lifted.set_initial(encode(u, w));
    } else {
      for (State w = 0; w < low_states; ++w) lifted.set_initial(encode(w, u));
    }
  }
  GBX_ENSURES(lifted.well_formed());
  return lifted;
}

}  // namespace graybox::algebra
