#include "algebra/system.hpp"

#include <deque>

#include "common/contracts.hpp"

namespace graybox::algebra {

System::System(std::size_t num_states)
    : succ_(num_states, Bitset(num_states)), initial_(num_states) {}

void System::add_transition(State from, State to) {
  GBX_EXPECTS(from < num_states() && to < num_states());
  succ_[from].set(to);
}

void System::remove_transition(State from, State to) {
  GBX_EXPECTS(from < num_states() && to < num_states());
  succ_[from].reset(to);
}

bool System::has_transition(State from, State to) const {
  GBX_EXPECTS(from < num_states() && to < num_states());
  return succ_[from].test(to);
}

const Bitset& System::successors(State from) const {
  GBX_EXPECTS(from < num_states());
  return succ_[from];
}

void System::set_initial(State s, bool value) {
  GBX_EXPECTS(s < num_states());
  initial_.set(s, value);
}

bool System::total() const {
  if (num_states() == 0) return false;
  for (const auto& successors : succ_)
    if (successors.none()) return false;
  return true;
}

bool System::well_formed() const { return total() && initial_.any(); }

void System::ensure_total() {
  for (State s = 0; s < num_states(); ++s)
    if (succ_[s].none()) succ_[s].set(s);
}

std::size_t System::num_transitions() const {
  std::size_t total = 0;
  for (const auto& successors : succ_) total += successors.count();
  return total;
}

Bitset System::reachable_from(const Bitset& from) const {
  GBX_EXPECTS(from.size() == num_states());
  Bitset reached = from;
  std::deque<State> frontier;
  for (const auto s : bits(from)) frontier.push_back(s);
  while (!frontier.empty()) {
    const State s = frontier.front();
    frontier.pop_front();
    for (const auto t : bits(succ_[s])) {
      if (!reached.test(t)) {
        reached.set(t);
        frontier.push_back(t);
      }
    }
  }
  return reached;
}

System System::box(const System& a, const System& b) {
  GBX_EXPECTS(a.num_states() == b.num_states());
  System combined(a.num_states());
  for (State s = 0; s < a.num_states(); ++s) {
    combined.succ_[s] = a.succ_[s];
    combined.succ_[s] |= b.succ_[s];
  }
  combined.initial_ = a.initial_;
  combined.initial_ &= b.initial_;
  return combined;
}

bool System::relation_subset_of(const System& other) const {
  GBX_EXPECTS(other.num_states() == num_states());
  for (State s = 0; s < num_states(); ++s)
    if (!succ_[s].is_subset_of(other.succ_[s])) return false;
  return true;
}

std::string System::to_string(
    const std::vector<std::string>& state_names) const {
  auto name = [&](State s) {
    return s < state_names.size() ? state_names[s] : std::to_string(s);
  };
  std::string out;
  out += "initial: {";
  bool first = true;
  for (const auto s : bits(initial_)) {
    if (!first) out += ",";
    out += name(s);
    first = false;
  }
  out += "}\n";
  for (State s = 0; s < num_states(); ++s) {
    out += "  " + name(s) + " -> {";
    first = true;
    for (const auto t : bits(succ_[s])) {
      if (!first) out += ",";
      out += name(t);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace graybox::algebra
