// Graybox design of OTHER dependability properties (paper Section 6).
//
// "Although we have limited our discussion of the graybox approach to the
//  property of stabilization, the approach is applicable for the design of
//  other dependability properties, for example, masking fault-tolerance and
//  fail-safe fault-tolerance. (A system is masking fault-tolerant iff its
//  computations in the presence of the faults implement the specification.
//  A component is fail-safe fault-tolerant iff its computations in the
//  presence of faults implement the 'safety' part [but not necessarily the
//  liveness part] of its specification.)"
//
// This module mechanizes those definitions over the finite-system algebra:
//
//   * Faults are themselves a transition relation F over the state space
//     (the classic Arora-Gouda model); "computations in the presence of
//     faults" are the paths of C union F from C's initial states, with
//     finitely many F-steps (faults occur finitely often, Section 3.1).
//   * For relation-generated systems the safety closure of a computation
//     set equals the set itself, which would collapse fail-safe into
//     masking. To keep the liveness part non-trivial we pair the safety
//     relation with a recurrence obligation (a Buechi-style set of states
//     every computation must visit infinitely often):
//
//       LiveSpec = { safety : System, recurrent : Bitset }
//
//     A computation satisfies the spec iff it is a safety computation from
//     an initial state AND visits `recurrent` infinitely often.
//
// Decision procedures (exact, same style as checks.hpp):
//
//   masking:   every (C u F)-edge reachable from C.init is a safety edge,
//              C.init within spec initial states, and every C-cycle
//              reachable in (C u F) intersects `recurrent` (the eventual
//              all-C suffix carries the liveness obligation);
//   fail-safe: the safety half of masking only;
//   nonmasking:C recovers after faults stop — i.e. C stabilizes to the
//              safety system (checks.hpp) and every reachable C-cycle
//              intersects `recurrent`.
//
// The graybox transfer results (the Section 6 claim that everywhere
// implementations inherit wrapper-added masking/fail-safe tolerance) are
// property-checked in tests/test_tolerance.cpp and measured in
// bench_graybox_tolerance.
#pragma once

#include "algebra/system.hpp"
#include "common/rng.hpp"

namespace graybox::algebra {

/// A specification with an explicit liveness half.
struct LiveSpec {
  System safety;
  /// States to be visited infinitely often; an empty set (all bits clear)
  /// is rejected by the procedures below unless `recurrent_trivial` — use
  /// trivial() to opt out of the liveness half explicitly.
  Bitset recurrent;

  /// A LiveSpec whose liveness half is vacuous (every state recurrent).
  static LiveSpec trivial(System safety);
};

/// C's behaviour in the presence of the fault relation F: the union of the
/// relations with C's initial states (faults perturb, they do not
/// re-initialize).
System with_faults(const System& c, const System& faults);

/// Masking tolerance: computations of C in the presence of F implement the
/// specification (safety AND liveness), from C's initial states.
bool masking_tolerant(const System& c, const System& faults,
                      const LiveSpec& spec);

/// Fail-safe tolerance: computations in the presence of F implement the
/// safety part of the specification only.
bool failsafe_tolerant(const System& c, const System& faults,
                       const LiveSpec& spec);

/// Nonmasking tolerance (the stabilization-shaped property): once faults
/// stop, every computation converges to a suffix satisfying the
/// specification. Faults take the system anywhere, so this is fault-
/// relation independent: C stabilizes to the safety system and C's
/// reachable cycles honour the recurrence obligation.
bool nonmasking_tolerant(const System& c, const LiveSpec& spec);

/// Random fault relation: `edges` arbitrary perturbation edges sprinkled
/// over the state space (may include edges the spec forbids).
System random_fault_relation(Rng& rng, std::size_t num_states,
                             std::size_t edges);

}  // namespace graybox::algebra
