#include "algebra/checks.hpp"

#include <algorithm>

#include "algebra/scc.hpp"
#include "common/contracts.hpp"

namespace graybox::algebra {
namespace {

/// Bad edges of C w.r.t. A (see the header comment): not an A-transition,
/// or leaving/entering a state outside Reach_A(A.init).
bool is_bad_edge(const System& c, const System& a, const Bitset& a_reach,
                 State from, State to) {
  (void)c;
  if (!a.has_transition(from, to)) return true;
  return !a_reach.test(from) || !a_reach.test(to);
}

}  // namespace

bool implements_init(const System& c, const System& a) {
  GBX_EXPECTS(c.total() && a.total());
  GBX_EXPECTS(c.num_states() == a.num_states());
  if (!c.initial().is_subset_of(a.initial())) return false;
  const Bitset reach = c.reachable_from_initial();
  for (const auto s : bits(reach)) {
    if (!c.successors(s).is_subset_of(a.successors(s))) return false;
  }
  return true;
}

bool implements_everywhere(const System& c, const System& a) {
  GBX_EXPECTS(c.total() && a.total());
  GBX_EXPECTS(c.num_states() == a.num_states());
  return c.relation_subset_of(a);
}

StabilizationVerdict stabilizes_to_verdict(const System& c, const System& a) {
  GBX_EXPECTS(c.total() && a.total());
  GBX_EXPECTS(c.num_states() == a.num_states());

  const Bitset a_reach = a.reachable_from_initial();
  const SccResult scc = strongly_connected_components(c);

  StabilizationVerdict verdict;
  verdict.stabilizes = true;
  for (State s = 0; s < c.num_states(); ++s) {
    for (const auto t : bits(c.successors(s))) {
      if (!is_bad_edge(c, a, a_reach, s, t)) continue;
      if (edge_on_cycle(c, scc, s, t)) {
        verdict.stabilizes = false;
        verdict.has_witness = true;
        verdict.witness_from = s;
        verdict.witness_to = t;
        return verdict;
      }
    }
  }
  return verdict;
}

bool stabilizes_to(const System& c, const System& a) {
  return stabilizes_to_verdict(c, a).stabilizes;
}

std::size_t stabilization_bad_step_bound(const System& c, const System& a) {
  GBX_EXPECTS(c.num_states() == a.num_states());
  const Bitset a_reach = a.reachable_from_initial();
  const SccResult scc = strongly_connected_components(c);

  // dp[comp] = max number of bad edges on any path starting in comp.
  // Tarjan emits components in reverse topological order (sinks get the
  // smallest ids), so a single pass in id order sees successors first.
  std::vector<std::size_t> dp(scc.num_components, 0);
  for (std::size_t comp = 0; comp < scc.num_components; ++comp) {
    std::size_t best = 0;
    for (State s = 0; s < c.num_states(); ++s) {
      if (scc.component[s] != comp) continue;
      for (const auto t : bits(c.successors(s))) {
        const std::size_t bad =
            is_bad_edge(c, a, a_reach, s, t) ? 1u : 0u;
        if (scc.component[t] == comp) {
          // Intra-SCC edges are good whenever C stabilizes to A
          // (precondition); they contribute no bad steps.
          continue;
        }
        best = std::max(best, dp[scc.component[t]] + bad);
      }
    }
    dp[comp] = best;
  }
  if (dp.empty()) return 0;
  return *std::max_element(dp.begin(), dp.end());
}

}  // namespace graybox::algebra
