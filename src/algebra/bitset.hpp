// Fixed-size dynamic bitset used by the finite-system algebra for successor
// sets, reachable-state sets, and initial-state sets. The decision
// procedures in checks.cpp are set-algebraic (inclusion, intersection,
// fixpoints), so a compact bitset keeps them exact and fast even in the
// randomized property sweeps that check the paper's theorems over thousands
// of generated systems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graybox::algebra {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size);

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i) { set(i, false); }
  void clear();
  void fill();

  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// True iff every bit of *this is also set in `other` (subset).
  bool is_subset_of(const Bitset& other) const;
  bool intersects(const Bitset& other) const;

  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  /// Remove the bits of `other` from *this.
  Bitset& subtract(const Bitset& other);

  friend bool operator==(const Bitset&, const Bitset&) = default;

  /// Index of the lowest set bit at or after `from`; size() if none.
  std::size_t next_set(std::size_t from) const;

  /// "{0,3,7}" rendering for diagnostics.
  std::string to_string() const;

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Iterate set bits: for (auto s : bits(set)) { ... }
class BitRange {
 public:
  explicit BitRange(const Bitset& bs) : bs_(bs) {}
  class Iterator {
   public:
    Iterator(const Bitset& bs, std::size_t pos) : bs_(&bs), pos_(pos) {}
    std::size_t operator*() const { return pos_; }
    Iterator& operator++() {
      pos_ = bs_->next_set(pos_ + 1);
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    const Bitset* bs_;
    std::size_t pos_;
  };
  Iterator begin() const { return Iterator(bs_, bs_.next_set(0)); }
  Iterator end() const { return Iterator(bs_, bs_.size()); }

 private:
  const Bitset& bs_;
};

inline BitRange bits(const Bitset& bs) { return BitRange(bs); }

}  // namespace graybox::algebra
