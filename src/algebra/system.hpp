// Finite-state realization of the paper's system model (Section 2).
//
// The paper defines a system over a state space Sigma as "a set of (possibly
// infinite) sequences over Sigma, with at least one sequence starting from
// every state", assumed fusion closed. We realize the fusion-closed case
// that the paper's specification/implementation languages (UNITY, guarded
// commands) produce: a system is a *total transition relation* plus a set of
// initial states, and its computations are ALL infinite paths of the
// relation, starting anywhere.
//
//   * "at least one sequence from every state"  <=>  relation totality
//     (every state has a successor), checked by well_formed();
//   * fusion closure holds by construction: path sets of a relation are
//     closed under splicing at shared states;
//   * the box composition C [] W ("smallest fusion closed set containing
//     the computations of C and of W, initial states = common initial
//     states") is realized as the union of the relations with intersected
//     initial sets — the smallest relation-generated fusion-closed
//     superset. See checks.hpp for the decision procedures built on top.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/bitset.hpp"

namespace graybox::algebra {

/// A state is an index into the system's state space.
using State = std::size_t;

class System {
 public:
  System() = default;
  /// A system over `num_states` states, no transitions, no initial states.
  explicit System(std::size_t num_states);

  std::size_t num_states() const { return succ_.size(); }

  void add_transition(State from, State to);
  void remove_transition(State from, State to);
  bool has_transition(State from, State to) const;

  /// Successor set of `from`.
  const Bitset& successors(State from) const;

  void set_initial(State s, bool value = true);
  bool is_initial(State s) const { return initial_.test(s); }
  const Bitset& initial() const { return initial_; }

  /// Totality alone: every state has at least one successor (the paper's
  /// "at least one sequence starting from every state"). Initial states may
  /// be empty — e.g. a box composition with disjoint initializations — and
  /// such systems still have well-defined computations-from-anywhere.
  bool total() const;

  /// Totality plus at least one initial state.
  bool well_formed() const;

  /// Make the relation total by adding a self-loop to every successor-less
  /// state (convenient when deriving systems by deleting transitions).
  void ensure_total();

  std::size_t num_transitions() const;

  /// States reachable from `from` (inclusive) via the relation.
  Bitset reachable_from(const Bitset& from) const;
  Bitset reachable_from_initial() const { return reachable_from(initial_); }

  /// Union of relations, intersection of initial sets: the box operator
  /// (Section 2.1). Requires equal state spaces.
  static System box(const System& a, const System& b);

  /// True iff every transition of *this is a transition of `other`.
  bool relation_subset_of(const System& other) const;

  /// Multi-line dump for diagnostics and the Figure-1 bench.
  std::string to_string(
      const std::vector<std::string>& state_names = {}) const;

 private:
  std::vector<Bitset> succ_;
  Bitset initial_;
};

}  // namespace graybox::algebra
