#include "algebra/synthesis.hpp"

#include "algebra/scc.hpp"
#include "common/contracts.hpp"

namespace graybox::algebra {

System synthesize_reset_wrapper(const System& a) {
  GBX_EXPECTS(a.well_formed());
  const Bitset reach = a.reachable_from_initial();
  const std::size_t target = a.initial().next_set(0);
  GBX_ASSERT(target < a.num_states());

  System wrapper(a.num_states());
  for (State s = 0; s < a.num_states(); ++s) {
    if (!reach.test(s)) wrapper.add_transition(s, target);
    wrapper.set_initial(s);  // wrappers do not constrain initialization
  }
  return wrapper;
}

Bitset fair_convergence_region(const System& c, const System& w,
                               const System& a) {
  GBX_EXPECTS(c.num_states() == a.num_states());
  GBX_EXPECTS(w.num_states() == a.num_states());
  // Greatest fixpoint: start from Reach_A(init) and remove states with a
  // (C u W)-edge that leaves the candidate set or is not an A-edge.
  Bitset g = a.reachable_from_initial();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto s : bits(g)) {
      bool keep = true;
      for (const System* sys : {&c, &w}) {
        for (const auto t : bits(sys->successors(s))) {
          if (!g.test(t) || !a.has_transition(s, t)) {
            keep = false;
            break;
          }
        }
        if (!keep) break;
      }
      if (!keep) {
        g.reset(s);
        changed = true;
        break;  // bitset iteration invalidated; restart the scan
      }
    }
  }
  return g;
}

bool fair_stabilizes_to(const System& c, const System& w, const System& a) {
  GBX_EXPECTS(c.total() && a.total());
  GBX_EXPECTS(c.num_states() == a.num_states());
  GBX_EXPECTS(w.num_states() == a.num_states());

  const Bitset g = fair_convergence_region(c, w, a);

  // Adversary graph H over B = States \ G: C-edges staying inside B plus
  // W-edges staying inside B (marked). The fairness obligation — the
  // wrapper action executes infinitely often — is served along a walk
  // either by *skipping* at a state where W has no edge, or by *taking* a
  // W-edge; at a state whose W-edges all leave B, serving it ejects the
  // adversary into G. Hence the adversary survives forever in B iff H has
  // a cycle that (a) contains a marked (W-to-B) edge, or (b) passes
  // through a state with no W-edge at all (obligations served as skips
  // there while the walk keeps moving).
  const std::size_t n = c.num_states();
  System h(n);
  std::vector<std::pair<State, State>> marked;
  for (State s = 0; s < n; ++s) {
    if (g.test(s)) continue;
    for (const auto t : bits(c.successors(s))) {
      if (!g.test(t)) h.add_transition(s, t);
    }
    for (const auto t : bits(w.successors(s))) {
      if (!g.test(t)) {
        h.add_transition(s, t);
        marked.emplace_back(s, t);
      }
    }
  }

  const SccResult scc = strongly_connected_components(h);
  for (const auto& [s, t] : marked) {
    if (s == t || scc.same_component(s, t)) return false;  // case (a)
  }
  for (State s = 0; s < n; ++s) {
    if (g.test(s) || w.successors(s).any()) continue;
    // Case (b): is the W-edgeless state s on any H-cycle? Yes iff it has a
    // self-loop or shares its SCC with another state.
    if (h.has_transition(s, s)) return false;
    for (State t = 0; t < n; ++t) {
      if (t != s && scc.same_component(s, t)) return false;
    }
  }
  // Every fair computation is eventually ejected from B into G, and G is
  // closed with A-edges only.
  return true;
}

}  // namespace graybox::algebra
