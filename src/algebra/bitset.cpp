#include "algebra/bitset.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace graybox::algebra {

Bitset::Bitset(std::size_t size)
    : size_(size), words_((size + kBits - 1) / kBits, 0) {}

bool Bitset::test(std::size_t i) const {
  GBX_EXPECTS(i < size_);
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

void Bitset::set(std::size_t i, bool value) {
  GBX_EXPECTS(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kBits);
  if (value)
    words_[i / kBits] |= mask;
  else
    words_[i / kBits] &= ~mask;
}

void Bitset::clear() {
  for (auto& w : words_) w = 0;
}

void Bitset::fill() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  // Zero the bits past size_ so count()/equality stay canonical.
  const std::size_t tail = size_ % kBits;
  if (tail != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

std::size_t Bitset::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool Bitset::any() const {
  for (const auto w : words_)
    if (w != 0) return true;
  return false;
}

bool Bitset::is_subset_of(const Bitset& other) const {
  GBX_EXPECTS(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool Bitset::intersects(const Bitset& other) const {
  GBX_EXPECTS(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  GBX_EXPECTS(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  GBX_EXPECTS(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::subtract(const Bitset& other) {
  GBX_EXPECTS(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::size_t Bitset::next_set(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t word = from / kBits;
  std::uint64_t current = words_[word] & (~std::uint64_t{0} << (from % kBits));
  while (true) {
    if (current != 0) {
      const std::size_t bit =
          word * kBits + static_cast<std::size_t>(std::countr_zero(current));
      return bit < size_ ? bit : size_;
    }
    if (++word >= words_.size()) return size_;
    current = words_[word];
  }
}

std::string Bitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = next_set(0); i < size_; i = next_set(i + 1)) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace graybox::algebra
