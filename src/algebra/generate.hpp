// Constructors for the paper's Figure 1 and for the randomized system
// families used to property-check Lemma 0, Theorem 1, Lemmas 2-3, and
// Theorem 4 (tests/test_algebra_theorems.cpp, bench_theorems_random).
#pragma once

#include "algebra/system.hpp"
#include "common/rng.hpp"

namespace graybox::algebra {

// ---------------------------------------------------------------------------
// Figure 1 (Section 2.1): the counterexample showing that
// "[C => A]init and A stabilizing to A" does NOT imply "C stabilizing to A".
//
// States: s* = 0, s0 = 1, s1 = 2, s2 = 3, s3 = 4; initial state s0.
//   A: s0->s1->s2->s3->s3 and s*->s2  (from the corrupted state s*, A's
//      computation "s*, s2, s3, ..." re-joins the initial computation)
//   C: the same initial computation, but from s* C loops forever, never
//      rejoining; so [C => A]init holds while C is not stabilizing to A.
//   C_fixed: C with s*'s behaviour replaced by A's (an *everywhere*
//      implementation), which Theorem 1 promises is stabilizing.
// ---------------------------------------------------------------------------

inline constexpr State kFig1StateCorrupt = 0;  // s*
inline constexpr State kFig1S0 = 1;
inline constexpr State kFig1S1 = 2;
inline constexpr State kFig1S2 = 3;
inline constexpr State kFig1S3 = 4;
inline constexpr std::size_t kFig1NumStates = 5;

/// Names {"s*","s0","s1","s2","s3"} for printing.
std::vector<std::string> figure1_state_names();

System figure1_specification();           // A
System figure1_implementation();          // C  (init-only implementation)
System figure1_everywhere_implementation();  // C_fixed

// ---------------------------------------------------------------------------
// Random families. All generators produce well-formed systems.
// ---------------------------------------------------------------------------

struct RandomSystemParams {
  std::size_t num_states = 8;
  /// Probability of each potential transition being present (self-loops
  /// included); totality is restored afterwards if sampling left a state
  /// without successors.
  double edge_density = 0.3;
  /// Probability of each state being initial; at least one is forced.
  double initial_density = 0.25;
};

/// An arbitrary well-formed system.
System random_system(Rng& rng, const RandomSystemParams& params);

/// A sub-system of `a`: transitions and initial states are subsets of a's
/// (totality preserved by keeping at least one successor per state), so
/// [result => a] and [result => a]init both hold by construction.
System random_everywhere_implementation(Rng& rng, const System& a);

/// A system that implements `a` from its initial states but may behave
/// arbitrarily on states unreachable from them — the Figure-1 shape that
/// breaks graybox reasoning for non-everywhere specifications.
System random_init_implementation(Rng& rng, const System& a);

/// A wrapper candidate for `a`: adds `extra_edges` random transitions on top
/// of a subset restriction (wrappers typically *add* recovery transitions).
System random_wrapper(Rng& rng, const System& a, std::size_t extra_edges);

// ---------------------------------------------------------------------------
// Local (per-process) composition for Lemmas 2-3 / Theorem 4: the state
// space of a two-process system is the product of two local spaces, and a
// local system constrains only its own component, interleaving-style.
// ---------------------------------------------------------------------------

/// Lift a local system of process `which` (0 = low component, 1 = high) over
/// a product space of `low_states` x `high_states` states: each local
/// transition u -> v yields product transitions (u, w) -> (v, w) for every
/// state w of the other process, plus stutter steps are NOT added (asynchrony
/// comes from boxing the two lifts, which unions their interleavings).
/// Initial states are the products of local initial states with all states
/// of the other component (the other component is constrained by its own
/// lift when the two are boxed).
System lift_local(const System& local, int which, std::size_t low_states,
                  std::size_t high_states);

}  // namespace graybox::algebra
