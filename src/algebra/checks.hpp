// Decision procedures for the paper's relations between systems (Section 2).
//
// For fusion-closed systems whose computation sets are all infinite paths of
// a total transition relation, each relation reduces to set algebra on the
// relation and initial states, and is decided exactly:
//
//   [C => A]init  (implements):
//       C.init is a subset of A.init, and every transition of C reachable
//       (in C) from C.init is a transition of A.
//
//   [C => A]  (everywhere implements):
//       every transition of C is a transition of A.  (Initial states are
//       irrelevant: computations start anywhere.)
//
//   C stabilizes to A:
//       call a C-transition (s,t) *bad* when it is not an A-transition or
//       when s or t lies outside Reach_A(A.init).  A computation lacks the
//       required suffix exactly when it takes bad transitions infinitely
//       often, and in a finite graph such a computation exists iff some
//       cycle of C contains a bad transition.  So: C stabilizes to A iff no
//       bad C-transition lies on a C-cycle.
//
// All procedures require both systems to be well-formed over the same state
// space. See tests/test_algebra.cpp for soundness checks against explicit
// path enumeration on small systems, and bench_theorems_random for the
// randomized verification of Lemma 0, Theorem 1, Lemmas 2-3, and Theorem 4.
#pragma once

#include "algebra/system.hpp"

namespace graybox::algebra {

/// [C => A]init — every computation of C from a C-initial state is a
/// computation of A from an A-initial state.
bool implements_init(const System& c, const System& a);

/// [C => A] — every computation of C (from any state) is a computation of A.
bool implements_everywhere(const System& c, const System& a);

/// C is stabilizing to A — every computation of C has a suffix that is a
/// suffix of some computation of A starting at an A-initial state.
bool stabilizes_to(const System& c, const System& a);

/// Detailed stabilization verdict for diagnostics: the offending cycle edge
/// when the check fails.
struct StabilizationVerdict {
  bool stabilizes = false;
  bool has_witness = false;  // meaningful only when !stabilizes
  State witness_from = 0;
  State witness_to = 0;
};
StabilizationVerdict stabilizes_to_verdict(const System& c, const System& a);

/// A convergence measure: the maximum number of *bad* transitions (see the
/// file comment) any computation of C can take. When C stabilizes to A this
/// is finite — bad edges never lie on cycles, so they form a DAG across
/// SCCs — and bounds how much "divergent" behaviour any computation can
/// exhibit. Precondition: stabilizes_to(c, a). Returns 0 when every
/// transition is already good.
std::size_t stabilization_bad_step_bound(const System& c, const System& a);

}  // namespace graybox::algebra
