#include "algebra/tolerance.hpp"

#include "algebra/checks.hpp"
#include "algebra/scc.hpp"
#include "common/contracts.hpp"

namespace graybox::algebra {
namespace {

/// True iff the sub-relation of `sys` induced on `allowed` states contains
/// a cycle. Any SCC of the induced graph with an internal edge (including a
/// self-loop) witnesses one.
bool has_cycle_within(const System& sys, const Bitset& allowed) {
  // Build the induced system (edges with both endpoints allowed).
  System induced(sys.num_states());
  for (State s = 0; s < sys.num_states(); ++s) {
    if (!allowed.test(s)) continue;
    for (const auto t : bits(sys.successors(s))) {
      if (allowed.test(t)) induced.add_transition(s, t);
    }
  }
  const SccResult scc = strongly_connected_components(induced);
  for (State s = 0; s < induced.num_states(); ++s) {
    for (const auto t : bits(induced.successors(s))) {
      if (s == t || scc.same_component(s, t)) return true;
    }
  }
  return false;
}

/// The liveness half: no computation may eventually avoid `recurrent`
/// forever, i.e. `sys` has no cycle confined to `region` minus the
/// recurrent states.
bool recurrence_honoured(const System& sys, const Bitset& region,
                         const Bitset& recurrent) {
  Bitset avoid = region;
  avoid.subtract(recurrent);
  return !has_cycle_within(sys, avoid);
}

}  // namespace

LiveSpec LiveSpec::trivial(System safety) {
  LiveSpec spec;
  Bitset all(safety.num_states());
  all.fill();
  spec.safety = std::move(safety);
  spec.recurrent = all;
  return spec;
}

System with_faults(const System& c, const System& faults) {
  GBX_EXPECTS(c.num_states() == faults.num_states());
  System combined(c.num_states());
  for (State s = 0; s < c.num_states(); ++s) {
    for (const auto t : bits(c.successors(s))) combined.add_transition(s, t);
    for (const auto t : bits(faults.successors(s)))
      combined.add_transition(s, t);
  }
  for (const auto s : bits(c.initial())) combined.set_initial(s);
  return combined;
}

bool failsafe_tolerant(const System& c, const System& faults,
                       const LiveSpec& spec) {
  GBX_EXPECTS(c.total() && spec.safety.total());
  GBX_EXPECTS(c.num_states() == spec.safety.num_states());
  GBX_EXPECTS(c.num_states() == faults.num_states());
  // Safety in the presence of faults: every step of every fault-affected
  // computation from C's initial states is a safety step, starting from a
  // specification initial state.
  const System perturbed = with_faults(c, faults);
  if (!perturbed.initial().is_subset_of(spec.safety.initial())) return false;
  const Bitset reach = perturbed.reachable_from_initial();
  for (const auto s : bits(reach)) {
    if (!perturbed.successors(s).is_subset_of(spec.safety.successors(s)))
      return false;
  }
  return true;
}

bool masking_tolerant(const System& c, const System& faults,
                      const LiveSpec& spec) {
  if (!failsafe_tolerant(c, faults, spec)) return false;
  // Liveness: fault-affected computations take finitely many fault steps
  // (Section 3.1: "any finite number of these faults"), so each has an
  // all-C suffix; that suffix must visit the recurrent states infinitely
  // often. Equivalently: no C-cycle inside the fault-reachable region
  // avoids them.
  const Bitset reach = with_faults(c, faults).reachable_from_initial();
  return recurrence_honoured(c, reach, spec.recurrent);
}

bool nonmasking_tolerant(const System& c, const LiveSpec& spec) {
  GBX_EXPECTS(c.total() && spec.safety.total());
  GBX_EXPECTS(c.num_states() == spec.safety.num_states());
  // Convergence of the safety half: stabilization to the safety system.
  if (!stabilizes_to(c, spec.safety)) return false;
  // Liveness of the converged suffix: within the specification's reachable
  // region (where every converged suffix lives), C must keep visiting the
  // recurrent states.
  const Bitset region = spec.safety.reachable_from_initial();
  return recurrence_honoured(c, region, spec.recurrent);
}

System random_fault_relation(Rng& rng, std::size_t num_states,
                             std::size_t edges) {
  System faults(num_states);
  for (std::size_t i = 0; i < edges; ++i) {
    const State from = rng.index(num_states);
    const State to = rng.index(num_states);
    faults.add_transition(from, to);
  }
  return faults;
}

}  // namespace graybox::algebra
