#include "algebra/scc.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::algebra {

SccResult strongly_connected_components(const System& system) {
  const std::size_t n = system.num_states();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<State> stack;
  std::size_t next_index = 0;

  // Iterative Tarjan: each frame tracks the state and its successor cursor.
  struct Frame {
    State state;
    std::size_t cursor;  // next successor bit position to explore
  };
  std::vector<Frame> frames;

  for (State root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const State s = frame.state;
      const Bitset& successors = system.successors(s);
      const std::size_t t = successors.next_set(frame.cursor);
      if (t < successors.size()) {
        frame.cursor = t + 1;
        if (index[t] == kUnvisited) {
          index[t] = lowlink[t] = next_index++;
          stack.push_back(t);
          on_stack[t] = true;
          frames.push_back(Frame{t, 0});
        } else if (on_stack[t]) {
          lowlink[s] = std::min(lowlink[s], index[t]);
        }
        continue;
      }
      // Successors exhausted: close the frame.
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().state] =
            std::min(lowlink[frames.back().state], lowlink[s]);
      }
      if (lowlink[s] == index[s]) {
        while (true) {
          const State w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.num_components;
          if (w == s) break;
        }
        ++result.num_components;
      }
    }
  }

  GBX_ENSURES(std::all_of(result.component.begin(), result.component.end(),
                          [&](std::size_t c) { return c != kUnvisited; }));
  return result;
}

bool edge_on_cycle(const System& system, const SccResult& scc, State from,
                   State to) {
  GBX_EXPECTS(system.has_transition(from, to));
  if (from == to) return true;  // self-loop
  return scc.same_component(from, to);
}

}  // namespace graybox::algebra
