// Adversarial fault injection implementing the paper's fault model
// (Section 3.1): "messages [may] be corrupted, lost, or duplicated at any
// time. Moreover, processes (respectively channels) can be improperly
// initialized, fail, recover, or their state could be transiently (and
// arbitrarily) corrupted at any time. Stabilization is desired
// notwithstanding the occurrence of any finite number of these faults."
//
// The injector perturbs channels directly and perturbs process state via a
// callback supplied by the harness (the process layer sits above this one).
// Every perturbation draws from a seeded RNG, so an adversarial run is
// replayable. The injector records the time of the last injected fault;
// stabilization latency is always measured from that instant.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/event_bus.hpp"
#include "sim/scheduler.hpp"

namespace graybox::net {

enum class FaultKind : std::uint8_t {
  kMessageDrop = 0,
  kMessageDuplicate,
  kMessageCorrupt,
  kMessageReorder,
  kSpuriousMessage,
  kProcessCorrupt,
  kChannelClear,
};
inline constexpr std::size_t kFaultKindCount = 7;

const char* to_string(FaultKind kind);

/// Lifecycle faults of the sustained-load subsystem (the paper's §3.1
/// "processes ... fail, recover" plus network partitions). They are not
/// FaultKind values — the one-shot injector cannot apply them; the harness
/// drives them — but they share the observability bus's fault-code space,
/// appended after the injector's kinds so kFaultInjected events cover both.
inline constexpr std::uint8_t kFaultCodeProcessCrash = 7;
inline constexpr std::uint8_t kFaultCodeProcessRecover = 8;
inline constexpr std::uint8_t kFaultCodePartition = 9;
inline constexpr std::uint8_t kFaultCodePartitionHeal = 10;
/// Total fault codes: FaultKind values plus the lifecycle codes above.
inline constexpr std::size_t kFaultCodeCount = 11;

/// Name of any fault code (FaultKind values and lifecycle codes).
const char* fault_code_name(std::uint8_t code);

/// All fault code names in code order — the name table the observability
/// bus indexes kFaultInjected events with (kFaultCodeCount entries).
std::vector<std::string> fault_kind_names();

/// Which fault kinds an adversary may use.
struct FaultMix {
  bool message_drop = true;
  bool message_duplicate = true;
  bool message_corrupt = true;
  bool message_reorder = true;
  bool spurious_message = true;
  bool process_corrupt = true;
  bool channel_clear = false;  // rarely useful in random mixes; on-demand

  static FaultMix all();
  static FaultMix channel_only();
  static FaultMix process_only();
  static FaultMix only(FaultKind kind);

  bool enabled(FaultKind kind) const;
  std::vector<FaultKind> enabled_kinds() const;
};

/// One fully specified fault application — what the model checker (src/mc)
/// enumerates and what a replayed ScheduleTrace re-applies. `code` spans
/// the full fault-code space: FaultKind values are applied by
/// FaultInjector::inject_targeted; the lifecycle codes (crash / recover /
/// partition / heal) are dispatched by the harness, which owns processes.
struct TargetedFault {
  std::uint8_t code = 0;
  /// Channel source for message faults; corrupted / crashed / recovered
  /// pid for process faults.
  ProcessId a = kNoProcess;
  /// Channel destination for message faults.
  ProcessId b = kNoProcess;
  /// In-flight index (drop / duplicate / corrupt / first swap position).
  std::uint32_t index = 0;
  /// Second in-flight index (reorder swaps index <-> index2).
  std::uint32_t index2 = 0;
  /// Bipartition mask (kFaultCodePartition only).
  std::uint64_t mask = 0;
};

class FaultInjector {
 public:
  /// Arbitrarily corrupts the state of one process; supplied by the harness
  /// because processes live in a layer above the network.
  using CorruptProcessFn = std::function<void(ProcessId, Rng&)>;

  FaultInjector(sim::Scheduler& sched, Network& net, Rng rng,
                CorruptProcessFn corrupt_process);

  /// Apply one fault of the given kind right now. Returns false when the
  /// kind has no applicable target (e.g. a message fault with no message in
  /// flight); no fault is recorded in that case.
  bool inject(FaultKind kind);

  /// Apply one fault of a random enabled kind. Kinds whose targets are
  /// absent are skipped; returns false if nothing was applicable.
  bool inject_random(const FaultMix& mix);

  /// Apply one fully specified fault (FaultKind codes only; lifecycle
  /// codes are the harness's job). Returns false when the target no longer
  /// exists — an index past the backlog, an empty channel — so replaying a
  /// shrunk trace against drifted state degrades to a no-op instead of
  /// tripping the channel contracts. Content randomness (corrupt payloads,
  /// spurious messages, process corruption) still draws from the seeded
  /// injector RNG, so a fixed call sequence is deterministic.
  bool inject_targeted(const TargetedFault& f);

  /// Apply up to `count` random faults right now.
  void burst(std::size_t count, const FaultMix& mix);

  /// Schedule a burst at an absolute time.
  void schedule_burst(SimTime at, std::size_t count, FaultMix mix);

  /// Inject one random fault every `interval` ticks in [start, end).
  void schedule_continuous(SimTime start, SimTime end, SimTime interval,
                           FaultMix mix);

  /// Fabricate an adversarial message payload (log-uniform magnitude
  /// timestamp, random type). Public so scenario tests can reuse it.
  Message random_message(ProcessId from, ProcessId to);

  /// Time of the most recent successfully injected fault; kNever if none.
  SimTime last_fault_time() const { return last_fault_time_; }
  /// Time of the first successfully injected fault; kNever if none. Start
  /// of the fault burst in the stabilization timeline.
  SimTime first_fault_time() const { return first_fault_time_; }

  std::uint64_t count(FaultKind kind) const {
    return kind_stats_[static_cast<std::size_t>(kind)].count;
  }
  /// Exact count / first / last aggregate per fault kind.
  const obs::KindStats& kind_stats(FaultKind kind) const {
    return kind_stats_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const;

  /// Attach the observability bus; every injected fault is recorded as a
  /// kFaultInjected event (plus kDrop for destroyed messages).
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Attach the provenance tracker; every applied fault then mints a
  /// deterministic provenance id and taints its target (the in-flight
  /// message it tampered with, or the corrupted process). nullptr (the
  /// default) disables.
  void set_provenance(obs::ProvenanceTracker* prov) { prov_ = prov; }

  /// Harness hook fired after every successfully injected fault (the
  /// reconvergence tracker keys its windows off fault arrivals).
  void set_fault_observer(std::function<void(FaultKind)> fn) {
    on_fault_ = std::move(fn);
  }

 private:
  struct Target {
    Channel* channel;
    std::size_t index;
  };
  /// Pick a uniformly random in-flight message across all channels; null
  /// channel if none in flight.
  Target pick_in_flight();
  /// Pick a random ordered process pair (requires n >= 2).
  std::pair<ProcessId, ProcessId> pick_pair();
  clk::Timestamp random_timestamp();
  /// Account one applied fault: bump the per-kind aggregate, stamp
  /// first/last fault times, and emit bus events. `pid` names the corrupted
  /// process (process faults only); `dropped` counts messages destroyed;
  /// `id` is the fault's minted provenance id (0 when tracking is off).
  void note(FaultKind kind, ProcessId pid = kNoProcess,
            std::uint64_t dropped = 0, obs::ProvenanceId id = 0);
  /// Mint the provenance id for one applied fault (0 when tracking is off).
  obs::ProvenanceId mint(FaultKind kind, ProcessId pid = kNoProcess);
  /// Taint the in-flight carrier the fault tampered with (no-op id 0).
  void taint_in_flight(Channel& ch, std::size_t index, obs::ProvenanceId id);

  sim::Scheduler& sched_;
  Network& net_;
  Rng rng_;
  CorruptProcessFn corrupt_process_;
  std::array<obs::KindStats, kFaultKindCount> kind_stats_{};
  SimTime first_fault_time_ = kNever;
  SimTime last_fault_time_ = kNever;
  obs::EventBus* bus_ = nullptr;
  obs::ProvenanceTracker* prov_ = nullptr;
  std::function<void(FaultKind)> on_fault_;
};

}  // namespace graybox::net
