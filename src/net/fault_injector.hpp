// Adversarial fault injection implementing the paper's fault model
// (Section 3.1): "messages [may] be corrupted, lost, or duplicated at any
// time. Moreover, processes (respectively channels) can be improperly
// initialized, fail, recover, or their state could be transiently (and
// arbitrarily) corrupted at any time. Stabilization is desired
// notwithstanding the occurrence of any finite number of these faults."
//
// The injector perturbs channels directly and perturbs process state via a
// callback supplied by the harness (the process layer sits above this one).
// Every perturbation draws from a seeded RNG, so an adversarial run is
// replayable. The injector records the time of the last injected fault;
// stabilization latency is always measured from that instant.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::net {

enum class FaultKind : std::uint8_t {
  kMessageDrop = 0,
  kMessageDuplicate,
  kMessageCorrupt,
  kMessageReorder,
  kSpuriousMessage,
  kProcessCorrupt,
  kChannelClear,
};
inline constexpr std::size_t kFaultKindCount = 7;

const char* to_string(FaultKind kind);

/// Which fault kinds an adversary may use.
struct FaultMix {
  bool message_drop = true;
  bool message_duplicate = true;
  bool message_corrupt = true;
  bool message_reorder = true;
  bool spurious_message = true;
  bool process_corrupt = true;
  bool channel_clear = false;  // rarely useful in random mixes; on-demand

  static FaultMix all();
  static FaultMix channel_only();
  static FaultMix process_only();
  static FaultMix only(FaultKind kind);

  bool enabled(FaultKind kind) const;
  std::vector<FaultKind> enabled_kinds() const;
};

class FaultInjector {
 public:
  /// Arbitrarily corrupts the state of one process; supplied by the harness
  /// because processes live in a layer above the network.
  using CorruptProcessFn = std::function<void(ProcessId, Rng&)>;

  FaultInjector(sim::Scheduler& sched, Network& net, Rng rng,
                CorruptProcessFn corrupt_process);

  /// Apply one fault of the given kind right now. Returns false when the
  /// kind has no applicable target (e.g. a message fault with no message in
  /// flight); no fault is recorded in that case.
  bool inject(FaultKind kind);

  /// Apply one fault of a random enabled kind. Kinds whose targets are
  /// absent are skipped; returns false if nothing was applicable.
  bool inject_random(const FaultMix& mix);

  /// Apply up to `count` random faults right now.
  void burst(std::size_t count, const FaultMix& mix);

  /// Schedule a burst at an absolute time.
  void schedule_burst(SimTime at, std::size_t count, FaultMix mix);

  /// Inject one random fault every `interval` ticks in [start, end).
  void schedule_continuous(SimTime start, SimTime end, SimTime interval,
                           FaultMix mix);

  /// Fabricate an adversarial message payload (log-uniform magnitude
  /// timestamp, random type). Public so scenario tests can reuse it.
  Message random_message(ProcessId from, ProcessId to);

  /// Time of the most recent successfully injected fault; kNever if none.
  SimTime last_fault_time() const { return last_fault_time_; }

  std::uint64_t count(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const;

 private:
  struct Target {
    Channel* channel;
    std::size_t index;
  };
  /// Pick a uniformly random in-flight message across all channels; null
  /// channel if none in flight.
  Target pick_in_flight();
  /// Pick a random ordered process pair (requires n >= 2).
  std::pair<ProcessId, ProcessId> pick_pair();
  clk::Timestamp random_timestamp();
  void note(FaultKind kind);

  sim::Scheduler& sched_;
  Network& net_;
  Rng rng_;
  CorruptProcessFn corrupt_process_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
  SimTime last_fault_time_ = kNever;
};

}  // namespace graybox::net
