// Message delay models. The paper only assumes "arbitrary but finite
// transmission delays"; experiments use uniform or fixed delays so that
// stabilization latencies are comparable across runs.
#pragma once

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace graybox::net {

struct DelayModel {
  SimTime min = 1;
  SimTime max = 1;

  static DelayModel fixed(SimTime d) { return DelayModel{d, d}; }
  static DelayModel uniform(SimTime lo, SimTime hi) {
    GBX_EXPECTS(lo <= hi);
    return DelayModel{lo, hi};
  }

  SimTime sample(Rng& rng) const {
    GBX_EXPECTS(min <= max);
    if (min == max) return min;
    return rng.uniform(min, max);
  }
};

}  // namespace graybox::net
