// Wire messages of the timestamp-based mutual-exclusion protocols.
//
// Both programs in the paper (Ricart-Agrawala Section 5.1, Lamport Section
// 5.2) exchange exactly three message kinds, each carrying one timestamp:
//
//   Request(REQj)  - "send" of Request Spec; also what the wrapper W resends
//   Reply(REQj)    - "send" of Reply Spec; carries the *replier's current
//                    REQ*, which is what lets the receiver's view j.REQk be
//                    "eventually set to REQk" (Section 4's correctness
//                    argument for W) and preserves invariant I
//   Release(REQj)  - Lamport ME only; retires the sender's queue entry
//
// The fault model (Section 3.1) corrupts, loses, and duplicates messages
// arbitrarily, so receivers must treat every field as untrusted; all three
// handler paths in src/me are total functions of the message.
#pragma once

#include <cstdint>
#include <string>

#include "clock/clock_stamp.hpp"
#include "clock/timestamp.hpp"
#include "common/types.hpp"
#include "obs/provenance.hpp"

namespace graybox::net {

enum class MsgType : std::uint8_t { kRequest = 0, kReply = 1, kRelease = 2 };

const char* to_string(MsgType t);

/// Uids at or above this value are monitor-side stamps for fabricated
/// (fault-injected) messages; Channel::fault_inject assigns them so that
/// distinct spurious messages never alias each other (or uid 0) in the
/// monitors' send/delivery correlation. Network::send uids count up from 1
/// and can never reach this range.
inline constexpr std::uint64_t kSpuriousUidBase = std::uint64_t{1} << 63;

/// True for uids stamped onto fabricated messages. Monitors that correlate
/// deliveries against real sends (e.g. FIFO order) must skip these.
constexpr bool is_spurious_uid(std::uint64_t uid) {
  return uid >= kSpuriousUidBase;
}

struct Message {
  MsgType type = MsgType::kRequest;
  ProcessId from = 0;
  ProcessId to = 0;
  clk::Timestamp ts{};

  /// True when the message was (re)sent by a graybox wrapper rather than by
  /// the wrapped program. Metadata for accounting only: receivers must not
  /// (and do not) read it, otherwise the wrapper would no longer be a plain
  /// Lspec-level component.
  bool from_wrapper = false;

  /// Unique per physical send; lets monitors correlate send/delivery and
  /// detect duplication. Assigned by Network::send.
  std::uint64_t uid = 0;

  /// Monitor-side causal metadata maintained by the Network, never read by
  /// the programs under test. Used by the ME3 (FCFS) monitor to decide
  /// Lamport's happened-before relation exactly. Usually a sparse delta
  /// over the previous stamp enqueued on the same channel; dense only when
  /// the changed set is large (or in reference mode). Fabricated messages
  /// carry an empty stamp.
  clk::ClockStamp vc{};

  /// Monitor-side fault provenance, never read by the programs under test.
  /// Network::send stamps the sender's active taint here; the fault
  /// injector adds ids directly when it corrupts or fabricates a message
  /// in flight; delivery merges it into the receiver's taint. Empty
  /// whenever provenance tracking is disabled.
  obs::TaintSet taint{};

  std::string to_string() const;
};

}  // namespace graybox::net
