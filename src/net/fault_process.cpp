#include "net/fault_process.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::net {

FaultProcess::FaultProcess(sim::Scheduler& sched, FaultInjector& injector,
                           std::size_t n, FaultProcessConfig config, Rng rng,
                           Callbacks callbacks)
    : sched_(sched),
      injector_(injector),
      n_(n),
      config_(config),
      callbacks_(std::move(callbacks)) {
  GBX_EXPECTS(n_ >= 1);
  GBX_EXPECTS(config_.downtime_mean > 0);
  GBX_EXPECTS(config_.partition_hold_mean > 0);
  // Fixed split order: stream RNGs by index, then lifecycle durations.
  // Nothing the system under test does can perturb these draws.
  for (std::size_t s = 0; s < kStreamCount; ++s) stream_rngs_[s] = rng.split();
  lifecycle_rng_ = rng.split();
}

double FaultProcess::stream_mean(std::size_t stream) const {
  switch (stream) {
    case static_cast<std::size_t>(FaultKind::kMessageDrop):
      return config_.drop_mean;
    case static_cast<std::size_t>(FaultKind::kMessageDuplicate):
      return config_.duplicate_mean;
    case static_cast<std::size_t>(FaultKind::kMessageCorrupt):
      return config_.corrupt_mean;
    case static_cast<std::size_t>(FaultKind::kMessageReorder):
      return config_.reorder_mean;
    case static_cast<std::size_t>(FaultKind::kSpuriousMessage):
      return config_.spurious_mean;
    case static_cast<std::size_t>(FaultKind::kProcessCorrupt):
      return config_.process_corrupt_mean;
    case static_cast<std::size_t>(FaultKind::kChannelClear):
      return config_.channel_clear_mean;
    case kCrashStream:
      return config_.crash_mean;
    case kPartitionStream:
      return config_.partition_mean;
  }
  return 0;
}

void FaultProcess::start() {
  if (running_ || !config_.any_enabled()) return;
  running_ = true;
  const SimTime from = std::max(config_.start, sched_.now());
  for (std::size_t s = 0; s < kStreamCount; ++s) {
    if (stream_mean(s) > 0) arm(s, from);
  }
}

void FaultProcess::stop() { running_ = false; }

void FaultProcess::arm(std::size_t stream, SimTime from) {
  const SimTime gap = std::max<SimTime>(
      1, stream_rngs_[stream].exponential(stream_mean(stream)));
  const SimTime at = from + gap;
  if (config_.end != kNever && at >= config_.end) return;
  sched_.schedule_at(at, [this, stream] {
    if (!running_) return;
    fire(stream);
    arm(stream, sched_.now());
  });
}

void FaultProcess::fire(std::size_t stream) {
  ++arrivals_fired_;
  if (stream == kCrashStream) {
    fire_crash();
    return;
  }
  if (stream == kPartitionStream) {
    fire_partition();
    return;
  }
  const auto kind = static_cast<FaultKind>(stream);
  // inject() returns false when the kind has no target right now (e.g. a
  // drop with nothing in flight); the arrival is skipped, the stream keeps
  // going — exactly a Poisson adversary whose shot missed.
  if (injector_.inject(kind)) {
    ++arrivals_applied_;
    note(static_cast<std::uint8_t>(stream), kNoProcess);
  }
}

void FaultProcess::fire_crash() {
  // Draw the target before applicability checks so the stream's RNG state
  // never depends on how many processes happen to be down.
  const auto pid = static_cast<ProcessId>(stream_rngs_[kCrashStream].index(n_));
  const SimTime down =
      std::max<SimTime>(1, lifecycle_rng_.exponential(config_.downtime_mean));
  if (callbacks_.crash == nullptr) return;
  if (down_count_ >= config_.max_down) return;
  if ((down_mask_ >> pid) & 1u) return;
  if (!callbacks_.crash(pid)) return;
  down_mask_ |= std::uint64_t{1} << pid;
  ++down_count_;
  ++crashes_;
  ++arrivals_applied_;
  note(kFaultCodeProcessCrash, pid);
  sched_.schedule_at(sched_.now() + down, [this, pid] {
    if (((down_mask_ >> pid) & 1u) == 0) return;
    down_mask_ &= ~(std::uint64_t{1} << pid);
    --down_count_;
    ++recoveries_;
    if (callbacks_.recover) callbacks_.recover(pid);
    note(kFaultCodeProcessRecover, pid);
  });
}

void FaultProcess::fire_partition() {
  // Same principle: all draws happen unconditionally, then applicability.
  std::uint64_t mask = 0;
  auto& rng = stream_rngs_[kPartitionStream];
  for (std::size_t pid = 0; pid < n_; ++pid) {
    if (rng.chance(0.5)) mask |= std::uint64_t{1} << pid;
  }
  const std::uint64_t all =
      n_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n_) - 1;
  // A degenerate draw (everyone on one side) is not a partition; isolate a
  // single random process instead.
  if (mask == 0 || mask == all) mask = std::uint64_t{1} << rng.index(n_);
  const SimTime hold = std::max<SimTime>(
      1, lifecycle_rng_.exponential(config_.partition_hold_mean));
  if (callbacks_.partition == nullptr) return;
  if (partition_active_) return;
  if (!callbacks_.partition(mask)) return;
  partition_active_ = true;
  ++partitions_;
  ++arrivals_applied_;
  note(kFaultCodePartition, kNoProcess);
  sched_.schedule_at(sched_.now() + hold, [this] {
    if (!partition_active_) return;
    partition_active_ = false;
    ++heals_;
    if (callbacks_.heal) callbacks_.heal();
    note(kFaultCodePartitionHeal, kNoProcess);
  });
}

void FaultProcess::note(std::uint8_t code, ProcessId pid) {
  if (!record_schedule_) return;
  schedule_.push_back(FaultArrival{sched_.now(), code, pid});
}

}  // namespace graybox::net
