#include "net/fault_injector.hpp"

#include "common/contracts.hpp"

namespace graybox::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageDrop:
      return "message-drop";
    case FaultKind::kMessageDuplicate:
      return "message-duplicate";
    case FaultKind::kMessageCorrupt:
      return "message-corrupt";
    case FaultKind::kMessageReorder:
      return "message-reorder";
    case FaultKind::kSpuriousMessage:
      return "spurious-message";
    case FaultKind::kProcessCorrupt:
      return "process-corrupt";
    case FaultKind::kChannelClear:
      return "channel-clear";
  }
  return "unknown-fault";
}

const char* fault_code_name(std::uint8_t code) {
  switch (code) {
    case kFaultCodeProcessCrash:
      return "process-crash";
    case kFaultCodeProcessRecover:
      return "process-recover";
    case kFaultCodePartition:
      return "partition";
    case kFaultCodePartitionHeal:
      return "partition-heal";
    default:
      if (code < kFaultKindCount) return to_string(static_cast<FaultKind>(code));
      return "unknown-fault";
  }
}

std::vector<std::string> fault_kind_names() {
  std::vector<std::string> names;
  names.reserve(kFaultCodeCount);
  for (std::size_t i = 0; i < kFaultCodeCount; ++i) {
    names.emplace_back(fault_code_name(static_cast<std::uint8_t>(i)));
  }
  return names;
}

FaultMix FaultMix::all() {
  FaultMix mix;
  mix.channel_clear = true;
  return mix;
}

FaultMix FaultMix::channel_only() {
  FaultMix mix;
  mix.process_corrupt = false;
  return mix;
}

FaultMix FaultMix::process_only() {
  FaultMix mix;
  mix.message_drop = mix.message_duplicate = mix.message_corrupt = false;
  mix.message_reorder = mix.spurious_message = false;
  mix.process_corrupt = true;
  return mix;
}

FaultMix FaultMix::only(FaultKind kind) {
  FaultMix mix;
  mix.message_drop = mix.message_duplicate = mix.message_corrupt = false;
  mix.message_reorder = mix.spurious_message = mix.process_corrupt = false;
  mix.channel_clear = false;
  switch (kind) {
    case FaultKind::kMessageDrop:
      mix.message_drop = true;
      break;
    case FaultKind::kMessageDuplicate:
      mix.message_duplicate = true;
      break;
    case FaultKind::kMessageCorrupt:
      mix.message_corrupt = true;
      break;
    case FaultKind::kMessageReorder:
      mix.message_reorder = true;
      break;
    case FaultKind::kSpuriousMessage:
      mix.spurious_message = true;
      break;
    case FaultKind::kProcessCorrupt:
      mix.process_corrupt = true;
      break;
    case FaultKind::kChannelClear:
      mix.channel_clear = true;
      break;
  }
  return mix;
}

bool FaultMix::enabled(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kMessageDrop:
      return message_drop;
    case FaultKind::kMessageDuplicate:
      return message_duplicate;
    case FaultKind::kMessageCorrupt:
      return message_corrupt;
    case FaultKind::kMessageReorder:
      return message_reorder;
    case FaultKind::kSpuriousMessage:
      return spurious_message;
    case FaultKind::kProcessCorrupt:
      return process_corrupt;
    case FaultKind::kChannelClear:
      return channel_clear;
  }
  return false;
}

std::vector<FaultKind> FaultMix::enabled_kinds() const {
  std::vector<FaultKind> kinds;
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (enabled(kind)) kinds.push_back(kind);
  }
  return kinds;
}

FaultInjector::FaultInjector(sim::Scheduler& sched, Network& net, Rng rng,
                             CorruptProcessFn corrupt_process)
    : sched_(sched),
      net_(net),
      rng_(rng),
      corrupt_process_(std::move(corrupt_process)) {}

FaultInjector::Target FaultInjector::pick_in_flight() {
  const std::size_t total = net_.in_flight();
  if (total == 0) return Target{nullptr, 0};
  std::size_t pick = rng_.index(total);
  const std::size_t n = net_.size();
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (from == to) continue;
      Channel& ch = net_.channel(from, to);
      if (pick < ch.in_flight()) return Target{&ch, pick};
      pick -= ch.in_flight();
    }
  }
  GBX_ASSERT(false && "in_flight total inconsistent with channels");
  return Target{nullptr, 0};
}

std::pair<ProcessId, ProcessId> FaultInjector::pick_pair() {
  GBX_EXPECTS(net_.size() >= 2);
  const auto from = static_cast<ProcessId>(rng_.index(net_.size()));
  auto to = static_cast<ProcessId>(rng_.index(net_.size() - 1));
  if (to >= from) ++to;
  return {from, to};
}

clk::Timestamp FaultInjector::random_timestamp() {
  // Log-uniform magnitude: shifting a raw 64-bit draw by a random amount
  // covers everything from 0 to astronomically large counters, exercising
  // both the "corrupted low" (deadlock-prone) and "corrupted high"
  // (clock-jump) recovery paths.
  const int shift = static_cast<int>(rng_.uniform(0, 63));
  clk::Timestamp ts;
  ts.counter = rng_.next() >> shift;
  ts.pid = static_cast<ProcessId>(rng_.index(net_.size()));
  return ts;
}

Message FaultInjector::random_message(ProcessId from, ProcessId to) {
  Message msg;
  msg.type = static_cast<MsgType>(rng_.uniform(0, 2));
  msg.from = from;
  msg.to = to;
  msg.ts = random_timestamp();
  return msg;
}

obs::ProvenanceId FaultInjector::mint(FaultKind kind, ProcessId pid) {
  if (prov_ == nullptr) return obs::kNoProvenance;
  return prov_->mint(static_cast<std::uint8_t>(kind), pid, sched_.now());
}

void FaultInjector::note(FaultKind kind, ProcessId pid, std::uint64_t dropped,
                         obs::ProvenanceId id) {
  kind_stats_[static_cast<std::size_t>(kind)].note(sched_.now());
  if (first_fault_time_ == kNever) first_fault_time_ = sched_.now();
  last_fault_time_ = sched_.now();
  if (bus_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::kFaultInjected;
    e.a = static_cast<std::uint8_t>(kind);
    e.pid = pid;
    e.payload = dropped;
    e.taint.add(id);
    bus_->record(e);
    if (dropped > 0) {
      obs::Event d;
      d.kind = obs::EventKind::kDrop;
      d.payload = dropped;
      d.taint.add(id);
      bus_->record(d);
    }
  }
  if (on_fault_) on_fault_(kind);
}

void FaultInjector::taint_in_flight(Channel& ch, std::size_t index,
                                    obs::ProvenanceId id) {
  if (id == obs::kNoProvenance) return;
  ch.fault_taint(index, id);
  obs::TaintSet carried;
  carried.add(id);
  prov_->note_message_taint(carried);
}

bool FaultInjector::inject(FaultKind kind) {
  ProcessId fault_pid = kNoProcess;
  std::uint64_t dropped = 0;
  obs::ProvenanceId id = obs::kNoProvenance;
  switch (kind) {
    case FaultKind::kMessageDrop: {
      Target t = pick_in_flight();
      if (t.channel == nullptr) return false;
      t.channel->fault_drop(t.index);
      // The carrier is destroyed; the minted id only marks the injection
      // (its blast radius is the silence the drop causes, not spread).
      id = mint(kind);
      dropped = 1;
      break;
    }
    case FaultKind::kMessageDuplicate: {
      Target t = pick_in_flight();
      if (t.channel == nullptr) return false;
      t.channel->fault_duplicate(t.index);
      // The duplicate (placed right behind the original) is the faulty
      // artifact; the original message stays clean.
      id = mint(kind);
      taint_in_flight(*t.channel, t.index + 1, id);
      break;
    }
    case FaultKind::kMessageCorrupt: {
      Target t = pick_in_flight();
      if (t.channel == nullptr) return false;
      const Message& original = t.channel->contents()[t.index];
      Message corrupted = random_message(original.from, original.to);
      t.channel->fault_corrupt(t.index, corrupted);
      id = mint(kind);
      taint_in_flight(*t.channel, t.index, id);
      break;
    }
    case FaultKind::kMessageReorder: {
      // Reorder needs a channel holding at least two messages; pick among
      // those (weighted by backlog) rather than failing on a random pick.
      std::vector<Channel*> eligible;
      const std::size_t n = net_.size();
      for (ProcessId from = 0; from < n; ++from) {
        for (ProcessId to = 0; to < n; ++to) {
          if (from == to) continue;
          Channel& ch = net_.channel(from, to);
          if (ch.in_flight() >= 2) eligible.push_back(&ch);
        }
      }
      if (eligible.empty()) return false;
      Channel& ch = *eligible[rng_.index(eligible.size())];
      const std::size_t a = rng_.index(ch.in_flight());
      std::size_t b = rng_.index(ch.in_flight() - 1);
      if (b >= a) ++b;
      ch.fault_swap(a, b);
      // Both swapped messages are now out of FIFO order.
      id = mint(kind);
      taint_in_flight(ch, a, id);
      taint_in_flight(ch, b, id);
      break;
    }
    case FaultKind::kSpuriousMessage: {
      if (net_.size() < 2) return false;
      const auto [from, to] = pick_pair();
      Message fabricated = random_message(from, to);
      id = mint(kind);
      if (id != obs::kNoProvenance) {
        fabricated.taint.add(id);
        prov_->note_message_taint(fabricated.taint);
      }
      net_.channel(from, to).fault_inject(fabricated);
      break;
    }
    case FaultKind::kProcessCorrupt: {
      if (corrupt_process_ == nullptr) return false;
      const auto pid = static_cast<ProcessId>(rng_.index(net_.size()));
      corrupt_process_(pid, rng_);
      fault_pid = pid;
      id = mint(kind, pid);
      if (prov_ != nullptr) prov_->taint_process(pid, id);
      break;
    }
    case FaultKind::kChannelClear: {
      // Clearing an empty channel perturbs nothing; only nonempty channels
      // are targets, so a false return really means "no fault applied".
      std::vector<Channel*> eligible;
      const std::size_t n = net_.size();
      for (ProcessId from = 0; from < n; ++from) {
        for (ProcessId to = 0; to < n; ++to) {
          if (from == to) continue;
          Channel& ch = net_.channel(from, to);
          if (!ch.empty()) eligible.push_back(&ch);
        }
      }
      if (eligible.empty()) return false;
      Channel& ch = *eligible[rng_.index(eligible.size())];
      dropped = ch.in_flight();
      ch.fault_clear();
      id = mint(kind);
      break;
    }
  }
  note(kind, fault_pid, dropped, id);
  return true;
}

bool FaultInjector::inject_targeted(const TargetedFault& f) {
  if (f.code >= kFaultKindCount) return false;
  const auto kind = static_cast<FaultKind>(f.code);
  ProcessId fault_pid = kNoProcess;
  std::uint64_t dropped = 0;
  obs::ProvenanceId id = obs::kNoProvenance;
  switch (kind) {
    case FaultKind::kMessageDrop: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Channel& ch = net_.channel(f.a, f.b);
      if (f.index >= ch.in_flight()) return false;
      ch.fault_drop(f.index);
      id = mint(kind);
      dropped = 1;
      break;
    }
    case FaultKind::kMessageDuplicate: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Channel& ch = net_.channel(f.a, f.b);
      if (f.index >= ch.in_flight()) return false;
      ch.fault_duplicate(f.index);
      id = mint(kind);
      taint_in_flight(ch, f.index + 1, id);
      break;
    }
    case FaultKind::kMessageCorrupt: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Channel& ch = net_.channel(f.a, f.b);
      if (f.index >= ch.in_flight()) return false;
      const Message& original = ch.contents()[f.index];
      Message corrupted = random_message(original.from, original.to);
      ch.fault_corrupt(f.index, corrupted);
      id = mint(kind);
      taint_in_flight(ch, f.index, id);
      break;
    }
    case FaultKind::kMessageReorder: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Channel& ch = net_.channel(f.a, f.b);
      if (f.index == f.index2 || f.index >= ch.in_flight() ||
          f.index2 >= ch.in_flight())
        return false;
      ch.fault_swap(f.index, f.index2);
      id = mint(kind);
      taint_in_flight(ch, f.index, id);
      taint_in_flight(ch, f.index2, id);
      break;
    }
    case FaultKind::kSpuriousMessage: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Message fabricated = random_message(f.a, f.b);
      id = mint(kind);
      if (id != obs::kNoProvenance) {
        fabricated.taint.add(id);
        prov_->note_message_taint(fabricated.taint);
      }
      net_.channel(f.a, f.b).fault_inject(fabricated);
      break;
    }
    case FaultKind::kProcessCorrupt: {
      if (corrupt_process_ == nullptr || f.a >= net_.size()) return false;
      corrupt_process_(f.a, rng_);
      fault_pid = f.a;
      id = mint(kind, f.a);
      if (prov_ != nullptr) prov_->taint_process(f.a, id);
      break;
    }
    case FaultKind::kChannelClear: {
      if (f.a >= net_.size() || f.b >= net_.size() || f.a == f.b)
        return false;
      Channel& ch = net_.channel(f.a, f.b);
      if (ch.empty()) return false;
      dropped = ch.in_flight();
      ch.fault_clear();
      id = mint(kind);
      break;
    }
  }
  note(kind, fault_pid, dropped, id);
  return true;
}

bool FaultInjector::inject_random(const FaultMix& mix) {
  std::vector<FaultKind> kinds = mix.enabled_kinds();
  // Try kinds in random order until one applies.
  while (!kinds.empty()) {
    const std::size_t i = rng_.index(kinds.size());
    const FaultKind kind = kinds[i];
    if (inject(kind)) return true;
    kinds.erase(kinds.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return false;
}

void FaultInjector::burst(std::size_t count, const FaultMix& mix) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!inject_random(mix)) return;
  }
}

void FaultInjector::schedule_burst(SimTime at, std::size_t count,
                                   FaultMix mix) {
  sched_.schedule_at(at, [this, count, mix] { burst(count, mix); });
}

void FaultInjector::schedule_continuous(SimTime start, SimTime end,
                                        SimTime interval, FaultMix mix) {
  GBX_EXPECTS(interval > 0);
  for (SimTime t = start; t < end; t += interval) {
    sched_.schedule_at(t, [this, mix] { inject_random(mix); });
  }
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& s : kind_stats_) total += s.count;
  return total;
}

}  // namespace graybox::net
