// One directed FIFO interprocess channel (Communication Spec: "channels are
// FIFO"), with the fault surface of Section 3.1: in-flight messages can be
// dropped, duplicated, corrupted, or reordered, the channel can be cleared
// ("improperly initialized"), and spurious messages can be injected.
//
// Mechanics: enqueue computes an arrival time that is monotone along the
// queue (max of sampled delay and the previous tail arrival), so fault-free
// delivery is exactly FIFO. Each enqueue schedules one "delivery tick"; a
// tick delivers the current queue head, whatever faults did to the queue in
// between. Ticks on an empty queue are no-ops, which is how dropped
// messages silently consume their tick.
//
// Timing invariants of the fault surface (fixed; previously the first two
// were silently violated):
//   - Every scheduled tick time is folded into `last_arrival_`, including
//     the ticks added by fault_duplicate and fault_inject, so arrival times
//     stay monotone along the queue even across faults: a normal enqueue
//     issued after a fault can tie with, but never precede, the fault's
//     tick, and is therefore never delivered out of delay order by it.
//   - fault_clear ("improperly initialized channel") forgets *everything*:
//     the queued messages, the delay floor (`last_arrival_` resets to now),
//     and the pending delivery ticks — the tick epoch is bumped, so ticks
//     scheduled before the clear become no-ops instead of delivering
//     post-clear messages early. A cleared channel behaves exactly like a
//     freshly constructed one.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/delay.hpp"
#include "net/message.hpp"
#include "net/message_ring.hpp"
#include "sim/scheduler.hpp"

namespace graybox::net {

/// Choice-hook tag for delivery ticks (sim::ChoiceHook): bit 63 marks
/// "delivery", the low 32 bits encode the directed channel as
/// (from << 16 | to). Untagged events (tag 0 — timers, polls, client
/// decisions) are treated as always-dependent by the explorer.
inline constexpr std::uint64_t kDeliveryTagBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t make_delivery_tag(ProcessId from,
                                                 ProcessId to) {
  return kDeliveryTagBit | (std::uint64_t{from} << 16) | std::uint64_t{to};
}
inline constexpr bool is_delivery_tag(std::uint64_t tag) {
  return (tag & kDeliveryTagBit) != 0;
}
inline constexpr ProcessId delivery_tag_from(std::uint64_t tag) {
  return static_cast<ProcessId>((tag >> 16) & 0xffff);
}
inline constexpr ProcessId delivery_tag_to(std::uint64_t tag) {
  return static_cast<ProcessId>(tag & 0xffff);
}

class Channel {
 public:
  /// `deliver` is invoked with each message as it leaves the channel.
  using DeliverFn = std::function<void(const Message&)>;

  Channel(sim::Scheduler& sched, DelayModel delay, Rng rng, DeliverFn deliver);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Normal-path send: append and schedule a FIFO delivery tick. The
  /// rvalue overload moves the message into its ring slot (Network::send
  /// builds the message once and hands it off without a copy).
  void enqueue(Message&& msg);
  void enqueue(const Message& msg) { enqueue(Message(msg)); }

  std::size_t in_flight() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Read-only live view of the in-flight messages, oldest first
  /// (monitors and the fault injector); indexes like the deque it shims.
  MessageView contents() const { return MessageView(queue_); }

  // --- Fault surface (used by FaultInjector and scenario tests) ---------

  /// Remove the in-flight message at `index`. Its tick becomes a no-op.
  void fault_drop(std::size_t index);

  /// Duplicate the in-flight message at `index` (copy placed right behind
  /// the original, extra delivery tick scheduled immediately).
  void fault_duplicate(std::size_t index);

  /// Overwrite fields of the in-flight message at `index`.
  void fault_corrupt(std::size_t index, const Message& corrupted);

  /// Swap two in-flight messages (transient FIFO violation).
  void fault_swap(std::size_t a, std::size_t b);

  /// Add a provenance id to the in-flight message at `index` (the fault
  /// injector marking the physical carrier it just tampered with). Like
  /// fault_corrupt, this never rewrites causality metadata — it only
  /// augments the monitor-side taint the message already carried.
  void fault_taint(std::size_t index, obs::ProvenanceId id);

  /// Insert a fabricated message (it never passed through Network::send).
  /// If `msg.uid == 0` the channel stamps a fresh uid from the reserved
  /// spurious range (>= kSpuriousUidBase) so fabricated messages never
  /// alias each other in the monitors' send/delivery correlation.
  void fault_inject(const Message& msg);

  /// Drop everything in flight ("improperly initialized channel") and
  /// forget the delay floor and pending ticks; see header comment.
  void fault_clear();

  // --- Accounting -------------------------------------------------------

  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_by_fault() const { return dropped_by_fault_; }

  /// Arrival time of the queue tail — the monotone floor every future
  /// delivery tick respects (tests assert the invariant directly).
  SimTime last_arrival() const { return last_arrival_; }

  /// Network-owned aggregate in-flight counter; the channel mirrors every
  /// queue-size change into it so Network::in_flight() is O(1) instead of
  /// an O(n^2) walk over all channels. Null for standalone channels.
  void set_in_flight_counter(std::size_t* counter) {
    in_flight_counter_ = counter;
    if (in_flight_counter_ != nullptr) *in_flight_counter_ += queue_.size();
  }

  /// Network-owned counter for the reserved spurious-uid range, shared by
  /// all channels of one network so stamps are globally unique. Standalone
  /// channels fall back to a private counter.
  void set_spurious_uid_counter(std::uint64_t* counter) {
    spurious_uid_counter_ = counter;
  }

  /// Tag stamped on this channel's delivery ticks, surfaced to an installed
  /// sim::ChoiceHook. Network sets make_delivery_tag(from, to); standalone
  /// channels default to 0 (untagged).
  void set_choice_tag(std::uint64_t tag) { choice_tag_ = tag; }
  std::uint64_t choice_tag() const { return choice_tag_; }

  // --- Sparse-stamp bookkeeping (driven by Network::send) ----------------

  /// Carry entries past this and the next send falls back to dense.
  static constexpr std::size_t kCarryCap = 32;

  /// Sender vclock version at the last genuine enqueue; a delta stamp
  /// carries exactly the components modified after this version. Partitioned
  /// sends never enqueue, so the window simply spans them.
  std::uint64_t stamp_baseline() const { return stamp_baseline_; }

  /// Components that must ride on the next genuine send even if unmodified
  /// since the baseline: inherited from dropped/cleared delta stamps that
  /// had no queued successor to absorb them. Their *current* values are
  /// exactly what a dense stamp would carry for them.
  const std::vector<std::uint32_t>& carry_comps() const { return carry_comps_; }

  /// True when the next genuine send must be dense (a dense stamp was
  /// dropped with no queued successor, or the carry set overflowed).
  bool force_dense_next() const { return force_dense_next_; }

  /// Called by Network::send after stamping a genuine message, right before
  /// enqueueing it: advances the baseline and clears the consumed carry.
  void note_genuine_stamp(std::uint64_t sender_version) {
    stamp_baseline_ = sender_version;
    carry_comps_.clear();
    force_dense_next_ = false;
  }

 private:
  /// Restore the stamp chain after the genuine message carrying `removed`
  /// left the queue (drop/clear): the first genuine successor (starting at
  /// `first_successor`) absorbs it; with no successor it becomes carry
  /// state for the next send. Spurious (fault-injected) messages are never
  /// part of the chain — folding a removed stamp at an injected message's
  /// delivery time would advance the receiver earlier than the dense
  /// reference does.
  void repair_removed_stamp(const clk::ClockStamp& removed,
                            std::size_t first_successor);
  void carry_stamp(const clk::ClockStamp& removed);
  bool in_stamp_chain(std::size_t index) const {
    return !queue_[index].vc.empty() && !is_spurious_uid(queue_[index].uid);
  }
  void schedule_tick(SimTime arrival);
  void on_tick(std::uint64_t epoch);
  void adjust_in_flight(std::ptrdiff_t delta) {
    if (in_flight_counter_ != nullptr)
      *in_flight_counter_ = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(*in_flight_counter_) + delta);
  }

  sim::Scheduler& sched_;
  DelayModel delay_;
  Rng rng_;
  DeliverFn deliver_;
  MessageRing queue_;
  /// Arrival time of the most recently scheduled delivery tick (normal or
  /// fault-made); enforces FIFO monotonicity of scheduled ticks.
  SimTime last_arrival_ = 0;
  /// Bumped by fault_clear; ticks scheduled under an older epoch are stale
  /// and deliver nothing.
  std::uint64_t epoch_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_by_fault_ = 0;
  std::size_t* in_flight_counter_ = nullptr;
  std::uint64_t* spurious_uid_counter_ = nullptr;
  std::uint64_t choice_tag_ = 0;
  /// Fallback spurious-uid source for channels outside a Network.
  std::uint64_t local_spurious_uid_ = kSpuriousUidBase;
  std::uint64_t stamp_baseline_ = 0;
  std::vector<std::uint32_t> carry_comps_;
  bool force_dense_next_ = false;
};

}  // namespace graybox::net
