#include "net/network.hpp"

#include "common/contracts.hpp"

namespace graybox::net {

namespace {

obs::Event message_event(obs::EventKind kind, const Message& msg) {
  obs::Event e;
  e.kind = kind;
  e.pid = msg.from;
  e.peer = msg.to;
  e.a = static_cast<std::uint8_t>(msg.type);
  e.payload = msg.ts.counter;
  e.aux = msg.ts.pid;
  if (msg.from_wrapper) e.flags |= obs::Event::kFromWrapper;
  e.uid = msg.uid;
  e.taint = msg.taint;
  return e;
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kRequest:
      return "request";
    case MsgType::kReply:
      return "reply";
    case MsgType::kRelease:
      return "release";
  }
  return "corrupt-type";
}

std::string Message::to_string() const {
  std::string out = net::to_string(type);
  out += "(" + ts.to_string() + ") " + std::to_string(from) + "->" +
         std::to_string(to);
  if (from_wrapper) out += " [wrapper]";
  return out;
}

Network::Network(sim::Scheduler& sched, std::size_t n, DelayModel delay,
                 Rng rng)
    : sched_(sched), n_(n), handlers_(n) {
  GBX_EXPECTS(n >= 1);
  channels_.resize(n * n);
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (from == to) continue;
      channels_[channel_index(from, to)] = std::make_unique<Channel>(
          sched, delay, rng.split(),
          [this](const Message& msg) { deliver(msg); });
      channels_[channel_index(from, to)]->set_choice_tag(
          make_delivery_tag(from, to));
    }
  }
  vclocks_.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) vclocks_.emplace_back(pid, n);
  vclock_versions_.assign(n, 0);
  mod_seq_.assign(n * n, 0);
  for (auto& ch : channels_) {
    if (!ch) continue;
    ch->set_in_flight_counter(&in_flight_);
    ch->set_spurious_uid_counter(&next_spurious_uid_);
  }
}

std::size_t Network::channel_index(ProcessId from, ProcessId to) const {
  GBX_EXPECTS(from < n_ && to < n_ && from != to);
  return static_cast<std::size_t>(from) * n_ + to;
}

void Network::set_handler(ProcessId pid, Handler handler) {
  GBX_EXPECTS(pid < n_);
  GBX_EXPECTS(handler != nullptr);
  handlers_[pid] = std::move(handler);
}

void Network::send(ProcessId from, ProcessId to, MsgType type,
                   clk::Timestamp ts, bool from_wrapper) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.ts = ts;
  msg.from_wrapper = from_wrapper;
  msg.uid = next_uid_++;
  vclocks_[from].tick();
  const std::uint64_t version = ++vclock_versions_[from];
  mod_seq_[static_cast<std::size_t>(from) * n_ + from] = version;
  if (prov_ != nullptr) {
    msg.taint = prov_->process_taint(from);
    if (!msg.taint.empty()) prov_->note_message_taint(msg.taint);
  }

  ++total_sent_;
  ++sent_by_type_[static_cast<std::size_t>(type)];
  if (from_wrapper) ++sent_by_wrapper_;
  last_send_time_ = sched_.now();
  if (bus_) bus_->record(message_event(obs::EventKind::kSend, msg));
  for (const auto& obs : send_observers_) obs(msg);

  // A partition severs the link: the send event happened (observers above
  // saw it, the sender's clock ticked) but the message is lost on the wire.
  if (partitioned(from, to)) {
    ++dropped_by_partition_;
    if (bus_) {
      obs::Event d;
      d.kind = obs::EventKind::kDrop;
      d.pid = from;
      d.peer = to;
      d.payload = 1;
      bus_->record(d);
    }
    return;
  }

  Channel& ch = channel(from, to);
  build_stamp(ch, msg, from);
  ch.note_genuine_stamp(version);
  ch.enqueue(std::move(msg));
}

void Network::build_stamp(const Channel& ch, Message& msg, ProcessId from) {
  const clk::VectorClock& clock = vclocks_[from];
  if (!dense_stamps_ && !ch.force_dense_next()) {
    clk::ClockStamp delta = clk::ClockStamp::delta(from, n_);
    const std::uint64_t base = ch.stamp_baseline();
    const std::uint64_t* seq = &mod_seq_[static_cast<std::size_t>(from) * n_];
    bool fits = true;
    for (std::size_t c = 0; c < n_ && fits; ++c)
      if (seq[c] > base)
        fits = delta.add_entry(static_cast<std::uint32_t>(c),
                               clock.component(c));
    // Carry components inherited from dropped stamps ride along at their
    // *current* values — exactly what a dense stamp would say about them.
    for (std::uint32_t c : ch.carry_comps()) {
      if (!fits) break;
      if (seq[c] <= base) fits = delta.add_entry(c, clock.component(c));
    }
    if (fits) {
      msg.vc = std::move(delta);
      return;
    }
  }
  msg.vc = clk::ClockStamp::dense(clock);
}

void Network::set_partition(std::uint64_t mask) {
  GBX_EXPECTS(mask == 0 || n_ <= 64);
  partition_mask_ = mask;
}

void Network::local_event(ProcessId pid) {
  GBX_EXPECTS(pid < n_);
  vclocks_[pid].tick();
  mod_seq_[static_cast<std::size_t>(pid) * n_ + pid] = ++vclock_versions_[pid];
}

const clk::VectorClock& Network::vclock(ProcessId pid) const {
  GBX_EXPECTS(pid < n_);
  return vclocks_[pid];
}

Channel& Network::channel(ProcessId from, ProcessId to) {
  return *channels_[channel_index(from, to)];
}

const Channel& Network::channel(ProcessId from, ProcessId to) const {
  return *channels_[channel_index(from, to)];
}

void Network::add_send_observer(MessageObserver obs) {
  send_observers_.push_back(std::move(obs));
}

void Network::add_delivery_observer(MessageObserver obs) {
  delivery_observers_.push_back(std::move(obs));
}

void Network::deliver(const Message& msg) {
  GBX_EXPECTS(msg.to < n_);
  ++total_delivered_;
  // Fabricated (fault-injected) messages carry empty stamps; folding
  // requires matching sizes, so only merge genuine ones. Folding a delta
  // entrywise, or a dense stamp componentwise, and then ticking is exactly
  // the old VectorClock::witness — mod_seq_ additionally records which
  // components moved, to drive future delta stamps from this receiver.
  clk::VectorClock& clock = vclocks_[msg.to];
  const std::uint64_t version = vclock_versions_[msg.to] + 1;
  std::uint64_t* seq = &mod_seq_[static_cast<std::size_t>(msg.to) * n_];
  if (msg.vc.size() == n_) {
    if (msg.vc.is_delta()) {
      for (const auto& e : msg.vc.entries())
        if (clock.fold(e.comp, e.value)) seq[e.comp] = version;
    } else {
      const clk::VectorClock& other = msg.vc.dense_clock();
      for (std::size_t c = 0; c < n_; ++c)
        if (clock.fold(c, other.component(c))) seq[c] = version;
    }
  }
  clock.tick();
  seq[msg.to] = version;
  vclock_versions_[msg.to] = version;
  last_delivery_time_ = sched_.now();
  if (bus_) bus_->record(message_event(obs::EventKind::kDeliver, msg));
  for (const auto& obs : delivery_observers_) obs(msg);
  GBX_ASSERT(handlers_[msg.to] != nullptr);
  handlers_[msg.to](msg);
}

}  // namespace graybox::net
