// Sustained adversarial fault load: continuous, seeded fault streams.
//
// The paper's fault model (Section 3.1) allows "any finite number" of
// faults, but a one-shot burst only probes the transient: a stabilizing
// system's interesting regime is *continuous* adversity, where faults keep
// arriving and the wrapper must keep the system available between them
// (cf. probabilistic stabilization under ongoing faults in
// Devismes/Tixeuil/Yamashita, and speculative stabilization performance in
// Dubois/Guerraoui). FaultProcess turns the one-shot FaultInjector into a
// set of independent Poisson processes — one per fault kind, each with its
// own split RNG stream and exponential inter-arrival times — plus two
// *lifecycle* streams the injector cannot express:
//
//   * crash/recovery: a process fails (stops handling deliveries) and later
//     recovers into an "improperly initialized" state;
//   * partition/heal: the process set is bipartitioned (cross-side sends
//     are lost) and later healed.
//
// Lifecycle actions run through callbacks supplied by the harness, because
// processes and wrappers live above the network layer (the same pattern as
// FaultInjector::CorruptProcessFn). Every draw comes from a stream-private
// RNG split in a fixed order, so a fault schedule is a pure function of the
// seed regardless of what the system under test does — and is therefore
// byte-identical across experiment-engine worker counts.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/fault_injector.hpp"
#include "sim/scheduler.hpp"

namespace graybox::net {

/// Continuous fault-load shape. Every `*_mean` is a mean inter-arrival gap
/// in ticks for an independent Poisson stream; 0 disables that stream.
struct FaultProcessConfig {
  // Message-fault hazards (applied through FaultInjector::inject; arrivals
  // with no applicable target — e.g. a drop with nothing in flight — are
  // skipped, like the injector's own semantics).
  double drop_mean = 0;
  double duplicate_mean = 0;
  double corrupt_mean = 0;
  double reorder_mean = 0;
  /// Spurious adversarial traffic (fabricated messages on random links).
  double spurious_mean = 0;
  /// Transient process-state corruption hazard.
  double process_corrupt_mean = 0;
  /// Channel clear ("improperly initialized channel") hazard.
  double channel_clear_mean = 0;

  // Lifecycle streams.
  /// Mean gap between crash arrivals (each picks a random live process).
  double crash_mean = 0;
  /// Mean down-time before a crashed process recovers.
  double downtime_mean = 200;
  /// At most this many processes down at once; crash arrivals beyond the
  /// cap are skipped (a system with every process down has no behavior
  /// left to stabilize).
  std::size_t max_down = 1;
  /// Mean gap between partition arrivals (random bipartition each time).
  double partition_mean = 0;
  /// Mean time a partition holds before healing.
  double partition_hold_mean = 200;

  /// Streams schedule arrivals in [start, end); kNever = no end.
  SimTime start = 0;
  SimTime end = kNever;

  bool any_enabled() const {
    return drop_mean > 0 || duplicate_mean > 0 || corrupt_mean > 0 ||
           reorder_mean > 0 || spurious_mean > 0 ||
           process_corrupt_mean > 0 || channel_clear_mean > 0 ||
           crash_mean > 0 || partition_mean > 0;
  }
};

/// One applied (not skipped) fault arrival; the determinism tests compare
/// whole schedules across runs.
struct FaultArrival {
  SimTime time = 0;
  /// Fault code: FaultKind value or a kFaultCode* lifecycle code.
  std::uint8_t code = 0;
  /// Crashed/recovered process for lifecycle codes 7/8; kNoProcess else.
  ProcessId pid = kNoProcess;
};

class FaultProcess {
 public:
  /// Lifecycle hooks supplied by the harness (the layer that owns
  /// processes, clients, and wrappers). `crash`/`partition` return false
  /// when the action is not applicable (process already down, partition
  /// already active); the arrival is then skipped and not recorded.
  struct Callbacks {
    std::function<bool(ProcessId)> crash;
    std::function<void(ProcessId)> recover;
    std::function<bool(std::uint64_t)> partition;  // bipartition mask
    std::function<void()> heal;
  };

  /// `n` is the process count (crash targets and partition masks are drawn
  /// from it). Streams draw from RNGs split off `rng` in a fixed order.
  FaultProcess(sim::Scheduler& sched, FaultInjector& injector, std::size_t n,
               FaultProcessConfig config, Rng rng, Callbacks callbacks = {});

  FaultProcess(const FaultProcess&) = delete;
  FaultProcess& operator=(const FaultProcess&) = delete;

  /// Arm every enabled stream (first arrivals sampled from `config.start`).
  /// No-op when already running or nothing is enabled.
  void start();

  /// Stop scheduling new arrivals. Already-scheduled arrivals become
  /// no-ops; a pending recovery/heal still executes (a stopped adversary
  /// does not strand a crashed process).
  void stop();

  bool running() const { return running_; }
  const FaultProcessConfig& config() const { return config_; }

  /// Applied fault arrivals, in time order (skipped arrivals excluded).
  /// Recorded only while `record_schedule(true)` — the default keeps long
  /// runs allocation-free.
  void record_schedule(bool on) { record_schedule_ = on; }
  const std::vector<FaultArrival>& schedule() const { return schedule_; }

  /// Arrivals that fired / were applied (applied <= fired: targetless
  /// message faults and capped crashes are skipped).
  std::uint64_t arrivals_fired() const { return arrivals_fired_; }
  std::uint64_t arrivals_applied() const { return arrivals_applied_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t partitions() const { return partitions_; }
  std::uint64_t heals() const { return heals_; }

 private:
  // Stream indices: the FaultKind codes 0..6, then crash, then partition.
  static constexpr std::size_t kCrashStream = kFaultKindCount;
  static constexpr std::size_t kPartitionStream = kFaultKindCount + 1;
  static constexpr std::size_t kStreamCount = kFaultKindCount + 2;

  double stream_mean(std::size_t stream) const;
  /// Schedule the next arrival of `stream` at now/start + gap.
  void arm(std::size_t stream, SimTime from);
  void fire(std::size_t stream);
  void fire_crash();
  void fire_partition();
  void note(std::uint8_t code, ProcessId pid);

  sim::Scheduler& sched_;
  FaultInjector& injector_;
  std::size_t n_;
  FaultProcessConfig config_;
  Callbacks callbacks_;
  /// One RNG per stream, split in fixed index order at construction, plus
  /// one for lifecycle durations — draw order is independent of the system
  /// under test.
  std::array<Rng, kStreamCount> stream_rngs_;
  Rng lifecycle_rng_;
  bool running_ = false;
  bool record_schedule_ = false;
  std::vector<FaultArrival> schedule_;
  std::uint64_t arrivals_fired_ = 0;
  std::uint64_t arrivals_applied_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t heals_ = 0;
  /// Bitmask of processes this FaultProcess has crashed and not yet
  /// recovered (its own view; manual harness crashes are not tracked).
  std::uint64_t down_mask_ = 0;
  std::size_t down_count_ = 0;
  bool partition_active_ = false;
};

}  // namespace graybox::net
