#include "net/channel.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::net {

Channel::Channel(sim::Scheduler& sched, DelayModel delay, Rng rng,
                 DeliverFn deliver)
    : sched_(sched), delay_(delay), rng_(rng), deliver_(std::move(deliver)) {
  GBX_EXPECTS(deliver_ != nullptr);
}

void Channel::enqueue(Message&& msg) {
  const SimTime arrival =
      std::max(sched_.now() + delay_.sample(rng_), last_arrival_);
  last_arrival_ = arrival;
  queue_.push_back(std::move(msg));
  adjust_in_flight(+1);
  ++enqueued_;
  schedule_tick(arrival);
}

void Channel::schedule_tick(SimTime arrival) {
  sched_.schedule_at_tagged(arrival, choice_tag_,
                            [this, epoch = epoch_] { on_tick(epoch); });
}

void Channel::on_tick(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // scheduled before a fault_clear: stale
  if (queue_.empty()) return;  // message was dropped by a fault
  Message msg = queue_.pop_front();
  adjust_in_flight(-1);
  ++delivered_;
  deliver_(msg);
}

void Channel::fault_drop(std::size_t index) {
  GBX_EXPECTS(index < queue_.size());
  queue_.erase(index);
  adjust_in_flight(-1);
  ++dropped_by_fault_;
}

void Channel::fault_duplicate(std::size_t index) {
  GBX_EXPECTS(index < queue_.size());
  const Message copy = queue_[index];
  queue_.insert(index + 1, copy);
  adjust_in_flight(+1);
  // The duplicate needs its own delivery tick; deliver it no earlier than
  // the queue tail's nominal arrival to keep tick counts consistent, and
  // fold that time back into the floor so later enqueues stay monotone.
  last_arrival_ = std::max(sched_.now(), last_arrival_);
  schedule_tick(last_arrival_);
}

void Channel::fault_corrupt(std::size_t index, const Message& corrupted) {
  GBX_EXPECTS(index < queue_.size());
  // Keep the monitor-only causal metadata of the physical message: faults
  // corrupt payloads, they do not rewrite causality.
  Message replacement = corrupted;
  replacement.uid = queue_[index].uid;
  replacement.vc = queue_[index].vc;
  replacement.taint = queue_[index].taint;
  queue_[index] = replacement;
}

void Channel::fault_taint(std::size_t index, obs::ProvenanceId id) {
  GBX_EXPECTS(index < queue_.size());
  queue_[index].taint.add(id);
}

void Channel::fault_swap(std::size_t a, std::size_t b) {
  GBX_EXPECTS(a < queue_.size());
  GBX_EXPECTS(b < queue_.size());
  std::swap(queue_[a], queue_[b]);
}

void Channel::fault_inject(const Message& msg) {
  queue_.push_back(msg);
  // Fabricated messages never passed Network::send, so they have no uid;
  // stamp one from the reserved spurious range so distinct injections do
  // not alias each other in monitor correlation.
  if (queue_.back().uid == 0) {
    std::uint64_t& next = spurious_uid_counter_ != nullptr
                              ? *spurious_uid_counter_
                              : local_spurious_uid_;
    queue_.back().uid = next++;
  }
  adjust_in_flight(+1);
  last_arrival_ = std::max(sched_.now(), last_arrival_);
  schedule_tick(last_arrival_);
}

void Channel::fault_clear() {
  dropped_by_fault_ += queue_.size();
  adjust_in_flight(-static_cast<std::ptrdiff_t>(queue_.size()));
  queue_.clear();
  // An improperly initialized channel forgets everything: the delay floor
  // inherited from the cleared backlog and the ticks it had scheduled.
  last_arrival_ = sched_.now();
  ++epoch_;
}

}  // namespace graybox::net
