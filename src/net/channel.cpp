#include "net/channel.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::net {

Channel::Channel(sim::Scheduler& sched, DelayModel delay, Rng rng,
                 DeliverFn deliver)
    : sched_(sched), delay_(delay), rng_(rng), deliver_(std::move(deliver)) {
  GBX_EXPECTS(deliver_ != nullptr);
}

void Channel::enqueue(Message&& msg) {
  const SimTime arrival =
      std::max(sched_.now() + delay_.sample(rng_), last_arrival_);
  last_arrival_ = arrival;
  queue_.push_back(std::move(msg));
  adjust_in_flight(+1);
  ++enqueued_;
  schedule_tick(arrival);
}

void Channel::schedule_tick(SimTime arrival) {
  sched_.schedule_at_tagged(arrival, choice_tag_,
                            [this, epoch = epoch_] { on_tick(epoch); });
}

void Channel::on_tick(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // scheduled before a fault_clear: stale
  if (queue_.empty()) return;  // message was dropped by a fault
  Message msg = queue_.pop_front();
  adjust_in_flight(-1);
  ++delivered_;
  deliver_(msg);
}

void Channel::fault_drop(std::size_t index) {
  GBX_EXPECTS(index < queue_.size());
  const bool chained = in_stamp_chain(index);
  const clk::ClockStamp removed = std::move(queue_[index].vc);
  queue_.erase(index);
  adjust_in_flight(-1);
  ++dropped_by_fault_;
  if (chained) repair_removed_stamp(removed, index);
}

void Channel::repair_removed_stamp(const clk::ClockStamp& removed,
                                   std::size_t first_successor) {
  for (std::size_t i = first_successor; i < queue_.size(); ++i) {
    if (!in_stamp_chain(i)) continue;
    queue_[i].vc.absorb_older(removed);
    return;
  }
  carry_stamp(removed);
}

void Channel::carry_stamp(const clk::ClockStamp& removed) {
  if (force_dense_next_) return;
  if (removed.is_dense()) {
    force_dense_next_ = true;
    carry_comps_.clear();
    return;
  }
  for (const auto& e : removed.entries()) {
    if (std::find(carry_comps_.begin(), carry_comps_.end(), e.comp) ==
        carry_comps_.end())
      carry_comps_.push_back(e.comp);
  }
  if (carry_comps_.size() > kCarryCap) {
    force_dense_next_ = true;
    carry_comps_.clear();
  }
}

void Channel::fault_duplicate(std::size_t index) {
  GBX_EXPECTS(index < queue_.size());
  const Message copy = queue_[index];
  queue_.insert(index + 1, copy);
  adjust_in_flight(+1);
  // The duplicate needs its own delivery tick; deliver it no earlier than
  // the queue tail's nominal arrival to keep tick counts consistent, and
  // fold that time back into the floor so later enqueues stay monotone.
  last_arrival_ = std::max(sched_.now(), last_arrival_);
  schedule_tick(last_arrival_);
}

void Channel::fault_corrupt(std::size_t index, const Message& corrupted) {
  GBX_EXPECTS(index < queue_.size());
  // Keep the monitor-only causal metadata of the physical message: faults
  // corrupt payloads, they do not rewrite causality.
  Message replacement = corrupted;
  replacement.uid = queue_[index].uid;
  replacement.vc = queue_[index].vc;
  replacement.taint = queue_[index].taint;
  queue_[index] = replacement;
}

void Channel::fault_taint(std::size_t index, obs::ProvenanceId id) {
  GBX_EXPECTS(index < queue_.size());
  queue_[index].taint.add(id);
}

void Channel::fault_swap(std::size_t a, std::size_t b) {
  GBX_EXPECTS(a < queue_.size());
  GBX_EXPECTS(b < queue_.size());
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  if (lo != hi) {
    // After the swap, q[hi] is delivered before everything in [lo, hi) and
    // q[lo] after it; repair stamps so every fold still covers its window.
    if (in_stamp_chain(hi)) {
      // q[hi] jumps ahead: it absorbs every chained window it overtakes.
      // Once folded, the receiver dominates all of them (same-sender clocks
      // are componentwise monotone), so the overtaken stamps fold as no-ops
      // exactly like they would against a dense q[hi].
      for (std::size_t i = hi; i-- > lo;) {
        if (!in_stamp_chain(i)) continue;
        queue_[hi].vc.absorb_older(queue_[i].vc);
        if (queue_[hi].vc.is_dense()) break;  // now self-contained
      }
    } else if (in_stamp_chain(lo)) {
      // A fabricated message jumps ahead of chained q[lo], which now trails
      // (lo, hi): the first chained successor in between inherits its
      // window. (With none, the chained order is unchanged — no repair.)
      for (std::size_t i = lo + 1; i < hi; ++i) {
        if (!in_stamp_chain(i)) continue;
        queue_[i].vc.absorb_older(queue_[lo].vc);
        break;
      }
    }
  }
  std::swap(queue_[a], queue_[b]);
}

void Channel::fault_inject(const Message& msg) {
  queue_.push_back(msg);
  // Fabricated messages never passed Network::send, so they have no uid;
  // stamp one from the reserved spurious range so distinct injections do
  // not alias each other in monitor correlation.
  if (queue_.back().uid == 0) {
    std::uint64_t& next = spurious_uid_counter_ != nullptr
                              ? *spurious_uid_counter_
                              : local_spurious_uid_;
    queue_.back().uid = next++;
  }
  adjust_in_flight(+1);
  last_arrival_ = std::max(sched_.now(), last_arrival_);
  schedule_tick(last_arrival_);
}

void Channel::fault_clear() {
  // Every chained stamp vanishes with no successor left to absorb it (the
  // queue empties), so their windows ride on the next genuine send.
  for (std::size_t i = 0; i < queue_.size() && !force_dense_next_; ++i)
    if (in_stamp_chain(i)) carry_stamp(queue_[i].vc);
  dropped_by_fault_ += queue_.size();
  adjust_in_flight(-static_cast<std::ptrdiff_t>(queue_.size()));
  queue_.clear();
  // An improperly initialized channel forgets everything: the delay floor
  // inherited from the cleared backlog and the ticks it had scheduled.
  last_arrival_ = sched_.now();
  ++epoch_;
}

}  // namespace graybox::net
