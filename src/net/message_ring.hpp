// Power-of-two ring buffer of in-flight messages.
//
// A channel's queue sees push_back (enqueue) and pop_front (delivery tick)
// on every simulated message — the std::deque it replaces paid a chunked
// heap allocation every few messages on exactly that hot pair. The ring
// reuses its slots forever once grown (messages are assigned into existing
// slots, and with inline vector clocks assignment allocates nothing), so
// steady-state traffic is allocation-free. The fault surface's positional
// operations (erase / insert / swap / indexing) are O(queue length) shifts,
// which is fine: faults are rare events by construction.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "net/message.hpp"

namespace graybox::net {

class MessageRing {
 public:
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const Message& operator[](std::size_t i) const {
    GBX_EXPECTS(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  Message& operator[](std::size_t i) {
    GBX_EXPECTS(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  const Message& front() const { return (*this)[0]; }
  const Message& back() const { return (*this)[count_ - 1]; }
  Message& back() { return (*this)[count_ - 1]; }

  void push_back(Message&& msg) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(msg);
    ++count_;
  }
  void push_back(const Message& msg) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = msg;
    ++count_;
  }

  Message pop_front() {
    GBX_EXPECTS(count_ > 0);
    Message out = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return out;
  }

  /// Insert before position `index` (0 == new front), shifting the tail.
  void insert(std::size_t index, const Message& msg) {
    GBX_EXPECTS(index <= count_);
    if (count_ == buf_.size()) grow();
    ++count_;
    for (std::size_t i = count_ - 1; i > index; --i)
      (*this)[i] = std::move((*this)[i - 1]);
    (*this)[index] = msg;
  }

  /// Remove the message at `index`, shifting the tail left.
  void erase(std::size_t index) {
    GBX_EXPECTS(index < count_);
    for (std::size_t i = index; i + 1 < count_; ++i)
      (*this)[i] = std::move((*this)[i + 1]);
    --count_;
  }

  /// Drop everything; slots (and their inline storage) are kept for reuse.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<Message> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<Message> buf_;  // capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

/// Read-only live view over a channel's in-flight queue, oldest first.
/// Monitors and the fault injector index it exactly like the deque it
/// replaced; the view stays coherent across enqueues/deliveries because it
/// reads through the ring rather than snapshotting it.
class MessageView {
 public:
  explicit MessageView(const MessageRing& ring) : ring_(&ring) {}

  std::size_t size() const { return ring_->size(); }
  bool empty() const { return ring_->empty(); }
  const Message& operator[](std::size_t i) const { return (*ring_)[i]; }
  const Message& front() const { return ring_->front(); }
  const Message& back() const { return ring_->back(); }

  class const_iterator {
   public:
    using value_type = Message;
    using difference_type = std::ptrdiff_t;
    const_iterator(const MessageRing* ring, std::size_t i)
        : ring_(ring), i_(i) {}
    const Message& operator*() const { return (*ring_)[i_]; }
    const Message* operator->() const { return &(*ring_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++i_;
      return copy;
    }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    const MessageRing* ring_;
    std::size_t i_;
  };

  const_iterator begin() const { return {ring_, 0}; }
  const_iterator end() const { return {ring_, ring_->size()}; }

 private:
  const MessageRing* ring_;
};

}  // namespace graybox::net
