// The interprocess network: a complete graph of directed FIFO channels over
// n processes ("we assume that the processes are connected", Section 3.1),
// plus the monitor-side causality layer.
//
// Responsibilities:
//   * route Message sends into per-pair channels and deliver them to the
//     registered per-process handlers;
//   * assign message uids and thread vector clocks through sends/deliveries
//     so monitors can decide happened-before without the programs under
//     test ever seeing causal metadata;
//   * expose send/delivery observers (the lspec monitors and the
//     experiment accounting hook here);
//   * expose the channels' fault surface to the FaultInjector.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "clock/vector_clock.hpp"
#include "common/rng.hpp"
#include "net/channel.hpp"
#include "obs/event_bus.hpp"

namespace graybox::net {

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using MessageObserver = std::function<void(const Message&)>;

  /// A network of `n` processes with the given delay model. Each channel
  /// gets an independent RNG stream split from `rng`.
  Network(sim::Scheduler& sched, std::size_t n, DelayModel delay, Rng rng);

  std::size_t size() const { return n_; }

  /// Install the delivery handler for process `pid`. Must be set before the
  /// first delivery to that process.
  void set_handler(ProcessId pid, Handler handler);

  /// Send `type`/`ts` from `from` to `to`. Ticks the sender's monitor-side
  /// vector clock, stamps uid and vc, and enqueues on the FIFO channel.
  /// `from_wrapper` tags wrapper resends for accounting (see Message).
  void send(ProcessId from, ProcessId to, MsgType type, clk::Timestamp ts,
            bool from_wrapper = false);

  /// Record a local (non-send) event of `pid` in the causality layer; the
  /// harness calls this when a client triggers a request/release so the
  /// FCFS monitor sees those events in happened-before order.
  void local_event(ProcessId pid);

  /// Monitor-side causal clock of a process (snapshot semantics: the value
  /// after the process's most recent event).
  const clk::VectorClock& vclock(ProcessId pid) const;

  /// Monotone counter bumped whenever vclock(pid) changes (send, delivery,
  /// local event). The snapshot source's dirty tracking compares it against
  /// the version it last captured.
  std::uint64_t vclock_version(ProcessId pid) const {
    return vclock_versions_[pid];
  }

  /// Reference mode: stamp every outgoing message with a full dense clock
  /// (the pre-sparse encoding) instead of per-channel deltas. The two
  /// encodings produce bit-identical receiver clocks; golden-equivalence
  /// tests and the in-binary before/after benchmark flip this switch.
  void set_dense_stamps(bool dense) { dense_stamps_ = dense; }
  bool dense_stamps() const { return dense_stamps_; }

  /// Directed channel from -> to. Requires from != to.
  Channel& channel(ProcessId from, ProcessId to);
  const Channel& channel(ProcessId from, ProcessId to) const;

  // --- Partitions -------------------------------------------------------

  /// Install a bipartition of the processes: bit `p` of `mask` selects
  /// process p's side, and sends crossing sides are lost at send time (the
  /// link is down; the sender still performed its send event). Messages
  /// already in flight when the partition forms are NOT affected — they
  /// were on the wire before the cut. Mask 0 (the default) means fully
  /// connected; requires n <= 64 for a nonzero mask.
  void set_partition(std::uint64_t mask);
  std::uint64_t partition_mask() const { return partition_mask_; }
  /// True when `a` and `b` are currently on opposite partition sides.
  bool partitioned(ProcessId a, ProcessId b) const {
    return (((partition_mask_ >> a) ^ (partition_mask_ >> b)) & 1u) != 0;
  }
  /// Messages lost to a partition at send time (accounted like drops).
  std::uint64_t dropped_by_partition() const { return dropped_by_partition_; }

  /// Total messages currently in flight across all channels. O(1): the
  /// channels mirror every queue-size change into a shared counter.
  std::size_t in_flight() const { return in_flight_; }

  /// Observers fire on every send (after stamping) and every delivery
  /// (before the handler runs).
  void add_send_observer(MessageObserver obs);
  void add_delivery_observer(MessageObserver obs);

  /// Attach the observability bus; every send and delivery is recorded as
  /// a typed event. nullptr (the default) detaches.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Attach the provenance tracker; every send then stamps the sender's
  /// active taint onto the outgoing message (and accounts tainted
  /// messages). nullptr (the default) disables — one predicted branch on
  /// the send path.
  void set_provenance(obs::ProvenanceTracker* prov) { prov_ = prov; }

  /// Sim-time of the most recent send / delivery (kNever before the
  /// first). Feeds quiescence detection in the stabilization timeline.
  SimTime last_send_time() const { return last_send_time_; }
  SimTime last_delivery_time() const { return last_delivery_time_; }

  // --- Accounting -------------------------------------------------------
  std::uint64_t total_sent() const { return total_sent_; }
  std::uint64_t total_delivered() const { return total_delivered_; }
  std::uint64_t sent_by_wrapper() const { return sent_by_wrapper_; }
  std::uint64_t sent_of_type(MsgType t) const {
    return sent_by_type_[static_cast<std::size_t>(t)];
  }

 private:
  std::size_t channel_index(ProcessId from, ProcessId to) const;
  void deliver(const Message& msg);
  /// Stamp `msg` for the channel from -> to: a delta of the components
  /// modified since the channel's baseline (plus its carry set), falling
  /// back to dense when forced or too large.
  void build_stamp(const Channel& ch, Message& msg, ProcessId from);

  sim::Scheduler& sched_;
  std::size_t n_;
  std::vector<std::unique_ptr<Channel>> channels_;  // n*n, diagonal unused
  std::vector<Handler> handlers_;
  std::vector<clk::VectorClock> vclocks_;
  std::vector<std::uint64_t> vclock_versions_;
  /// Flat n*n: mod_seq_[pid * n + c] is the value vclock_version(pid) had
  /// when component c of pid's clock last changed. Drives delta stamps:
  /// a send on a channel carries exactly the components whose mod-seq
  /// exceeds the channel's baseline (the sender version at its previous
  /// genuine enqueue).
  std::vector<std::uint64_t> mod_seq_;
  bool dense_stamps_ = false;
  std::size_t in_flight_ = 0;
  std::vector<MessageObserver> send_observers_;
  std::vector<MessageObserver> delivery_observers_;
  obs::EventBus* bus_ = nullptr;
  obs::ProvenanceTracker* prov_ = nullptr;
  SimTime last_send_time_ = kNever;
  SimTime last_delivery_time_ = kNever;
  std::uint64_t next_uid_ = 1;
  /// Shared by all channels; see Channel::set_spurious_uid_counter.
  std::uint64_t next_spurious_uid_ = kSpuriousUidBase;
  std::uint64_t partition_mask_ = 0;
  std::uint64_t dropped_by_partition_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t sent_by_wrapper_ = 0;
  std::uint64_t sent_by_type_[3] = {0, 0, 0};
};

}  // namespace graybox::net
