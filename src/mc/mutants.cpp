#include "mc/mutants.hpp"

#include <memory>

#include "common/contracts.hpp"
#include "me/lamport.hpp"
#include "me/protocol_registry.hpp"
#include "me/ricart_agrawala.hpp"

namespace graybox::mc {

namespace {

using me::OptionSpec;
using me::ProcessFactory;
using me::ResolvedOptions;
using me::RicartAgrawala;
using me::SpecConformance;
using me::TmeProcess;

// --- mutant-ra-tiebreak ------------------------------------------------------

/// Drops the pid tiebreak from the entry guard: counters alone decide, and
/// ties pass. Two processes whose concurrent requests carry equal Lamport
/// counters each believe they precede the other and both enter.
class RaTiebreakMutant : public RicartAgrawala {
 public:
  using RicartAgrawala::RicartAgrawala;

  bool knows_earlier(ProcessId k) const override {
    GBX_EXPECTS(k < peers());
    return req().counter <= view_of(k).counter;
  }
  std::string_view algorithm() const override { return "mutant-ra-tiebreak"; }
};

// --- mutant-ra-eager-reply ---------------------------------------------------

/// Always replies immediately and never records the request as pending, so
/// the derived deferred set stays empty and do_release notifies nobody.
/// The competing process keeps a stale earlier view of the releaser and
/// starves behind it.
class RaEagerReplyMutant : public RicartAgrawala {
 public:
  using RicartAgrawala::RicartAgrawala;

  std::string_view algorithm() const override {
    return "mutant-ra-eager-reply";
  }

 protected:
  void handle_request(const net::Message& msg) override {
    update_view(msg.from, msg.ts);
    send(msg.from, net::MsgType::kReply, req());
  }
};

// --- mutant-lamport-no-ack ---------------------------------------------------

/// Drops the acknowledgement conjunct (grant.j.k == REQj lt last_heard[k])
/// from Lamport's entry guard: local queue evidence alone decides. A peer
/// whose earlier request is still in flight has no queue entry yet, so
/// both processes judge themselves earliest and both enter — the textbook
/// reason Lamport's algorithm must wait to hear back from every peer.
class LamportNoAckMutant : public me::LamportMe {
 public:
  using me::LamportMe::LamportMe;

  bool knows_earlier(ProcessId k) const override {
    GBX_EXPECTS(k < peers());
    for (const auto& entry : queue()) {
      if (entry.pid == k && clk::lt(entry.ts, req())) return false;
    }
    return true;
  }
  std::string_view algorithm() const override {
    return "mutant-lamport-no-ack";
  }
};

// --- Factories ---------------------------------------------------------------

class RaTiebreakFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "mutant-ra-tiebreak"; }
  SpecConformance conformance() const override { return SpecConformance{}; }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& /*options*/) const
      override {
    GBX_EXPECTS(n == net.size());
    return std::make_unique<RaTiebreakMutant>(pid, net);
  }
};

class RaEagerReplyFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "mutant-ra-eager-reply"; }
  SpecConformance conformance() const override { return SpecConformance{}; }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& /*options*/) const
      override {
    GBX_EXPECTS(n == net.size());
    return std::make_unique<RaEagerReplyMutant>(pid, net);
  }
};

class LamportNoAckFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "mutant-lamport-no-ack"; }
  SpecConformance conformance() const override { return SpecConformance{}; }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& /*options*/) const
      override {
    GBX_EXPECTS(n == net.size());
    return std::make_unique<LamportNoAckMutant>(pid, net);
  }
};

}  // namespace

void register_mutants() {
  static const bool registered = [] {
    static const RaTiebreakFactory tiebreak;
    static const RaEagerReplyFactory eager;
    static const LamportNoAckFactory noack;
    me::ProtocolRegistry::instance().add(&tiebreak);
    me::ProtocolRegistry::instance().add(&eager);
    me::ProtocolRegistry::instance().add(&noack);
    return true;
  }();
  (void)registered;
}

}  // namespace graybox::mc
