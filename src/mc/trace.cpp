#include "mc/trace.hpp"

#include <sstream>

namespace graybox::mc {

std::string ScheduleTrace::to_text() const {
  std::ostringstream out;
  out << "graybox-mc-trace v1\n";
  out << "seed " << seed << "\n";
  if (!choices.empty()) {
    out << "choices";
    for (std::uint32_t c : choices) out << " " << c;
    out << "\n";
  }
  for (const FaultAt& f : faults) {
    out << "fault " << f.at_event << " " << unsigned{f.fault.code} << " "
        << f.fault.a << " " << f.fault.b << " " << f.fault.index << " "
        << f.fault.index2 << " " << f.fault.mask << "\n";
  }
  return out.str();
}

std::optional<ScheduleTrace> ScheduleTrace::from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "graybox-mc-trace v1")
    return std::nullopt;
  ScheduleTrace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      if (!(ls >> trace.seed)) return std::nullopt;
    } else if (key == "choices") {
      std::uint32_t c;
      while (ls >> c) trace.choices.push_back(c);
    } else if (key == "fault") {
      FaultAt f;
      unsigned code;
      if (!(ls >> f.at_event >> code >> f.fault.a >> f.fault.b >>
            f.fault.index >> f.fault.index2 >> f.fault.mask))
        return std::nullopt;
      if (code > 0xff) return std::nullopt;
      f.fault.code = static_cast<std::uint8_t>(code);
      trace.faults.push_back(f);
    } else {
      return std::nullopt;
    }
  }
  return trace;
}

}  // namespace graybox::mc
