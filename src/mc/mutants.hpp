// Seeded protocol mutants for the explorer's mutation smoke.
//
// Each mutant re-introduces one real bug class the correct implementations
// guard against; the smoke (tests/test_mc.cpp, tools/graybox_mc
// --mutation-smoke) asserts mc::Explorer finds each and shrinks the
// counterexample to a handful of steps. They register in the global
// ProtocolRegistry only through register_mutants() — never at load time —
// so registry-wide smokes over the built-ins (which assume correct
// implementations) cannot meet them by accident.
//
//   mutant-ra-tiebreak    knows_earlier compares Lamport counters only,
//                         dropping the pid tiebreak: concurrent requests
//                         with equal counters both pass the entry guard.
//                         Fault-free ME1 under the right delivery order.
//   mutant-ra-eager-reply handle_request always replies immediately and
//                         never records the pending request, so release
//                         finds an empty deferred set and notifies nobody:
//                         the competing process starves on a stale view.
//   mutant-lamport-no-ack Lamport's entry guard loses the acknowledgement
//                         conjunct (grant.j.k): a peer's earlier request
//                         still in flight has no local queue entry, so
//                         both processes judge themselves earliest and
//                         both enter (ME1 from a pure delivery race).
#pragma once

namespace graybox::mc {

/// Register the three mutants in me::ProtocolRegistry::instance().
/// Idempotent; call from any binary that explores mutants by name.
void register_mutants();

}  // namespace graybox::mc
