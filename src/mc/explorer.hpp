// mc::Explorer — a deterministic stateless model checker over the existing
// simulation stack.
//
// The paper's guarantees are quantified over every schedule and every
// transient fault placement; the harness alone only samples them via a
// seeded RNG. The explorer closes the gap with bounded-exhaustive search:
//
//   * Choice points. A sim::ChoiceHook turns every same-tick tie (>= 2
//     ready events) into an enumerable decision; with no hook the
//     scheduler's insertion-order tiebreak is decision "0", so the root
//     schedule is exactly the legacy sampled run.
//   * Fault placements. net::TargetedFault pins an injector fault (or a
//     crash/recover / partition/heal pair) to an executed-event position
//     on a fixed stride grid; the fault menu at each position is derived
//     from the live channel state of the run being extended.
//   * Search. Iterative-deepening-free DFS over ScheduleTrace prefixes:
//     each execution records the choice points it met and the fault menus
//     it passed; children extend the trace by one non-default choice or
//     one placed fault. Delay bounding caps non-default choices per
//     schedule; a sleep-set-lite reduction prunes alternatives that only
//     commute independent deliveries (disjoint channel endpoints, keyed on
//     the delivery tags net::Channel stamps).
//   * Verdicts. Stateless re-execution from scratch per schedule, so every
//     failing ScheduleTrace replays bit-identically; a greedy shrinker
//     minimizes it before Explorer::explain renders the counterexample
//     through obs::why() and the blast-radius rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "mc/trace.hpp"
#include "net/fault_injector.hpp"

namespace graybox::mc {

/// What counts as a bug.
enum class BugProperty {
  /// Any safety violation (ME1 / ME3 / Invariant I / Mutual Belief) or
  /// end-of-run starvation. Sound when the trace places no faults — the
  /// paper's Spec admits no fault-free violation — and for mutation
  /// smokes where the seeded defect makes any violation diagnostic.
  kAnySafetyViolation,
  /// Transient violations inside the fault window are expected (the
  /// paper's stabilization story); a bug is a violation after the last
  /// fault plus the settle window, or starvation after drain.
  kConvergence,
};

struct ExplorerConfig {
  /// Base system under test. The explorer overrides seed per trace and
  /// never mutates the caller's copy.
  core::HarnessConfig harness{};

  BugProperty property = BugProperty::kAnySafetyViolation;

  /// Per-execution bounds: stop stepping past this sim time / this many
  /// executed events, then settle (kConvergence only) and drain.
  SimTime horizon = 1500;
  std::uint64_t max_events = 30000;

  /// Max non-default choices per schedule (delay bounding).
  std::uint32_t delay_budget = 2;
  /// Only branch at the first `branch_window` choice points of a run —
  /// the bug-relevant perturbations live early (request alignment, fault
  /// races); late points mostly reorder the drain. Points past the window
  /// still replay their recorded choices.
  std::size_t branch_window = 400;
  /// Max placed faults per trace (0 = schedule exploration only).
  std::uint32_t fault_budget = 0;
  /// Max executions for the DFS (shrinking is budgeted separately).
  std::uint64_t budget = 2000;

  /// Fault-placement grid: candidate positions are every `fault_stride`
  /// executed events in [0, fault_window).
  std::uint64_t fault_window = 600;
  std::uint64_t fault_stride = 60;
  /// Cap on menu entries recorded per grid position.
  std::size_t max_faults_per_position = 12;
  net::FaultMix mix = net::FaultMix::channel_only();

  /// Also enumerate crash/recover and partition/heal pairs (the recovery /
  /// heal lands `lifecycle_gap_events` executed events after the fault).
  bool explore_lifecycle = false;
  std::uint64_t lifecycle_gap_events = 150;

  /// kConvergence: sim time granted after the fault window to converge.
  SimTime settle = 500;
  /// Drain period before liveness verdicts (both properties).
  SimTime drain_period = 400;
};

/// Verdict of one execution. Deterministic: equal traces yield equal
/// outcomes, including the digest (the CI byte-identity smoke pins this).
struct Outcome {
  bool bug = false;
  std::string kind;    ///< "me1" / "me3" / "invariant-i" / "mutual-belief"
                       ///< / "starvation" / "post-settle-violation"; ""
                       ///< when clean.
  std::string detail;  ///< one-line violation/starvation summary
  std::uint64_t digest = 0;  ///< FNV-1a over the deterministic run facts
  std::uint64_t executed_events = 0;
  SimTime end_time = 0;
};

struct ExplorerStats {
  std::uint64_t executions = 0;
  std::uint64_t choice_points = 0;
  std::uint64_t alternatives = 0;     ///< non-default branches considered
  std::uint64_t pruned_sleep = 0;     ///< dropped by the commutation rule
  std::uint64_t pruned_delay = 0;     ///< dropped by the delay bound
  std::uint64_t faults_placed = 0;    ///< fault-extension children pushed
  std::uint64_t shrink_executions = 0;
};

struct ExplorerResult {
  bool found = false;
  ScheduleTrace counterexample;  ///< shrunk; empty when !found
  ScheduleTrace original;        ///< the first failing trace, unshrunk
  Outcome outcome;               ///< outcome of the shrunk counterexample
  ExplorerStats stats;
};

class Explorer {
 public:
  explicit Explorer(ExplorerConfig config);

  /// DFS over schedules and fault placements until a bug or the budget.
  ExplorerResult run();

  /// Execute one trace; deterministic, no recording.
  Outcome execute(const ScheduleTrace& trace);

  /// Greedily minimize a failing trace (drop faults, zero choices,
  /// truncate) while it keeps failing.
  ScheduleTrace shrink(ScheduleTrace trace);

  /// Re-execute a failing trace with the event bus and provenance enabled
  /// and render the counterexample: the trace text, the outcome, the
  /// obs::why() causal chain of the first violation, and the blast-radius
  /// rows of every placed fault.
  std::string explain(const ScheduleTrace& trace);

  const ExplorerStats& stats() const { return stats_; }

 private:
  struct ChoicePoint {
    std::vector<std::uint64_t> tags;  ///< live same-tick events, in order
  };
  struct Recording {
    std::vector<ChoicePoint> points;
    /// (grid position, menu of concrete faults applicable there).
    std::vector<std::pair<std::uint64_t, std::vector<net::TargetedFault>>>
        fault_menus;
  };

  /// Construct-and-run one trace against `cfg` (callers enrich cfg for
  /// observability); `h` must be freshly constructed from it.
  Outcome drive(core::SystemHarness& h, const ScheduleTrace& trace,
                Recording* rec);
  void record_fault_menu(core::SystemHarness& h, std::uint64_t ec,
                         const ScheduleTrace& trace, Recording& rec);
  void push_choice_children(const ScheduleTrace& trace, const Recording& rec,
                            std::vector<ScheduleTrace>& stack);
  static void apply_fault(core::SystemHarness& h,
                          const net::TargetedFault& f);

  ExplorerConfig config_;
  ExplorerStats stats_;
  /// Scratch the ScriptedHook appends tag snapshots into while recording.
  std::vector<std::vector<std::uint64_t>> record_scratch_;
};

}  // namespace graybox::mc
