#include "mc/explorer.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "core/stabilization.hpp"
#include "net/channel.hpp"
#include "obs/causal_dag.hpp"

namespace graybox::mc {

namespace {

/// FNV-1a over 64-bit words: the outcome digest is a pure function of the
/// deterministic run facts, so replays and cross---jobs reruns agree.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

/// Replays a trace's choice vector at successive choice points and, when
/// recording, snapshots every point's live tag set for DFS extension.
class ScriptedHook : public sim::ChoiceHook {
 public:
  ScriptedHook(const std::vector<std::uint32_t>& choices,
               std::vector<std::vector<std::uint64_t>>* record)
      : choices_(choices), record_(record) {}

  std::size_t choose(SimTime /*now*/, const std::uint64_t* tags,
                     std::size_t count) override {
    const std::size_t i = next_++;
    if (record_ != nullptr)
      record_->emplace_back(tags, tags + count);
    if (i >= choices_.size()) return 0;
    // Clamp: a shrunk/replayed trace may meet a smaller tie than the one
    // it was recorded against; degrading to the last live index keeps the
    // replay total instead of tripping the scheduler contract.
    return std::min<std::size_t>(choices_[i], count - 1);
  }

  std::size_t points_met() const { return next_; }

 private:
  const std::vector<std::uint32_t>& choices_;
  std::vector<std::vector<std::uint64_t>>* record_;
  std::size_t next_ = 0;
};

/// Two same-tick events commute when reordering them cannot change any
/// process's observation: both are deliveries and their directed channels
/// either coincide (FIFO pops the same head regardless of tick order) or
/// touch four pairwise distinct endpooints. Untagged events (timers,
/// polls, client decisions) are always treated as dependent.
bool commutes(std::uint64_t x, std::uint64_t y) {
  if (!net::is_delivery_tag(x) || !net::is_delivery_tag(y)) return false;
  if (x == y) return true;
  const ProcessId xf = net::delivery_tag_from(x);
  const ProcessId xt = net::delivery_tag_to(x);
  const ProcessId yf = net::delivery_tag_from(y);
  const ProcessId yt = net::delivery_tag_to(y);
  return xf != yf && xf != yt && xt != yf && xt != yt;
}

std::uint32_t nonzero_choices(const std::vector<std::uint32_t>& choices) {
  std::uint32_t n = 0;
  for (std::uint32_t c : choices)
    if (c != 0) ++n;
  return n;
}

}  // namespace

Explorer::Explorer(ExplorerConfig config) : config_(std::move(config)) {
  GBX_EXPECTS(config_.fault_stride > 0);
  GBX_EXPECTS(config_.budget > 0);
}

void Explorer::apply_fault(core::SystemHarness& h,
                           const net::TargetedFault& f) {
  switch (f.code) {
    case net::kFaultCodeProcessCrash:
      h.crash(f.a);
      break;
    case net::kFaultCodeProcessRecover:
      h.recover(f.a);
      break;
    case net::kFaultCodePartition:
      h.partition(f.mask);
      break;
    case net::kFaultCodePartitionHeal:
      h.heal_partition();
      break;
    default:
      // Injector kinds; a target that no longer exists (shrunk trace,
      // drifted state) degrades to a recorded no-op.
      h.faults().inject_targeted(f);
      break;
  }
}

void Explorer::record_fault_menu(core::SystemHarness& h, std::uint64_t ec,
                                 const ScheduleTrace& trace, Recording& rec) {
  if (config_.fault_budget == 0) return;
  // Extension discipline: faults are placed before any schedule
  // perturbation (children with choices never grow new faults), and only
  // at grid positions strictly after the trace's last placed fault — so
  // every (fault set, choice vector) pair is enumerated exactly once.
  if (!trace.choices.empty()) return;
  if (trace.faults.size() >= config_.fault_budget) return;
  if (ec >= config_.fault_window || ec % config_.fault_stride != 0) return;
  if (!trace.faults.empty() && ec <= trace.faults.back().at_event) return;

  std::vector<net::TargetedFault> menu;
  net::Network& net = h.network();
  const std::size_t n = net.size();
  const std::size_t cap = config_.max_faults_per_position;
  for (ProcessId from = 0; from < n && menu.size() < cap; ++from) {
    for (ProcessId to = 0; to < n && menu.size() < cap; ++to) {
      if (from == to) continue;
      const net::Channel& ch = net.channel(from, to);
      if (ch.empty()) continue;
      const auto kinds = {net::FaultKind::kMessageDrop,
                          net::FaultKind::kMessageDuplicate,
                          net::FaultKind::kMessageCorrupt,
                          net::FaultKind::kChannelClear};
      for (net::FaultKind kind : kinds) {
        if (!config_.mix.enabled(kind) || menu.size() >= cap) continue;
        net::TargetedFault f;
        f.code = static_cast<std::uint8_t>(kind);
        f.a = from;
        f.b = to;
        menu.push_back(f);
      }
      if (config_.mix.message_reorder && ch.in_flight() >= 2 &&
          menu.size() < cap) {
        net::TargetedFault f;
        f.code = static_cast<std::uint8_t>(net::FaultKind::kMessageReorder);
        f.a = from;
        f.b = to;
        f.index = 0;
        f.index2 = 1;
        menu.push_back(f);
      }
      if (config_.mix.spurious_message && menu.size() < cap) {
        net::TargetedFault f;
        f.code = static_cast<std::uint8_t>(net::FaultKind::kSpuriousMessage);
        f.a = from;
        f.b = to;
        menu.push_back(f);
      }
    }
  }
  if (config_.mix.process_corrupt) {
    for (ProcessId pid = 0; pid < n && menu.size() < cap; ++pid) {
      net::TargetedFault f;
      f.code = static_cast<std::uint8_t>(net::FaultKind::kProcessCorrupt);
      f.a = pid;
      menu.push_back(f);
    }
  }
  if (config_.explore_lifecycle) {
    for (ProcessId pid = 0; pid < n && menu.size() < cap; ++pid) {
      net::TargetedFault f;
      f.code = net::kFaultCodeProcessCrash;
      f.a = pid;
      menu.push_back(f);
    }
    if (n >= 2 && n <= 64) {
      for (ProcessId pid = 0; pid < n && menu.size() < cap; ++pid) {
        net::TargetedFault f;
        f.code = net::kFaultCodePartition;
        f.mask = std::uint64_t{1} << pid;
        menu.push_back(f);
      }
    }
  }
  if (!menu.empty()) rec.fault_menus.emplace_back(ec, std::move(menu));
}

Outcome Explorer::drive(core::SystemHarness& h, const ScheduleTrace& trace,
                        Recording* rec) {
  ScriptedHook hook(trace.choices,
                    rec != nullptr ? &record_scratch_ : nullptr);
  record_scratch_.clear();
  h.scheduler().set_choice_hook(&hook);
  h.start();

  std::uint64_t ec = 0;
  std::size_t fi = 0;
  while (ec < config_.max_events) {
    while (fi < trace.faults.size() && trace.faults[fi].at_event <= ec) {
      apply_fault(h, trace.faults[fi].fault);
      ++fi;
    }
    if (rec != nullptr) record_fault_menu(h, ec, trace, *rec);
    if (!h.scheduler().step_until(config_.horizon)) break;
    ++ec;
  }
  if (config_.property == BugProperty::kConvergence)
    h.run_for(config_.settle);
  h.drain(config_.drain_period);
  h.scheduler().set_choice_hook(nullptr);

  if (rec != nullptr) {
    rec->points.reserve(record_scratch_.size());
    for (auto& tags : record_scratch_)
      rec->points.push_back(ChoicePoint{std::move(tags)});
    record_scratch_.clear();
  }

  const core::RunStats s = h.stats();
  const core::StabilizationReport report = h.stabilization_report();
  const lspec::TmeMonitors& tm = h.tme_monitors();

  Outcome out;
  out.executed_events = ec;
  out.end_time = h.scheduler().now();

  const bool starvation = report.starvation;
  const std::uint64_t safety = s.me1_violations + s.me3_violations +
                               s.invariant_violations +
                               s.mutual_belief_violations;
  auto violation_kind = [&]() -> const char* {
    if (s.me1_violations > 0) return "me1";
    if (s.invariant_violations > 0) return "invariant-i";
    if (s.mutual_belief_violations > 0) return "mutual-belief";
    return "me3";
  };
  if (config_.property == BugProperty::kAnySafetyViolation) {
    if (safety > 0) {
      out.bug = true;
      out.kind = violation_kind();
    } else if (starvation) {
      out.bug = true;
      out.kind = "starvation";
    }
  } else {
    if (starvation) {
      out.bug = true;
      out.kind = "starvation";
    } else if (safety > 0 && !report.faults_injected) {
      out.bug = true;
      out.kind = violation_kind();
    } else if (report.last_safety_violation != kNever &&
               report.faults_injected &&
               report.last_safety_violation >
                   report.last_fault + config_.settle) {
      out.bug = true;
      out.kind = "post-settle-violation";
    }
  }

  std::ostringstream detail;
  detail << "me1=" << s.me1_violations << " me3=" << s.me3_violations
         << " inv=" << s.invariant_violations
         << " mb=" << s.mutual_belief_violations
         << " starvation=" << (starvation ? 1 : 0)
         << " last_fault=" << report.last_fault
         << " last_violation=" << report.last_safety_violation;
  out.detail = detail.str();

  Fnv digest;
  digest.add(ec);
  digest.add(out.end_time);
  digest.add(s.cs_entries);
  digest.add(s.requests_issued);
  digest.add(s.messages_sent);
  digest.add(s.me1_violations);
  digest.add(s.me3_violations);
  digest.add(s.invariant_violations);
  digest.add(s.mutual_belief_violations);
  digest.add(s.faults_injected);
  digest.add(starvation ? 1 : 0);
  digest.add(report.last_safety_violation);
  digest.add(tm.me2 != nullptr ? tm.me2->served() : 0);
  out.digest = digest.h;
  return out;
}

Outcome Explorer::execute(const ScheduleTrace& trace) {
  core::HarnessConfig cfg = config_.harness;
  cfg.seed = trace.seed;
  core::SystemHarness h(cfg);
  return drive(h, trace, nullptr);
}

ExplorerResult Explorer::run() {
  ExplorerResult result;
  std::vector<ScheduleTrace> stack;
  ScheduleTrace root;
  root.seed = config_.harness.seed;
  stack.push_back(root);

  while (!stack.empty() && stats_.executions < config_.budget) {
    ScheduleTrace trace = std::move(stack.back());
    stack.pop_back();

    Recording rec;
    core::HarnessConfig cfg = config_.harness;
    cfg.seed = trace.seed;
    core::SystemHarness h(cfg);
    const Outcome outcome = drive(h, trace, &rec);
    ++stats_.executions;
    stats_.choice_points += rec.points.size();

    if (outcome.bug) {
      result.found = true;
      result.original = trace;
      result.counterexample = shrink(trace);
      result.outcome = execute(result.counterexample);
      result.stats = stats_;
      return result;
    }

    push_choice_children(trace, rec, stack);
    // Fault extensions are pushed after the choice extensions so the DFS
    // pops them first: placements are the primary lever against fault
    // bugs, and each placement's own schedule perturbations follow from
    // its choice-point recording.
    for (const auto& [pos, menu] : rec.fault_menus) {
      for (const net::TargetedFault& f : menu) {
        ScheduleTrace child = trace;
        child.faults.push_back(FaultAt{pos, f});
        if (f.code == net::kFaultCodeProcessCrash) {
          net::TargetedFault heal = f;
          heal.code = net::kFaultCodeProcessRecover;
          child.faults.push_back(
              FaultAt{pos + config_.lifecycle_gap_events, heal});
        } else if (f.code == net::kFaultCodePartition) {
          net::TargetedFault heal = f;
          heal.code = net::kFaultCodePartitionHeal;
          child.faults.push_back(
              FaultAt{pos + config_.lifecycle_gap_events, heal});
        }
        ++stats_.faults_placed;
        stack.push_back(std::move(child));
      }
    }
  }

  result.stats = stats_;
  return result;
}

void Explorer::push_choice_children(const ScheduleTrace& trace,
                                    const Recording& rec,
                                    std::vector<ScheduleTrace>& stack) {
  // Children are pushed latest-point-first so the DFS stack pops the
  // EARLIEST new choice point next: perturbations near the start of the
  // run (request alignment, fault races) are explored before tail
  // reorderings that mostly shuffle the drain.
  const std::size_t fixed = trace.choices.size();
  const std::uint32_t delays = nonzero_choices(trace.choices);
  const std::size_t last = std::min(rec.points.size(), config_.branch_window);
  for (std::size_t j = last; j-- > fixed;) {
    const std::vector<std::uint64_t>& tags = rec.points[j].tags;
    if (delays + 1 > config_.delay_budget) {
      stats_.pruned_delay += tags.size() - 1;
      continue;
    }
    for (std::size_t a = tags.size(); a-- > 1;) {
      ++stats_.alternatives;
      // Sleep-set-lite: taking event `a` first displaces events 0..a-1;
      // if it commutes with all of them the reordered run revisits a
      // state the default branch already covers.
      bool all_commute = true;
      for (std::size_t d = 0; d < a && all_commute; ++d)
        all_commute = commutes(tags[a], tags[d]);
      if (all_commute) {
        ++stats_.pruned_sleep;
        continue;
      }
      ScheduleTrace child = trace;
      child.choices.resize(j, 0);
      child.choices.push_back(static_cast<std::uint32_t>(a));
      stack.push_back(std::move(child));
    }
  }
}

ScheduleTrace Explorer::shrink(ScheduleTrace trace) {
  trace.normalize();
  auto fails = [&](const ScheduleTrace& candidate) {
    ++stats_.shrink_executions;
    return execute(candidate).bug;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    // Drop placed faults one at a time.
    for (std::size_t i = 0; i < trace.faults.size();) {
      ScheduleTrace c = trace;
      c.faults.erase(c.faults.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(c)) {
        trace = std::move(c);
        changed = true;
      } else {
        ++i;
      }
    }
    // Truncate the choice vector: halve while it keeps failing, then trim
    // one entry at a time.
    while (trace.choices.size() > 1) {
      ScheduleTrace c = trace;
      c.choices.resize(trace.choices.size() / 2);
      c.normalize();
      if (c.choices.size() < trace.choices.size() && fails(c)) {
        trace = std::move(c);
        changed = true;
      } else {
        break;
      }
    }
    while (!trace.choices.empty()) {
      ScheduleTrace c = trace;
      c.choices.pop_back();
      c.normalize();
      if (fails(c)) {
        trace = std::move(c);
        changed = true;
      } else {
        break;
      }
    }
    // Zero the remaining non-default choices.
    for (std::size_t i = 0; i < trace.choices.size(); ++i) {
      if (trace.choices[i] == 0) continue;
      ScheduleTrace c = trace;
      c.choices[i] = 0;
      c.normalize();
      if (fails(c)) {
        trace = std::move(c);
        changed = true;
        break;  // indices shifted; restart the pass
      }
    }
    trace.normalize();
  }
  return trace;
}

std::string Explorer::explain(const ScheduleTrace& trace) {
  core::HarnessConfig cfg = config_.harness;
  cfg.seed = trace.seed;
  cfg.trace_capacity = std::max<std::size_t>(cfg.trace_capacity, 8192);
  cfg.provenance = true;
  core::SystemHarness h(cfg);
  const Outcome outcome = drive(h, trace, nullptr);

  std::ostringstream out;
  out << "counterexample (" << trace.steps() << " steps, "
      << (outcome.bug ? outcome.kind : std::string("no-bug")) << ")\n";
  out << trace.to_text();
  out << "outcome: " << outcome.detail << "\n";

  const obs::EventBus& bus = h.events();
  std::size_t violation_idx = bus.size();
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (bus.event(i).kind == obs::EventKind::kMonitorViolation) {
      violation_idx = i;
      break;
    }
  }
  if (violation_idx < bus.size()) {
    const std::vector<std::size_t> chain = obs::why(bus, violation_idx);
    if (!chain.empty()) {
      out << "causal chain (injection -> first violation):\n";
      for (std::size_t idx : chain) {
        const obs::Event& e = bus.event(idx);
        out << "  [" << e.time << "] " << bus.render(e) << "\n";
      }
    } else {
      // No fault injection to root the chain at (a schedule-only
      // counterexample): show the event window leading into the violation.
      out << "events leading to the first violation:\n";
      const std::size_t first =
          violation_idx >= 12 ? violation_idx - 12 : 0;
      for (std::size_t idx = first; idx <= violation_idx; ++idx) {
        const obs::Event& e = bus.event(idx);
        out << "  [" << e.time << "] " << bus.render(e) << "\n";
      }
    }
  }
  if (h.provenance() != nullptr && !h.provenance()->blast().empty()) {
    out << "blast radius:\n";
    for (const obs::BlastRadius& b : h.provenance()->blast()) {
      out << "  id=" << b.id << " code="
          << net::fault_code_name(b.code) << " at=" << b.injected_at
          << " processes=" << b.processes_tainted
          << " messages=" << b.messages_tainted
          << " violations=" << b.violations_attributed
          << " containment=" << b.containment() << "\n";
    }
  }
  return out.str();
}

}  // namespace graybox::mc
