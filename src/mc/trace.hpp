// A replayable schedule for the graybox model checker (mc::Explorer).
//
// A ScheduleTrace pins everything the sampled harness leaves to chance:
// the master seed, the resolution of every same-tick delivery tie (via the
// sim::ChoiceHook installed by the explorer), and the exact fault
// placements (net::TargetedFault at fixed executed-event positions).
// Executing the same trace through Explorer::execute reconstructs the
// SystemHarness from scratch and replays bit-identically — counterexamples
// are files, not luck.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"

namespace graybox::mc {

/// One fault application pinned to an execution position: applied
/// immediately before the `at_event`-th executed simulator event.
struct FaultAt {
  std::uint64_t at_event = 0;
  net::TargetedFault fault{};
};

struct ScheduleTrace {
  std::uint64_t seed = 1;

  /// Consumed one per choice point (a tick with >= 2 ready events), in
  /// order; points beyond the vector take index 0, the legacy insertion
  /// order. Entries are clamped to the live count at replay time.
  std::vector<std::uint32_t> choices;

  /// Sorted by at_event (ties applied in listed order).
  std::vector<FaultAt> faults;

  /// Shrinker-visible size: placed faults plus non-default choices. The
  /// mutation smoke's "<= 10 steps" acceptance bound counts exactly this.
  std::size_t steps() const {
    std::size_t s = faults.size();
    for (std::uint32_t c : choices)
      if (c != 0) ++s;
    return s;
  }

  /// Drop trailing zero choices; they replay identically to absence.
  void normalize() {
    while (!choices.empty() && choices.back() == 0) choices.pop_back();
  }

  /// Line-oriented text form (round-trips through from_text):
  ///   graybox-mc-trace v1
  ///   seed <n>
  ///   choices <c0> <c1> ...        (omitted when empty)
  ///   fault <at_event> <code> <a> <b> <index> <index2> <mask>
  std::string to_text() const;
  static std::optional<ScheduleTrace> from_text(const std::string& text);
};

}  // namespace graybox::mc
