// SystemHarness: one fully wired TME system under simulation.
//
// Assembles the paper's case study end to end: a scheduler, a network of
// FIFO channels, n mutual-exclusion processes of a chosen implementation,
// one polling client per process, optionally one graybox wrapper per
// process (W' of Section 4), the fault injector, and the full monitoring
// battery (TME Spec monitors on per-event global snapshots plus the
// program-transition monitors).
//
// Typical experiment shape (see also core/experiment.hpp):
//
//   SystemHarness h(config);
//   h.start();
//   h.run_for(warmup);
//   h.faults().burst(k, net::FaultMix::all());
//   h.run_for(observation);
//   h.drain(drain_period);                  // stop new requests, settle
//   auto report = h.stabilization_report(); // judged over the whole run
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include <string>

#include "lspec/lspec_clause_monitors.hpp"
#include "lspec/program_monitors.hpp"
#include "lspec/snapshot.hpp"
#include "lspec/tme_monitors.hpp"
#include "sim/trace.hpp"
#include "me/client.hpp"
#include "me/lamport.hpp"
#include "me/protocol_registry.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/fault_injector.hpp"
#include "net/fault_process.hpp"
#include "net/network.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"
#include "wrapper/local_wrapper.hpp"

namespace graybox::core {

/// Deprecated: the closed enum from before the protocol registry. Kept so
/// enum-era call sites (tests, benches) compile unchanged; it converts
/// implicitly into AlgorithmId below. New code should name algorithms by
/// their registered string (me::ProtocolRegistry).
enum class Algorithm { kRicartAgrawala, kLamport, kFragile };

const char* to_string(Algorithm a);

/// An algorithm reference: a name resolved through me::ProtocolRegistry at
/// harness construction (aliases accepted; unknown names fail fast with
/// the registered list). Implicitly constructible from the deprecated
/// Algorithm enum and from string literals.
struct AlgorithmId {
  std::string name = "ricart-agrawala";

  AlgorithmId() = default;
  AlgorithmId(Algorithm a) : name(to_string(a)) {}          // NOLINT
  AlgorithmId(const char* n) : name(n) {}                   // NOLINT
  AlgorithmId(std::string n) : name(std::move(n)) {}        // NOLINT
  AlgorithmId(std::string_view n) : name(n) {}              // NOLINT

  friend bool operator==(const AlgorithmId&, const AlgorithmId&) = default;
};

/// Wrapper-tier bits for HarnessConfig::per_process_tiers.
inline constexpr std::uint8_t kTierLevel1 = 1u << 0;
inline constexpr std::uint8_t kTierLevel2 = 1u << 1;

struct HarnessConfig {
  std::size_t n = 5;
  AlgorithmId algorithm{};

  /// Heterogeneous systems: when non-empty (size n), overrides `algorithm`
  /// per process. Lspec is a LOCAL everywhere specification (Section 2.1),
  /// so the theory — and the wrapper — apply to mixed implementations;
  /// tests/test_heterogeneous.cpp probes exactly that.
  std::vector<AlgorithmId> per_process_algorithms{};

  /// Uniform "key=value" algorithm options, resolved against each
  /// process's factory schema (unknown keys fail fast). Overrides the
  /// deprecated option structs below; in mixed runs every key must be
  /// valid for every factory — prefer per_process_options there.
  std::vector<std::string> algorithm_options{};

  /// Per-process options (size n when non-empty), appended after
  /// algorithm_options (later entries win).
  std::vector<std::vector<std::string>> per_process_options{};

  /// Attach one GrayboxWrapper per process (the wrapped system M [] W' —
  /// the level-2, inter-process consistency tier).
  bool wrapped = true;
  wrapper::WrapperConfig wrapper{.resend_period = 25};

  /// Also attach one level-1 (intra-process consistency) wrapper per
  /// process (paper Section 2.2; wrapper/local_wrapper.hpp). Composable
  /// with level-2: either tier, or both, per process.
  bool level1 = false;
  wrapper::LocalWrapperConfig local_wrapper{};

  /// Per-process tier override (size n when non-empty): bit 0 = level-1,
  /// bit 1 = level-2 (kTierLevel1/kTierLevel2). Overrides wrapped/level1.
  std::vector<std::uint8_t> per_process_tiers{};

  net::DelayModel delay = net::DelayModel::uniform(1, 5);
  me::ClientConfig client{};

  /// Deprecated: pre-registry per-algorithm option structs. Still honoured
  /// (folded into the option resolution below algorithm_options), so
  /// enum-era call sites keep working.
  me::RicartAgrawalaOptions ra_options{};
  me::LamportOptions lamport_options{};

  /// Master seed; every stochastic component gets an independent stream.
  std::uint64_t seed = 1;

  /// Install the snapshot-based TME monitors (disable for pure-throughput
  /// microbenchmarks where monitoring cost would dominate).
  bool install_monitors = true;

  /// Also install the per-clause Lspec monitors (Flow/CS/Request/Release/
  /// Entry Specs). Requires install_monitors.
  bool install_lspec_monitors = true;

  /// Observe through the legacy allocate-and-copy full-capture path
  /// instead of the zero-copy delta pipeline. Observationally equivalent
  /// by contract — tests/test_snapshot_delta.cpp holds the two paths to
  /// identical verdicts — and excluded from config_digest for exactly that
  /// reason. Only golden-equivalence tests should set this.
  bool reference_full_capture = false;

  /// Stamp every message with a full dense vector clock (the pre-sparse
  /// wire encoding) instead of per-channel deltas. Bit-identical receiver
  /// clocks by contract (tests/test_clock_stamp.cpp pins the equivalence
  /// under the full fault matrix), so excluded from config_digest like
  /// reference_full_capture. Golden tests and the E14 before/after
  /// measurement set this.
  bool reference_dense_clocks = false;

  /// Route every snapshot to the monitors' full step() instead of the
  /// incremental step_delta() fast paths, and use the monitors' legacy
  /// O(N)-scan helpers. Verdict-identical by contract (the incremental
  /// paths fall back to a full check whenever they detect a possible
  /// transition), so excluded from config_digest. Golden tests and the
  /// E14 before/after measurement set this.
  bool reference_full_sweep_monitors = false;

  /// Retain this many typed events in the observability bus (sends,
  /// deliveries, state transitions, faults, wrapper corrections, monitor
  /// violations). 0 disables event recording; the bus object always exists
  /// and every producer stays attached, so the disabled cost is one
  /// predicted branch per would-be event. The human-readable trace() view
  /// renders from the same ring.
  std::size_t trace_capacity = 0;

  /// Install the metrics instrumentation (CS wait histogram, queue-depth
  /// and in-flight samples, plus the pull counters mirrored in
  /// RunStats::metrics). Purely passive — no RNG draws, no scheduling — so
  /// it never perturbs the run; excluded from config_digest for exactly
  /// that reason (the experiment engine forces it on per trial).
  bool collect_metrics = false;

  /// Sustained fault load: continuous per-kind fault streams plus
  /// crash/recovery and partition/heal lifecycles (net::FaultProcess),
  /// armed by start() when any stream rate is nonzero. The default
  /// (all-zero rates) leaves the subsystem idle and draws nothing.
  net::FaultProcessConfig fault_process{};

  /// Causal fault provenance (obs/provenance.hpp): every injection mints a
  /// deterministic id, corruption taints its target, taint propagates on
  /// send/deliver/transition and is cleared by wrapper corrections, and
  /// violations are attributed to their root-cause fault(s). Purely
  /// passive like collect_metrics — no RNG draws, no scheduling — so it
  /// never perturbs the run; excluded from config_digest for exactly that
  /// reason (the experiment engine forces it on per trial).
  bool provenance = false;
};

/// The registry-canonical serialization of a config's algorithm choice:
/// per-process canonical specs ("name" or "name[key=value,...]", options
/// fully resolved with the deprecated structs folded in), "+"-joined for
/// heterogeneous systems. Two configs that construct identical processes
/// serialize identically regardless of how their options were spelled;
/// the engine's config digests hash exactly this string.
std::string algorithm_spec(const HarnessConfig& config);

struct RunStats {
  SimTime duration = 0;
  std::uint64_t cs_entries = 0;
  std::uint64_t requests_issued = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t wrapper_messages = 0;
  std::uint64_t sent_request = 0;
  std::uint64_t sent_reply = 0;
  std::uint64_t sent_release = 0;
  std::uint64_t me1_violations = 0;
  std::uint64_t me3_violations = 0;
  std::uint64_t invariant_violations = 0;
  /// MutualBelief monitor (installed only when some process opts out of
  /// view_entry_truth; 0 otherwise).
  std::uint64_t mutual_belief_violations = 0;
  /// Local state repairs applied by level-1 wrappers (0 when none attached).
  std::uint64_t level1_corrections = 0;
  std::uint64_t me2_served = 0;
  SimTime me2_max_wait = 0;
  std::uint64_t lspec_clause_violations = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t events_executed = 0;
  // Lifecycle faults (crash/recovery, partition/heal) driven through the
  // harness — by the sustained fault load or manually.
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions = 0;
  std::uint64_t partition_heals = 0;
  /// Deliveries swallowed because the destination process was crashed.
  std::uint64_t deliveries_to_crashed = 0;
  /// Sends lost at a partition cut.
  std::uint64_t dropped_by_partition = 0;
  /// Completed fault→fault windows (every fault arrival closes the window
  /// opened by the previous one; the tail window to run end included).
  std::uint64_t reconverge_windows = 0;
  /// Summed time-to-reconverge over those windows: per window, the gap
  /// from the fault to the last safety violation inside the window (0 for
  /// a violation-free window). reconverge_ticks_total / reconverge_windows
  /// is the mean time the system stayed divergent per fault arrival.
  std::uint64_t reconverge_ticks_total = 0;
  /// Wall nanoseconds spent in the observation hot path (snapshot capture
  /// + monitor stepping), summed over all events. Volatile: excluded from
  /// determinism comparisons.
  std::uint64_t observe_ns = 0;
  // Blast-radius rollup when config.provenance was set (zeros otherwise).
  // Per-fault rows live in SystemHarness::provenance()->blast(); these are
  // the deterministic sums folded across all minted faults.
  std::uint64_t provenance_faults = 0;     ///< ids minted (= faults seen)
  std::uint64_t processes_tainted = 0;     ///< summed per-fault spread
  std::uint64_t messages_tainted = 0;      ///< messages that carried taint
  std::uint64_t violations_attributed = 0; ///< violation->fault attributions
  std::uint64_t containment_ticks = 0;     ///< summed containment() windows
  std::uint64_t taint_overflows = 0;       ///< ids dropped by taint saturation
  /// Metric samples collected when config.collect_metrics was set; empty
  /// otherwise. All values are sim-domain, hence deterministic.
  obs::MetricsSnapshot metrics;
};

/// Verdict on a completed (drained) run; see stabilization.hpp.
struct StabilizationReport;

class SystemHarness {
 public:
  explicit SystemHarness(HarnessConfig config);
  ~SystemHarness();

  SystemHarness(const SystemHarness&) = delete;
  SystemHarness& operator=(const SystemHarness&) = delete;

  const HarnessConfig& config() const { return config_; }

  sim::Scheduler& scheduler() { return sched_; }
  net::Network& network() { return *net_; }
  net::FaultInjector& faults() { return *faults_; }
  /// The sustained fault-load driver. Always constructed; idle unless
  /// config.fault_process enables a stream (started with start()).
  net::FaultProcess& fault_load() { return *fault_load_; }

  // --- Process crash/recovery and partitions (fault model §3.1:
  // processes "fail, recover"; links go down). Driven by the sustained
  // fault load or called directly. ----------------------------------------

  /// Take process `pid` down: deliveries to it are swallowed, its client
  /// and wrapper stop. Returns false (no fault recorded) if already down.
  bool crash(ProcessId pid);
  /// Bring a crashed process back. It re-enters an *improperly
  /// initialized* state (its state is re-corrupted, not reset), and its
  /// client/wrapper resume. Returns false if not crashed.
  bool recover(ProcessId pid);
  bool crashed(ProcessId pid) const { return crashed_[pid] != 0; }

  /// Install a bipartition (bit p of `mask` = p's side; cross-side sends
  /// are lost). One partition at a time: returns false while one is
  /// active. `mask` must cut both ways (not 0, not all-ones).
  bool partition(std::uint64_t mask);
  /// Reconnect everyone. Returns false if no partition was active.
  bool heal_partition();
  bool partitioned() const { return net_->partition_mask() != 0; }

  me::TmeProcess& process(ProcessId pid);
  me::Client& client(ProcessId pid);
  /// Null when this process runs without the level-2 tier.
  wrapper::GrayboxWrapper* wrapper(ProcessId pid);
  /// Null when this process runs without the level-1 tier.
  wrapper::LocalWrapper* local_wrapper(ProcessId pid);

  lspec::TmeMonitorSet& monitors() { return monitor_set_; }
  const lspec::TmeMonitors& tme_monitors() const { return tme_handles_; }
  const lspec::LspecClauseMonitors& lspec_monitors() const {
    return lspec_handles_;
  }
  lspec::StructuralSpecMonitor& structural_monitor() { return *structural_; }
  lspec::SendMonotonicityMonitor& send_monitor() { return *send_mono_; }
  lspec::FifoMonitor& fifo_monitor() { return *fifo_; }

  /// The typed event bus. Always present; disabled (capacity 0) unless
  /// config.trace_capacity > 0.
  obs::EventBus& events() { return *bus_; }
  const obs::EventBus& events() const { return *bus_; }

  /// The provenance tracker; null unless config.provenance (producers hold
  /// the same nullable pointer — disabled cost is one predicted branch).
  obs::ProvenanceTracker* provenance() { return provenance_.get(); }
  const obs::ProvenanceTracker* provenance() const {
    return provenance_.get();
  }

  /// Live metric instruments; empty unless config.collect_metrics.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Rolling human-readable trace; empty unless config.trace_capacity > 0.
  /// A lazily rendered text view over events(): rebuilt from the retained
  /// ring on access, preserving the legacy "[time] text" dump format.
  const sim::Trace& trace() const;

  /// Arm clients and wrappers.
  void start();

  void run_for(SimTime duration) { sched_.run_for(duration); }

  /// Drain: stop admitting new CS requests, let outstanding requests and
  /// channel traffic settle for `period`, then close the monitors. After
  /// drain() the liveness verdicts (starvation) are meaningful.
  void drain(SimTime period);

  bool drained() const { return drained_; }

  StabilizationReport stabilization_report() const;
  RunStats stats() const;

  /// The run's convergence story: fault burst -> first violation ->
  /// per-clause decay -> last violation -> quiescence. Derived from the
  /// fault injector, monitor set, and network activity bookkeeping, so it
  /// works even with the event bus disabled; with the bus enabled,
  /// obs::timeline_from_bus(events()) agrees on every shared field.
  /// Requires config.install_monitors (like stabilization_report()).
  obs::StabilizationTimeline timeline() const;

  /// True when every process is thinking and no message is in flight.
  bool quiescent() const;

 private:
  std::unique_ptr<me::TmeProcess> make_process(ProcessId pid);
  /// Record a lifecycle fault (bus event + aggregate) and open a new
  /// reconvergence window.
  void note_lifecycle(std::uint8_t code, ProcessId pid);
  /// Close the current reconvergence window (a new fault arrived).
  void on_fault_arrival();

  HarnessConfig config_;
  Rng master_rng_;
  sim::Scheduler sched_;
  std::unique_ptr<net::Network> net_;
  /// Stream handed to ProcessFactory::make for randomized constructions.
  /// Split from the master AFTER every pre-registry stream so the built-in
  /// factories (which draw nothing) reproduce the enum-era runs bit-exact.
  Rng factory_rng_;
  std::vector<std::unique_ptr<me::TmeProcess>> processes_;
  std::vector<std::unique_ptr<me::Client>> clients_;
  /// Size n; a null entry means that process runs without that tier.
  std::vector<std::unique_ptr<wrapper::GrayboxWrapper>> wrappers_;
  std::vector<std::unique_ptr<wrapper::LocalWrapper>> local_wrappers_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::unique_ptr<net::FaultProcess> fault_load_;
  /// RNG stream feeding the "improperly initialized" state a recovering
  /// process restarts with.
  Rng recovery_rng_;
  std::vector<char> crashed_;
  std::uint64_t deliveries_to_crashed_ = 0;
  /// count/first/last per lifecycle fault code (crash, recover, partition,
  /// heal — codes 7..10); mirrors what the bus aggregates so timeline()
  /// agrees with timeline_from_bus() with the bus disabled.
  std::array<obs::KindStats, 4> lifecycle_stats_{};
  // Reconvergence tracking: every fault arrival closes the window opened
  // by the previous one at the last safety violation seen inside it.
  SimTime prev_fault_time_ = kNever;
  SimTime last_violation_time_ = kNever;
  std::uint64_t reconverge_windows_ = 0;
  std::uint64_t reconverge_ticks_ = 0;
  obs::Histogram* reconverge_hist_ = nullptr;
  std::unique_ptr<lspec::SnapshotSource> snapshots_;
  lspec::TmeMonitorSet monitor_set_;
  lspec::TmeMonitors tme_handles_;
  lspec::LspecClauseMonitors lspec_handles_;
  std::unique_ptr<obs::EventBus> bus_;
  /// Null unless config.provenance; owns per-process taint and the
  /// per-fault BlastRadius rows. Declared before the components holding a
  /// raw pointer to it would matter only for destructor use — none do —
  /// but keep it next to the bus it conceptually extends.
  std::unique_ptr<obs::ProvenanceTracker> provenance_;
  // Pull counters are refreshed from component state inside const stats().
  mutable obs::MetricsRegistry metrics_;
  std::vector<SimTime> hungry_since_;  ///< per-pid CS wait start (metrics)
  // trace() is a lazily rendered view over bus_; mutable for const access.
  mutable sim::Trace trace_{0};
  mutable std::uint64_t trace_rendered_total_ = 0;
  std::uint64_t observe_ns_ = 0;
  std::unique_ptr<lspec::StructuralSpecMonitor> structural_;
  std::unique_ptr<lspec::SendMonotonicityMonitor> send_mono_;
  std::unique_ptr<lspec::FifoMonitor> fifo_;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace graybox::core
