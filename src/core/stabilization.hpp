// Stabilization verdicts over completed runs.
//
// "C is stabilizing to A iff every computation of C has a suffix that is a
// suffix of some computation of A..." (Section 2). Operationally, over one
// observed (finite, drained) run: stabilization holds when all TME Spec
// violations are confined to a prefix, and nobody is left starving at the
// end. The *stabilization latency* is the gap between the last injected
// fault and the last observed violation — the length of the divergent
// window the faults caused.
#pragma once

#include <string>

#include "common/types.hpp"

namespace graybox::core {

struct StabilizationReport {
  /// Any faults injected during the run?
  bool faults_injected = false;
  /// Time of the last injected fault (kNever if none).
  SimTime last_fault = kNever;

  /// Last violation of the *safety* monitors (ME1, ME3, Invariant I);
  /// kNever when the run was violation-free.
  SimTime last_safety_violation = kNever;

  /// A drained run ended with a process still hungry: deadlock/starvation,
  /// the liveness failure stabilization must rule out.
  bool starvation = false;

  /// The run ended with violations confined to a prefix and no starvation.
  bool stabilized = false;

  /// last_safety_violation - last_fault when both exist and the violation
  /// came after the fault; 0 for a clean-after-fault run. Meaningless when
  /// !stabilized.
  SimTime latency = 0;

  /// Violations of safety monitors that occurred *before* the last fault
  /// (expected: the fault window is allowed to be messy).
  std::uint64_t violations_total = 0;

  std::string to_string() const;
};

}  // namespace graybox::core
