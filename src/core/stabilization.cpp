#include "core/stabilization.hpp"

namespace graybox::core {

std::string StabilizationReport::to_string() const {
  std::string out;
  out += stabilized ? "stabilized" : "NOT STABILIZED";
  if (faults_injected) {
    out += ", last fault @" + std::to_string(last_fault);
  } else {
    out += ", no faults";
  }
  if (last_safety_violation != kNever) {
    out += ", last violation @" + std::to_string(last_safety_violation);
  } else {
    out += ", no violations";
  }
  if (starvation) out += ", STARVATION at end";
  out += ", latency " + std::to_string(latency);
  out += ", total violations " + std::to_string(violations_total);
  return out;
}

}  // namespace graybox::core
