// Reusable experiment shapes. Every bench binary and most integration
// tests run one of two patterns:
//
//   * fault-recovery: warm up, inject a fault burst, observe, drain, and
//     judge stabilization;
//   * fault-free: run and drain with no faults (interference-freedom and
//     throughput measurements).
//
// run_fault_experiment packages the first pattern; repeat_fault_experiment
// aggregates it across seeds into latency/overhead statistics.
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_injector.hpp"

namespace graybox::core {

struct FaultScenario {
  /// Fault-free run-in so the system is mid-flight when faults hit.
  SimTime warmup = 500;
  /// Number of random faults injected at the end of warmup.
  std::size_t burst = 10;
  net::FaultMix mix = net::FaultMix::all();
  /// Observation window after the burst (set it >> expected recovery).
  SimTime observation = 4000;
  /// Drain period before judging liveness.
  SimTime drain = 3000;
  /// Optional custom fault action run at the end of warmup *instead of*
  /// the random burst (used by scripted scenarios like Section 4's
  /// deadlock). Receives the harness.
  std::function<void(SystemHarness&)> scripted_fault;
};

struct ExperimentResult {
  StabilizationReport report;
  RunStats stats;
};

/// Run one seeded fault-recovery experiment to completion.
ExperimentResult run_fault_experiment(const HarnessConfig& config,
                                      const FaultScenario& scenario);

/// Run `trials` experiments over consecutive seeds; aggregates.
struct RepeatedResult {
  std::size_t trials = 0;
  std::size_t stabilized = 0;
  std::size_t starved = 0;
  Accumulator latency;           ///< over stabilized trials with faults
  Accumulator total_messages;
  Accumulator wrapper_messages;
  Accumulator violations;
  Accumulator cs_entries;

  bool all_stabilized() const { return stabilized == trials; }
};
RepeatedResult repeat_fault_experiment(HarnessConfig config,
                                       const FaultScenario& scenario,
                                       std::size_t trials);

}  // namespace graybox::core
