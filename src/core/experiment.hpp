// Reusable experiment shapes. Every bench binary and most integration
// tests run one of two patterns:
//
//   * fault-recovery: warm up, inject a fault burst, observe, drain, and
//     judge stabilization;
//   * fault-free: run and drain with no faults (interference-freedom and
//     throughput measurements) — a FaultScenario with burst == 0.
//
// run_fault_experiment packages one seeded trial; RepeatedResult aggregates
// trials into latency/overhead statistics. Trial fan-out across cores lives
// in core/engine.hpp (ExperimentEngine); repeat_fault_experiment is the
// one-cell convenience wrapper over it.
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_injector.hpp"

namespace graybox::core {

struct FaultScenario {
  /// Fault-free run-in so the system is mid-flight when faults hit.
  SimTime warmup = 500;
  /// Number of random faults injected at the end of warmup.
  std::size_t burst = 10;
  net::FaultMix mix = net::FaultMix::all();
  /// Observation window after the burst (set it >> expected recovery).
  SimTime observation = 4000;
  /// Drain period before judging liveness.
  SimTime drain = 3000;
  /// Optional custom fault action run at the end of warmup *instead of*
  /// the random burst (used by scripted scenarios like Section 4's
  /// deadlock). Receives the harness. Runs concurrently across trials in
  /// engine runs, so it must not mutate state shared between calls.
  std::function<void(SystemHarness&)> scripted_fault;
};

struct ExperimentResult {
  StabilizationReport report;
  RunStats stats;
};

/// Run one seeded fault-recovery experiment to completion.
ExperimentResult run_fault_experiment(const HarnessConfig& config,
                                      const FaultScenario& scenario);

/// Aggregate over trials. A commutative-monoid-shaped fold target: empty()
/// is the identity, add() folds one trial, merge() combines two partials.
/// The engine folds per-trial results in seed order, which makes the
/// aggregate independent of how trials were sharded across workers.
struct RepeatedResult {
  RepeatedResult() = default;
  /// Partials whose accumulators retain at most `sample_cap` samples
  /// (0 = unlimited); see Accumulator's cap semantics.
  explicit RepeatedResult(std::size_t sample_cap);

  std::size_t trials = 0;
  std::size_t stabilized = 0;
  std::size_t starved = 0;
  Accumulator latency;           ///< over stabilized trials with faults
  Accumulator total_messages;
  Accumulator wrapper_messages;
  Accumulator protocol_messages; ///< total minus wrapper traffic
  Accumulator violations;        ///< StabilizationReport::violations_total
  Accumulator safety_violations; ///< ME1 + ME3 + invariant-I + mutual-belief
  Accumulator cs_entries;
  Accumulator max_wait;          ///< ME2 worst-case waiting time per trial
  Accumulator events;            ///< simulator events executed per trial
  Accumulator faults;            ///< faults per trial (burst + sustained +
                                 ///< lifecycle arrivals)
  /// Fraction of issued CS requests that were served, per trial (1.0 when
  /// none were issued). Under sustained fault load this is the paper-style
  /// availability number: how much service survives a continuous adversary.
  Accumulator availability;
  /// Per-trial mean time-to-reconverge: over the trial's fault->fault
  /// windows, the average gap from a fault arrival to the last safety
  /// violation inside its window (0 for clean windows / fault-free trials).
  Accumulator reconverge;
  /// Summed observation-hot-path nanoseconds across trials (volatile:
  /// wall-clock derived, stripped from determinism comparisons).
  double observe_ns_total = 0.0;
  /// Fold of each trial's RunStats::metrics (empty when trials ran without
  /// collect_metrics). Deterministic: every metric is sim-domain valued.
  obs::MetricsAggregate metrics;

  /// Fold one trial's outcome.
  void add(const ExperimentResult& result);
  /// Fold another partial (its trials are treated as coming after ours).
  void merge(const RepeatedResult& other);

  bool all_stabilized() const { return stabilized == trials; }
};

/// Run `trials` experiments over consecutive seeds and aggregate. `jobs`
/// selects worker threads (0 = all cores, 1 = serial); the aggregate is
/// bit-identical for every jobs value.
RepeatedResult repeat_fault_experiment(HarnessConfig config,
                                       const FaultScenario& scenario,
                                       std::size_t trials,
                                       std::size_t jobs = 1);

}  // namespace graybox::core
