#include "core/experiment.hpp"

namespace graybox::core {

ExperimentResult run_fault_experiment(const HarnessConfig& config,
                                      const FaultScenario& scenario) {
  SystemHarness harness(config);
  harness.start();
  harness.run_for(scenario.warmup);
  if (scenario.scripted_fault) {
    scenario.scripted_fault(harness);
  } else if (scenario.burst > 0) {
    harness.faults().burst(scenario.burst, scenario.mix);
  }
  harness.run_for(scenario.observation);
  harness.drain(scenario.drain);
  return ExperimentResult{harness.stabilization_report(), harness.stats()};
}

RepeatedResult repeat_fault_experiment(HarnessConfig config,
                                       const FaultScenario& scenario,
                                       std::size_t trials) {
  RepeatedResult out;
  out.trials = trials;
  const std::uint64_t base_seed = config.seed;
  for (std::size_t i = 0; i < trials; ++i) {
    config.seed = base_seed + i;
    const ExperimentResult result = run_fault_experiment(config, scenario);
    if (result.report.stabilized) {
      ++out.stabilized;
      if (result.report.faults_injected)
        out.latency.add(static_cast<double>(result.report.latency));
    }
    if (result.report.starvation) ++out.starved;
    out.total_messages.add(static_cast<double>(result.stats.messages_sent));
    out.wrapper_messages.add(
        static_cast<double>(result.stats.wrapper_messages));
    out.violations.add(static_cast<double>(result.report.violations_total));
    out.cs_entries.add(static_cast<double>(result.stats.cs_entries));
  }
  return out;
}

}  // namespace graybox::core
