#include "core/experiment.hpp"

#include <algorithm>

#include "core/engine.hpp"

namespace graybox::core {

ExperimentResult run_fault_experiment(const HarnessConfig& config,
                                      const FaultScenario& scenario) {
  SystemHarness harness(config);
  harness.start();
  harness.run_for(scenario.warmup);
  if (scenario.scripted_fault) {
    scenario.scripted_fault(harness);
  } else if (scenario.burst > 0) {
    harness.faults().burst(scenario.burst, scenario.mix);
  }
  harness.run_for(scenario.observation);
  harness.drain(scenario.drain);
  return ExperimentResult{harness.stabilization_report(), harness.stats()};
}

RepeatedResult::RepeatedResult(std::size_t sample_cap) {
  if (sample_cap == 0) return;
  for (Accumulator* acc :
       {&latency, &total_messages, &wrapper_messages, &protocol_messages,
        &violations, &safety_violations, &cs_entries, &max_wait, &events}) {
    *acc = Accumulator(sample_cap);
  }
}

void RepeatedResult::add(const ExperimentResult& result) {
  ++trials;
  if (result.report.stabilized) {
    ++stabilized;
    if (result.report.faults_injected)
      latency.add(static_cast<double>(result.report.latency));
  }
  if (result.report.starvation) ++starved;
  total_messages.add(static_cast<double>(result.stats.messages_sent));
  wrapper_messages.add(static_cast<double>(result.stats.wrapper_messages));
  protocol_messages.add(static_cast<double>(result.stats.messages_sent -
                                            result.stats.wrapper_messages));
  violations.add(static_cast<double>(result.report.violations_total));
  safety_violations.add(static_cast<double>(
      result.stats.me1_violations + result.stats.me3_violations +
      result.stats.invariant_violations +
      result.stats.mutual_belief_violations));
  cs_entries.add(static_cast<double>(result.stats.cs_entries));
  max_wait.add(static_cast<double>(result.stats.me2_max_wait));
  events.add(static_cast<double>(result.stats.events_executed));
  faults.add(static_cast<double>(result.stats.faults_injected));
  // Clamped at 1: state corruption can fabricate CS entries that no client
  // requested, and those must not read as surplus availability.
  availability.add(
      result.stats.requests_issued > 0
          ? std::min(1.0, static_cast<double>(result.stats.me2_served) /
                              static_cast<double>(result.stats.requests_issued))
          : 1.0);
  reconverge.add(
      result.stats.reconverge_windows > 0
          ? static_cast<double>(result.stats.reconverge_ticks_total) /
                static_cast<double>(result.stats.reconverge_windows)
          : 0.0);
  observe_ns_total += static_cast<double>(result.stats.observe_ns);
  if (!result.stats.metrics.empty()) metrics.add(result.stats.metrics);
}

void RepeatedResult::merge(const RepeatedResult& other) {
  trials += other.trials;
  stabilized += other.stabilized;
  starved += other.starved;
  latency.merge(other.latency);
  total_messages.merge(other.total_messages);
  wrapper_messages.merge(other.wrapper_messages);
  protocol_messages.merge(other.protocol_messages);
  violations.merge(other.violations);
  safety_violations.merge(other.safety_violations);
  cs_entries.merge(other.cs_entries);
  max_wait.merge(other.max_wait);
  events.merge(other.events);
  faults.merge(other.faults);
  availability.merge(other.availability);
  reconverge.merge(other.reconverge);
  observe_ns_total += other.observe_ns_total;
  metrics.merge(other.metrics);
}

RepeatedResult repeat_fault_experiment(HarnessConfig config,
                                       const FaultScenario& scenario,
                                       std::size_t trials, std::size_t jobs) {
  RunSpec spec;
  spec.name = "cell";
  spec.config = config;
  spec.scenario = scenario;
  spec.trials = trials;
  return ExperimentEngine(EngineOptions{.jobs = jobs}).run_cell(spec).result;
}

}  // namespace graybox::core
