#include "core/engine.hpp"

#include <chrono>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace graybox::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- config digest ----------------------------------------------------------

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    __builtin_memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix(bool b) { mix(std::uint64_t{b ? 1u : 0u}); }
  void mix(std::string_view s) {
    mix(std::uint64_t{s.size()});
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::string config_digest(const HarnessConfig& config) {
  Fnv1a h;
  h.mix(std::uint64_t{config.n});
  // The algorithm choice is hashed through the registry's canonical
  // serialization (per-process "name[key=value,...]" with options fully
  // resolved), NOT through enum values or struct-field order: two configs
  // that construct identical processes digest identically regardless of
  // spelling (alias, legacy struct, generic option), and externally
  // registered algorithms digest without touching this function.
  h.mix(std::string_view{algorithm_spec(config)});
  h.mix(config.wrapped);
  h.mix(std::uint64_t{config.wrapper.resend_period});
  h.mix(config.wrapper.unrefined_send_all);
  h.mix(config.level1);
  h.mix(std::uint64_t{config.local_wrapper.check_period});
  h.mix(std::uint64_t{config.per_process_tiers.size()});
  for (const std::uint8_t t : config.per_process_tiers)
    h.mix(std::uint64_t{t});
  h.mix(std::uint64_t{config.delay.min});
  h.mix(std::uint64_t{config.delay.max});
  h.mix(config.client.think_mean);
  h.mix(config.client.eat_mean);
  h.mix(std::uint64_t{config.client.poll_interval});
  h.mix(config.client.wants_cs);
  // ra_options/lamport_options are not mixed directly: algorithm_spec
  // already folds the deprecated structs into the resolved option list.
  h.mix(config.install_monitors);
  h.mix(config.install_lspec_monitors);
  h.mix(config.fault_process.drop_mean);
  h.mix(config.fault_process.duplicate_mean);
  h.mix(config.fault_process.corrupt_mean);
  h.mix(config.fault_process.reorder_mean);
  h.mix(config.fault_process.spurious_mean);
  h.mix(config.fault_process.process_corrupt_mean);
  h.mix(config.fault_process.channel_clear_mean);
  h.mix(config.fault_process.crash_mean);
  h.mix(config.fault_process.downtime_mean);
  h.mix(std::uint64_t{config.fault_process.max_down});
  h.mix(config.fault_process.partition_mean);
  h.mix(config.fault_process.partition_hold_mean);
  h.mix(std::uint64_t{config.fault_process.start});
  h.mix(std::uint64_t{config.fault_process.end});
  // Deliberately excluded: seed (recorded separately as the cell's seed
  // range), trace_capacity, collect_metrics, and provenance (observability
  // only — the engine forces collect_metrics and provenance on per trial,
  // and none of them changes the run's RNG-visible behavior).
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.value()));
  return buf;
}

// --- SpecGrid ---------------------------------------------------------------

RunSpec& SpecGrid::add(RunSpec spec) {
  GBX_EXPECTS(!spec.name.empty());
  for (const RunSpec& existing : cells_)
    GBX_EXPECTS(existing.name != spec.name);
  GBX_EXPECTS(spec.trials > 0);
  cells_.push_back(std::move(spec));
  return cells_.back();
}

RunSpec& SpecGrid::add(std::string name, HarnessConfig config,
                       FaultScenario scenario, std::size_t trials) {
  RunSpec spec;
  spec.name = std::move(name);
  spec.config = std::move(config);
  spec.scenario = std::move(scenario);
  spec.trials = trials;
  return add(std::move(spec));
}

std::size_t SpecGrid::total_trials() const {
  std::size_t total = 0;
  for (const RunSpec& spec : cells_) total += spec.trials;
  return total;
}

// --- GridResult -------------------------------------------------------------

const CellResult& GridResult::cell(const std::string& name) const {
  for (const CellResult& c : cells) {
    if (c.name == name) return c;
  }
  GBX_EXPECTS(false && "GridResult::cell: unknown cell name");
  std::abort();  // unreachable
}

// --- ExperimentEngine -------------------------------------------------------

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : jobs_(resolve_jobs(options.jobs)), sample_cap_(options.sample_cap) {}

GridResult ExperimentEngine::run(const SpecGrid& grid) const {
  const auto grid_start = std::chrono::steady_clock::now();

  // Flatten every (cell, trial) pair into one task list so that even
  // single-trial cells (e.g. the interference sweep's one-run-per-delta
  // grid) parallelize across cells.
  struct Task {
    std::size_t cell;
    std::size_t trial;
  };
  std::vector<Task> tasks;
  tasks.reserve(grid.total_trials());
  for (std::size_t c = 0; c < grid.cells().size(); ++c)
    for (std::size_t t = 0; t < grid.cells()[c].trials; ++t)
      tasks.push_back(Task{c, t});

  // One pre-allocated slot per trial: workers never touch shared state.
  struct Slot {
    ExperimentResult result;
    double wall_seconds = 0.0;
  };
  std::vector<std::vector<Slot>> slots(grid.cells().size());
  for (std::size_t c = 0; c < grid.cells().size(); ++c)
    slots[c].resize(grid.cells()[c].trials);

  parallel_tasks(tasks.size(), jobs_, [&](std::size_t i) {
    const Task task = tasks[i];
    const RunSpec& spec = grid.cells()[task.cell];
    HarnessConfig config = spec.config;
    config.seed = spec.config.seed + task.trial;
    // Metrics and provenance are passive (no RNG draws, no scheduling), so
    // forcing them on is determinism-safe and gives every BENCH artifact a
    // metrics section with blast-radius rollups.
    config.collect_metrics = true;
    config.provenance = true;
    const auto start = std::chrono::steady_clock::now();
    Slot& slot = slots[task.cell][task.trial];
    slot.result = spec.trial ? spec.trial(config, spec.scenario)
                             : run_fault_experiment(config, spec.scenario);
    slot.wall_seconds = seconds_since(start);
  });

  // Deterministic merge: fold each cell's trials in seed order. This is
  // the exact sequence of add() calls a serial loop would have made, so
  // the aggregate is independent of the jobs count and of thread timing.
  GridResult out;
  out.jobs = jobs_;
  out.cells.reserve(grid.cells().size());
  for (std::size_t c = 0; c < grid.cells().size(); ++c) {
    const RunSpec& spec = grid.cells()[c];
    CellResult cell;
    cell.name = spec.name;
    cell.config_digest = config_digest(spec.config);
    cell.algorithm = algorithm_spec(spec.config);
    cell.base_seed = spec.config.seed;
    cell.result = RepeatedResult(sample_cap_);
    for (const Slot& slot : slots[c]) {
      cell.result.add(slot.result);
      cell.wall_seconds += slot.wall_seconds;
    }
    out.cells.push_back(std::move(cell));
  }
  out.wall_seconds = seconds_since(grid_start);
  return out;
}

CellResult ExperimentEngine::run_cell(const RunSpec& spec) const {
  SpecGrid grid;
  grid.add(spec);
  GridResult result = run(grid);
  return std::move(result.cells.front());
}

EngineOptions engine_options_from_flags(const Flags& flags) {
  EngineOptions options;
  options.jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  return options;
}

// --- JSON emission ----------------------------------------------------------

namespace {

report::Json accumulator_to_json(const Accumulator& acc) {
  report::Json j = report::Json::object();
  j["count"] = std::uint64_t{acc.count()};
  j["mean"] = acc.mean();
  j["stddev"] = acc.stddev();
  j["min"] = acc.min();
  j["max"] = acc.max();
  j["p50"] = acc.percentile(50);
  j["p99"] = acc.percentile(99);
  j["sum"] = acc.sum();
  return j;
}

}  // namespace

report::Json cell_to_json(const CellResult& cell) {
  report::Json j = report::Json::object();
  j["name"] = cell.name;
  j["config"] = cell.config_digest;
  j["algorithm"] = cell.algorithm;
  j["base_seed"] = cell.base_seed;
  j["trials"] = std::uint64_t{cell.result.trials};
  j["stabilized"] = std::uint64_t{cell.result.stabilized};
  j["starved"] = std::uint64_t{cell.result.starved};
  j["latency"] = accumulator_to_json(cell.result.latency);
  j["total_messages"] = accumulator_to_json(cell.result.total_messages);
  j["wrapper_messages"] = accumulator_to_json(cell.result.wrapper_messages);
  j["protocol_messages"] = accumulator_to_json(cell.result.protocol_messages);
  j["violations"] = accumulator_to_json(cell.result.violations);
  j["safety_violations"] =
      accumulator_to_json(cell.result.safety_violations);
  j["cs_entries"] = accumulator_to_json(cell.result.cs_entries);
  j["max_wait"] = accumulator_to_json(cell.result.max_wait);
  j["events"] = accumulator_to_json(cell.result.events);
  j["faults"] = accumulator_to_json(cell.result.faults);
  j["availability"] = accumulator_to_json(cell.result.availability);
  j["reconverge"] = accumulator_to_json(cell.result.reconverge);
  if (!cell.result.metrics.empty()) {
    j["metrics"] = cell.result.metrics.to_json();
  }
  // Perf-trajectory fields, wall-clock derived and therefore volatile
  // (stripped alongside wall_seconds by strip_volatile_lines).
  const double events_sum = cell.result.events.sum();
  j["observe_ns_per_event"] =
      events_sum > 0 ? cell.result.observe_ns_total / events_sum : 0.0;
  j["events_per_sec"] =
      cell.wall_seconds > 0 ? events_sum / cell.wall_seconds : 0.0;
  j["wall_seconds"] = cell.wall_seconds;
  return j;
}

report::Json grid_to_json(const std::string& bench_name,
                          const GridResult& result) {
  report::Json doc = report::Json::object();
  doc["bench"] = bench_name;
  doc["schema"] = 1;
  doc["jobs"] = std::uint64_t{result.jobs};
  doc["wall_seconds"] = result.wall_seconds;
  report::Json cells = report::Json::array();
  for (const CellResult& cell : result.cells)
    cells.push_back(cell_to_json(cell));
  doc["cells"] = std::move(cells);
  return doc;
}

void write_bench_json(const std::string& bench_name, const GridResult& result,
                      const std::string& path) {
  if (path == "-") return;
  report::write_json_file(path, grid_to_json(bench_name, result));
}

std::string emit_bench_artifact(const Flags& flags, const GridResult& result) {
  const std::string path =
      flags.get("json", report::default_bench_json_path(flags.program()));
  if (path == "-") return "";
  write_bench_json(report::bench_name_from_program(flags.program()), result,
                   path);
  return path;
}

}  // namespace graybox::core
