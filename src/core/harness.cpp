#include "core/harness.hpp"

#include <algorithm>
#include <chrono>

#include "common/contracts.hpp"
#include "core/stabilization.hpp"

namespace graybox::core {

const char* to_string(Algorithm a) {
  // The enum-era names are exactly the registry names (the registry is the
  // single source of algorithm names; this map only serves the deprecated
  // enum shim).
  switch (a) {
    case Algorithm::kRicartAgrawala:
      return "ricart-agrawala";
    case Algorithm::kLamport:
      return "lamport";
    case Algorithm::kFragile:
      return "fragile-ra";
  }
  return "unknown";
}

namespace {

const me::ProcessFactory& factory_for(const HarnessConfig& config,
                                      ProcessId pid) {
  const AlgorithmId& id = config.per_process_algorithms.empty()
                              ? config.algorithm
                              : config.per_process_algorithms[pid];
  return me::ProtocolRegistry::instance().require(id.name);
}

/// The layered option list for one process, lowest precedence first:
/// deprecated structs, uniform algorithm_options, per-process options.
std::vector<std::string> options_for(const HarnessConfig& config,
                                     ProcessId pid,
                                     const me::ProcessFactory& factory) {
  std::vector<std::string> opts;
  if (factory.name() == "ricart-agrawala" && config.ra_options.monotone_views)
    opts.push_back("monotone_views=1");
  if (factory.name() == "lamport" && config.lamport_options.head_only_release)
    opts.push_back("head_only_release=1");
  opts.insert(opts.end(), config.algorithm_options.begin(),
              config.algorithm_options.end());
  if (!config.per_process_options.empty()) {
    opts.insert(opts.end(), config.per_process_options[pid].begin(),
                config.per_process_options[pid].end());
  }
  return opts;
}

}  // namespace

std::string algorithm_spec(const HarnessConfig& config) {
  std::vector<std::string> specs;
  specs.reserve(config.n);
  for (ProcessId pid = 0; pid < config.n; ++pid) {
    const me::ProcessFactory& f = factory_for(config, pid);
    specs.push_back(f.canonical_spec(f.resolve(options_for(config, pid, f))));
  }
  // A heterogeneous vector whose entries all resolve identically constructs
  // the same system as the uniform spelling — serialize them the same.
  bool uniform = true;
  for (const std::string& s : specs) uniform = uniform && s == specs.front();
  if (uniform) return specs.front();
  std::string out;
  for (const std::string& s : specs) {
    if (!out.empty()) out += "+";
    out += s;
  }
  return out;
}

SystemHarness::SystemHarness(HarnessConfig config)
    : config_(config), master_rng_(config.seed) {
  GBX_EXPECTS(config_.n >= 1);
  // A heterogeneous algorithm (or option/tier) vector must name exactly one
  // entry per process; anything else is a misconfiguration that must fail
  // fast here, never silently fall back to the uniform fields.
  GBX_EXPECTS(config_.per_process_algorithms.empty() ||
              config_.per_process_algorithms.size() == config_.n);
  GBX_EXPECTS(config_.per_process_options.empty() ||
              config_.per_process_options.size() == config_.n);
  GBX_EXPECTS(config_.per_process_tiers.empty() ||
              config_.per_process_tiers.size() == config_.n);

  // The typed event bus exists unconditionally (capacity 0 = disabled) and
  // every producer stays attached, so toggling trace_capacity changes only
  // how much is retained, never the wiring.
  bus_ = std::make_unique<obs::EventBus>(sched_, config_.trace_capacity);
  bus_->set_fault_kind_names(net::fault_kind_names());

  // Causal provenance: one tracker per harness when enabled; producers all
  // hold the same nullable pointer (null = disabled, a predicted branch).
  if (config_.provenance) {
    provenance_ = std::make_unique<obs::ProvenanceTracker>(config_.n);
  }

  // Pre-split every RNG stream in the pre-registry order (network, one per
  // client, injector, fault load, recovery), then split the factory stream
  // LAST: an external factory that draws must not shift any pre-existing
  // stream, so seed-pinned runs stay bit-identical to the enum era.
  Rng net_rng = master_rng_.split();
  std::vector<Rng> client_rngs;
  client_rngs.reserve(config_.n);
  for (ProcessId pid = 0; pid < config_.n; ++pid)
    client_rngs.push_back(master_rng_.split());
  Rng injector_rng = master_rng_.split();
  Rng fault_load_rng = master_rng_.split();
  recovery_rng_ = master_rng_.split();
  factory_rng_ = master_rng_.split();

  net_ = std::make_unique<net::Network>(sched_, config_.n, config_.delay,
                                        net_rng);
  net_->set_dense_stamps(config_.reference_dense_clocks);
  net_->set_event_bus(bus_.get());
  net_->set_provenance(provenance_.get());

  // Processes + delivery plumbing. A crashed process's deliveries are
  // swallowed at the handler: the network still did its part (monitors see
  // the delivery), the process just isn't there to act on it.
  crashed_.assign(config_.n, 0);
  std::vector<me::TmeProcess*> raw;
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    processes_.push_back(make_process(pid));
    raw.push_back(processes_.back().get());
    me::TmeProcess* proc = raw.back();
    proc->set_event_bus(bus_.get());
    proc->set_provenance(provenance_.get());
    net_->set_handler(pid, [this, proc, pid](const net::Message& msg) {
      if (crashed_[pid]) {
        ++deliveries_to_crashed_;
        return;
      }
      proc->on_message(msg);
    });
  }

  // Clients (one per process, independent RNG streams).
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    clients_.push_back(std::make_unique<me::Client>(
        sched_, *processes_[pid], config_.client, client_rngs[pid]));
  }

  // Wrappers, per process and per tier: level-2 is the graybox W' of
  // Section 4 (mutual consistency), level-1 the local-consistency tier of
  // Section 2.2. A null entry means the process runs without that tier.
  wrappers_.resize(config_.n);
  local_wrappers_.resize(config_.n);
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    std::uint8_t tiers = (config_.wrapped ? kTierLevel2 : 0) |
                         (config_.level1 ? kTierLevel1 : 0);
    if (!config_.per_process_tiers.empty())
      tiers = config_.per_process_tiers[pid];
    if (tiers & kTierLevel2) {
      wrappers_[pid] = std::make_unique<wrapper::GrayboxWrapper>(
          sched_, *net_, *processes_[pid], config_.wrapper);
      wrappers_[pid]->set_event_bus(bus_.get());
      wrappers_[pid]->set_provenance(provenance_.get());
    }
    if (tiers & kTierLevel1) {
      local_wrappers_[pid] = std::make_unique<wrapper::LocalWrapper>(
          sched_, *processes_[pid], config_.local_wrapper);
      local_wrappers_[pid]->set_event_bus(bus_.get());
      local_wrappers_[pid]->set_provenance(provenance_.get());
    }
  }

  // Fault injection, with process corruption routed to corrupt_state.
  faults_ = std::make_unique<net::FaultInjector>(
      sched_, *net_, injector_rng,
      [this](ProcessId pid, Rng& rng) {
        processes_[pid]->corrupt_state(rng);
      });
  faults_->set_event_bus(bus_.get());
  faults_->set_provenance(provenance_.get());
  faults_->set_fault_observer(
      [this](net::FaultKind) { on_fault_arrival(); });

  // Sustained fault load. Lifecycle actions route back into the harness
  // because processes/clients/wrappers live above the net layer.
  net::FaultProcess::Callbacks lifecycle;
  lifecycle.crash = [this](ProcessId pid) { return crash(pid); };
  lifecycle.recover = [this](ProcessId pid) { recover(pid); };
  lifecycle.partition = [this](std::uint64_t mask) { return partition(mask); };
  lifecycle.heal = [this] { heal_partition(); };
  fault_load_ = std::make_unique<net::FaultProcess>(
      sched_, *faults_, config_.n, config_.fault_process, fault_load_rng,
      std::move(lifecycle));

  // Monitoring battery.
  structural_ = std::make_unique<lspec::StructuralSpecMonitor>(raw, sched_);
  send_mono_ = std::make_unique<lspec::SendMonotonicityMonitor>(*net_, sched_);
  fifo_ = std::make_unique<lspec::FifoMonitor>(*net_, sched_);
  if (config_.install_monitors) {
    snapshots_ = std::make_unique<lspec::SnapshotSource>(raw, *net_);
    // Each process's factory declares which Lspec reading it claims; the
    // battery adapts (a process opting out of view_entry_truth exempts it
    // from Invariant I and adds the MutualBelief monitor; opting out of
    // fcfs exempts its entries from ME3's overtake check). All-claiming
    // systems get exactly the classic 4-monitor battery.
    std::vector<char> claims(config_.n, 1);
    std::vector<char> fcfs_claims(config_.n, 1);
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      const me::SpecConformance conf = factory_for(config_, pid).conformance();
      claims[pid] = conf.view_entry_truth ? 1 : 0;
      fcfs_claims[pid] = conf.fcfs ? 1 : 0;
    }
    tme_handles_ = lspec::install_tme_monitors(
        monitor_set_, config_.n, std::move(claims), std::move(fcfs_claims));
    if (config_.reference_full_sweep_monitors) {
      tme_handles_.me1->set_incremental(false);
      tme_handles_.me2->set_incremental(false);
      tme_handles_.me3->set_incremental(false);
      tme_handles_.invariant_i->set_incremental(false);
      if (tme_handles_.mutual_belief != nullptr)
        tme_handles_.mutual_belief->set_incremental(false);
    }
    if (config_.install_lspec_monitors) {
      lspec_handles_ =
          lspec::install_lspec_clause_monitors(monitor_set_, config_.n);
    }
    // The observation hot path: one snapshot + monitor pass per executed
    // event. The delta pipeline reuses the source's double buffer and tells
    // the monitors which process row changed; the reference path is the
    // legacy allocate-and-copy capture kept for golden-equivalence tests.
    sched_.add_observer([this](SimTime t) {
      if (monitor_set_.empty()) return;  // nothing to feed: skip capture
      const auto start = std::chrono::steady_clock::now();
      if (config_.reference_full_capture) {
        monitor_set_.observe(t, snapshots_->capture_full(t));
      } else {
        const lspec::GlobalSnapshot& cur = snapshots_->capture(t);
        monitor_set_.observe_ref(t, cur, snapshots_->last_dirty());
      }
      observe_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    });
  }

  // Monitor violations feed the bus out-of-band (the monitors themselves
  // stay obs-free: the hook is a type-erased callback in the spec layer).
  bus_->set_monitor_names(monitor_set_.monitor_names());
  // Installed unconditionally: the reconvergence tracker needs the last
  // violation time even with the bus disabled (violations are rare, the
  // hook is off the hot path).
  monitor_set_.set_violation_hook([this](SimTime t, std::size_t index) {
    last_violation_time_ = t;
    // Attribute the violation to its root-cause fault(s) before recording,
    // so the bus event carries the attribution (unconditionally: the
    // blast-radius aggregates must not depend on the bus being enabled).
    obs::TaintSet attributed;
    if (provenance_ != nullptr) {
      attributed = provenance_->attribute_violation(t);
    }
    if (bus_->enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kMonitorViolation;
      e.monitor = static_cast<std::uint16_t>(index);
      e.taint = attributed;
      bus_->record(e);
    }
  });

  // The human-readable trace is a lazy view over the bus ring (see
  // trace()); it only needs matching retention.
  trace_ = sim::Trace(config_.trace_capacity);

  // Metrics instrumentation: push histograms fed by passive observers, and
  // pull counters registered up front (fixed order) but refreshed from the
  // component counters inside stats(). Everything is sim-domain valued, so
  // the snapshot is a pure function of the seed.
  if (config_.collect_metrics) {
    hungry_since_.assign(config_.n, kNever);
    obs::Histogram& cs_wait =
        metrics_.histogram("cs_wait_ticks", obs::Histogram::pow2_bounds(20));
    obs::Histogram& queue_depth = metrics_.histogram(
        "channel_queue_depth", obs::Histogram::pow2_bounds(10));
    obs::Histogram& in_flight =
        metrics_.histogram("net_in_flight", obs::Histogram::pow2_bounds(12));
    metrics_.counter("wrapper_resends");
    metrics_.counter("level1_corrections");
    for (std::size_t k = 0; k < net::kFaultCodeCount; ++k) {
      metrics_.counter(std::string("faults.") +
                       net::fault_code_name(static_cast<std::uint8_t>(k)));
    }
    for (const std::string& name : monitor_set_.monitor_names()) {
      metrics_.counter("violations." + name);
    }
    // Sustained-load availability instruments (pull; refreshed in stats()).
    metrics_.counter("fault_rate_per_kilotick");
    metrics_.counter("availability_ppm");
    metrics_.counter("deliveries_to_crashed");
    metrics_.counter("dropped_by_partition");
    reconverge_hist_ = &metrics_.histogram("reconverge_ticks",
                                           obs::Histogram::pow2_bounds(20));
    // Blast-radius rollup (provenance.*; zeros when provenance is off).
    // Registered unconditionally so the snapshot shape is a pure function
    // of collect_metrics, never of the provenance toggle.
    metrics_.counter("provenance.faults_minted");
    metrics_.counter("provenance.processes_tainted");
    metrics_.counter("provenance.messages_tainted");
    metrics_.counter("provenance.violations_attributed");
    metrics_.counter("provenance.containment_ticks");
    metrics_.counter("provenance.taint_overflows");

    net_->add_send_observer(
        [this, &queue_depth, &in_flight](const net::Message& msg) {
          in_flight.observe(net_->in_flight());
          queue_depth.observe(net_->channel(msg.from, msg.to).in_flight());
        });
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      processes_[pid]->add_state_observer(
          [this, &cs_wait, pid](me::TmeState, me::TmeState to) {
            if (to == me::TmeState::kHungry) {
              hungry_since_[pid] = sched_.now();
            } else if (to == me::TmeState::kEating &&
                       hungry_since_[pid] != kNever) {
              cs_wait.observe(sched_.now() - hungry_since_[pid]);
              hungry_since_[pid] = kNever;
            }
          });
    }
  }
}

SystemHarness::~SystemHarness() = default;

std::unique_ptr<me::TmeProcess> SystemHarness::make_process(ProcessId pid) {
  const me::ProcessFactory& factory = factory_for(config_, pid);
  const me::ResolvedOptions options =
      factory.resolve(options_for(config_, pid, factory));
  auto process = factory.make(pid, config_.n, *net_, factory_rng_, options);
  GBX_ASSERT(process != nullptr);
  return process;
}

me::TmeProcess& SystemHarness::process(ProcessId pid) {
  GBX_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

me::Client& SystemHarness::client(ProcessId pid) {
  GBX_EXPECTS(pid < clients_.size());
  return *clients_[pid];
}

wrapper::GrayboxWrapper* SystemHarness::wrapper(ProcessId pid) {
  GBX_EXPECTS(pid < wrappers_.size());
  return wrappers_[pid].get();
}

wrapper::LocalWrapper* SystemHarness::local_wrapper(ProcessId pid) {
  GBX_EXPECTS(pid < local_wrappers_.size());
  return local_wrappers_[pid].get();
}

const sim::Trace& SystemHarness::trace() const {
  if (bus_->enabled() && bus_->total_recorded() != trace_rendered_total_) {
    trace_.clear();
    for (std::size_t i = 0; i < bus_->size(); ++i) {
      const obs::Event& e = bus_->event(i);
      trace_.record(e.time, bus_->render(e));
    }
    trace_rendered_total_ = bus_->total_recorded();
  }
  return trace_;
}

void SystemHarness::start() {
  if (started_) return;
  started_ = true;
  for (auto& client : clients_) client->start();
  for (auto& w : wrappers_)
    if (w) w->start();
  for (auto& lw : local_wrappers_)
    if (lw) lw->start();
  fault_load_->start();
}

bool SystemHarness::crash(ProcessId pid) {
  GBX_EXPECTS(pid < config_.n);
  if (crashed_[pid]) return false;
  crashed_[pid] = 1;
  // A crashed process takes no steps: its client stops polling and its
  // wrapper stops resending. In-flight messages to it still arrive (and
  // are swallowed at the delivery handler).
  clients_[pid]->stop();
  if (wrappers_[pid]) wrappers_[pid]->stop();
  if (local_wrappers_[pid]) local_wrappers_[pid]->stop();
  note_lifecycle(net::kFaultCodeProcessCrash, pid);
  return true;
}

bool SystemHarness::recover(ProcessId pid) {
  GBX_EXPECTS(pid < config_.n);
  if (!crashed_[pid]) return false;
  crashed_[pid] = 0;
  // §3.1: a recovering process is "improperly initialized" — it comes back
  // with arbitrary state, not a clean slate. The wrapper is what must make
  // the system converge afterwards.
  processes_[pid]->corrupt_state(recovery_rng_);
  clients_[pid]->start();
  if (wrappers_[pid]) wrappers_[pid]->start();
  if (local_wrappers_[pid]) local_wrappers_[pid]->start();
  note_lifecycle(net::kFaultCodeProcessRecover, pid);
  return true;
}

bool SystemHarness::partition(std::uint64_t mask) {
  GBX_EXPECTS(config_.n <= 64);
  const std::uint64_t all = config_.n >= 64
                                ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << config_.n) - 1;
  GBX_EXPECTS((mask & all) != 0 && (mask & all) != all);
  if (net_->partition_mask() != 0) return false;
  net_->set_partition(mask & all);
  note_lifecycle(net::kFaultCodePartition, kNoProcess);
  return true;
}

bool SystemHarness::heal_partition() {
  if (net_->partition_mask() == 0) return false;
  net_->set_partition(0);
  note_lifecycle(net::kFaultCodePartitionHeal, kNoProcess);
  return true;
}

void SystemHarness::note_lifecycle(std::uint8_t code, ProcessId pid) {
  lifecycle_stats_[code - net::kFaultKindCount].note(sched_.now());
  obs::ProvenanceId id = obs::kNoProvenance;
  if (provenance_ != nullptr) {
    id = provenance_->mint(code, pid, sched_.now());
    // Crash and recovery corrupt the named process (recovery re-enters an
    // improperly initialized state); partitions have no single target.
    if (pid != kNoProcess) provenance_->taint_process(pid, id);
  }
  if (bus_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kFaultInjected;
    e.a = code;
    e.pid = pid;
    e.taint.add(id);
    bus_->record(e);
  }
  on_fault_arrival();
}

void SystemHarness::on_fault_arrival() {
  const SimTime now = sched_.now();
  if (prev_fault_time_ != kNever) {
    // Close the previous fault's window at the last safety violation it
    // produced (0 when the system absorbed the fault violation-free).
    const SimTime gap = (last_violation_time_ != kNever &&
                         last_violation_time_ >= prev_fault_time_)
                            ? last_violation_time_ - prev_fault_time_
                            : 0;
    ++reconverge_windows_;
    reconverge_ticks_ += gap;
    if (reconverge_hist_ != nullptr) reconverge_hist_->observe(gap);
  }
  prev_fault_time_ = now;
}

void SystemHarness::drain(SimTime period) {
  for (auto& client : clients_) client->stop_requesting();
  sched_.run_for(period);
  monitor_set_.finish(sched_.now());
  drained_ = true;
}

bool SystemHarness::quiescent() const {
  if (net_->in_flight() != 0) return false;
  for (const auto& p : processes_) {
    if (!p->thinking()) return false;
  }
  return true;
}

StabilizationReport SystemHarness::stabilization_report() const {
  GBX_EXPECTS(config_.install_monitors);
  StabilizationReport report;
  report.last_fault = faults_->last_fault_time();
  // Lifecycle faults (crash/recovery, partition/heal) count: latency is
  // measured from the last perturbation of any kind.
  for (const obs::KindStats& s : lifecycle_stats_) {
    if (s.count == 0) continue;
    if (report.last_fault == kNever || s.last > report.last_fault)
      report.last_fault = s.last;
  }
  report.faults_injected = report.last_fault != kNever;

  // Safety monitors: ME1, ME3, Invariant I. (ME2's records are liveness
  // verdicts handled through starvation below.)
  const lspec::TmeMonitors& tm = tme_handles_;
  SimTime last = kNever;
  std::uint64_t total = 0;
  for (const lspec::TmeMonitor* m :
       {static_cast<const lspec::TmeMonitor*>(tm.me1),
        static_cast<const lspec::TmeMonitor*>(tm.me3),
        static_cast<const lspec::TmeMonitor*>(tm.invariant_i),
        static_cast<const lspec::TmeMonitor*>(tm.mutual_belief)}) {
    if (m == nullptr) continue;
    total += m->total_violations();
    const SimTime t = m->last_violation();
    if (t == kNever) continue;
    if (last == kNever || t > last) last = t;
  }
  report.last_safety_violation = last;
  report.violations_total = total;
  report.starvation = tm.me2 != nullptr && tm.me2->starvation_at_end();
  report.stabilized = !report.starvation;

  if (last != kNever && report.faults_injected && last > report.last_fault) {
    report.latency = last - report.last_fault;
  } else {
    report.latency = 0;
  }
  return report;
}

obs::StabilizationTimeline SystemHarness::timeline() const {
  GBX_EXPECTS(config_.install_monitors);
  obs::StabilizationTimeline tl;
  tl.run_end = sched_.now();

  tl.faults_injected = faults_->total_injected();
  tl.first_fault = faults_->first_fault_time();
  tl.last_fault = faults_->last_fault_time();
  // Lifecycle faults share the bus's fault-code space (codes after the
  // injector's kinds), so fold them in the same order timeline_from_bus
  // reads its aggregates: injector kinds first, lifecycle codes after.
  for (const obs::KindStats& s : lifecycle_stats_) {
    if (s.count == 0) continue;
    tl.faults_injected += s.count;
    if (tl.first_fault == kNever || s.first < tl.first_fault)
      tl.first_fault = s.first;
    if (tl.last_fault == kNever || s.last > tl.last_fault)
      tl.last_fault = s.last;
  }
  for (std::size_t k = 0; k < net::kFaultCodeCount; ++k) {
    const obs::KindStats& s =
        k < net::kFaultKindCount
            ? faults_->kind_stats(static_cast<net::FaultKind>(k))
            : lifecycle_stats_[k - net::kFaultKindCount];
    if (s.count == 0) continue;
    obs::TimelineEntry e;
    e.name = net::fault_code_name(static_cast<std::uint8_t>(k));
    e.count = s.count;
    e.first = s.first;
    e.last = s.last;
    tl.faults.push_back(std::move(e));
  }

  for (const auto& m : monitor_set_.monitors()) {
    obs::TimelineEntry e;
    e.name = m->name();
    e.count = m->total_violations();
    e.first = m->first_violation();
    e.last = m->last_violation();
    if (e.count > 0) {
      tl.violations_total += e.count;
      if (tl.first_violation == kNever || e.first < tl.first_violation)
        tl.first_violation = e.first;
      if (tl.last_violation == kNever || e.last > tl.last_violation)
        tl.last_violation = e.last;
    }
    tl.clauses.push_back(std::move(e));
  }

  SimTime last = kNever;
  for (SimTime t : {net_->last_send_time(), net_->last_delivery_time(),
                    tl.last_fault, tl.last_violation}) {
    if (t == kNever) continue;
    if (last == kNever || t > last) last = t;
  }
  tl.last_activity = last;
  tl.quiescent = quiescent();
  return tl;
}

RunStats SystemHarness::stats() const {
  RunStats stats;
  stats.duration = sched_.now();
  stats.events_executed = sched_.executed();
  for (const auto& p : processes_) stats.cs_entries += p->cs_entries();
  for (const auto& c : clients_) stats.requests_issued += c->requests_issued();
  stats.messages_sent = net_->total_sent();
  stats.wrapper_messages = net_->sent_by_wrapper();
  stats.sent_request = net_->sent_of_type(net::MsgType::kRequest);
  stats.sent_reply = net_->sent_of_type(net::MsgType::kReply);
  stats.sent_release = net_->sent_of_type(net::MsgType::kRelease);
  stats.faults_injected = faults_->total_injected();
  const lspec::TmeMonitors& tm = tme_handles_;
  if (tm.me1 != nullptr) stats.me1_violations = tm.me1->total_violations();
  if (tm.me3 != nullptr) stats.me3_violations = tm.me3->total_violations();
  if (tm.invariant_i != nullptr)
    stats.invariant_violations = tm.invariant_i->total_violations();
  if (tm.mutual_belief != nullptr)
    stats.mutual_belief_violations = tm.mutual_belief->total_violations();
  for (const auto& lw : local_wrappers_)
    if (lw) stats.level1_corrections += lw->corrections();
  if (tm.me2 != nullptr) {
    stats.me2_served = tm.me2->served();
    stats.me2_max_wait = tm.me2->max_wait();
  }
  stats.lspec_clause_violations = lspec_handles_.total_violations();
  stats.observe_ns = observe_ns_;
  stats.crashes = lifecycle_stats_[0].count;
  stats.recoveries = lifecycle_stats_[1].count;
  stats.partitions = lifecycle_stats_[2].count;
  stats.partition_heals = lifecycle_stats_[3].count;
  stats.deliveries_to_crashed = deliveries_to_crashed_;
  stats.dropped_by_partition = net_->dropped_by_partition();
  stats.faults_injected += stats.crashes + stats.recoveries +
                           stats.partitions + stats.partition_heals;
  // Fold the tail window (last fault to run end) into the reconvergence
  // numbers without disturbing the live tracker: stats() may be called
  // mid-run and again later.
  stats.reconverge_windows = reconverge_windows_;
  stats.reconverge_ticks_total = reconverge_ticks_;
  if (prev_fault_time_ != kNever) {
    ++stats.reconverge_windows;
    if (last_violation_time_ != kNever &&
        last_violation_time_ >= prev_fault_time_) {
      stats.reconverge_ticks_total += last_violation_time_ - prev_fault_time_;
    }
  }

  if (provenance_ != nullptr) {
    stats.provenance_faults = provenance_->minted();
    for (const obs::BlastRadius& b : provenance_->blast()) {
      stats.processes_tainted += b.processes_tainted;
      stats.messages_tainted += b.messages_tainted;
      stats.violations_attributed += b.violations_attributed;
      stats.containment_ticks += b.containment();
    }
    stats.taint_overflows = provenance_->taint_overflows();
  }

  if (config_.collect_metrics) {
    // Refresh the pull counters (registered in the constructor, so the
    // snapshot order never depends on when stats() is called).
    std::uint64_t resends = 0;
    for (const auto& w : wrappers_)
      if (w) resends += w->resends();
    metrics_.counter("wrapper_resends").set(resends);
    metrics_.counter("level1_corrections").set(stats.level1_corrections);
    for (std::size_t k = 0; k < net::kFaultCodeCount; ++k) {
      const std::uint64_t count =
          k < net::kFaultKindCount
              ? faults_->count(static_cast<net::FaultKind>(k))
              : lifecycle_stats_[k - net::kFaultKindCount].count;
      metrics_
          .counter(std::string("faults.") +
                   net::fault_code_name(static_cast<std::uint8_t>(k)))
          .set(count);
    }
    for (const auto& [name, total] :
         monitor_set_.violations_total_by_monitor()) {
      metrics_.counter("violations." + name).set(total);
    }
    // Availability under load: observed fault pressure and the fraction of
    // issued CS requests actually served (ppm; 10^6 when nothing issued).
    // Capped at 10^6: state corruption can fabricate CS entries no client
    // requested, and those must not read as surplus availability.
    metrics_.counter("fault_rate_per_kilotick")
        .set(stats.duration > 0 ? stats.faults_injected * 1000 / stats.duration
                                : 0);
    const std::uint64_t served = tm.me2 != nullptr ? tm.me2->served() : 0;
    metrics_.counter("availability_ppm")
        .set(stats.requests_issued > 0
                 ? std::min<std::uint64_t>(
                       1000000, served * 1000000 / stats.requests_issued)
                 : 1000000);
    metrics_.counter("deliveries_to_crashed").set(deliveries_to_crashed_);
    metrics_.counter("dropped_by_partition").set(net_->dropped_by_partition());
    metrics_.counter("provenance.faults_minted").set(stats.provenance_faults);
    metrics_.counter("provenance.processes_tainted")
        .set(stats.processes_tainted);
    metrics_.counter("provenance.messages_tainted").set(stats.messages_tainted);
    metrics_.counter("provenance.violations_attributed")
        .set(stats.violations_attributed);
    metrics_.counter("provenance.containment_ticks")
        .set(stats.containment_ticks);
    metrics_.counter("provenance.taint_overflows").set(stats.taint_overflows);
    stats.metrics = metrics_.snapshot();
  }
  return stats;
}

}  // namespace graybox::core
