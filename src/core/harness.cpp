#include "core/harness.hpp"

#include <chrono>

#include "common/contracts.hpp"
#include "core/stabilization.hpp"

namespace graybox::core {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kRicartAgrawala:
      return "ricart-agrawala";
    case Algorithm::kLamport:
      return "lamport";
    case Algorithm::kFragile:
      return "fragile-ra";
  }
  return "unknown";
}

SystemHarness::SystemHarness(HarnessConfig config)
    : config_(config), master_rng_(config.seed) {
  GBX_EXPECTS(config_.n >= 1);
  // A heterogeneous algorithm vector must name exactly one algorithm per
  // process; anything else is a misconfiguration that must fail fast here,
  // never silently fall back to `algorithm`.
  GBX_EXPECTS(config_.per_process_algorithms.empty() ||
              config_.per_process_algorithms.size() == config_.n);

  net_ = std::make_unique<net::Network>(sched_, config_.n, config_.delay,
                                        master_rng_.split());

  // Processes + delivery plumbing.
  std::vector<me::TmeProcess*> raw;
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    processes_.push_back(make_process(pid));
    raw.push_back(processes_.back().get());
    me::TmeProcess* proc = raw.back();
    net_->set_handler(pid, [proc](const net::Message& msg) {
      proc->on_message(msg);
    });
  }

  // Clients (one per process, independent RNG streams).
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    clients_.push_back(std::make_unique<me::Client>(
        sched_, *processes_[pid], config_.client, master_rng_.split()));
  }

  // Wrappers: the graybox W' of Section 4, attached per process.
  if (config_.wrapped) {
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      wrappers_.push_back(std::make_unique<wrapper::GrayboxWrapper>(
          sched_, *net_, *processes_[pid], config_.wrapper));
    }
  }

  // Fault injection, with process corruption routed to corrupt_state.
  faults_ = std::make_unique<net::FaultInjector>(
      sched_, *net_, master_rng_.split(),
      [this](ProcessId pid, Rng& rng) {
        processes_[pid]->corrupt_state(rng);
      });

  // Monitoring battery.
  structural_ = std::make_unique<lspec::StructuralSpecMonitor>(raw, sched_);
  send_mono_ = std::make_unique<lspec::SendMonotonicityMonitor>(*net_, sched_);
  fifo_ = std::make_unique<lspec::FifoMonitor>(*net_, sched_);
  if (config_.install_monitors) {
    snapshots_ = std::make_unique<lspec::SnapshotSource>(raw, *net_);
    tme_handles_ = lspec::install_tme_monitors(monitor_set_, config_.n);
    if (config_.install_lspec_monitors) {
      lspec_handles_ =
          lspec::install_lspec_clause_monitors(monitor_set_, config_.n);
    }
    // The observation hot path: one snapshot + monitor pass per executed
    // event. The delta pipeline reuses the source's double buffer and tells
    // the monitors which process row changed; the reference path is the
    // legacy allocate-and-copy capture kept for golden-equivalence tests.
    sched_.add_observer([this](SimTime t) {
      if (monitor_set_.empty()) return;  // nothing to feed: skip capture
      const auto start = std::chrono::steady_clock::now();
      if (config_.reference_full_capture) {
        monitor_set_.observe(t, snapshots_->capture_full(t));
      } else {
        const lspec::GlobalSnapshot& cur = snapshots_->capture(t);
        monitor_set_.observe_ref(t, cur, snapshots_->last_dirty());
      }
      observe_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    });
  }

  // Optional rolling event trace for debugging and the example binaries.
  if (config_.trace_capacity > 0) {
    trace_ = sim::Trace(config_.trace_capacity);
    net_->add_send_observer([this](const net::Message& msg) {
      trace_.record(sched_.now(), "send " + msg.to_string());
    });
    net_->add_delivery_observer([this](const net::Message& msg) {
      trace_.record(sched_.now(), "recv " + msg.to_string());
    });
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      me::TmeProcess* proc = processes_[pid].get();
      proc->add_state_observer(
          [this, pid](me::TmeState from, me::TmeState to) {
            trace_.record(sched_.now(),
                          "proc " + std::to_string(pid) + ": " +
                              std::string(me::to_string(from)) + " -> " +
                              me::to_string(to));
          });
    }
  }
}

SystemHarness::~SystemHarness() = default;

std::unique_ptr<me::TmeProcess> SystemHarness::make_process(ProcessId pid) {
  Algorithm algo = config_.algorithm;
  if (!config_.per_process_algorithms.empty()) {
    GBX_EXPECTS(config_.per_process_algorithms.size() == config_.n);
    algo = config_.per_process_algorithms[pid];
  }
  switch (algo) {
    case Algorithm::kRicartAgrawala:
      return std::make_unique<me::RicartAgrawala>(pid, *net_,
                                                  config_.ra_options);
    case Algorithm::kLamport:
      return std::make_unique<me::LamportMe>(pid, *net_,
                                             config_.lamport_options);
    case Algorithm::kFragile:
      return std::make_unique<me::FragileMe>(pid, *net_);
  }
  GBX_ASSERT(false && "unknown algorithm");
  return nullptr;
}

me::TmeProcess& SystemHarness::process(ProcessId pid) {
  GBX_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

me::Client& SystemHarness::client(ProcessId pid) {
  GBX_EXPECTS(pid < clients_.size());
  return *clients_[pid];
}

wrapper::GrayboxWrapper* SystemHarness::wrapper(ProcessId pid) {
  if (!config_.wrapped) return nullptr;
  GBX_EXPECTS(pid < wrappers_.size());
  return wrappers_[pid].get();
}

void SystemHarness::start() {
  if (started_) return;
  started_ = true;
  for (auto& client : clients_) client->start();
  for (auto& w : wrappers_) w->start();
}

void SystemHarness::drain(SimTime period) {
  for (auto& client : clients_) client->stop_requesting();
  sched_.run_for(period);
  monitor_set_.finish(sched_.now());
  drained_ = true;
}

bool SystemHarness::quiescent() const {
  if (net_->in_flight() != 0) return false;
  for (const auto& p : processes_) {
    if (!p->thinking()) return false;
  }
  return true;
}

StabilizationReport SystemHarness::stabilization_report() const {
  GBX_EXPECTS(config_.install_monitors);
  StabilizationReport report;
  report.last_fault = faults_->last_fault_time();
  report.faults_injected = report.last_fault != kNever;

  // Safety monitors: ME1, ME3, Invariant I. (ME2's records are liveness
  // verdicts handled through starvation below.)
  const lspec::TmeMonitors& tm = tme_handles_;
  SimTime last = kNever;
  std::uint64_t total = 0;
  for (const lspec::TmeMonitor* m :
       {static_cast<const lspec::TmeMonitor*>(tm.me1),
        static_cast<const lspec::TmeMonitor*>(tm.me3),
        static_cast<const lspec::TmeMonitor*>(tm.invariant_i)}) {
    if (m == nullptr) continue;
    total += m->total_violations();
    const SimTime t = m->last_violation();
    if (t == kNever) continue;
    if (last == kNever || t > last) last = t;
  }
  report.last_safety_violation = last;
  report.violations_total = total;
  report.starvation = tm.me2 != nullptr && tm.me2->starvation_at_end();
  report.stabilized = !report.starvation;

  if (last != kNever && report.faults_injected && last > report.last_fault) {
    report.latency = last - report.last_fault;
  } else {
    report.latency = 0;
  }
  return report;
}

RunStats SystemHarness::stats() const {
  RunStats stats;
  stats.duration = sched_.now();
  stats.events_executed = sched_.executed();
  for (const auto& p : processes_) stats.cs_entries += p->cs_entries();
  for (const auto& c : clients_) stats.requests_issued += c->requests_issued();
  stats.messages_sent = net_->total_sent();
  stats.wrapper_messages = net_->sent_by_wrapper();
  stats.sent_request = net_->sent_of_type(net::MsgType::kRequest);
  stats.sent_reply = net_->sent_of_type(net::MsgType::kReply);
  stats.sent_release = net_->sent_of_type(net::MsgType::kRelease);
  stats.faults_injected = faults_->total_injected();
  const lspec::TmeMonitors& tm = tme_handles_;
  if (tm.me1 != nullptr) stats.me1_violations = tm.me1->total_violations();
  if (tm.me3 != nullptr) stats.me3_violations = tm.me3->total_violations();
  if (tm.invariant_i != nullptr)
    stats.invariant_violations = tm.invariant_i->total_violations();
  if (tm.me2 != nullptr) {
    stats.me2_served = tm.me2->served();
    stats.me2_max_wait = tm.me2->max_wait();
  }
  stats.lspec_clause_violations = lspec_handles_.total_violations();
  stats.observe_ns = observe_ns_;
  return stats;
}

}  // namespace graybox::core
