// ExperimentEngine: seed-sharded parallel trial execution with a
// deterministic merge.
//
// Every quantitative claim in this reproduction comes from repeating seeded
// fault-recovery trials. The engine replaces the per-bench serial loops
// with one declarative substrate:
//
//   * a RunSpec names one grid cell: a HarnessConfig, a FaultScenario, and
//     a trial count (trials run over consecutive seeds from config.seed);
//   * a SpecGrid is an ordered collection of named cells — the whole
//     experiment of one bench binary;
//   * the engine fans every (cell, trial) pair out across a worker pool
//     (each trial owns an isolated Scheduler/Rng/SystemHarness, so trials
//     are embarrassingly parallel) and then folds the per-trial results
//     IN SEED ORDER into one RepeatedResult per cell.
//
// Determinism: the fold is a serial reduction over slots indexed by
// (cell, trial), so the aggregate statistics are bit-identical for every
// --jobs value — `--jobs 1` and `--jobs N` produce byte-identical JSON
// artifacts modulo wall-clock fields (enforced by tests/test_engine.cpp).
//
//   SpecGrid grid;
//   for (std::size_t n : {2u, 4u, 8u})
//     grid.add("ra/n=" + std::to_string(n), config_for(n), scenario, 64);
//   const GridResult result = ExperimentEngine({.jobs = 0}).run(grid);
//   write_bench_json("bench_stabilization_time", result, json_path);
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/report.hpp"
#include "core/experiment.hpp"

namespace graybox::core {

/// One named grid cell: `trials` seeded experiments over consecutive seeds
/// config.seed, config.seed + 1, ...
struct RunSpec {
  std::string name;
  HarnessConfig config;
  FaultScenario scenario;
  std::size_t trials = 1;
  /// Override how one trial runs (the config carries the trial's seed).
  /// Defaults to run_fault_experiment. Must be thread-safe: trials of the
  /// same cell execute concurrently, so the callable must not mutate state
  /// shared across calls.
  std::function<ExperimentResult(const HarnessConfig&, const FaultScenario&)>
      trial;
};

/// An ordered, uniquely named collection of RunSpecs.
class SpecGrid {
 public:
  /// Add a cell. Names must be unique within the grid (contract).
  RunSpec& add(RunSpec spec);
  RunSpec& add(std::string name, HarnessConfig config, FaultScenario scenario,
               std::size_t trials);

  const std::vector<RunSpec>& cells() const { return cells_; }
  std::size_t total_trials() const;
  bool empty() const { return cells_.empty(); }

 private:
  std::vector<RunSpec> cells_;
};

struct EngineOptions {
  /// Worker threads; 0 = all hardware cores, 1 = fully serial (no threads).
  std::size_t jobs = 0;
  /// Retention cap forwarded to every aggregate Accumulator; 0 = retain
  /// all samples (exact percentiles, bit-identical merges). Set for very
  /// long runs where per-trial sample retention would dominate memory.
  std::size_t sample_cap = 0;
};

/// Aggregated outcome of one grid cell.
struct CellResult {
  std::string name;
  std::string config_digest;  ///< hex digest of the cell's HarnessConfig
  /// Registry-canonical algorithm spec of the cell's config (see
  /// core::algorithm_spec); round-trips through the JSON cell.
  std::string algorithm;
  std::uint64_t base_seed = 0;
  RepeatedResult result;
  double wall_seconds = 0.0;  ///< summed per-trial wall time (CPU-ish)
};

struct GridResult {
  std::vector<CellResult> cells;
  std::size_t jobs = 1;       ///< resolved worker count actually used
  double wall_seconds = 0.0;  ///< real elapsed time for the whole grid

  /// Lookup by cell name; aborts if absent.
  const CellResult& cell(const std::string& name) const;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions options = {});

  GridResult run(const SpecGrid& grid) const;
  CellResult run_cell(const RunSpec& spec) const;

  /// The resolved worker count this engine will use.
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t jobs_;
  std::size_t sample_cap_;
};

/// Stable hex digest of every behaviour-relevant HarnessConfig field
/// (FNV-1a 64). Two cells with equal digests and equal seeds replay the
/// same trials; the digest is recorded in each JSON cell so artifacts are
/// comparable PR-over-PR.
std::string config_digest(const HarnessConfig& config);

/// Engine options from the shared --jobs flag (see with_engine_flags()).
EngineOptions engine_options_from_flags(const Flags& flags);

/// Serialize a cell / grid to the BENCH_<name>.json schema.
report::Json cell_to_json(const CellResult& cell);
report::Json grid_to_json(const std::string& bench_name,
                          const GridResult& result);

/// Write the grid artifact for `bench_name` to `path`; "-" disables.
void write_bench_json(const std::string& bench_name, const GridResult& result,
                      const std::string& path);

/// Convenience used by every bench main: resolve --json (default
/// BENCH_<basename>.json) and write unless disabled. Returns the path
/// written, or "" when disabled.
std::string emit_bench_artifact(const Flags& flags, const GridResult& result);

}  // namespace graybox::core
