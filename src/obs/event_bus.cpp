#include "obs/event_bus.hpp"

#include "common/contracts.hpp"

namespace graybox::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSend:
      return "send";
    case EventKind::kDeliver:
      return "deliver";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kLocalStep:
      return "local-step";
    case EventKind::kCsEnter:
      return "cs-enter";
    case EventKind::kCsExit:
      return "cs-exit";
    case EventKind::kFaultInjected:
      return "fault-injected";
    case EventKind::kWrapperCorrection:
      return "wrapper-correction";
    case EventKind::kMonitorViolation:
      return "monitor-violation";
    case EventKind::kLocalCorrection:
      return "local-correction";
  }
  return "unknown-event";
}

const char* fault_code_builtin_name(std::uint8_t code) {
  // Mirrors net::fault_code_name over the full 11-code space (FaultKind
  // 0..6 + lifecycle 7..10) — duplicated because obs sits below net in the
  // layering, like the message/state vocabularies below. Keeping the full
  // table here means renderers and timelines label lifecycle faults
  // correctly even on a hand-wired bus with no registered name table.
  switch (code) {
    case 0:
      return "message-drop";
    case 1:
      return "message-duplicate";
    case 2:
      return "message-corrupt";
    case 3:
      return "message-reorder";
    case 4:
      return "spurious-message";
    case 5:
      return "process-corrupt";
    case 6:
      return "channel-clear";
    case 7:
      return "process-crash";
    case 8:
      return "process-recover";
    case 9:
      return "partition";
    case 10:
      return "partition-heal";
    default:
      return nullptr;
  }
}

namespace {

// Rendering vocabulary. These mirror net::to_string(MsgType) and
// me::to_string(TmeState) — duplicated here because obs sits *below* net
// and me in the layering (they record into the bus); both enums are
// spec-stable (the paper's three message kinds and three process states).
const char* message_type_name(std::uint8_t code) {
  switch (code) {
    case 0:
      return "request";
    case 1:
      return "reply";
    case 2:
      return "release";
    default:
      return "corrupt-type";
  }
}

const char* state_name(std::uint8_t code) {
  switch (code) {
    case 0:
      return "thinking";
    case 1:
      return "hungry";
    case 2:
      return "eating";
    default:
      return "corrupt-state";
  }
}

std::string message_text(const Event& e) {
  // Matches net::Message::to_string(): "type(counter.pid) from->to".
  std::string out = message_type_name(e.a);
  out += "(" + std::to_string(e.payload) + "." + std::to_string(e.aux) +
         ") " + std::to_string(e.pid) + "->" + std::to_string(e.peer);
  if (e.flags & Event::kFromWrapper) out += " [wrapper]";
  return out;
}

const char* local_predicate_name(std::uint8_t code) {
  // wrapper::LocalWrapper::Predicate; duplicated for the same layering
  // reason as above (obs sits below wrapper).
  switch (code) {
    case 0:
      return "req-tracks-clock";
    case 1:
      return "foreign-req";
    case 2:
      return "req-above-clock";
    default:
      return "corrupt-predicate";
  }
}

}  // namespace

EventBus::EventBus(const sim::Scheduler& sched, std::size_t capacity)
    : sched_(sched), capacity_(capacity) {
  if (capacity_ > 0) ring_.resize(capacity_);
}

void EventBus::record_slow(const Event& e) {
  Event stamped = e;
  stamped.time = sched_.now();

  kind_stats_[static_cast<std::size_t>(stamped.kind)].note(stamped.time);
  if (stamped.kind == EventKind::kMonitorViolation &&
      stamped.monitor < monitor_stats_.size()) {
    monitor_stats_[stamped.monitor].note(stamped.time);
  }
  if (stamped.kind == EventKind::kFaultInjected &&
      stamped.a < fault_stats_.size()) {
    fault_stats_[stamped.a].note(stamped.time);
  }

  const std::size_t slot = (head_ + size_) % capacity_;
  ring_[slot] = stamped;
  if (size_ < capacity_) {
    ++size_;
  } else {
    head_ = (head_ + 1) % capacity_;  // evict the oldest
  }
  ++total_;
}

const Event& EventBus::event(std::size_t i) const {
  GBX_EXPECTS(i < size_);
  return ring_[(head_ + i) % capacity_];
}

void EventBus::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
  for (KindStats& s : kind_stats_) s = KindStats{};
  for (KindStats& s : monitor_stats_) s = KindStats{};
  for (KindStats& s : fault_stats_) s = KindStats{};
}

void EventBus::set_monitor_names(std::vector<std::string> names) {
  monitor_names_ = std::move(names);
  monitor_stats_.assign(monitor_names_.size(), KindStats{});
}

void EventBus::set_fault_kind_names(std::vector<std::string> names) {
  fault_kind_names_ = std::move(names);
  fault_stats_.assign(fault_kind_names_.size(), KindStats{});
}

std::string EventBus::render(const Event& e) const {
  switch (e.kind) {
    case EventKind::kSend:
      return "send " + message_text(e);
    case EventKind::kDeliver:
      return "recv " + message_text(e);
    case EventKind::kDrop:
      return "drop " + std::to_string(e.payload) + " message(s)";
    case EventKind::kLocalStep:
    case EventKind::kCsEnter:
    case EventKind::kCsExit:
      // Matches the legacy harness trace: "proc 0: thinking -> hungry".
      return "proc " + std::to_string(e.pid) + ": " + state_name(e.a) +
             " -> " + state_name(e.b);
    case EventKind::kFaultInjected: {
      std::string name;
      if (e.a < fault_kind_names_.size()) {
        name = fault_kind_names_[e.a];
      } else if (const char* builtin = fault_code_builtin_name(e.a)) {
        name = builtin;
      } else {
        name = "fault#" + std::to_string(e.a);
      }
      std::string out = "fault " + name;
      if (e.pid != kNoProcess) out += " @proc " + std::to_string(e.pid);
      return out;
    }
    case EventKind::kWrapperCorrection:
      return "wrapper " + std::to_string(e.pid) + ": resend REQ to " +
             std::to_string(e.peer);
    case EventKind::kMonitorViolation: {
      std::string name = e.monitor < monitor_names_.size()
                             ? monitor_names_[e.monitor]
                             : "monitor#" + std::to_string(e.monitor);
      return "violation " + name;
    }
    case EventKind::kLocalCorrection:
      return "local-wrapper " + std::to_string(e.pid) + ": repair " +
             local_predicate_name(e.a);
  }
  return to_string(e.kind);
}

}  // namespace graybox::obs
