// Typed observability events: the vocabulary of "what happened" in a run.
//
// The paper's whole argument is about observable convergence (Section 2):
// a run stabilizes iff violations are confined to a prefix, and the
// interesting quantity is the divergent window between the last fault and
// the last violation. These events are the raw material for answering
// *how* a run converged — which clause fired, when wrapper actions
// corrected state, how traffic and violations decayed after a burst.
//
// An Event is a compact POD: sim-time, a kind, the acting process, an
// optional peer, and a handful of payload integers whose meaning depends on
// the kind. No strings are stored; human-readable text is rendered lazily
// at dump time (EventBus::render), so recording is a ring write.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/provenance.hpp"

namespace graybox::obs {

enum class EventKind : std::uint8_t {
  kSend = 0,           ///< Network::send (pid -> peer, payload = ts.counter)
  kDeliver,            ///< message left a channel (pid = receiver)
  kDrop,               ///< message(s) destroyed by a fault (payload = count)
  kLocalStep,          ///< program transition other than CS enter/exit
  kCsEnter,            ///< h -> e (pid entered the critical section)
  kCsExit,             ///< e -> t (pid left the critical section)
  kFaultInjected,      ///< FaultInjector applied a fault (a = FaultKind)
  kWrapperCorrection,  ///< W'j resent REQj to a stale peer (pid -> peer)
  kMonitorViolation,   ///< a spec monitor reported (monitor = index)
  kLocalCorrection,    ///< level-1 wrapper repaired local state (a = pred)
};
inline constexpr std::size_t kEventKindCount = 10;

const char* to_string(EventKind kind);

/// Built-in name for a kFaultInjected code when no fault_kind_names table
/// was registered: the full 11-code space (net::FaultKind 0..6 plus the
/// lifecycle codes 7..10), mirroring net::fault_code_name. Returns nullptr
/// for codes beyond the known space.
const char* fault_code_builtin_name(std::uint8_t code);

/// One recorded event. Field meaning by kind:
///
///   kSend / kDeliver        pid = sender, peer = receiver, a = MsgType,
///                           payload = timestamp counter, aux = timestamp
///                           pid, flags bit 0 = sent by a wrapper
///   kDrop                   payload = number of messages destroyed
///   kLocalStep/kCsEnter/
///   kCsExit                 pid = process, a = from-state, b = to-state
///                           (me::TmeState codes)
///   kFaultInjected          a = net::FaultKind code, pid = corrupted
///                           process (process faults only)
///   kWrapperCorrection      pid = wrapped process, peer = stale peer
///   kMonitorViolation       monitor = index in the owning MonitorSet
///   kLocalCorrection        pid = repaired process, a = the violated
///                           predicate (wrapper::LocalWrapper::Predicate)
struct Event {
  SimTime time = 0;
  std::uint64_t payload = 0;
  ProcessId pid = kNoProcess;
  ProcessId peer = kNoProcess;
  std::uint32_t aux = 0;
  std::uint16_t monitor = 0;
  EventKind kind = EventKind::kSend;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t flags = 0;

  /// Message uid for kSend/kDeliver (0 otherwise): lets the causal DAG pair
  /// each delivery with its exact send even under duplication and faults.
  std::uint64_t uid = 0;
  /// Active fault provenance at record time: the message's taint for
  /// kSend/kDeliver, the acting process's taint for transitions and
  /// corrections, the minted id for kFaultInjected, and the attributed
  /// root-cause set for kMonitorViolation. Empty when provenance is off.
  TaintSet taint{};

  static constexpr std::uint8_t kFromWrapper = 1u << 0;
};

/// Count / first-time / last-time aggregate of one event class. Maintained
/// by the EventBus for every kind (and per monitor, per fault kind) even
/// though the ring itself evicts: timelines need exact firsts and lasts.
struct KindStats {
  std::uint64_t count = 0;
  SimTime first = kNever;
  SimTime last = kNever;

  void note(SimTime t) {
    if (count == 0 || t < first) first = t;
    if (count == 0 || t > last) last = t;
    ++count;
  }
};

}  // namespace graybox::obs
