#include "obs/causal_dag.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "obs/event_bus.hpp"

namespace graybox::obs {

ProcessId acting_process(const Event& e) {
  switch (e.kind) {
    case EventKind::kSend:
      return e.pid;
    case EventKind::kDeliver:
      return e.peer;  // pid = sender, peer = receiver; delivery acts on peer
    case EventKind::kLocalStep:
    case EventKind::kCsEnter:
    case EventKind::kCsExit:
    case EventKind::kWrapperCorrection:
    case EventKind::kLocalCorrection:
      return e.pid;
    case EventKind::kFaultInjected:
      return e.pid;  // kNoProcess for message/partition faults
    case EventKind::kDrop:
    case EventKind::kMonitorViolation:
      return kNoProcess;
  }
  return kNoProcess;
}

CausalDag CausalDag::build(const EventBus& bus) {
  CausalDag dag;
  const std::size_t n = bus.size();
  dag.preds_.resize(n);

  std::unordered_map<ProcessId, std::size_t> last_by_pid;
  std::unordered_map<std::uint64_t, std::size_t> send_by_uid;
  std::unordered_map<ProvenanceId, std::size_t> last_carrier;

  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = bus.event(i);
    std::vector<std::uint32_t>& preds = dag.preds_[i];

    const ProcessId p = acting_process(e);
    if (p != kNoProcess) {
      const auto it = last_by_pid.find(p);
      if (it != last_by_pid.end()) {
        preds.push_back(static_cast<std::uint32_t>(it->second));
      }
      last_by_pid[p] = i;
    }

    if (e.uid != 0) {
      if (e.kind == EventKind::kSend) {
        send_by_uid[e.uid] = i;
      } else if (e.kind == EventKind::kDeliver) {
        const auto it = send_by_uid.find(e.uid);
        if (it != send_by_uid.end()) {
          preds.push_back(static_cast<std::uint32_t>(it->second));
        }
      }
    }

    for (std::size_t t = 0; t < e.taint.size(); ++t) {
      const ProvenanceId id = e.taint[t];
      const auto it = last_carrier.find(id);
      if (it != last_carrier.end()) {
        preds.push_back(static_cast<std::uint32_t>(it->second));
      }
      last_carrier[id] = i;
    }

    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  }
  return dag;
}

std::vector<std::size_t> why(const EventBus& bus, std::size_t index) {
  if (index >= bus.size()) return {};
  const CausalDag dag = CausalDag::build(bus);
  const TaintSet target = bus.event(index).taint;

  const auto is_root = [&](const Event& e) {
    if (e.kind != EventKind::kFaultInjected) return false;
    if (target.empty()) return true;
    for (std::size_t t = 0; t < e.taint.size(); ++t) {
      if (target.contains(e.taint[t])) return true;
    }
    return false;
  };

  // Backward BFS toward the nearest qualifying injection. succ_[i] points
  // one hop *toward the target*, so the chain falls out of the walk.
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> succ(bus.size(), kUnvisited);
  std::deque<std::size_t> frontier;
  succ[index] = index;
  frontier.push_back(index);
  std::size_t root = kUnvisited;
  while (!frontier.empty()) {
    const std::size_t i = frontier.front();
    frontier.pop_front();
    if (is_root(bus.event(i))) {
      root = i;
      break;
    }
    for (const std::uint32_t pred : dag.preds(i)) {
      if (succ[pred] == kUnvisited) {
        succ[pred] = i;
        frontier.push_back(pred);
      }
    }
  }
  if (root == kUnvisited) return {};

  std::vector<std::size_t> chain;
  for (std::size_t cur = root;; cur = succ[cur]) {
    chain.push_back(cur);
    if (cur == index) break;
  }
  return chain;
}

}  // namespace graybox::obs
