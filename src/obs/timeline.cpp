#include "obs/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "obs/event_bus.hpp"

namespace graybox::obs {

namespace {

std::string time_or_never(SimTime t) {
  return t == kNever ? std::string("never") : std::to_string(t);
}

report::Json entry_to_json(const TimelineEntry& e) {
  report::Json cell = report::Json::object();
  cell["count"] = e.count;
  cell["first"] = e.first == kNever ? report::Json() : report::Json(e.first);
  cell["last"] = e.last == kNever ? report::Json() : report::Json(e.last);
  return cell;
}

}  // namespace

std::string StabilizationTimeline::to_string() const {
  std::ostringstream os;
  os << "stabilization timeline (run_end=" << run_end << ")\n";

  os << "  fault burst:      " << faults_injected << " fault(s)";
  if (faults_injected > 0) {
    os << " over [" << time_or_never(first_fault) << ", "
       << time_or_never(last_fault) << "]";
  }
  os << "\n";
  for (const TimelineEntry& f : faults) {
    if (f.count == 0) continue;
    os << "    " << f.name << ": " << f.count << " @ ["
       << time_or_never(f.first) << ", " << time_or_never(f.last) << "]\n";
  }

  os << "  first violation:  " << time_or_never(first_violation) << "\n";
  os << "  violation decay:  " << violations_total << " violation(s) total\n";
  for (const TimelineEntry& c : clauses) {
    os << "    " << c.name << ": " << c.count;
    if (c.count > 0) {
      os << " @ [" << time_or_never(c.first) << ", " << time_or_never(c.last)
         << "]";
    }
    os << "\n";
  }
  os << "  last violation:   " << time_or_never(last_violation) << "\n";
  os << "  divergent window: " << divergent_window() << " tick(s)\n";
  os << "  quiescence:       last activity @ " << time_or_never(last_activity)
     << (quiescent ? ", quiescent" : ", still active") << "\n";
  return os.str();
}

report::Json StabilizationTimeline::to_json() const {
  report::Json doc = report::Json::object();
  doc["run_end"] = run_end;

  report::Json burst = report::Json::object();
  burst["count"] = faults_injected;
  burst["first"] =
      first_fault == kNever ? report::Json() : report::Json(first_fault);
  burst["last"] =
      last_fault == kNever ? report::Json() : report::Json(last_fault);
  report::Json by_kind = report::Json::object();
  for (const TimelineEntry& f : faults) by_kind[f.name] = entry_to_json(f);
  burst["by_kind"] = std::move(by_kind);
  doc["fault_burst"] = std::move(burst);

  report::Json viol = report::Json::object();
  viol["count"] = violations_total;
  viol["first"] = first_violation == kNever ? report::Json()
                                            : report::Json(first_violation);
  viol["last"] = last_violation == kNever ? report::Json()
                                          : report::Json(last_violation);
  report::Json by_clause = report::Json::object();
  for (const TimelineEntry& c : clauses) by_clause[c.name] = entry_to_json(c);
  viol["by_clause"] = std::move(by_clause);
  doc["violations"] = std::move(viol);

  doc["divergent_window"] = divergent_window();
  doc["last_activity"] =
      last_activity == kNever ? report::Json() : report::Json(last_activity);
  doc["quiescent"] = quiescent;
  doc["stabilized"] = stabilized();
  return doc;
}

StabilizationTimeline timeline_from_bus(const EventBus& bus) {
  StabilizationTimeline tl;
  tl.run_end = bus.now();

  const KindStats& faults = bus.kind_stats(EventKind::kFaultInjected);
  tl.faults_injected = faults.count;
  tl.first_fault = faults.first;
  tl.last_fault = faults.last;
  const std::vector<KindStats>& fault_stats = bus.fault_stats();
  for (std::size_t i = 0; i < fault_stats.size(); ++i) {
    if (fault_stats[i].count == 0) continue;
    TimelineEntry e;
    if (i < bus.fault_kind_names().size()) {
      e.name = bus.fault_kind_names()[i];
    } else if (const char* builtin =
                   fault_code_builtin_name(static_cast<std::uint8_t>(i))) {
      e.name = builtin;
    } else {
      e.name = "fault#" + std::to_string(i);
    }
    e.count = fault_stats[i].count;
    e.first = fault_stats[i].first;
    e.last = fault_stats[i].last;
    tl.faults.push_back(std::move(e));
  }

  const KindStats& viols = bus.kind_stats(EventKind::kMonitorViolation);
  tl.violations_total = viols.count;
  tl.first_violation = viols.first;
  tl.last_violation = viols.last;
  const std::vector<KindStats>& monitor_stats = bus.monitor_stats();
  for (std::size_t i = 0; i < monitor_stats.size(); ++i) {
    TimelineEntry e;
    e.name = i < bus.monitor_names().size()
                 ? bus.monitor_names()[i]
                 : "monitor#" + std::to_string(i);
    e.count = monitor_stats[i].count;
    e.first = monitor_stats[i].first;
    e.last = monitor_stats[i].last;
    tl.clauses.push_back(std::move(e));
  }

  SimTime last = kNever;
  for (EventKind k : {EventKind::kSend, EventKind::kDeliver,
                      EventKind::kFaultInjected, EventKind::kMonitorViolation,
                      EventKind::kWrapperCorrection,
                      EventKind::kLocalCorrection}) {
    const KindStats& s = bus.kind_stats(k);
    if (s.count == 0) continue;
    if (last == kNever || s.last > last) last = s.last;
  }
  tl.last_activity = last;
  tl.quiescent = last == kNever || last < tl.run_end;
  return tl;
}

}  // namespace graybox::obs
