// Metrics registry: deterministic run instrumentation.
//
// Counters, gauges, and fixed-bucket histograms keyed by *simulated* time
// and sim-domain values — never wall-clock — so that every exported metric
// is a pure function of the run's seed and byte-identical across --jobs
// values and repeated runs. (Wall-clock-derived values must stay out of
// here; they live under the `wall`/`ns` key naming rule of
// report::strip_volatile_lines.)
//
// The registry owns its instruments and snapshots them in registration
// order; MetricsAggregate folds per-trial snapshots into the experiment
// engine's seed-order merge, which keeps BENCH_*.json metric cells
// deterministic by the same argument as every other aggregate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/report.hpp"
#include "common/stats.hpp"

namespace graybox::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  /// Absolute update, for pull-style metrics mirrored from an existing
  /// counter (fault injector counts, monitor totals) at snapshot time.
  void set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value with min/max watermarks.
class Gauge {
 public:
  void set(std::int64_t value);
  std::int64_t value() const { return value_; }
  std::int64_t low() const { return low_; }
  std::int64_t high() const { return high_; }
  bool ever_set() const { return set_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t low_ = 0;
  std::int64_t high_ = 0;
  bool set_ = false;
};

/// Fixed-bucket histogram over non-negative integer values. Bucket i counts
/// observations <= bounds[i] (strictly greater than bounds[i-1]); one
/// overflow bucket past the last bound. Bounds are fixed at construction,
/// so two runs always produce structurally identical, mergeable buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  /// Power-of-two bounds 0, 1, 2, 4, ..., 2^max_exp — the default shape
  /// for tick-valued and depth-valued metrics (wide dynamic range, exact
  /// zero bucket).
  static std::vector<std::uint64_t> pow2_bounds(unsigned max_exp);

  void observe(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }  ///< 0 when empty
  std::uint64_t max() const { return max_; }
  double mean() const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Value snapshot of one instrument, decoupled from the live registry so
/// that RunStats can carry metrics across threads and into the engine fold.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter value / gauge last value / histogram observation count.
  std::int64_t value = 0;
  // Histogram-only payload.
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
};

using MetricsSnapshot = std::vector<MetricSample>;

/// Ordered, owning collection of named instruments. Registration order is
/// snapshot/export order (deterministic). Re-registering a name returns
/// the existing instrument (kind must match; contract).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find(const std::string& name);

  std::vector<Entry> entries_;
};

/// Serialize one snapshot (insertion order preserved; all values
/// sim-domain, so the artifact is byte-stable across runs and jobs).
report::Json metrics_snapshot_to_json(const MetricsSnapshot& snapshot);

/// Fold of per-trial MetricsSnapshots, mergeable like RepeatedResult's
/// accumulators: add() one trial, merge() another partial (its trials
/// ordered after ours). Counter and gauge values become per-trial
/// Accumulators; histograms sum bucket-wise.
class MetricsAggregate {
 public:
  void add(const MetricsSnapshot& snapshot);
  void merge(const MetricsAggregate& other);
  bool empty() const { return entries_.empty(); }

  report::Json to_json() const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    /// Counter/gauge value per trial; histogram count per trial.
    Accumulator per_trial;
    // Histogram fold across trials.
    std::uint64_t hist_count = 0;
    std::uint64_t hist_sum = 0;
    std::uint64_t hist_min = 0;
    std::uint64_t hist_max = 0;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
  };
  Entry& find_or_add(const std::string& name, MetricSample::Kind kind);

  std::vector<Entry> entries_;  ///< first-seen order (trial 0 folds first)
};

}  // namespace graybox::obs
