// Chrome/Perfetto trace_event export of the retained event ring.
//
// Produces the JSON object format ({"traceEvents":[...]}) understood by
// ui.perfetto.dev and chrome://tracing. Track layout:
//
//   pid 1 "processes"  one thread per simulated process; CS occupancy is
//                      reconstructed from kCsEnter/kCsExit pairs as "X"
//                      (complete) slices, other transitions are instants
//   pid 2 "network"    tid 0: send/deliver/drop instants;
//                      tid 1: fault injections and wrapper corrections
//   pid 3 "monitors"   one thread per monitor; violation instants
//
// Causal provenance is exported as flow events (cat "provenance"): an "s"
// phase anchored at each retained fault-injection instant, "t" steps at
// tainted sends and wrapper/local corrections, and an "f" (bp:"e") at the
// last violation attributed to that fault — the viewer draws arrows from
// root cause to blast radius.
//
// Sim ticks map 1:1 onto trace microseconds (the viewer's native unit), so
// durations read directly in ticks. The export covers the *retained* ring —
// size the bus capacity to the run when a complete trace matters.
#pragma once

#include <string>

#include "common/report.hpp"

namespace graybox::obs {

class EventBus;

/// Build the trace_event document from the bus's retained ring.
report::Json perfetto_trace_json(const EventBus& bus);

/// Write perfetto_trace_json(bus) to `path` (pretty-printed). Aborts on
/// I/O failure, like every artifact writer in this repo.
void write_perfetto_file(const std::string& path, const EventBus& bus);

}  // namespace graybox::obs
