#include "obs/perfetto.hpp"

#include <map>
#include <set>
#include <string>

#include "obs/event_bus.hpp"

namespace graybox::obs {

namespace {

constexpr int kPidProcesses = 1;
constexpr int kPidNetwork = 2;
constexpr int kPidMonitors = 3;
constexpr int kPidWrappers = 4;
constexpr int kTidNetTraffic = 0;
constexpr int kTidNetFaults = 1;
constexpr int kTidWrapperLevel2 = 0;
constexpr int kTidWrapperLevel1 = 1;

report::Json meta_event(int pid, const char* meta_name, std::string value,
                        int tid = -1) {
  report::Json e = report::Json::object();
  e["ph"] = "M";
  e["pid"] = pid;
  if (tid >= 0) e["tid"] = tid;
  e["name"] = meta_name;
  report::Json args = report::Json::object();
  args["name"] = std::move(value);
  e["args"] = std::move(args);
  return e;
}

report::Json instant(int pid, int tid, SimTime ts, std::string name) {
  report::Json e = report::Json::object();
  e["ph"] = "i";
  e["pid"] = pid;
  e["tid"] = tid;
  e["ts"] = ts;
  e["s"] = "t";  // thread-scoped instant
  e["name"] = std::move(name);
  return e;
}

report::Json complete(int pid, int tid, SimTime ts, SimTime dur,
                      std::string name) {
  report::Json e = report::Json::object();
  e["ph"] = "X";
  e["pid"] = pid;
  e["tid"] = tid;
  e["ts"] = ts;
  e["dur"] = dur;
  e["name"] = std::move(name);
  return e;
}

// Flow events ("s" start / "t" step / "f" end) visualize causal provenance
// as arrows between the instants they are co-located with. All three phases
// share the numeric provenance id; the end carries bp:"e" so the arrow
// binds to the enclosing instant rather than the next slice.
report::Json flow(const char* ph, int pid, int tid, SimTime ts,
                  ProvenanceId id) {
  report::Json e = report::Json::object();
  e["ph"] = ph;
  e["pid"] = pid;
  e["tid"] = tid;
  e["ts"] = ts;
  e["name"] = "provenance";
  e["cat"] = "provenance";
  e["id"] = std::uint64_t{id};
  if (ph[0] == 'f') e["bp"] = "e";
  return e;
}

}  // namespace

report::Json perfetto_trace_json(const EventBus& bus) {
  report::Json events = report::Json::array();

  // First pass: discover which process and monitor tracks appear, so
  // metadata precedes data events (viewers tolerate either order, but a
  // stable header keeps the artifact diffable).
  std::set<ProcessId> procs;
  std::set<std::uint16_t> monitors;
  // Provenance flow anchors: first retained kFaultInjected carrying each id
  // ("s"), and the last retained attributed violation ("f"). Ids whose
  // injection was evicted from the ring get no flow (an arrow needs its
  // start anchor).
  std::map<ProvenanceId, std::size_t> flow_start;
  std::map<ProvenanceId, std::size_t> flow_finish;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Event& e = bus.event(i);
    switch (e.kind) {
      case EventKind::kLocalStep:
      case EventKind::kCsEnter:
      case EventKind::kCsExit:
        procs.insert(e.pid);
        break;
      case EventKind::kMonitorViolation:
        monitors.insert(e.monitor);
        for (std::size_t k = 0; k < e.taint.size(); ++k) {
          flow_finish[e.taint[k]] = i;
        }
        break;
      case EventKind::kFaultInjected:
        for (std::size_t k = 0; k < e.taint.size(); ++k) {
          flow_start.emplace(e.taint[k], i);
        }
        break;
      default:
        break;
    }
  }
  const auto emit_flows = [&](const Event& e, std::size_t i, int pid,
                              int tid) {
    for (std::size_t k = 0; k < e.taint.size(); ++k) {
      const ProvenanceId id = e.taint[k];
      const auto s = flow_start.find(id);
      if (s == flow_start.end()) continue;
      if (i == s->second) {
        events.push_back(flow("s", pid, tid, e.time, id));
        continue;
      }
      if (i < s->second) continue;
      const auto f = flow_finish.find(id);
      if (f == flow_finish.end() || i > f->second) continue;
      events.push_back(
          flow(i == f->second ? "f" : "t", pid, tid, e.time, id));
    }
  };

  events.push_back(meta_event(kPidProcesses, "process_name", "processes"));
  for (ProcessId p : procs) {
    events.push_back(meta_event(kPidProcesses, "thread_name",
                                "proc " + std::to_string(p),
                                static_cast<int>(p)));
  }
  events.push_back(meta_event(kPidNetwork, "process_name", "network"));
  events.push_back(
      meta_event(kPidNetwork, "thread_name", "traffic", kTidNetTraffic));
  events.push_back(
      meta_event(kPidNetwork, "thread_name", "faults", kTidNetFaults));
  events.push_back(meta_event(kPidWrappers, "process_name", "wrappers"));
  events.push_back(meta_event(kPidWrappers, "thread_name", "level-2 (W')",
                              kTidWrapperLevel2));
  events.push_back(meta_event(kPidWrappers, "thread_name", "level-1 (local)",
                              kTidWrapperLevel1));
  events.push_back(meta_event(kPidMonitors, "process_name", "monitors"));
  for (std::uint16_t m : monitors) {
    std::string name = m < bus.monitor_names().size()
                           ? bus.monitor_names()[m]
                           : "monitor#" + std::to_string(m);
    events.push_back(
        meta_event(kPidMonitors, "thread_name", std::move(name), m));
  }

  // Second pass: data events, oldest first. CS occupancy becomes "X"
  // slices from enter/exit pairs; an exit whose enter was evicted from the
  // ring degrades to an instant, an enter with no exit stays open to the
  // last retained time.
  // Lifecycle fault codes are matched by their registered names so this
  // layer needs no net/ dependency; crash→recover and partition→heal pairs
  // become "X" slices with the same eviction degradation as CS occupancy.
  const auto fault_name = [&bus](const Event& e) -> const std::string* {
    return e.a < bus.fault_kind_names().size() ? &bus.fault_kind_names()[e.a]
                                               : nullptr;
  };
  std::map<ProcessId, SimTime> cs_open;
  std::map<ProcessId, SimTime> crash_open;
  SimTime partition_open = kNever;
  SimTime last_ts = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Event& e = bus.event(i);
    last_ts = e.time;
    if (e.kind == EventKind::kFaultInjected) {
      if (const std::string* name = fault_name(e)) {
        if (*name == "process-crash") {
          crash_open[e.pid] = e.time;
        } else if (*name == "process-recover") {
          auto it = crash_open.find(e.pid);
          if (it != crash_open.end()) {
            events.push_back(complete(kPidProcesses, static_cast<int>(e.pid),
                                      it->second, e.time - it->second,
                                      "crashed"));
            crash_open.erase(it);
          }
        } else if (*name == "partition") {
          partition_open = e.time;
        } else if (*name == "partition-heal" && partition_open != kNever) {
          events.push_back(complete(kPidNetwork, kTidNetFaults, partition_open,
                                    e.time - partition_open, "partitioned"));
          partition_open = kNever;
        }
      }
    }
    switch (e.kind) {
      case EventKind::kSend:
        events.push_back(
            instant(kPidNetwork, kTidNetTraffic, e.time, bus.render(e)));
        emit_flows(e, i, kPidNetwork, kTidNetTraffic);
        break;
      case EventKind::kDeliver:
      case EventKind::kDrop:
        events.push_back(
            instant(kPidNetwork, kTidNetTraffic, e.time, bus.render(e)));
        break;
      case EventKind::kLocalStep:
        events.push_back(instant(kPidProcesses, static_cast<int>(e.pid),
                                 e.time, bus.render(e)));
        break;
      case EventKind::kCsEnter:
        cs_open[e.pid] = e.time;
        events.push_back(instant(kPidProcesses, static_cast<int>(e.pid),
                                 e.time, bus.render(e)));
        break;
      case EventKind::kCsExit: {
        auto it = cs_open.find(e.pid);
        if (it != cs_open.end()) {
          events.push_back(complete(kPidProcesses, static_cast<int>(e.pid),
                                    it->second, e.time - it->second,
                                    "critical section"));
          cs_open.erase(it);
        }
        events.push_back(instant(kPidProcesses, static_cast<int>(e.pid),
                                 e.time, bus.render(e)));
        break;
      }
      case EventKind::kFaultInjected:
        events.push_back(
            instant(kPidNetwork, kTidNetFaults, e.time, bus.render(e)));
        emit_flows(e, i, kPidNetwork, kTidNetFaults);
        break;
      case EventKind::kWrapperCorrection:
        events.push_back(
            instant(kPidWrappers, kTidWrapperLevel2, e.time, bus.render(e)));
        emit_flows(e, i, kPidWrappers, kTidWrapperLevel2);
        break;
      case EventKind::kLocalCorrection:
        events.push_back(
            instant(kPidWrappers, kTidWrapperLevel1, e.time, bus.render(e)));
        emit_flows(e, i, kPidWrappers, kTidWrapperLevel1);
        break;
      case EventKind::kMonitorViolation:
        events.push_back(
            instant(kPidMonitors, e.monitor, e.time, bus.render(e)));
        emit_flows(e, i, kPidMonitors, e.monitor);
        break;
    }
  }
  for (const auto& [pid, since] : cs_open) {
    events.push_back(complete(kPidProcesses, static_cast<int>(pid), since,
                              last_ts >= since ? last_ts - since : 0,
                              "critical section (open)"));
  }
  for (const auto& [pid, since] : crash_open) {
    events.push_back(complete(kPidProcesses, static_cast<int>(pid), since,
                              last_ts >= since ? last_ts - since : 0,
                              "crashed (open)"));
  }
  if (partition_open != kNever) {
    events.push_back(complete(kPidNetwork, kTidNetFaults, partition_open,
                              last_ts >= partition_open
                                  ? last_ts - partition_open
                                  : 0,
                              "partitioned (open)"));
  }

  report::Json doc = report::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

void write_perfetto_file(const std::string& path, const EventBus& bus) {
  report::write_json_file(path, perfetto_trace_json(bus));
}

}  // namespace graybox::obs
