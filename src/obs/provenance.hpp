// Causal fault provenance: which injected fault caused which deviation.
//
// The paper's central quantity is the divergent window between an injected
// fault and the last Spec violation (Sections 2 and 5), but the window alone
// says only *that* violations happened — not which fault caused them,
// through which messages the corruption propagated, or how far it spread
// before the wrapper contained it. This module adds the missing attribution:
//
//   * every FaultInjector / lifecycle injection mints a deterministic
//     ProvenanceId (sequential under the run's seed);
//   * the corruption taints its target — the in-flight message or the
//     process state — as a small fixed-capacity TaintSet;
//   * taint propagates along the only channels state can flow through:
//     sends inherit the sender's taint, deliveries merge the message's
//     taint into the receiver, transitions carry the process's taint;
//   * a wrapper correction clears the corrected process's taint — the
//     divergence it was spreading is contained there;
//   * monitor violations are attributed to the union of active taint, so
//     every violation maps back to >= 1 root-cause fault.
//
// Cost model matches the EventBus: with provenance disabled every producer
// hook is one predicted null-pointer branch; enabled, the per-event path is
// a handful of array compares and writes — the only allocation is one
// BlastRadius row per *injected fault* (mint time, never per event).
// bench_substrate_micro::BM_ProvenanceRecord prices both sides.
//
// Layering: this header sits at the bottom of gbx_obs (types only, no
// EventBus dependency) so net::Message and obs::Event can embed a TaintSet.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace graybox::obs {

/// Identifies one injected fault. Minted sequentially from 1 by the
/// ProvenanceTracker, so ids are a pure function of the run's seed.
using ProvenanceId = std::uint32_t;

/// "No fault": the taint-free value.
inline constexpr ProvenanceId kNoProvenance = 0;

/// A small fixed-capacity set of provenance ids, piggybacked on every
/// net::Message and obs::Event and kept per process. No heap, trivially
/// copyable: stamping taint onto the per-event path is a ~20-byte copy.
///
/// Overflow semantics (pinned by TaintOverflow tests): the set saturates
/// *keeping the oldest ids* — root causes outrank the corruption they
/// transitively caused — so ids added after the 4th distinct one are
/// dropped, NOT the oldest. The cost is that a violation under more than
/// kCapacity concurrent faults under-attributes the newest injections; the
/// set counts every dropped id (`dropped`, saturating at 255) and the
/// ProvenanceTracker rolls those drops up into taint_overflows() /
/// the `provenance.taint_overflows` metric so under-attribution is
/// detectable instead of silent.
struct TaintSet {
  static constexpr std::size_t kCapacity = 4;

  ProvenanceId ids[kCapacity] = {};
  std::uint8_t count = 0;
  /// Distinct ids this set refused for lack of room (saturates at 255).
  std::uint8_t dropped = 0;

  bool empty() const { return count == 0; }
  std::size_t size() const { return count; }
  ProvenanceId operator[](std::size_t i) const { return ids[i]; }
  bool overflowed() const { return dropped != 0; }

  bool contains(ProvenanceId id) const {
    for (std::size_t i = 0; i < count; ++i) {
      if (ids[i] == id) return true;
    }
    return false;
  }

  /// Insert `id`; returns true when it was not already present (and fit).
  bool add(ProvenanceId id) {
    if (id == kNoProvenance || contains(id)) return false;
    if (count == kCapacity) {
      // Saturate, keeping the oldest (root-cause) ids; count the drop.
      if (dropped != 0xff) ++dropped;
      return false;
    }
    ids[count++] = id;
    return true;
  }

  void merge(const TaintSet& other) {
    for (std::size_t i = 0; i < other.count; ++i) add(other.ids[i]);
    note_dropped(other.dropped);
  }

  /// Fold `n` upstream drops into this set's saturating drop count.
  void note_dropped(std::uint8_t n) {
    dropped = static_cast<std::uint8_t>(
        dropped + n >= 0xff ? 0xff : dropped + n);
  }

  void clear() {
    count = 0;
    dropped = 0;
  }
};

/// Per-fault spread aggregate: how far one injection's corruption traveled
/// before the wrappers contained it. Owned by the ProvenanceTracker, one
/// row per minted id, folded into RunStats / MetricsRegistry by the
/// harness (all sim-domain values, hence deterministic).
struct BlastRadius {
  ProvenanceId id = kNoProvenance;
  /// Fault code (net::FaultKind values plus the lifecycle codes 7..10).
  std::uint8_t code = 0;
  /// Corrupted process for process-targeting faults; kNoProcess otherwise.
  ProcessId origin = kNoProcess;
  SimTime injected_at = 0;

  /// Processes this id ever tainted: bit p set for pid p (pids >= 64
  /// share bit 63), and the distinct count. Re-tainting a corrected
  /// process is not new spread — the blast radius measures reach.
  std::uint64_t process_mask = 0;
  std::uint32_t processes_tainted = 0;
  /// Messages that carried this id onto the wire (sends inheriting sender
  /// taint, plus in-flight messages tainted directly by the injector).
  std::uint64_t messages_tainted = 0;
  /// Monitor violations attributed to this id.
  std::uint64_t violations_attributed = 0;
  SimTime last_violation = kNever;

  /// Injection -> last attributed violation: how long this fault's
  /// corruption stayed externally visible. 0 when nothing was attributed.
  SimTime containment() const {
    if (last_violation == kNever || last_violation < injected_at) return 0;
    return last_violation - injected_at;
  }
};

/// The run-wide provenance authority: mints ids, owns the per-process
/// taint sets (so the network — a layer below the processes — can read
/// sender taint at send time), and accumulates per-fault BlastRadius rows.
/// Producers hold a nullable pointer; null = provenance disabled, one
/// predicted branch per would-be hook.
class ProvenanceTracker {
 public:
  explicit ProvenanceTracker(std::size_t n);

  std::size_t processes() const { return process_taint_.size(); }

  /// Mint the id for one injected fault (the only allocating call, at
  /// fault time). `origin` names the corrupted process where one exists.
  ProvenanceId mint(std::uint8_t code, ProcessId origin, SimTime now);

  /// Active taint of one process (what its sends and transitions carry).
  const TaintSet& process_taint(ProcessId pid) const {
    return process_taint_[pid];
  }

  /// Taint `pid` with one id (state corruption / improper re-init).
  void taint_process(ProcessId pid, ProvenanceId id);
  /// Merge a delivered message's taint into the receiver.
  void merge_process(ProcessId pid, const TaintSet& taint);
  /// A wrapper corrected `pid`: the divergence is contained, drop its taint.
  void clear_process(ProcessId pid);

  /// Account one message that carried `taint` onto the wire.
  void note_message_taint(const TaintSet& taint);

  /// Attribute one monitor violation at `now`: the union of every
  /// process's active taint, falling back to the most recently minted id
  /// when the union is empty (the violation is inside some fault's
  /// divergent window even if its taint was already cleared or evicted),
  /// so a violation after any injection always maps to >= 1 fault.
  TaintSet attribute_violation(SimTime now);

  std::size_t minted() const { return blast_.size(); }
  const std::vector<BlastRadius>& blast() const { return blast_; }

  /// Total ids dropped from per-process taint sets because more than
  /// TaintSet::kCapacity faults were concurrently live on one process —
  /// the amount of attribution the keep-oldest saturation cost this run.
  std::uint64_t taint_overflows() const { return taint_overflows_; }

  /// Pids whose taint set is currently non-clear, ascending. Attribution
  /// unions exactly these, so its cost is O(live tainted pids) rather than
  /// O(N) — at N=256 almost every process is taint-free almost always.
  const std::vector<ProcessId>& live_tainted() const { return live_tainted_; }

 private:
  /// Re-derive pid's membership in live_tainted_ after a mutation.
  void sync_live(ProcessId pid);

  std::vector<TaintSet> process_taint_;
  /// Sorted pids with a non-clear taint set (count or dropped nonzero).
  /// Iterating this in order visits the same non-trivial sets, in the same
  /// order, as the full 0..N-1 scan — so the attribution union (whose
  /// keep-oldest saturation makes merge order observable) is bit-identical.
  std::vector<ProcessId> live_tainted_;
  std::vector<BlastRadius> blast_;
  std::uint64_t taint_overflows_ = 0;
};

}  // namespace graybox::obs
