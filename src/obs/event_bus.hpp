// EventBus: the typed event hub of the observability layer.
//
// One bus per harness (or per hand-wired system). Producers — the network,
// the processes, the wrappers, the fault injector, the monitor set — hold a
// nullable pointer to it and record compact Events; the bus stamps the
// simulation time, appends to a preallocated ring, and maintains exact
// count/first/last aggregates per event kind, per monitor, and per fault
// kind (the aggregates survive ring eviction, which is what timelines are
// derived from).
//
// Cost model: record() on a disabled bus (capacity 0) is a single predicted
// branch; enabled it is a couple of array writes, no allocation ever after
// construction. bench_substrate_micro measures both sides.
#pragma once

#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sim/scheduler.hpp"

namespace graybox::obs {

class EventBus {
 public:
  /// A bus retaining the most recent `capacity` events. 0 disables the bus
  /// entirely (recording, aggregates, and rendering all become no-ops).
  EventBus(const sim::Scheduler& sched, std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  /// Current simulation time (what the next record() would be stamped with).
  SimTime now() const { return sched_.now(); }

  /// Record one event. `e.time` is overwritten with the scheduler's current
  /// time; every other field is the caller's. No-op when disabled.
  void record(Event e) {
    if (capacity_ == 0) return;
    record_slow(e);
  }

  // --- Retained ring (oldest first) -------------------------------------

  std::size_t size() const { return size_; }
  /// i-th retained event, 0 = oldest.
  const Event& event(std::size_t i) const;
  /// Total events ever recorded, retained or evicted.
  std::uint64_t total_recorded() const { return total_; }
  /// Drop retained events and reset all aggregates.
  void clear();

  // --- Exact aggregates (survive eviction) ------------------------------

  const KindStats& kind_stats(EventKind kind) const {
    return kind_stats_[static_cast<std::size_t>(kind)];
  }
  /// Per-monitor violation aggregates, indexed like monitor_names().
  const std::vector<KindStats>& monitor_stats() const {
    return monitor_stats_;
  }
  /// Per-fault-kind injection aggregates, indexed like fault_kind_names().
  const std::vector<KindStats>& fault_stats() const { return fault_stats_; }

  // --- Name tables (for rendering and timeline labels) ------------------

  /// Names of the monitors feeding kMonitorViolation events, in monitor
  /// index order. Also sizes monitor_stats().
  void set_monitor_names(std::vector<std::string> names);
  const std::vector<std::string>& monitor_names() const {
    return monitor_names_;
  }

  /// Names of the fault kinds feeding kFaultInjected events, indexed by
  /// the Event::a code. Also sizes fault_stats().
  void set_fault_kind_names(std::vector<std::string> names);
  const std::vector<std::string>& fault_kind_names() const {
    return fault_kind_names_;
  }

  /// Human-readable one-line rendering (no leading "[time]"); matches the
  /// legacy sim::Trace text for the kinds the old string trace covered.
  std::string render(const Event& e) const;

 private:
  void record_slow(const Event& e);

  const sim::Scheduler& sched_;
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  KindStats kind_stats_[kEventKindCount];
  std::vector<KindStats> monitor_stats_;
  std::vector<KindStats> fault_stats_;
  std::vector<std::string> monitor_names_;
  std::vector<std::string> fault_kind_names_;
};

}  // namespace graybox::obs
