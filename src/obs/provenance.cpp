#include "obs/provenance.hpp"

#include <algorithm>

namespace graybox::obs {

ProvenanceTracker::ProvenanceTracker(std::size_t n) : process_taint_(n) {}

ProvenanceId ProvenanceTracker::mint(std::uint8_t code, ProcessId origin,
                                     SimTime now) {
  BlastRadius b;
  b.id = static_cast<ProvenanceId>(blast_.size() + 1);
  b.code = code;
  b.origin = origin;
  b.injected_at = now;
  blast_.push_back(b);
  return b.id;
}

void ProvenanceTracker::taint_process(ProcessId pid, ProvenanceId id) {
  if (pid >= process_taint_.size() || id == kNoProvenance ||
      id > blast_.size()) {
    return;
  }
  const std::uint8_t dropped_before = process_taint_[pid].dropped;
  if (process_taint_[pid].add(id)) {
    BlastRadius& b = blast_[id - 1];
    // Count distinct processes ever tainted, not re-infections: a process
    // that is corrected and then tainted again by the same fault's still-
    // circulating messages widens nothing.
    const std::uint64_t bit = std::uint64_t{1} << (pid < 64 ? pid : 63);
    if ((b.process_mask & bit) == 0) ++b.processes_tainted;
    b.process_mask |= bit;
  } else if (process_taint_[pid].dropped != dropped_before) {
    // Keep-oldest saturation just discarded this (newer) id: the run-wide
    // counter makes the resulting under-attribution observable.
    ++taint_overflows_;
  }
  sync_live(pid);
}

void ProvenanceTracker::merge_process(ProcessId pid, const TaintSet& taint) {
  if (pid >= process_taint_.size()) return;
  for (std::size_t i = 0; i < taint.size(); ++i) taint_process(pid, taint[i]);
  process_taint_[pid].note_dropped(taint.dropped);
  sync_live(pid);
}

void ProvenanceTracker::clear_process(ProcessId pid) {
  if (pid >= process_taint_.size()) return;
  process_taint_[pid].clear();
  sync_live(pid);
}

void ProvenanceTracker::sync_live(ProcessId pid) {
  const TaintSet& t = process_taint_[pid];
  const bool live = t.count != 0 || t.dropped != 0;
  const auto it =
      std::lower_bound(live_tainted_.begin(), live_tainted_.end(), pid);
  const bool present = it != live_tainted_.end() && *it == pid;
  if (live && !present) {
    live_tainted_.insert(it, pid);
  } else if (!live && present) {
    live_tainted_.erase(it);
  }
}

void ProvenanceTracker::note_message_taint(const TaintSet& taint) {
  for (std::size_t i = 0; i < taint.size(); ++i) {
    const ProvenanceId id = taint[i];
    if (id != kNoProvenance && id <= blast_.size()) {
      ++blast_[id - 1].messages_tainted;
    }
  }
}

TaintSet ProvenanceTracker::attribute_violation(SimTime now) {
  TaintSet out;
  // Clear sets merge as no-ops, so the live list (ascending pids) yields
  // exactly the same union, in the same order, as scanning all N sets.
  for (const ProcessId pid : live_tainted_) out.merge(process_taint_[pid]);
  if (out.empty() && !blast_.empty()) {
    out.add(static_cast<ProvenanceId>(blast_.size()));
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    BlastRadius& b = blast_[out[i] - 1];
    ++b.violations_attributed;
    b.last_violation = now;
  }
  return out;
}

}  // namespace graybox::obs
