// Happened-before DAG over the retained event ring, with a root-cause query.
//
// The taint stream (obs/provenance.hpp) answers the aggregate question —
// which fault each violation is attributed to. This module answers the
// narrative one: *show me the chain*. Nodes are the events currently
// retained in the EventBus ring; edges are the happened-before structure
// the run actually exhibited:
//
//   * program order  — consecutive events of the same acting process;
//   * message        — kSend -> kDeliver paired by message uid (exact even
//                      under duplication: both deliveries point at the one
//                      physical send, mirroring the vector-clock witness);
//   * taint          — consecutive carriers of the same provenance id,
//                      rooting every tainted event at its kFaultInjected
//                      origin and linking attribution-only events
//                      (violations have no acting process) into the DAG.
//
// why(bus, index) walks the edges backwards (breadth-first, so the chain is
// a shortest one, and in deterministic index order) to the nearest
// injection sharing a taint id with the target, and returns the causal
// chain injection-first. Construction allocates — this is a query-time
// API over an already-recorded ring, not a per-event path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace graybox::obs {

class EventBus;

/// Returns the process whose local order an event belongs to, or kNoProcess
/// for events with no single acting process (drops, monitor violations,
/// lifecycle faults with no target).
ProcessId acting_process(const Event& e);

class CausalDag {
 public:
  /// Build the happened-before DAG over the bus's retained ring (index i =
  /// bus.event(i), oldest retained first).
  static CausalDag build(const EventBus& bus);

  std::size_t size() const { return preds_.size(); }

  /// Direct causal predecessors of event `i`, ascending, deduplicated.
  const std::vector<std::uint32_t>& preds(std::size_t i) const {
    return preds_[i];
  }

 private:
  std::vector<std::vector<std::uint32_t>> preds_;
};

/// Root-cause query: a causal chain of retained-ring indices from a
/// kFaultInjected event to `index`, injection first, `index` last. The
/// injection is the nearest one (fewest causal hops) sharing a taint id
/// with the target event; for an untainted target any injection qualifies.
/// Empty when `index` is out of range or no injection is causally upstream.
std::vector<std::size_t> why(const EventBus& bus, std::size_t index);

}  // namespace graybox::obs
