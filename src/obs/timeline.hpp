// Stabilization timeline: the run's convergence story as ordered phases.
//
// The paper defines stabilization as confinement of Spec violations to a
// prefix of the run (Section 2); the quantity of interest is the divergent
// window between the last injected fault and the last violation. A
// StabilizationTimeline lays that window out as the ordered sequence
//
//   fault burst -> first violation -> per-clause violation decay
//               -> last violation -> quiescence
//
// with exact counts and first/last sim-times per fault kind and per monitor
// clause. It is a pure value derived either from live component state
// (SystemHarness::timeline()) or from EventBus aggregates
// (timeline_from_bus, for hand-wired systems) — both paths agree because
// they read the same underlying first/last bookkeeping.
#pragma once

#include <string>
#include <vector>

#include "common/report.hpp"
#include "common/types.hpp"

namespace graybox::obs {

class EventBus;

/// One named event class (a fault kind or a monitor clause) with its exact
/// count / first / last aggregate over the run.
struct TimelineEntry {
  std::string name;
  std::uint64_t count = 0;
  SimTime first = kNever;
  SimTime last = kNever;
};

struct StabilizationTimeline {
  SimTime run_end = 0;  ///< sim-time at which the timeline was taken

  // Fault burst.
  std::uint64_t faults_injected = 0;
  SimTime first_fault = kNever;
  SimTime last_fault = kNever;
  std::vector<TimelineEntry> faults;  ///< per fault kind, injected only

  // Violation decay.
  std::uint64_t violations_total = 0;
  SimTime first_violation = kNever;
  SimTime last_violation = kNever;
  std::vector<TimelineEntry> clauses;  ///< per monitor, all listed

  // Quiescence: time of the last observable activity (send, delivery,
  // fault, or violation) and whether the system had settled by run_end.
  SimTime last_activity = kNever;
  bool quiescent = false;

  /// Paper Section 5's stabilization latency: ticks from the last fault to
  /// the last violation. 0 if violations never outlived the burst (or none
  /// of either happened).
  SimTime divergent_window() const {
    if (last_violation == kNever || last_fault == kNever) return 0;
    return last_violation > last_fault ? last_violation - last_fault : 0;
  }

  /// True once every violation precedes run_end and no fault is pending —
  /// i.e. the run's violations are confined to a prefix, the paper's
  /// stabilization verdict.
  bool stabilized() const { return quiescent || last_violation < run_end; }

  /// Multi-line human-readable rendering, phase per line (what the
  /// examples print after a fault burst).
  std::string to_string() const;

  report::Json to_json() const;
};

/// Derive a timeline purely from EventBus aggregates. Requires the bus to
/// have seen the run's kFaultInjected / kMonitorViolation / kSend /
/// kDeliver events; name tables supply fault and clause labels.
StabilizationTimeline timeline_from_bus(const EventBus& bus);

}  // namespace graybox::obs
