#include "obs/metrics.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::obs {

void Gauge::set(std::int64_t value) {
  value_ = value;
  if (!set_) {
    low_ = value;
    high_ = value;
    set_ = true;
  } else {
    low_ = std::min(low_, value);
    high_ = std::max(high_, value);
  }
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  GBX_EXPECTS(!bounds_.empty());
  GBX_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

std::vector<std::uint64_t> Histogram::pow2_bounds(unsigned max_exp) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(max_exp + 2);
  bounds.push_back(0);
  for (unsigned e = 0; e <= max_exp; ++e) {
    bounds.push_back(std::uint64_t{1} << e);
  }
  return bounds;
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (Entry* e = find(name)) {
    GBX_EXPECTS(e->kind == MetricSample::Kind::kCounter);
    return *e->counter;
  }
  Entry e;
  e.name = name;
  e.kind = MetricSample::Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(e));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (Entry* e = find(name)) {
    GBX_EXPECTS(e->kind == MetricSample::Kind::kGauge);
    return *e->gauge;
  }
  Entry e;
  e.name = name;
  e.kind = MetricSample::Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(e));
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  if (Entry* e = find(name)) {
    GBX_EXPECTS(e->kind == MetricSample::Kind::kHistogram);
    return *e->histogram;
  }
  Entry e;
  e.name = name;
  e.kind = MetricSample::Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(e));
  return *entries_.back().histogram;
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<std::int64_t>(e.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = e.gauge->value();
        s.min = static_cast<std::uint64_t>(e.gauge->low());
        s.max = static_cast<std::uint64_t>(e.gauge->high());
        break;
      case MetricSample::Kind::kHistogram:
        s.value = static_cast<std::int64_t>(e.histogram->count());
        s.sum = e.histogram->sum();
        s.min = e.histogram->min();
        s.max = e.histogram->max();
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->buckets();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

report::Json metrics_snapshot_to_json(const MetricsSnapshot& snapshot) {
  report::Json doc = report::Json::object();
  for (const MetricSample& s : snapshot) {
    report::Json cell = report::Json::object();
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        cell["type"] = "counter";
        cell["value"] = s.value;
        break;
      case MetricSample::Kind::kGauge:
        cell["type"] = "gauge";
        cell["value"] = s.value;
        cell["low"] = static_cast<std::int64_t>(s.min);
        cell["high"] = static_cast<std::int64_t>(s.max);
        break;
      case MetricSample::Kind::kHistogram: {
        cell["type"] = "histogram";
        cell["count"] = s.value;
        cell["sum"] = s.sum;
        cell["min"] = s.min;
        cell["max"] = s.max;
        report::Json bounds = report::Json::array();
        for (std::uint64_t b : s.bounds) bounds.push_back(b);
        cell["bounds"] = std::move(bounds);
        report::Json buckets = report::Json::array();
        for (std::uint64_t b : s.buckets) buckets.push_back(b);
        cell["buckets"] = std::move(buckets);
        break;
      }
    }
    doc[s.name] = std::move(cell);
  }
  return doc;
}

MetricsAggregate::Entry& MetricsAggregate::find_or_add(
    const std::string& name, MetricSample::Kind kind) {
  for (Entry& e : entries_) {
    if (e.name == name) return e;
  }
  Entry e;
  e.name = name;
  e.kind = kind;
  entries_.push_back(std::move(e));
  return entries_.back();
}

void MetricsAggregate::add(const MetricsSnapshot& snapshot) {
  for (const MetricSample& s : snapshot) {
    Entry& e = find_or_add(s.name, s.kind);
    e.per_trial.add(static_cast<double>(s.value));
    if (s.kind == MetricSample::Kind::kHistogram) {
      if (e.buckets.empty()) {
        e.bounds = s.bounds;
        e.buckets.assign(s.buckets.size(), 0);
      }
      GBX_EXPECTS(e.buckets.size() == s.buckets.size());
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        e.buckets[i] += s.buckets[i];
      }
      if (s.value > 0) {
        if (e.hist_count == 0 || s.min < e.hist_min) e.hist_min = s.min;
        if (e.hist_count == 0 || s.max > e.hist_max) e.hist_max = s.max;
        e.hist_count += static_cast<std::uint64_t>(s.value);
        e.hist_sum += s.sum;
      }
    }
  }
}

void MetricsAggregate::merge(const MetricsAggregate& other) {
  for (const Entry& oe : other.entries_) {
    Entry& e = find_or_add(oe.name, oe.kind);
    e.per_trial.merge(oe.per_trial);
    if (oe.kind == MetricSample::Kind::kHistogram) {
      if (e.buckets.empty()) {
        e.bounds = oe.bounds;
        e.buckets.assign(oe.buckets.size(), 0);
      }
      GBX_EXPECTS(e.buckets.size() == oe.buckets.size());
      for (std::size_t i = 0; i < oe.buckets.size(); ++i) {
        e.buckets[i] += oe.buckets[i];
      }
      if (oe.hist_count > 0) {
        if (e.hist_count == 0 || oe.hist_min < e.hist_min)
          e.hist_min = oe.hist_min;
        if (e.hist_count == 0 || oe.hist_max > e.hist_max)
          e.hist_max = oe.hist_max;
        e.hist_count += oe.hist_count;
        e.hist_sum += oe.hist_sum;
      }
    }
  }
}

report::Json MetricsAggregate::to_json() const {
  report::Json doc = report::Json::object();
  for (const Entry& e : entries_) {
    report::Json cell = report::Json::object();
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        cell["type"] = "counter";
        break;
      case MetricSample::Kind::kGauge:
        cell["type"] = "gauge";
        break;
      case MetricSample::Kind::kHistogram:
        cell["type"] = "histogram";
        break;
    }
    cell["trials"] = static_cast<std::uint64_t>(e.per_trial.count());
    cell["mean"] = e.per_trial.mean();
    cell["stddev"] = e.per_trial.stddev();
    cell["min"] = e.per_trial.min();
    cell["max"] = e.per_trial.max();
    cell["sum"] = e.per_trial.sum();
    if (e.kind == MetricSample::Kind::kHistogram) {
      cell["observations"] = e.hist_count;
      cell["observation_sum"] = e.hist_sum;
      cell["observation_min"] = e.hist_min;
      cell["observation_max"] = e.hist_max;
      report::Json bounds = report::Json::array();
      for (std::uint64_t b : e.bounds) bounds.push_back(b);
      cell["bounds"] = std::move(bounds);
      report::Json buckets = report::Json::array();
      for (std::uint64_t b : e.buckets) buckets.push_back(b);
      cell["buckets"] = std::move(buckets);
    }
    doc[e.name] = std::move(cell);
  }
  return doc;
}

}  // namespace graybox::obs
