#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace graybox {
namespace {

// Display width ignoring UTF-8 continuation bytes (we emit "±" in stats
// cells); good enough for the characters this library prints.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xc0) != 0x80) ++w;
  }
  return w;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], display_width(row[i]));
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      os << cell;
      if (i + 1 < columns)
        os << std::string(widths[i] - display_width(cell) + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < columns; ++i) rule += widths[i] + (i + 1 < columns ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (const char c : cell) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      emit_cell(row[i]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace graybox
