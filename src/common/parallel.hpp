// Minimal worker-pool primitive shared by the experiment engine and the
// randomized algebra sweeps.
//
// parallel_tasks(n, jobs, fn) runs fn(0..n-1) across at most `jobs` threads
// pulling indices from a single atomic counter (chunk-free dynamic
// scheduling: trials vary widely in cost, so static striping would idle
// fast workers). Determinism is the CALLER's obligation and is achieved by
// construction everywhere in this repository: each task writes only to its
// own pre-allocated result slot, and the caller reduces the slots in index
// order afterwards — so the reduction is independent of thread timing and
// of the jobs count.
#pragma once

#include <cstddef>
#include <functional>

namespace graybox {

/// Number of workers to use when the caller asked for "auto" (jobs == 0):
/// std::thread::hardware_concurrency(), or 1 if that is unknown.
std::size_t recommended_jobs();

/// Resolve a user-facing --jobs value: 0 -> recommended_jobs(), otherwise
/// the value itself.
std::size_t resolve_jobs(std::size_t jobs);

/// Run task(i) for every i in [0, count) on min(jobs, count) threads.
/// jobs == 0 means recommended_jobs(); jobs == 1 (or count <= 1) runs
/// inline on the calling thread with no thread machinery at all, so a
/// serial run is exactly a plain loop. Tasks must not throw: a contract
/// violation aborts the process (see common/contracts.hpp), which is this
/// library's failure model.
void parallel_tasks(std::size_t count, std::size_t jobs,
                    const std::function<void(std::size_t)>& task);

}  // namespace graybox
