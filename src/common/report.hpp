// Machine-readable result emission for the bench binaries.
//
// Every engine-backed run serializes to one BENCH_<name>.json artifact so
// results can be tracked PR-over-PR and compared across --jobs values. The
// writer is deliberately tiny and DETERMINISTIC: object keys keep insertion
// order, doubles render via shortest round-trip (std::to_chars), and the
// only fields that legitimately differ between two runs of the same binary
// are the wall-clock ones — which all live under keys containing "wall" or
// "jobs", so byte-level diffs modulo those lines decide reproducibility
// (see tests/test_engine.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace graybox::report {

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Objects preserve insertion order so serialization is reproducible.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}      // NOLINT
  Json(std::uint64_t u)                                     // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}               // NOLINT
  Json(double d) : kind_(Kind::kDouble), double_(d) {}      // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  static Json array();
  static Json object();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object field access; inserts (in order) on first use. Requires an
  /// object (or a default-constructed null, which becomes one).
  Json& operator[](const std::string& key);
  /// Read-only lookup; aborts if missing (tests use contains() first).
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array append. Requires an array (or a null, which becomes one).
  Json& push_back(Json value);
  std::size_t size() const;

  /// Serialize. indent > 0 pretty-prints with that many spaces per level
  /// and one object key / array element per line.
  std::string dump(int indent = 2) const;
  void dump_to(std::ostream& os, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void write(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, std::unique_ptr<Json>>> object_;

 public:
  Json(const Json& other);
  Json& operator=(const Json& other);
  Json(Json&&) noexcept = default;
  Json& operator=(Json&&) noexcept = default;
  ~Json() = default;
};

/// "BENCH_<name>.json" where <name> is bench_name_from_program() — the
/// default artifact path every bench binary writes unless --json overrides.
std::string default_bench_json_path(const std::string& program_path);

/// Experiment name from argv[0]: basename minus a leading "bench_".
std::string bench_name_from_program(const std::string& program_path);

/// Write `doc` to `path` (pretty-printed, trailing newline). Aborts on I/O
/// failure: losing a bench artifact silently would defeat the point.
void write_json_file(const std::string& path, const Json& doc);

/// Drop every line whose key carries a legitimately run-dependent value —
/// wall-clock time, the jobs count, and the wall-clock-derived perf fields
/// (observe_ns_per_event, events_per_sec) — so two runs of the same
/// experiment can be compared byte-for-byte.
std::string strip_volatile_lines(const std::string& pretty_json);

}  // namespace graybox::report
