// Deterministic, seedable random number generation.
//
// Every stochastic element of the reproduction (message delays, client
// think/eat times, fault injection, adversarial state corruption, random
// finite-system generation for the theorem property checks) draws from an
// explicitly seeded Rng so that each experiment and test is exactly
// replayable from its seed. We implement xoshiro256** with splitmix64
// seeding instead of <random> engines so that results are bit-identical
// across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace graybox {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Reinitialize the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Exponentially distributed value with the given mean, rounded to a
  /// non-negative integer tick count (used for client think/eat durations
  /// and message delays — the paper only requires "arbitrary but finite").
  std::uint64_t exponential(double mean);

  /// Pick a uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    GBX_EXPECTS(!v.empty());
    return v[index(v.size())];
  }

  /// Derive an independent child generator (for giving each process or
  /// channel its own stream while keeping a single experiment seed).
  Rng split();

 private:
  std::uint64_t s_[4]{};
};

}  // namespace graybox
