// Small statistics helpers used by the experiment harness: streaming
// accumulators for scalar series (stabilization latencies, message counts)
// and exact percentiles over retained samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graybox {

/// Streaming accumulator (Welford) plus retained samples for percentiles.
/// Retention is fine at experiment scale (thousands of samples per cell).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;  ///< Sample standard deviation (n-1); 0 if n < 2.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Exact percentile by nearest-rank over retained samples, q in [0, 100].
  /// Returns 0 for an empty accumulator.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Render "mean ± stddev" with the given precision, e.g. "12.3 ± 0.4".
std::string mean_pm_stddev(const Accumulator& acc, int precision = 1);

}  // namespace graybox
