// Small statistics helpers used by the experiment harness: streaming
// accumulators for scalar series (stabilization latencies, message counts)
// and exact percentiles over retained samples.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace graybox {

/// Streaming accumulator (Welford) plus retained samples for percentiles.
///
/// Mergeable: the experiment engine accumulates per-worker partials and
/// folds them IN SEED ORDER with merge(). While the source accumulator
/// retains all of its samples (the default), merge() replays them through
/// add(), so a chunked-then-merged accumulation is bit-identical to one
/// serial accumulation over the same sequence — the property behind the
/// --jobs 1 == --jobs N determinism guarantee. With a sample cap in force,
/// moments stay exact (Chan's parallel Welford update) but percentiles
/// become first-k approximations.
class Accumulator {
 public:
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  Accumulator() = default;
  /// An accumulator retaining at most `sample_cap` samples for percentile
  /// queries; moments (count/mean/stddev/min/max/sum) stay exact.
  explicit Accumulator(std::size_t sample_cap) : sample_cap_(sample_cap) {}

  void add(double x);

  /// Fold `other` into this accumulator, as if other's samples had been
  /// add()ed after this one's. Bit-identical to that serial accumulation
  /// whenever `other` still retains every sample; exact-in-moments (Chan)
  /// otherwise.
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  double stddev() const;  ///< Sample standard deviation (n-1); 0 if n < 2.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Exact percentile by nearest-rank over retained samples, q in [0, 100].
  /// Returns 0 for an empty accumulator. Approximate (first retained
  /// samples only) when the sample cap has discarded samples.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }
  /// True when every add()ed value is still retained (percentiles exact,
  /// merges replayable).
  bool retains_all_samples() const { return samples_.size() == count_; }
  std::size_t sample_cap() const { return sample_cap_; }

 private:
  std::vector<double> samples_;
  std::size_t count_ = 0;
  std::size_t sample_cap_ = kUnlimited;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Render "mean ± stddev" with the given precision, e.g. "12.3 ± 0.4".
std::string mean_pm_stddev(const Accumulator& acc, int precision = 1);

}  // namespace graybox
