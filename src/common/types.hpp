// Fundamental value types shared by every graybox-stabilization module.
//
// The paper's system model (Section 3.1) is an asynchronous message-passing
// system of identified processes; we fix the vocabulary here so that every
// layer (simulator, network, mutual-exclusion programs, monitors) speaks the
// same strongly-typed language.
#pragma once

#include <cstdint>
#include <limits>

namespace graybox {

/// Identifies a process in the distributed system. Processes are numbered
/// densely from 0 to n-1; the identifier doubles as the tiebreaker of the
/// timestamp total order `lt` (Section 3.2, Timestamp Spec).
using ProcessId = std::uint32_t;

/// Simulated time in abstract ticks. The discrete-event simulator advances
/// this monotonically; message delays and wrapper timeouts are expressed in
/// the same unit.
using SimTime = std::uint64_t;

/// Sentinel for "no process" (used e.g. by monitors reporting system-wide
/// violations not attributable to a single process).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Sentinel for "never" / "not yet" in SimTime-valued fields.
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

}  // namespace graybox
