#include "common/rng.hpp"

#include <cmath>

namespace graybox {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // splitmix64 guarantees the xoshiro state is not all-zero.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  GBX_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == max()) return next();
  // Rejection sampling for an unbiased bounded draw.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + draw % bound;
}

double Rng::uniform01() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::exponential(double mean) {
  GBX_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  const double u = 1.0 - uniform01();  // in (0, 1]
  const double draw = -mean * std::log(u);
  return static_cast<std::uint64_t>(std::llround(draw));
}

std::size_t Rng::index(std::size_t n) {
  GBX_EXPECTS(n > 0);
  return static_cast<std::size_t>(uniform(0, n - 1));
}

Rng Rng::split() {
  Rng child(next());
  return child;
}

}  // namespace graybox
