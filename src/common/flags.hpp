// Minimal command-line flag parsing for the bench and example binaries.
// Supports "--name=value", "--name value", and bare "--name" booleans; any
// unrecognized argument aborts with a usage message so experiment scripts
// fail fast on typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graybox {

class Flags {
 public:
  /// Parse argv. `spec` maps flag name -> help text; flags not in the spec
  /// are rejected. Call as: Flags flags(argc, argv, {{"seed", "RNG seed"}});
  Flags(int argc, const char* const* argv,
        std::map<std::string, std::string> spec);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::string& program() const { return program_; }

 private:
  [[noreturn]] void usage_and_exit(const std::string& bad) const;

  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
};

/// The flag spec shared by every engine-backed bench binary — merges
/// --jobs (worker threads; 0 = all cores), --trials (seeds per grid cell)
/// and --json (result artifact path; default BENCH_<name>.json, "-" to
/// disable) into `spec`. Keeping the spelling in one place means every
/// binary accepts the same invocation:
///
///   bench_stabilization_time --trials 64 --jobs $(nproc) --json out.json
std::map<std::string, std::string> with_engine_flags(
    std::map<std::string, std::string> spec = {});

}  // namespace graybox
