// Lightweight contract checks in the spirit of the Core Guidelines'
// Expects()/Ensures() (I.5-I.8). Violations indicate a programming error in
// this library, never a simulated fault, so they abort loudly rather than
// throw: simulated faults are modeled explicitly by net::FaultInjector and
// TmeProcess::corrupt_state, and must not be conflated with contract bugs.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace graybox::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[graybox] %s violated: %s at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace graybox::detail

#define GBX_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::graybox::detail::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__);                       \
  } while (false)

#define GBX_ENSURES(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::graybox::detail::contract_failure("postcondition", #cond, __FILE__, \
                                          __LINE__);                        \
  } while (false)

#define GBX_ASSERT(cond)                                                 \
  do {                                                                   \
    if (!(cond))                                                         \
      ::graybox::detail::contract_failure("invariant", #cond, __FILE__,  \
                                          __LINE__);                     \
  } while (false)
