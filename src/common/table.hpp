// Column-aligned plain-text table printer. Every bench binary reports its
// experiment as one or more of these tables (the reproduction's analogue of
// the paper's tables, which DSN 2001 did not include — see EXPERIMENTS.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace graybox {

/// Accumulates rows of string cells and renders them with aligned columns.
///
///   Table t({"n", "algorithm", "stabilization (ticks)"});
///   t.add_row({"5", "ricart-agrawala", "412 ± 37"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; short rows are padded with empty cells, long rows widen
  /// the table.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format heterogeneous cells (arithmetic -> decimal text).
  template <typename... Cells>
  void row(const Cells&... cells) {
    add_row({to_cell(cells)...});
  }

  std::size_t rows() const { return rows_.size(); }

  /// Render with a rule under the header, two-space column gutters.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes around cells containing commas,
  /// quotes, or newlines) for downstream plotting.
  void print_csv(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graybox
