#include "common/report.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace graybox::report {

Json::Json(const Json& other)
    : kind_(other.kind_),
      bool_(other.bool_),
      int_(other.int_),
      double_(other.double_),
      string_(other.string_),
      array_(other.array_) {
  object_.reserve(other.object_.size());
  for (const auto& [key, value] : other.object_)
    object_.emplace_back(key, std::make_unique<Json>(*value));
}

Json& Json::operator=(const Json& other) {
  if (this != &other) {
    Json copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  GBX_EXPECTS(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) return *v;
  }
  object_.emplace_back(key, std::make_unique<Json>());
  return *object_.back().second;
}

const Json& Json::at(const std::string& key) const {
  GBX_EXPECTS(kind_ == Kind::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return *v;
  }
  GBX_EXPECTS(false && "Json::at: missing key");
  std::abort();  // unreachable; GBX_EXPECTS aborted already
}

bool Json::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  GBX_EXPECTS(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return array_.back();
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  // JSON has no NaN/Inf; the accumulators never produce them, but be safe.
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  char buf[64];
  // Shortest round-trip representation: deterministic across runs and
  // faithful to the bit pattern, which the --jobs determinism test relies on.
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  os.write(buf, res.ptr - buf);
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      return;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      os << int_;
      return;
    case Kind::kDouble:
      write_double(os, double_);
      return;
    case Kind::kString:
      write_escaped(os, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        write_newline_indent(os, indent, depth + 1);
        array_[i].write(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        write_newline_indent(os, indent, depth + 1);
        write_escaped(os, object_[i].first);
        os << (indent > 0 ? ": " : ":");
        object_[i].second->write(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

void Json::dump_to(std::ostream& os, int indent) const {
  write(os, indent, 0);
}

std::string default_bench_json_path(const std::string& program_path) {
  return "BENCH_" + bench_name_from_program(program_path) + ".json";
}

std::string bench_name_from_program(const std::string& program_path) {
  const auto slash = program_path.find_last_of('/');
  std::string base = slash == std::string::npos
                         ? program_path
                         : program_path.substr(slash + 1);
  if (base.rfind("bench_", 0) == 0) base = base.substr(6);
  return base;
}

void write_json_file(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  GBX_EXPECTS(out.good());
  doc.dump_to(out, 2);
  out << '\n';
  out.flush();
  GBX_ENSURES(out.good());
}

std::string strip_volatile_lines(const std::string& pretty_json) {
  std::istringstream in(pretty_json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall") != std::string::npos) continue;
    if (line.find("\"jobs\"") != std::string::npos) continue;
    if (line.find("\"observe_ns") != std::string::npos) continue;
    if (line.find("\"events_per_sec\"") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

}  // namespace graybox::report
