#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"

namespace graybox {

void Accumulator::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return samples_.empty() ? 0.0 : mean_; }

double Accumulator::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Accumulator::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Accumulator::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Accumulator::percentile(double q) const {
  GBX_EXPECTS(q >= 0.0 && q <= 100.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: smallest sample such that at least q% of samples are <= it.
  const double rank = q / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

std::string mean_pm_stddev(const Accumulator& acc, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, acc.mean(),
                precision, acc.stddev());
  return buf;
}

}  // namespace graybox
