#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"

namespace graybox {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  if (samples_.size() < sample_cap_) samples_.push_back(x);
  ++count_;
  sum_ += x;
  const double n = static_cast<double>(count_);
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (other.retains_all_samples()) {
    // Replay: the merged state is bitwise what a single serial accumulation
    // over (this samples, then other samples) would have produced.
    for (const double x : other.samples_) add(x);
    return;
  }
  // Capped source: moments via Chan et al.'s parallel update (exact in
  // count/sum/min/max, numerically stable in mean/m2); percentile samples
  // are whatever both sides retained, up to this side's cap.
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  sum_ += other.sum_;
  count_ += other.count_;
  for (const double x : other.samples_) {
    if (samples_.size() >= sample_cap_) break;
    samples_.push_back(x);
  }
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double Accumulator::percentile(double q) const {
  GBX_EXPECTS(q >= 0.0 && q <= 100.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: smallest sample such that at least q% of samples are <= it.
  const double rank = q / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

std::string mean_pm_stddev(const Accumulator& acc, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, acc.mean(),
                precision, acc.stddev());
  return buf;
}

}  // namespace graybox
