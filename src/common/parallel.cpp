#include "common/parallel.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace graybox {

std::size_t recommended_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? recommended_jobs() : jobs;
}

void parallel_tasks(std::size_t count, std::size_t jobs,
                    const std::function<void(std::size_t)>& task) {
  GBX_EXPECTS(task != nullptr);
  if (count == 0) return;
  jobs = resolve_jobs(jobs);
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      task(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (std::size_t t = 1; t < jobs; ++t) threads.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& t : threads) t.join();
}

}  // namespace graybox
