#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace graybox {

Flags::Flags(int argc, const char* const* argv,
             std::map<std::string, std::string> spec)
    : program_(argc > 0 ? argv[0] : "?"), spec_(std::move(spec)) {
  // google-benchmark binaries share argv with us; ignore its flags.
  auto is_benchmark_flag = [](const std::string& s) {
    return s.rfind("--benchmark", 0) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (is_benchmark_flag(arg)) continue;
    if (arg.rfind("--", 0) != 0) usage_and_exit(arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";
    }
    if (!spec_.count(name)) usage_and_exit("--" + name);
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::map<std::string, std::string> with_engine_flags(
    std::map<std::string, std::string> spec) {
  spec.emplace("jobs", "worker threads for trial fan-out (default 0 = all cores)");
  spec.emplace("trials", "trials (consecutive seeds) per grid cell");
  spec.emplace("json",
               "bench artifact path (default BENCH_<name>.json; '-' disables)");
  return spec;
}

void Flags::usage_and_exit(const std::string& bad) const {
  std::fprintf(stderr, "%s: unknown argument '%s'\nknown flags:\n",
               program_.c_str(), bad.c_str());
  for (const auto& [name, help] : spec_)
    std::fprintf(stderr, "  --%-24s %s\n", name.c_str(), help.c_str());
  std::exit(2);
}

}  // namespace graybox
