// Monitor framework: specification conformance as runtime verification.
//
// The paper states specifications in UNITY (Section 3.1); we check them over
// executions by observing the global state after every simulator event and
// feeding each consecutive state pair to a set of monitors. A monitor
// receives:
//
//   begin(t, s0)        - the first observed state,
//   step(t, prev, cur)  - every subsequent transition, and
//   finish(t, last)     - end of observation, where liveness obligations
//                         still outstanding become violations.
//
// Monitors are templated on the snapshot type S so the framework is
// independent of TME; src/lspec instantiates S = lspec::GlobalSnapshot.
//
// Delta observation: the simulator mutates (at most) one process per event,
// so the observation pipeline can tell monitors WHICH part of the state
// changed. step_delta(t, prev, cur, dirty) carries that hint; the default
// implementation ignores it and falls back to step(), so monitors that need
// the full state pair (global pairwise properties) are unaffected, while
// per-process-local monitors override it and skip the unchanged rows.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "spec/violation.hpp"

namespace graybox::spec {

/// Out-of-band notification fired on every report()ed violation, carrying
/// the violation time and the monitor's index in its owning MonitorSet.
/// Type-erased (std::function) so the spec layer stays independent of the
/// observability layer that consumes it.
using ViolationHook = std::function<void(SimTime, std::size_t)>;

/// Dirty hints for step_delta. Anything else is the index of the single
/// changed process; rows outside the hint are bit-identical between prev
/// and cur.
inline constexpr std::size_t kDirtyAll = static_cast<std::size_t>(-1);
inline constexpr std::size_t kDirtyNone = static_cast<std::size_t>(-2);

template <typename S>
class Monitor {
 public:
  explicit Monitor(std::string name) : name_(std::move(name)) {}
  virtual ~Monitor() = default;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  const std::string& name() const { return name_; }

  virtual void begin(SimTime /*t*/, const S& /*s0*/) {}
  virtual void step(SimTime t, const S& prev, const S& cur) = 0;
  virtual void finish(SimTime /*t*/, const S& /*last*/) {}

  /// Transition with a dirtiness hint (see kDirtyAll/kDirtyNone above).
  /// Overriding is sound only for properties that are per-row local in the
  /// rows they *read* as well as the rows they report on; everything else
  /// keeps this fallback and sees the full pair.
  virtual void step_delta(SimTime t, const S& prev, const S& cur,
                          std::size_t /*dirty*/) {
    step(t, prev, cur);
  }

  /// Retained violation records (capped at kMaxRetained; counters below
  /// keep exact totals when a long-lived breach floods the monitor).
  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return total_violations_ == 0; }

  /// Exact number of violations observed, retained or not.
  std::uint64_t total_violations() const { return total_violations_; }

  /// Latest violation time; kNever when clean. Exact even past the
  /// retention cap.
  SimTime last_violation() const { return last_violation_; }

  /// Earliest violation time; kNever when clean.
  SimTime first_violation() const { return first_violation_; }

  /// Install the out-of-band violation notification. Normally called by
  /// MonitorSet::set_violation_hook with the monitor's set index; the hook
  /// outlives the monitor via shared ownership.
  void set_violation_hook(std::shared_ptr<ViolationHook> hook,
                          std::size_t index) {
    hook_ = std::move(hook);
    hook_index_ = index;
  }

 protected:
  static constexpr std::size_t kMaxRetained = 256;

  void report(SimTime t, std::string detail) {
    if (total_violations_ == 0 || t < first_violation_) first_violation_ = t;
    if (total_violations_ == 0 || t > last_violation_) last_violation_ = t;
    ++total_violations_;
    if (violations_.size() < kMaxRetained)
      violations_.push_back(Violation{t, name_, std::move(detail)});
    if (hook_ && *hook_) (*hook_)(t, hook_index_);
  }

 private:
  std::string name_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  SimTime first_violation_ = kNever;
  SimTime last_violation_ = kNever;
  std::shared_ptr<ViolationHook> hook_;
  std::size_t hook_index_ = 0;
};

/// Owns a set of monitors and drives them with the begin/step/finish
/// protocol. The harness calls observe_ref() from a scheduler observer;
/// observe() is the copying variant for callers that build states on the
/// stack. Do not mix the two paths on one set.
template <typename S>
class MonitorSet {
 public:
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto monitor = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *monitor;
    if (hook_) ref.set_violation_hook(hook_, monitors_.size());
    monitors_.push_back(std::move(monitor));
    return ref;
  }

  /// Install one hook fired by every monitor in the set (present and
  /// future) on each violation, with the monitor's installation index.
  void set_violation_hook(ViolationHook hook) {
    hook_ = std::make_shared<ViolationHook>(std::move(hook));
    for (std::size_t i = 0; i < monitors_.size(); ++i)
      monitors_[i]->set_violation_hook(hook_, i);
  }

  /// Monitor names in installation order (the index space of the hook and
  /// of violations_total_by_monitor).
  std::vector<std::string> monitor_names() const {
    std::vector<std::string> names;
    names.reserve(monitors_.size());
    for (const auto& m : monitors_) names.push_back(m->name());
    return names;
  }

  /// Feed the state observed at time t. The first call becomes begin().
  /// Copies `state` into the set's previous-state slot.
  void observe(SimTime t, const S& state) {
    if (!started_) {
      for (auto& m : monitors_) m->begin(t, state);
      started_ = true;
    } else {
      for (auto& m : monitors_) m->step_delta(t, previous_, state, kDirtyAll);
    }
    previous_ = state;
    last_ = &previous_;
    observed_ += 1;
  }

  /// Zero-copy observation: `state` must outlive the next observe_ref /
  /// finish call (the snapshot source's double buffer guarantees exactly
  /// that). `dirty` is the hint forwarded to step_delta.
  void observe_ref(SimTime t, const S& state, std::size_t dirty) {
    if (!started_) {
      for (auto& m : monitors_) m->begin(t, state);
      started_ = true;
    } else {
      for (auto& m : monitors_) m->step_delta(t, *last_, state, dirty);
    }
    last_ = &state;
    observed_ += 1;
  }

  /// Close observation; liveness monitors flush outstanding obligations.
  void finish(SimTime t) {
    if (!started_ || finished_) return;
    for (auto& m : monitors_) m->finish(t, *last_);
    finished_ = true;
  }

  std::size_t size() const { return monitors_.size(); }
  bool empty() const { return monitors_.empty(); }
  std::uint64_t observed_states() const { return observed_; }

  const std::vector<std::unique_ptr<Monitor<S>>>& monitors() const {
    return monitors_;
  }

  /// All retained violations across monitors, unsorted.
  std::vector<Violation> all_violations() const {
    std::vector<Violation> all;
    std::size_t retained = 0;
    for (const auto& m : monitors_) retained += m->violations().size();
    all.reserve(retained);
    for (const auto& m : monitors_)
      all.insert(all.end(), m->violations().begin(), m->violations().end());
    return all;
  }

  /// Exact per-monitor totals, in installation order — the cheap summary
  /// for report cells (no retained-vector walk).
  std::vector<std::pair<std::string, std::uint64_t>>
  violations_total_by_monitor() const {
    std::vector<std::pair<std::string, std::uint64_t>> totals;
    totals.reserve(monitors_.size());
    for (const auto& m : monitors_)
      totals.emplace_back(m->name(), m->total_violations());
    return totals;
  }

  /// Exact total violations across monitors.
  std::uint64_t total_violations() const {
    std::uint64_t total = 0;
    for (const auto& m : monitors_) total += m->total_violations();
    return total;
  }

  /// Latest violation time across all monitors; kNever when fully clean.
  /// Exact even past each monitor's retention cap.
  SimTime last_violation() const {
    SimTime last = kNever;
    for (const auto& m : monitors_) {
      const SimTime t = m->last_violation();
      if (t == kNever) continue;
      if (last == kNever || t > last) last = t;
    }
    return last;
  }

  bool clean() const {
    for (const auto& m : monitors_)
      if (!m->clean()) return false;
    return true;
  }

 private:
  std::vector<std::unique_ptr<Monitor<S>>> monitors_;
  std::shared_ptr<ViolationHook> hook_;
  S previous_{};
  const S* last_ = nullptr;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t observed_ = 0;
};

}  // namespace graybox::spec
