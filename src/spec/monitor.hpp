// Monitor framework: specification conformance as runtime verification.
//
// The paper states specifications in UNITY (Section 3.1); we check them over
// executions by observing the global state after every simulator event and
// feeding each consecutive state pair to a set of monitors. A monitor
// receives:
//
//   begin(t, s0)        - the first observed state,
//   step(t, prev, cur)  - every subsequent transition, and
//   finish(t, last)     - end of observation, where liveness obligations
//                         still outstanding become violations.
//
// Monitors are templated on the snapshot type S so the framework is
// independent of TME; src/lspec instantiates S = lspec::GlobalSnapshot.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "spec/violation.hpp"

namespace graybox::spec {

template <typename S>
class Monitor {
 public:
  explicit Monitor(std::string name) : name_(std::move(name)) {}
  virtual ~Monitor() = default;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  const std::string& name() const { return name_; }

  virtual void begin(SimTime /*t*/, const S& /*s0*/) {}
  virtual void step(SimTime t, const S& prev, const S& cur) = 0;
  virtual void finish(SimTime /*t*/, const S& /*last*/) {}

  /// Retained violation records (capped at kMaxRetained; counters below
  /// keep exact totals when a long-lived breach floods the monitor).
  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return total_violations_ == 0; }

  /// Exact number of violations observed, retained or not.
  std::uint64_t total_violations() const { return total_violations_; }

  /// Latest violation time; kNever when clean. Exact even past the
  /// retention cap.
  SimTime last_violation() const { return last_violation_; }

  /// Earliest violation time; kNever when clean.
  SimTime first_violation() const { return first_violation_; }

 protected:
  static constexpr std::size_t kMaxRetained = 256;

  void report(SimTime t, std::string detail) {
    if (total_violations_ == 0 || t < first_violation_) first_violation_ = t;
    if (total_violations_ == 0 || t > last_violation_) last_violation_ = t;
    ++total_violations_;
    if (violations_.size() < kMaxRetained)
      violations_.push_back(Violation{t, name_, std::move(detail)});
  }

 private:
  std::string name_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  SimTime first_violation_ = kNever;
  SimTime last_violation_ = kNever;
};

/// Owns a set of monitors and drives them with the begin/step/finish
/// protocol. The harness calls observe() from a scheduler observer.
template <typename S>
class MonitorSet {
 public:
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto monitor = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *monitor;
    monitors_.push_back(std::move(monitor));
    return ref;
  }

  /// Feed the state observed at time t. The first call becomes begin().
  void observe(SimTime t, const S& state) {
    if (!started_) {
      for (auto& m : monitors_) m->begin(t, state);
      started_ = true;
    } else {
      for (auto& m : monitors_) m->step(t, previous_, state);
    }
    previous_ = state;
    observed_ += 1;
  }

  /// Close observation; liveness monitors flush outstanding obligations.
  void finish(SimTime t) {
    if (!started_ || finished_) return;
    for (auto& m : monitors_) m->finish(t, previous_);
    finished_ = true;
  }

  std::size_t size() const { return monitors_.size(); }
  std::uint64_t observed_states() const { return observed_; }

  const std::vector<std::unique_ptr<Monitor<S>>>& monitors() const {
    return monitors_;
  }

  /// All retained violations across monitors, unsorted.
  std::vector<Violation> all_violations() const {
    std::vector<Violation> all;
    for (const auto& m : monitors_)
      all.insert(all.end(), m->violations().begin(), m->violations().end());
    return all;
  }

  /// Exact total violations across monitors.
  std::uint64_t total_violations() const {
    std::uint64_t total = 0;
    for (const auto& m : monitors_) total += m->total_violations();
    return total;
  }

  /// Latest violation time across all monitors; kNever when fully clean.
  /// Exact even past each monitor's retention cap.
  SimTime last_violation() const {
    SimTime last = kNever;
    for (const auto& m : monitors_) {
      const SimTime t = m->last_violation();
      if (t == kNever) continue;
      if (last == kNever || t > last) last = t;
    }
    return last;
  }

  bool clean() const {
    for (const auto& m : monitors_)
      if (!m->clean()) return false;
    return true;
  }

 private:
  std::vector<std::unique_ptr<Monitor<S>>> monitors_;
  S previous_{};
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t observed_ = 0;
};

}  // namespace graybox::spec
