#include "spec/violation.hpp"

namespace graybox::spec {

std::string Violation::to_string() const {
  return "[" + std::to_string(time) + "] " + clause +
         (detail.empty() ? "" : ": " + detail);
}

SimTime last_violation_time(const std::vector<Violation>& violations) {
  SimTime last = kNever;
  for (const auto& v : violations) {
    if (last == kNever || v.time > last) last = v.time;
  }
  return last;
}

std::size_t violations_at_or_after(const std::vector<Violation>& violations,
                                   SimTime t) {
  std::size_t count = 0;
  for (const auto& v : violations)
    if (v.time >= t) ++count;
  return count;
}

}  // namespace graybox::spec
