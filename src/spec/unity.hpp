// The UNITY temporal operators of Section 3.1 as monitors:
//
//   "p unless q"   - if p /\ ~q holds in a state, then p \/ q holds in the
//                    next state;
//   "stable(p)"    - p unless false;
//   "q invariant"  - q holds in the first observed state and stable(q)
//                    (checked directly as "q in every state");
//   "p |-> q"      - (leads-to) whenever p holds, q holds then or later;
//   "p ~-> q"      - (leads-to-always) p |-> q and once q, q forever after.
//
// Leads-to obligations that are still open when observation ends are
// reported at the time the obligation was opened: in a drained run (no new
// work admitted, channels flushed) an open obligation is a genuine liveness
// failure such as the deadlock of Section 4, not an artifact of stopping.
//
// Predicates are std::function over the snapshot type; src/lspec composes
// the concrete TME clauses from these.
#pragma once

#include <functional>
#include <optional>

#include "spec/monitor.hpp"

namespace graybox::spec {

template <typename S>
using Pred = std::function<bool(const S&)>;

// ---------------------------------------------------------------------------

template <typename S>
class UnlessMonitor : public Monitor<S> {
 public:
  UnlessMonitor(std::string name, Pred<S> p, Pred<S> q)
      : Monitor<S>(std::move(name)), p_(std::move(p)), q_(std::move(q)) {}

  void step(SimTime t, const S& prev, const S& cur) override {
    if (p_(prev) && !q_(prev)) {
      if (!p_(cur) && !q_(cur))
        this->report(t, "p held without q, then both p and q fell");
    }
  }

 private:
  Pred<S> p_, q_;
};

template <typename S>
class StableMonitor : public Monitor<S> {
 public:
  StableMonitor(std::string name, Pred<S> p)
      : Monitor<S>(std::move(name)), p_(std::move(p)) {}

  void step(SimTime t, const S& prev, const S& cur) override {
    if (p_(prev) && !p_(cur)) this->report(t, "stable predicate fell");
  }

 private:
  Pred<S> p_;
};

template <typename S>
class InvariantMonitor : public Monitor<S> {
 public:
  InvariantMonitor(std::string name, Pred<S> q)
      : Monitor<S>(std::move(name)), q_(std::move(q)) {}

  void begin(SimTime t, const S& s0) override { check(t, s0); }
  void step(SimTime t, const S&, const S& cur) override { check(t, cur); }

 private:
  void check(SimTime t, const S& s) {
    if (!q_(s)) this->report(t, "invariant does not hold");
  }
  Pred<S> q_;
};

// ---------------------------------------------------------------------------

/// p |-> q with per-process obligations folded into one monitor: the
/// `describe` callback renders which obligation is open. An *anonymous*
/// obligation model suffices for TME because every Lspec leads-to clause is
/// per-process; instantiate one LeadsToMonitor per process.
template <typename S>
class LeadsToMonitor : public Monitor<S> {
 public:
  LeadsToMonitor(std::string name, Pred<S> p, Pred<S> q)
      : Monitor<S>(std::move(name)), p_(std::move(p)), q_(std::move(q)) {}

  void begin(SimTime t, const S& s0) override {
    if (p_(s0) && !q_(s0)) open(t);
    if (q_(s0)) discharge();
  }

  void step(SimTime t, const S&, const S& cur) override {
    // Order matters: q discharges obligations including one opened by this
    // same state satisfying p (q "then or later" includes "then").
    if (p_(cur)) open(t);
    if (q_(cur)) discharge();
  }

  void finish(SimTime, const S&) override {
    if (opened_at_.has_value()) {
      this->report(*opened_at_, "leads-to obligation never discharged");
      opened_at_.reset();
    }
  }

  /// Number of times an obligation was discharged (p happened and q
  /// followed). Useful to assert the monitor exercised the property.
  std::uint64_t discharged() const { return discharged_; }

  bool obligation_open() const { return opened_at_.has_value(); }

 private:
  void open(SimTime t) {
    if (!opened_at_.has_value()) opened_at_ = t;
  }
  void discharge() {
    if (opened_at_.has_value()) {
      opened_at_.reset();
      ++discharged_;
    }
  }

  Pred<S> p_, q_;
  std::optional<SimTime> opened_at_;
  std::uint64_t discharged_ = 0;
};

/// p ~-> q (leads-to-always, pronounced "p leads to always q" in the
/// paper): p |-> q plus stable(q) *after the leads-to is first fulfilled*.
/// The paper defines it as (p |-> q) /\ stable(q); we monitor both parts.
template <typename S>
class LeadsToAlwaysMonitor : public Monitor<S> {
 public:
  LeadsToAlwaysMonitor(std::string name, Pred<S> p, Pred<S> q)
      : Monitor<S>(this->compose_name(name)),
        leads_(name + "/leads-to", p, q),
        stable_(name + "/stable", std::move(q)) {}

  void begin(SimTime t, const S& s0) override { leads_.begin(t, s0); }

  void step(SimTime t, const S& prev, const S& cur) override {
    leads_.step(t, prev, cur);
    stable_.step(t, prev, cur);
    merge(t);
  }

  void finish(SimTime t, const S& last) override {
    leads_.finish(t, last);
    merge(t);
  }

 private:
  static std::string compose_name(const std::string& n) { return n; }

  void merge(SimTime) {
    for (std::size_t i = reported_leads_; i < leads_.violations().size(); ++i)
      this->report(leads_.violations()[i].time, leads_.violations()[i].detail);
    reported_leads_ = leads_.violations().size();
    for (std::size_t i = reported_stable_; i < stable_.violations().size();
         ++i)
      this->report(stable_.violations()[i].time,
                   "stability part: " + stable_.violations()[i].detail);
    reported_stable_ = stable_.violations().size();
  }

  LeadsToMonitor<S> leads_;
  StableMonitor<S> stable_;
  std::size_t reported_leads_ = 0;
  std::size_t reported_stable_ = 0;
};

// ---------------------------------------------------------------------------

/// Free-form transition check for structural clauses that are most natural
/// as direct prev/cur comparisons (e.g. Structural Spec's "exactly one of
/// h, e, t, and only legal moves"). Returning a non-empty optional reports
/// a violation with that detail.
template <typename S>
class TransitionMonitor : public Monitor<S> {
 public:
  using CheckFn =
      std::function<std::optional<std::string>(const S& prev, const S& cur)>;

  TransitionMonitor(std::string name, CheckFn check)
      : Monitor<S>(std::move(name)), check_(std::move(check)) {}

  void step(SimTime t, const S& prev, const S& cur) override {
    if (auto detail = check_(prev, cur)) this->report(t, std::move(*detail));
  }

 private:
  CheckFn check_;
};

/// Free-form per-state check (safety predicates with custom diagnostics).
template <typename S>
class StateMonitor : public Monitor<S> {
 public:
  using CheckFn = std::function<std::optional<std::string>(const S& cur)>;

  StateMonitor(std::string name, CheckFn check)
      : Monitor<S>(std::move(name)), check_(std::move(check)) {}

  void begin(SimTime t, const S& s0) override { run(t, s0); }
  void step(SimTime t, const S&, const S& cur) override { run(t, cur); }

 private:
  void run(SimTime t, const S& s) {
    if (auto detail = check_(s)) this->report(t, std::move(*detail));
  }
  CheckFn check_;
};

}  // namespace graybox::spec
