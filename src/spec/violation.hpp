// Violation records produced by specification monitors.
//
// A monitor never stops a run: stabilization is precisely the property that
// violations are confined to a finite prefix, so monitors *record* breaches
// with their simulated time and the stabilization detector later asks "when
// was the last one?". (Contrast masking fault-tolerance, where a single
// violation is fatal — Section 6 discusses the distinction.)
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace graybox::spec {

struct Violation {
  SimTime time = 0;
  /// Name of the violated specification clause, e.g. "ME1" or
  /// "StructuralSpec(3)".
  std::string clause;
  /// Human-readable details of the breach.
  std::string detail;

  std::string to_string() const;
};

/// Latest violation time in a list; kNever when empty. (Note kNever acts as
/// "-infinity" here: no violation means any suffix is clean, and callers
/// compare with `violations_before(t)` style predicates instead.)
SimTime last_violation_time(const std::vector<Violation>& violations);

/// Count of violations at or after `t`.
std::size_t violations_at_or_after(const std::vector<Violation>& violations,
                                   SimTime t);

}  // namespace graybox::spec
