// Ricart-Agrawala mutual exclusion (paper Section 5.1), written to
// *everywhere* implement Lspec: every handler is a total function of the
// message and of whatever (possibly corrupted) local state it finds.
//
// Whitebox variables beyond the TmeProcess base:
//   view_[k]      - j.REQk, j's latest information about k's request;
//   received_[k]  - "received(j.REQk)": a request from k is pending and has
//                   not been replied to yet.
// The paper's deferred_set.j is derived, exactly as its "always section"
// defines it:  { k : received(j.REQk) /\ REQj lt j.REQk }.
//
// Protocol notes that matter for stabilization (see DESIGN.md):
//   * Replies carry the replier's *current REQ* (the paper's send-reply(j,
//     REQj, k) / send-reply(j, lc.j, k) at release), which keeps receiver
//     views from overshooting the sender's actual request (invariant I).
//   * View updates are direct assignments, so a corrupted view heals on the
//     next genuine message from that peer. A monotone max() update would
//     never heal a corrupted-high view and breaks stabilization — that
//     failure mode is demonstrated by bench_ablations (A1) using the
//     monotone_views option below.
#pragma once

#include <vector>

#include "me/tme_process.hpp"

namespace graybox::me {

struct RicartAgrawalaOptions {
  /// Ablation A1: update views with max(old, new) instead of assignment.
  /// Fault-free behaviour is identical; recovery from corrupted-high views
  /// is lost. Keep false except in the ablation bench.
  bool monotone_views = false;
};

class RicartAgrawala : public TmeProcess {
 public:
  RicartAgrawala(ProcessId pid, net::Network& net,
                 RicartAgrawalaOptions options = {});

  bool knows_earlier(ProcessId k) const override;
  clk::Timestamp view_of(ProcessId k) const override;
  std::string_view algorithm() const override { return "ricart-agrawala"; }

  /// "received(j.REQk)" — exposed for tests and diagnostics.
  bool received_pending(ProcessId k) const;

  /// deferred_set.j membership (derived, per the paper's always-section).
  bool deferred(ProcessId k) const;

  // Surgical fault surface (see TmeProcess::fault_set_state).
  void fault_set_view(ProcessId k, clk::Timestamp ts);
  void fault_set_received(ProcessId k, bool value);

 protected:
  void do_request() override;
  void do_release(clk::Timestamp new_req) override;
  void handle(const net::Message& msg) override;
  void do_corrupt(Rng& rng) override;

  /// FragileMe hooks into request handling; see fragile.hpp.
  virtual void handle_request(const net::Message& msg);

  void update_view(ProcessId k, clk::Timestamp ts);

  /// Program-path mutation of received(j.REQk), for subclasses that take
  /// over request handling (CarvalhoRoucairol answers pending requests at
  /// release for *all* pending peers, not only the deferred set).
  void set_received(ProcessId k, bool value);

 private:
  void handle_reply(const net::Message& msg);

  RicartAgrawalaOptions options_;
  std::vector<clk::Timestamp> view_;
  std::vector<char> received_;
};

}  // namespace graybox::me
