// Carvalho-Roucairol mutual exclusion: the classic Ricart-Agrawala
// optimization (Carvalho & Roucairol, CACM 1983) in which a process that
// re-enters the CS does not re-request permission from peers that have not
// asked for the CS since — permission, once granted by a REPLY, is
// *retained* until surrendered by sending a REPLY back.
//
// Whitebox variables beyond RicartAgrawala's view/received:
//   auth_[k]   - j holds k's permission (granted by k's last REPLY, lost
//                when j replies to k);
//   uses_[k]   - CS entries charged against that permission since grant;
//   relied_[k] - j's *current* request is covered by the retained
//                permission (no REQUEST was sent to k for it).
//
// Everywhere-modification (the CR analogue of the paper's Section 5
// modifications to RA and Lamport): a retained permission is LEASED —
// after `lease` uses the process re-requests as plain RA would. A fault
// can plant the same permission on both sides of a pair (both processes
// skip the handshake and collide in the CS), and nothing in bare CR ever
// invalidates the duplicate: the protocol's silence is indistinguishable
// from consent. The lease bounds how long a corrupt permission survives —
// at most `lease` request cycles — after which the REQUEST/REPLY handshake
// re-establishes single ownership. Fault-free behaviour keeps CR's traffic
// saving (2(n-1) messages only on contended entries); the lease merely
// inserts one RA-shaped refresh every `lease` consecutive entries.
//
// Graybox payoff (the reason this file exists): CR's entry guard is NOT
// backed by a view of the peer's current request — knows_earlier(k) is
// true whenever the retained permission covers the request, regardless of
// timestamps. It is therefore a genuinely different everywhere-
// implementation of Lspec, and SpecConformance::view_entry_truth is false:
// Invariant I's per-view truth does not apply, and the harness monitors
// pairwise mutual-belief consistency instead (see lspec/tme_monitors.hpp).
// The byte-for-byte unchanged GrayboxWrapper stabilizes it (Corollary 11
// extended empirically; tests/test_carvalho_roucairol.cpp).
#pragma once

#include <vector>

#include "me/ricart_agrawala.hpp"

namespace graybox::me {

struct CarvalhoRoucairolOptions {
  /// CS entries a retained permission covers before it is re-requested
  /// (the everywhere-modification above). Must be >= 1.
  std::uint32_t lease = 8;
};

class CarvalhoRoucairol : public RicartAgrawala {
 public:
  CarvalhoRoucairol(ProcessId pid, net::Network& net,
                    CarvalhoRoucairolOptions options = {});

  bool knows_earlier(ProcessId k) const override;
  std::string_view algorithm() const override { return "carvalho-roucairol"; }

  /// j holds k's permission (diagnostics and tests).
  bool authorized(ProcessId k) const;
  /// Entries charged against the retained permission since its grant.
  std::uint32_t uses(ProcessId k) const;
  /// The current request relies on the retained permission from k.
  bool relied(ProcessId k) const;
  std::uint32_t lease() const { return options_.lease; }

  // Surgical fault surface (see TmeProcess::fault_set_state).
  void fault_set_authorized(ProcessId k, bool value);
  void fault_set_uses(ProcessId k, std::uint32_t value);
  void fault_set_relied(ProcessId k, bool value);

 protected:
  void do_request() override;
  void do_release(clk::Timestamp new_req) override;
  void handle(const net::Message& msg) override;
  void handle_request(const net::Message& msg) override;
  void do_corrupt(Rng& rng) override;

 private:
  CarvalhoRoucairolOptions options_;
  std::vector<char> auth_;
  std::vector<std::uint32_t> uses_;
  std::vector<char> relied_;
};

}  // namespace graybox::me
