// FragileMe: a deliberately NON-everywhere implementation of Lspec, used as
// the negative control for the graybox guarantee.
//
// It is Ricart-Agrawala with one "optimization": a request from k is ignored
// when received(j.REQk) is already set ("we already know about k's
// request"). In fault-free executions the flag is never set when a fresh
// request arrives, so FragileMe implements Lspec *from its initial states*
// — [FragileMe => Lspec]init holds and it passes every fault-free test.
//
// But Reply Spec is violated from states where the flag is corrupted to
// true: the wrapper's resent REQUEST is ignored, no reply ever comes, and
// the requester waits forever. Theorem 8's premise ("M *everywhere*
// implements Lspec") fails, and so does its conclusion: the same wrapper W
// that stabilizes RicartAgrawala and LamportMe does not stabilize FragileMe.
// This is exactly Figure 1's lesson transposed to the case study, and
// tests/test_fragile.cpp plus bench_reusability demonstrate it.
#pragma once

#include "me/ricart_agrawala.hpp"

namespace graybox::me {

class FragileMe : public RicartAgrawala {
 public:
  FragileMe(ProcessId pid, net::Network& net) : RicartAgrawala(pid, net) {}

  std::string_view algorithm() const override { return "fragile-ra"; }

 protected:
  void handle_request(const net::Message& msg) override {
    // The fatal shortcut: deduplicate requests on the received flag. The
    // flag is implementation state the specification knows nothing about,
    // and faults can set it; silence then becomes permanent.
    if (received_pending(msg.from)) return;
    RicartAgrawala::handle_request(msg);
  }
};

}  // namespace graybox::me
