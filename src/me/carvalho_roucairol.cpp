#include "me/carvalho_roucairol.hpp"

#include "common/contracts.hpp"
#include "me/protocol_registry.hpp"

namespace graybox::me {

CarvalhoRoucairol::CarvalhoRoucairol(ProcessId pid, net::Network& net,
                                     CarvalhoRoucairolOptions options)
    : RicartAgrawala(pid, net),
      options_(options),
      auth_(net.size(), 0),
      uses_(net.size(), 0),
      relied_(net.size(), 0) {
  GBX_EXPECTS(options_.lease >= 1);
}

bool CarvalhoRoucairol::knows_earlier(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  // The retained permission covers the current request: k consented to our
  // entry and has not asked for the CS since. This is the clause that makes
  // CR's entry guard permission-backed rather than view-backed (and why the
  // factory's SpecConformance opts out of Invariant I's per-view truth).
  if (!thinking() && relied_[k] != 0) return true;
  return RicartAgrawala::knows_earlier(k);
}

bool CarvalhoRoucairol::authorized(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return auth_[k] != 0;
}

std::uint32_t CarvalhoRoucairol::uses(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return uses_[k];
}

bool CarvalhoRoucairol::relied(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return relied_[k] != 0;
}

void CarvalhoRoucairol::do_request() {
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k == pid()) continue;
    if (auth_[k] != 0 && uses_[k] < options_.lease) {
      // CR's optimization: permission retained from k's last REPLY still
      // covers us — charge the lease, skip the REQUEST.
      relied_[k] = 1;
      ++uses_[k];
      continue;
    }
    // No usable permission (never granted, surrendered, or lease spent):
    // plain Ricart-Agrawala handshake.
    auth_[k] = 0;
    uses_[k] = 0;
    relied_[k] = 0;
    send(k, net::MsgType::kRequest, req());
  }
}

void CarvalhoRoucairol::do_release(clk::Timestamp new_req) {
  // Answer every pending request — not only the deferred set, as base RA
  // does. A REPLY both unblocks the requester and transfers the pairwise
  // permission; answering all of received_pending keeps permissions
  // single-owner from any reached state (a corrupt received flag would
  // otherwise pin a permission on both sides forever).
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k == pid()) continue;
    relied_[k] = 0;
    if (received_pending(k)) {
      set_received(k, false);
      auth_[k] = 0;
      uses_[k] = 0;
      send(k, net::MsgType::kReply, new_req);
    }
  }
}

void CarvalhoRoucairol::handle_request(const net::Message& msg) {
  const ProcessId k = msg.from;
  update_view(k, msg.ts);
  set_received(k, true);
  // Defer while using the CS or while our own request is earlier; the
  // permission stays with us and the REPLY waits for do_release.
  if (eating() || deferred(k)) return;
  // Surrender the permission: reply now, and the pair's token moves to k.
  set_received(k, false);
  const bool was_relying = hungry() && relied_[k] != 0;
  auth_[k] = 0;
  uses_[k] = 0;
  relied_[k] = 0;
  send(k, net::MsgType::kReply, req());
  // CR's re-request rule: if our outstanding request was counting on the
  // permission we just surrendered, it is no longer covered — chase it
  // with the REQUEST we had optimized away.
  if (was_relying) send(k, net::MsgType::kRequest, req());
}

void CarvalhoRoucairol::handle(const net::Message& msg) {
  RicartAgrawala::handle(msg);
  if (msg.from >= peers() || msg.from == pid()) return;  // corrupt origin
  if (msg.type == net::MsgType::kReply && hungry() &&
      clk::lt(req(), msg.ts)) {
    // A REPLY is a grant of k's permission (the lease restarts) — but only
    // when it can be answering the outstanding request, i.e. its timestamp
    // witnessed our REQ. Without the guard, a duplicate answer to an
    // already-answered request (the wrapper's resends draw these) arrives
    // after the pair's token has legitimately moved back to k and mints a
    // second permission: both sides hold, both enter. Base RA is immune
    // because its replies are idempotent view refreshes; a permission is
    // not, so acceptance must be matched to the request round. Stale
    // replies still flow through handle_reply above as view refreshes.
    auth_[msg.from] = 1;
    uses_[msg.from] = 0;
  }
}

void CarvalhoRoucairol::do_corrupt(Rng& rng) {
  RicartAgrawala::do_corrupt(rng);
  for (ProcessId k = 0; k < peers(); ++k) {
    if (rng.chance(0.5)) auth_[k] = rng.chance(0.5) ? 1 : 0;
    if (rng.chance(0.5))
      uses_[k] = static_cast<std::uint32_t>(rng.uniform(0, 2 * options_.lease));
    if (rng.chance(0.5)) relied_[k] = rng.chance(0.5) ? 1 : 0;
  }
}

void CarvalhoRoucairol::fault_set_authorized(ProcessId k, bool value) {
  GBX_EXPECTS(k < peers());
  auth_[k] = value ? 1 : 0;
  mark_observably_changed();
}

void CarvalhoRoucairol::fault_set_uses(ProcessId k, std::uint32_t value) {
  GBX_EXPECTS(k < peers());
  uses_[k] = value;
  mark_observably_changed();
}

void CarvalhoRoucairol::fault_set_relied(ProcessId k, bool value) {
  GBX_EXPECTS(k < peers());
  relied_[k] = value ? 1 : 0;
  mark_observably_changed();
}

// --- Registry factory -------------------------------------------------------

namespace {

class CarvalhoRoucairolFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "carvalho-roucairol"; }
  std::vector<std::string_view> aliases() const override { return {"cr"}; }
  SpecConformance conformance() const override {
    return SpecConformance{
        .everywhere = true, .view_entry_truth = false, .fcfs = false};
  }
  std::vector<OptionSpec> option_schema() const override {
    return {{"lease", "8",
             "CS entries a retained permission covers before re-request"}};
  }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& options) const
      override {
    GBX_EXPECTS(n == net.size());
    CarvalhoRoucairolOptions opts;
    opts.lease = static_cast<std::uint32_t>(options.get_u64("lease"));
    return std::make_unique<CarvalhoRoucairol>(pid, net, opts);
  }
};

}  // namespace

const ProcessFactory& carvalho_roucairol_factory() {
  static const CarvalhoRoucairolFactory factory;
  return factory;
}

}  // namespace graybox::me
