// FragileMe is header-only (a one-hook subclass of RicartAgrawala); this
// translation unit anchors its typeinfo and hosts its registry factory.
#include "me/fragile.hpp"

#include "common/contracts.hpp"
#include "me/protocol_registry.hpp"

namespace graybox::me {

static_assert(!std::is_abstract_v<FragileMe>,
              "FragileMe must be a complete, instantiable implementation");

namespace {

class FragileFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "fragile-ra"; }
  std::vector<std::string_view> aliases() const override {
    return {"fragile"};
  }
  SpecConformance conformance() const override {
    // The negative control: implements Lspec only from its initial states
    // (Theorem 8's premise fails, and so does its conclusion — see
    // tests/test_fragile.cpp).
    return SpecConformance{.everywhere = false, .view_entry_truth = true};
  }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& /*options*/) const
      override {
    GBX_EXPECTS(n == net.size());
    return std::make_unique<FragileMe>(pid, net);
  }
};

}  // namespace

const ProcessFactory& fragile_factory() {
  static const FragileFactory factory;
  return factory;
}

}  // namespace graybox::me
