// FragileMe is header-only (a one-hook subclass of RicartAgrawala); this
// translation unit exists to anchor the class's vtable-adjacent checks into
// the library and keep one definition of its typeinfo.
#include "me/fragile.hpp"

namespace graybox::me {

static_assert(!std::is_abstract_v<FragileMe>,
              "FragileMe must be a complete, instantiable implementation");

}  // namespace graybox::me
