// The TME process interface: exactly the observables of Lspec.
//
// Lspec (Section 3.2) speaks about a process j through h.j / e.j / t.j, its
// request timestamp REQj, and its knowledge about peers ("REQj lt j.REQk").
// TmeProcess exposes precisely that surface — and nothing else — so that
// everything built on top of it is graybox by construction:
//
//   * the wrapper (src/wrapper) reads only state(), req(), knows_earlier()
//     and therefore works for ANY implementation of this interface;
//   * the Lspec/TME Spec monitors (src/lspec) judge conformance through the
//     same surface;
//   * concrete programs (RicartAgrawala, LamportMe) keep their whitebox
//     variables private.
//
// The base class also implements the parts of Lspec that both programs
// share — and shares them in an *everywhere* fashion (correct from any
// state, since any state can be fault-reached):
//
//   * Structural/Flow Spec: the only program transitions are t->h (request),
//     h->e (CS entry), e->t (release);
//   * Release Spec: whenever t.j holds, REQj tracks ts.j (the clock of the
//     most recent local event);
//   * CS Entry Spec: h.j /\ (forall k != j : REQj lt j.REQk) => enter, with
//     knows_earlier(k) supplying the implementation-specific reading of
//     "REQj lt j.REQk";
//   * Timestamp Spec: a Lamport logical clock witnesses every received
//     timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "clock/logical_clock.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "obs/event_bus.hpp"

namespace graybox::me {

enum class TmeState : std::uint8_t { kThinking = 0, kHungry = 1, kEating = 2 };

const char* to_string(TmeState s);

class TmeProcess {
 public:
  TmeProcess(ProcessId pid, net::Network& net);
  virtual ~TmeProcess() = default;

  TmeProcess(const TmeProcess&) = delete;
  TmeProcess& operator=(const TmeProcess&) = delete;

  ProcessId pid() const { return pid_; }
  std::size_t peers() const { return net_.size(); }

  // --- Lspec observables (the graybox surface) --------------------------

  TmeState state() const { return state_; }
  bool thinking() const { return state_ == TmeState::kThinking; }
  bool hungry() const { return state_ == TmeState::kHungry; }
  bool eating() const { return state_ == TmeState::kEating; }

  /// REQj: while hungry/eating, the timestamp of the current request;
  /// while thinking, ts.j (Release Spec keeps it glued to the clock).
  clk::Timestamp req() const { return req_; }

  /// The local reading of "REQj lt j.REQk": does this process know that its
  /// own request is earlier than k's? CS entry requires it for all k != j;
  /// the wrapper resends REQj exactly to the peers for which it is false.
  virtual bool knows_earlier(ProcessId k) const = 0;

  /// Diagnostic rendering of j.REQk where the implementation has one
  /// (Ricart-Agrawala stores it directly; Lamport synthesizes it).
  virtual clk::Timestamp view_of(ProcessId k) const = 0;

  // --- Client surface (Client Spec) --------------------------------------

  /// Issue a CS request (t -> h). Total: ignored unless thinking.
  void request_cs();

  /// Leave the CS (e -> t). Total: ignored unless eating.
  void release_cs();

  /// Re-evaluate enabled actions (CS entry, thinking-REQ refresh) without
  /// any new input. Clients call this periodically; it is what guarantees
  /// progress resumes after a state corruption, since corruptions do not
  /// deliver messages.
  void poll();

  // --- Network plumbing ---------------------------------------------------

  /// Deliver one message. Total in the message contents (the fault model
  /// corrupts every field).
  void on_message(const net::Message& msg);

  // --- Fault surface ------------------------------------------------------

  /// Transient arbitrary state corruption (Section 3.1): every
  /// implementation variable may be overwritten with an arbitrary
  /// type-valid value. Does NOT count as a program transition: no state
  /// change callback fires, and no enabled action runs until the next
  /// event reaches the process. Dispatches to do_corrupt() so the
  /// observation version below is bumped for every implementation.
  void corrupt_state(Rng& rng) {
    do_corrupt(rng);
    mark_observably_changed();
  }

  /// Surgical corruption, for scenario tests that need a *specific*
  /// adversarial state rather than a random one. Part of the fault surface,
  /// not of the protocol: these bypass the program transitions exactly like
  /// corrupt_state does.
  void fault_set_state(TmeState s) {
    state_ = s;
    mark_observably_changed();
  }
  void fault_set_req(clk::Timestamp ts) {
    req_ = ts;
    mark_observably_changed();
  }
  void fault_set_clock(std::uint64_t counter) {
    lc_.corrupt(counter);
    mark_observably_changed();
  }

  /// Monotone counter bumped whenever this process's graybox observables
  /// (state, REQ, clock, knows_earlier inputs) may have changed — after
  /// every program event and every fault. The snapshot source compares it
  /// against the version it last captured to re-read only dirty rows.
  /// Conservative by design: a bump with no actual change only costs a
  /// redundant row copy, never correctness.
  std::uint64_t obs_version() const { return obs_version_; }

  virtual std::string_view algorithm() const = 0;

  // --- Introspection ------------------------------------------------------

  std::uint64_t cs_entries() const { return cs_entries_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  const clk::LogicalClock& clock() const { return lc_; }

  /// Observes *program* transitions (request/entry/release), not fault
  /// jumps. Used by the structural-spec monitor and by clients.
  using StateChangeFn =
      std::function<void(TmeState from, TmeState to)>;
  void add_state_observer(StateChangeFn fn) {
    state_observers_.push_back(std::move(fn));
  }

  /// Attach the observability bus; program transitions are recorded as
  /// kCsEnter (h->e), kCsExit (e->t), or kLocalStep events.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Attach the provenance tracker; delivered messages then merge their
  /// taint into this process and recorded transitions carry its active
  /// taint. nullptr (the default) disables.
  void set_provenance(obs::ProvenanceTracker* prov) { prov_ = prov; }

 protected:
  // Template-method hooks implemented by the concrete programs.
  virtual void do_request() = 0;                       // broadcast REQUEST
  virtual void do_release(clk::Timestamp new_req) = 0; // replies/releases
  virtual void handle(const net::Message& msg) = 0;    // message semantics
  virtual void do_corrupt(Rng& rng) = 0;               // randomize all state

  /// Subclass fault setters call this after mutating their whitebox
  /// variables outside the program-event paths.
  void mark_observably_changed() { ++obs_version_; }

  /// Send helper used by subclasses (tags messages as program traffic).
  void send(ProcessId to, net::MsgType type, clk::Timestamp ts);

  /// Corrupt the base-class variables; subclasses call this from
  /// corrupt_state and then corrupt their own.
  void corrupt_base(Rng& rng);

  /// Draw an arbitrary timestamp for corruption (log-uniform magnitude).
  clk::Timestamp random_timestamp(Rng& rng) const;

  clk::LogicalClock& mutable_clock() { return lc_; }
  net::Network& network() { return net_; }

 private:
  void transition(TmeState to);
  /// CS Entry Spec: enter when hungry and knows_earlier holds for all peers.
  void maybe_enter();
  /// Release Spec: while thinking, REQ tracks the clock.
  void refresh_thinking_req();
  void after_event();

  ProcessId pid_;
  net::Network& net_;
  clk::LogicalClock lc_;
  TmeState state_ = TmeState::kThinking;
  clk::Timestamp req_{};
  std::uint64_t cs_entries_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t obs_version_ = 1;
  std::vector<StateChangeFn> state_observers_;
  obs::EventBus* bus_ = nullptr;
  obs::ProvenanceTracker* prov_ = nullptr;
};

}  // namespace graybox::me
