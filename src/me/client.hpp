// The client workload driver: the paper's Client Spec, implemented
// *everywhere*.
//
// Client Spec (Section 3.2) obliges the application side of each process:
// thinking/hungry/eating follow the flow t -> h -> e -> t, and eating is
// transient (CS Spec: e.j |-> ~e.j). For the guarantee to hold from any
// fault-reached state, the client cannot be edge-triggered only: it *polls*
// its process. Whatever state a corruption planted, the next poll observes
// it and schedules the appropriate obligation — in particular a spuriously
// eating process gets released (CS Spec), and a corrupted entry condition
// gets re-evaluated via TmeProcess::poll().
#pragma once

#include "common/rng.hpp"
#include "me/tme_process.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace graybox::me {

struct ClientConfig {
  /// Mean thinking duration before the next CS request (exponential).
  double think_mean = 60.0;
  /// Mean eating duration before release (exponential).
  double eat_mean = 10.0;
  /// Poll cadence; also bounds how fast a corruption is noticed.
  SimTime poll_interval = 2;
  /// If false the client never requests the CS (a passive process that
  /// only answers peers — used by scenario tests).
  bool wants_cs = true;
};

class Client {
 public:
  Client(sim::Scheduler& sched, TmeProcess& process, ClientConfig config,
         Rng rng);

  void start();
  void stop();

  /// Stop issuing new CS requests but keep polling (drain mode: lets
  /// in-flight obligations finish so liveness monitors can be judged).
  void stop_requesting() { requesting_ = false; }
  void resume_requesting() { requesting_ = true; }

  std::uint64_t requests_issued() const { return requests_issued_; }
  std::uint64_t releases_issued() const { return releases_issued_; }

 private:
  void on_poll();

  sim::Scheduler& sched_;
  TmeProcess& process_;
  ClientConfig config_;
  Rng rng_;
  sim::PeriodicTimer timer_;
  bool requesting_ = true;

  /// Last state seen by the poll loop; deadlines reset when it changes.
  TmeState observed_ = TmeState::kThinking;
  SimTime next_request_at_ = 0;
  SimTime release_at_ = kNever;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t releases_issued_ = 0;
};

}  // namespace graybox::me
