// The protocol registry: the open seam through which mutual-exclusion
// implementations reach the harness.
//
// The paper's reusability results (Theorem 4, Corollary 11) quantify over
// *every* everywhere-implementation of Lspec, so the set of programs the
// harness can assemble must be open, not a closed enum. A ProcessFactory
// names one implementation, declares its options (as a key=value schema
// with defaults, giving every configuration a canonical serialization for
// config digests), declares which parts of the Lspec reading it claims via
// SpecConformance, and constructs processes. The registry is the single
// source of algorithm names — the harness, the engine's config digests,
// the explorer CLI, and the benches all resolve names here.
//
// Built-in factories (Ricart-Agrawala, Lamport, Carvalho-Roucairol, and
// the FragileMe negative control) live in their algorithm's translation
// unit and are anchored by ProtocolRegistry::instance() referencing their
// accessor functions — a plain static registrar object would be dropped
// when linking from a static archive, since nothing else in a bench binary
// names the algorithm's TU. External implementations self-register through
// ProtocolRegistry::add() (tests/test_protocol_registry.cpp exercises the
// seam with a factory the library has never heard of).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "me/tme_process.hpp"

namespace graybox::me {

/// Which parts of the monitors' Lspec reading an implementation claims.
/// The harness installs the monitoring battery accordingly.
struct SpecConformance {
  /// Claims to *everywhere* implement Lspec (correct from any reachable
  /// state, Section 2.1). FragileMe sets this false: it implements Lspec
  /// only from its initial states and is the negative control for
  /// Theorem 8's premise.
  bool everywhere = true;
  /// Claims that knows_earlier(k) is backed by a view of k's actual
  /// request — Invariant I ("knows_earlier(j,k) => REQj lt REQk") applies.
  /// Implementations whose entry guard rests on *retained permissions*
  /// (Carvalho-Roucairol) set this false; the harness then monitors the
  /// weaker pairwise mutual-belief consistency instead of per-view truth.
  bool view_entry_truth = true;
  /// Claims FCFS entry order (ME3): a process never enters the CS while a
  /// peer whose request happened-before its own is still waiting.
  /// Carvalho-Roucairol sets this false — its retained-permission fast path
  /// deliberately trades request ordering for message-free consecutive
  /// entries, so a leased re-entry can overtake a causally earlier request
  /// even fault-free. The ME3 monitor exempts entries by non-claiming
  /// processes (fault jumps into the CS are still reported for everyone).
  bool fcfs = true;
};

/// One schema entry: an option key, its default, and a help line. Schema
/// order is canonical — serializations and digests list keys in it.
struct OptionSpec {
  std::string key;
  std::string default_value;
  std::string help;
};

/// Options resolved against a factory's schema: every schema key present
/// exactly once, in schema order, defaults filled in. The canonical form
/// is what config digests hash, so two configs that resolve identically
/// digest identically regardless of how their options were spelled.
class ResolvedOptions {
 public:
  const std::string& get(std::string_view key) const;
  bool get_bool(std::string_view key) const;
  std::uint64_t get_u64(std::string_view key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// "key1=value1,key2=value2" in schema order; "" for an empty schema.
  std::string canonical() const;

 private:
  friend class ProcessFactory;
  std::vector<std::pair<std::string, std::string>> entries_;
};

class ProcessFactory {
 public:
  virtual ~ProcessFactory() = default;

  /// Canonical registry name (e.g. "ricart-agrawala"). Also the value the
  /// constructed processes report from TmeProcess::algorithm().
  virtual std::string_view name() const = 0;

  /// Short alternative spellings accepted by lookups ("ra", "cr", ...).
  virtual std::vector<std::string_view> aliases() const { return {}; }

  virtual SpecConformance conformance() const = 0;

  /// The option schema; empty by default. Keys outside it are rejected.
  virtual std::vector<OptionSpec> option_schema() const { return {}; }

  /// Construct one process. `n` is the system size (== net.size(), passed
  /// for convenience and contract checks). `rng` is a dedicated stream for
  /// randomized constructions; the built-in factories draw nothing from it
  /// (their initial states are the deterministic paper inits), and a
  /// factory that does draw shifts no other stream — the harness splits it
  /// after every pre-existing stream.
  virtual std::unique_ptr<TmeProcess> make(
      ProcessId pid, std::size_t n, net::Network& net, Rng& rng,
      const ResolvedOptions& options) const = 0;

  /// Resolve "key=value" strings against the schema (later entries win;
  /// unknown keys abort with the schema listed). The layered harness
  /// options (legacy structs, uniform, per-process) concatenate into one
  /// list before resolution.
  ResolvedOptions resolve(const std::vector<std::string>& options) const;

  /// "name" or "name[key=value,...]" — the canonical spec of one configured
  /// process, used by config digests and the engine's JSON cells.
  std::string canonical_spec(const ResolvedOptions& options) const;
};

class ProtocolRegistry {
 public:
  /// The process-wide registry, with the built-ins pre-registered.
  static ProtocolRegistry& instance();

  /// Register an external factory (not owned; must outlive the registry).
  /// Duplicate names or aliases abort.
  void add(const ProcessFactory* factory);

  /// Lookup by canonical name or alias; nullptr when absent.
  const ProcessFactory* find(std::string_view name) const;

  /// Lookup that aborts with the registered-name list on failure — the
  /// fail-fast path for configuration errors.
  const ProcessFactory& require(std::string_view name) const;

  /// Canonical names in registration order.
  std::vector<std::string_view> names() const;

  /// Registration-order access (for completeness smokes over all
  /// implementations).
  const std::vector<const ProcessFactory*>& factories() const {
    return factories_;
  }

 private:
  std::vector<const ProcessFactory*> factories_;
};

// Built-in factory accessors, defined in each algorithm's .cpp file.
// instance() references them, which anchors those translation units into
// every binary that links the registry.
const ProcessFactory& ricart_agrawala_factory();
const ProcessFactory& lamport_factory();
const ProcessFactory& carvalho_roucairol_factory();
const ProcessFactory& fragile_factory();

}  // namespace graybox::me
