// Lamport mutual exclusion (paper Section 5.2 / Appendix), with the two
// modifications the paper makes so that it *everywhere* implements Lspec:
//
//   1. Insert keeps at most one queue entry per process, so "a new request
//      from j corrects an old and possibly incorrect request of j";
//   2. CS entry requires j's request to be <=-head — realized as "no OTHER
//      process has a queue entry earlier than REQj" — so a corrupted or
//      missing own-entry cannot wedge the entry condition.
//
// Whitebox variables beyond the TmeProcess base:
//   queue_       - request_queue.j: known outstanding requests, <= 1/process;
//   last_heard_[k] - the timestamp of the most recent message from k. The
//      paper's grant.j.k is derived from it:  grant.j.k == REQj lt
//      last_heard[k]  (k's reply/any later message acknowledges our
//      request). Together these realize the paper's definition
//
//        REQj lt j.REQk  ==  grant.j.k /\ (REQk not ahead of REQj in
//                                          request_queue.j)
//
// Stale-entry retirement (the executable form of modification 1): any
// message from k carrying timestamp rts retires k's queue entry if
// entry.ts lt rts. Justification: REQk is monotone and every message from
// k carries REQk at its send time, so entry.ts lt rts proves the entry no
// longer describes k's current request. The ablation option
// head_only_release disables retirement except via the paper's literal
// "dequeue when head matches" release path; bench_ablations (A2) shows the
// resulting wedge under entry corruption.
#pragma once

#include <optional>
#include <vector>

#include "me/tme_process.hpp"

namespace graybox::me {

struct LamportOptions {
  /// Ablation A2: only remove queue entries via exact-release matching, as
  /// a literal reading of Lamport's receive-release would. Breaks recovery
  /// from corrupted queue entries. Keep false outside the ablation bench.
  bool head_only_release = false;
};

class LamportMe : public TmeProcess {
 public:
  struct QueueEntry {
    ProcessId pid;
    clk::Timestamp ts;
    friend bool operator==(const QueueEntry&, const QueueEntry&) = default;
  };

  LamportMe(ProcessId pid, net::Network& net, LamportOptions options = {});

  bool knows_earlier(ProcessId k) const override;
  clk::Timestamp view_of(ProcessId k) const override;
  std::string_view algorithm() const override { return "lamport"; }

  /// request_queue.j, ordered earliest-first. (Exposed for diagnostics.)
  const std::vector<QueueEntry>& queue() const { return queue_; }

  /// grant.j.k in the paper's sense: has k acknowledged our request?
  bool granted(ProcessId k) const;

  clk::Timestamp last_heard(ProcessId k) const;

  // Surgical fault surface.
  void fault_set_last_heard(ProcessId k, clk::Timestamp ts);
  void fault_insert_queue_entry(ProcessId k, clk::Timestamp ts);
  void fault_clear_queue();

 protected:
  void do_request() override;
  void do_release(clk::Timestamp new_req) override;
  void handle(const net::Message& msg) override;
  void do_corrupt(Rng& rng) override;

 private:
  /// Modification 1: at most one entry per process; keeps queue_ sorted.
  void insert_entry(ProcessId k, clk::Timestamp ts);
  /// Remove every entry of k strictly older than rts (stale retirement).
  void retire_stale_entries(ProcessId k, clk::Timestamp rts);
  void remove_entries_of(ProcessId k);
  std::optional<clk::Timestamp> entry_of(ProcessId k) const;

  LamportOptions options_;
  std::vector<QueueEntry> queue_;
  std::vector<clk::Timestamp> last_heard_;
};

}  // namespace graybox::me
