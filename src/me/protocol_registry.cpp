#include "me/protocol_registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/contracts.hpp"

namespace graybox::me {

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "protocol registry: %s\n", message.c_str());
  std::abort();
}

}  // namespace

// --- ResolvedOptions --------------------------------------------------------

const std::string& ResolvedOptions::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  die("option '" + std::string(key) + "' not in schema");
}

bool ResolvedOptions::get_bool(std::string_view key) const {
  const std::string& v = get(key);
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  die("option '" + std::string(key) + "' expects a boolean, got '" + v + "'");
}

std::uint64_t ResolvedOptions::get_u64(std::string_view key) const {
  const std::string& v = get(key);
  if (v.empty()) die("option '" + std::string(key) + "' expects a number");
  std::uint64_t out = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') {
      die("option '" + std::string(key) + "' expects a number, got '" + v +
          "'");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

std::string ResolvedOptions::canonical() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ",";
    out += k + "=" + v;
  }
  return out;
}

// --- ProcessFactory ---------------------------------------------------------

ResolvedOptions ProcessFactory::resolve(
    const std::vector<std::string>& options) const {
  ResolvedOptions resolved;
  const std::vector<OptionSpec> schema = option_schema();
  resolved.entries_.reserve(schema.size());
  for (const OptionSpec& spec : schema)
    resolved.entries_.emplace_back(spec.key, spec.default_value);
  for (const std::string& kv : options) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      die("malformed option '" + kv + "' for '" + std::string(name()) +
          "' (expected key=value)");
    }
    const std::string key = kv.substr(0, eq);
    bool known = false;
    for (auto& [k, v] : resolved.entries_) {
      if (k == key) {
        v = kv.substr(eq + 1);  // later entries win
        known = true;
        break;
      }
    }
    if (!known) {
      std::string keys;
      for (const OptionSpec& spec : schema) {
        if (!keys.empty()) keys += ", ";
        keys += spec.key;
      }
      die("'" + std::string(name()) + "' has no option '" + key +
          "' (schema: " + (keys.empty() ? "<none>" : keys) + ")");
    }
  }
  return resolved;
}

std::string ProcessFactory::canonical_spec(
    const ResolvedOptions& options) const {
  std::string spec(name());
  const std::string opts = options.canonical();
  if (!opts.empty()) spec += "[" + opts + "]";
  return spec;
}

// --- ProtocolRegistry -------------------------------------------------------

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    // Referencing the accessors (not registrar objects) guarantees the
    // algorithm TUs are pulled out of static archives.
    r->add(&ricart_agrawala_factory());
    r->add(&lamport_factory());
    r->add(&carvalho_roucairol_factory());
    r->add(&fragile_factory());
    return r;
  }();
  return *registry;
}

void ProtocolRegistry::add(const ProcessFactory* factory) {
  GBX_EXPECTS(factory != nullptr);
  GBX_EXPECTS(!factory->name().empty());
  if (find(factory->name()) != nullptr) {
    die("duplicate registration of '" + std::string(factory->name()) + "'");
  }
  for (const std::string_view alias : factory->aliases()) {
    if (find(alias) != nullptr) {
      die("alias '" + std::string(alias) + "' of '" +
          std::string(factory->name()) + "' is already taken");
    }
  }
  factories_.push_back(factory);
}

const ProcessFactory* ProtocolRegistry::find(std::string_view name) const {
  for (const ProcessFactory* f : factories_) {
    if (f->name() == name) return f;
    for (const std::string_view alias : f->aliases()) {
      if (alias == name) return f;
    }
  }
  return nullptr;
}

const ProcessFactory& ProtocolRegistry::require(std::string_view name) const {
  if (const ProcessFactory* f = find(name)) return *f;
  std::string known;
  for (const ProcessFactory* f : factories_) {
    if (!known.empty()) known += ", ";
    known += std::string(f->name());
  }
  die("unknown algorithm '" + std::string(name) + "'; registered: " + known);
}

std::vector<std::string_view> ProtocolRegistry::names() const {
  std::vector<std::string_view> out;
  out.reserve(factories_.size());
  for (const ProcessFactory* f : factories_) out.push_back(f->name());
  return out;
}

}  // namespace graybox::me
