#include "me/tme_process.hpp"

#include "common/contracts.hpp"

namespace graybox::me {

const char* to_string(TmeState s) {
  switch (s) {
    case TmeState::kThinking:
      return "thinking";
    case TmeState::kHungry:
      return "hungry";
    case TmeState::kEating:
      return "eating";
  }
  return "corrupt-state";
}

TmeProcess::TmeProcess(ProcessId pid, net::Network& net)
    : pid_(pid), net_(net), lc_(pid) {
  GBX_EXPECTS(pid < net.size());
  // Init (Section 3.2): t.j, REQj = 0, ts.j = 0.
  req_ = clk::Timestamp{0, pid};
}

void TmeProcess::transition(TmeState to) {
  const TmeState from = state_;
  state_ = to;
  if (bus_ != nullptr) {
    obs::Event e;
    e.kind = to == TmeState::kEating     ? obs::EventKind::kCsEnter
             : from == TmeState::kEating ? obs::EventKind::kCsExit
                                         : obs::EventKind::kLocalStep;
    e.pid = pid_;
    e.a = static_cast<std::uint8_t>(from);
    e.b = static_cast<std::uint8_t>(to);
    if (prov_ != nullptr) e.taint = prov_->process_taint(pid_);
    bus_->record(e);
  }
  for (const auto& obs : state_observers_) obs(from, to);
}

void TmeProcess::refresh_thinking_req() {
  // CS Release Spec: "when t.j holds, REQj is always set to the timestamp
  // of the most current event in j".
  if (state_ == TmeState::kThinking) req_ = lc_.now();
}

void TmeProcess::maybe_enter() {
  // CS Entry Spec: h.j /\ (forall k != j : REQj lt j.REQk)  |->  e.j.
  if (state_ != TmeState::kHungry) return;
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k == pid_) continue;
    if (!knows_earlier(k)) return;
  }
  ++cs_entries_;
  transition(TmeState::kEating);
}

void TmeProcess::after_event() {
  refresh_thinking_req();
  maybe_enter();
  // Every program event ends here, so one bump covers request/release/
  // poll/on_message for the snapshot source's dirty tracking.
  mark_observably_changed();
}

void TmeProcess::request_cs() {
  if (state_ == TmeState::kThinking) {
    net_.local_event(pid_);  // monitor-side causality for the FCFS check
    lc_.tick();
    req_ = lc_.now();  // Request Spec: REQj is fixed for the whole request
    transition(TmeState::kHungry);
    do_request();
  }
  after_event();
}

void TmeProcess::release_cs() {
  if (state_ == TmeState::kEating) {
    net_.local_event(pid_);
    // The post-release REQ is the fresh clock value; do_release sends it in
    // replies/releases so receivers' views equal the new REQ (invariant I).
    const clk::Timestamp new_req = lc_.tick();
    do_release(new_req);
    transition(TmeState::kThinking);
    req_ = new_req;
  }
  after_event();
}

void TmeProcess::poll() { after_event(); }

void TmeProcess::on_message(const net::Message& msg) {
  // A tainted message contaminates the receiver before the handler runs:
  // whatever the handler does with the contents is downstream of the fault.
  if (prov_ != nullptr && !msg.taint.empty()) {
    prov_->merge_process(pid_, msg.taint);
  }
  // Timestamp Spec: logical clocks witness every received timestamp, which
  // is what lets corrupted sky-high timestamps propagate and be absorbed
  // instead of stalling the total order.
  lc_.witness(msg.ts);
  refresh_thinking_req();
  handle(msg);
  after_event();
}

void TmeProcess::send(ProcessId to, net::MsgType type, clk::Timestamp ts) {
  ++messages_sent_;
  net_.send(pid_, to, type, ts, /*from_wrapper=*/false);
}

clk::Timestamp TmeProcess::random_timestamp(Rng& rng) const {
  const int shift = static_cast<int>(rng.uniform(0, 63));
  clk::Timestamp ts;
  ts.counter = rng.next() >> shift;
  ts.pid = static_cast<ProcessId>(rng.index(peers()));
  return ts;
}

void TmeProcess::corrupt_base(Rng& rng) {
  state_ = static_cast<TmeState>(rng.uniform(0, 2));
  req_ = random_timestamp(rng);
  lc_.corrupt(rng.next() >> rng.uniform(0, 63));
}

}  // namespace graybox::me
