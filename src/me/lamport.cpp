#include "me/lamport.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "me/protocol_registry.hpp"

namespace graybox::me {

LamportMe::LamportMe(ProcessId pid, net::Network& net, LamportOptions options)
    : TmeProcess(pid, net), options_(options) {
  last_heard_.resize(net.size());
  for (ProcessId k = 0; k < net.size(); ++k)
    last_heard_[k] = clk::Timestamp{0, k};
}

std::optional<clk::Timestamp> LamportMe::entry_of(ProcessId k) const {
  // Corruption can plant duplicate entries for one process; report the
  // earliest, which is the one that matters for blocking.
  std::optional<clk::Timestamp> earliest;
  for (const auto& entry : queue_) {
    if (entry.pid != k) continue;
    if (!earliest || clk::lt(entry.ts, *earliest)) earliest = entry.ts;
  }
  return earliest;
}

bool LamportMe::knows_earlier(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  // REQj lt j.REQk  ==  grant.j.k /\ (REQk not ahead of REQj in the queue).
  if (!clk::lt(req(), last_heard_[k])) return false;
  for (const auto& entry : queue_) {
    if (entry.pid == k && clk::lt(entry.ts, req())) return false;
  }
  return true;
}

clk::Timestamp LamportMe::view_of(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  // Synthesized j.REQk: a queue entry is direct knowledge of k's request;
  // otherwise the best information is the latest timestamp heard from k.
  if (const auto entry = entry_of(k)) return *entry;
  return last_heard_[k];
}

bool LamportMe::granted(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return clk::lt(req(), last_heard_[k]);
}

clk::Timestamp LamportMe::last_heard(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return last_heard_[k];
}

void LamportMe::insert_entry(ProcessId k, clk::Timestamp ts) {
  // Modification 1: Insert keeps at most one request per process, so a new
  // request from k replaces (corrects) whatever entry k had.
  remove_entries_of(k);
  queue_.push_back(QueueEntry{k, ts});
  std::sort(queue_.begin(), queue_.end(),
            [](const QueueEntry& a, const QueueEntry& b) {
              return clk::lt(a.ts, b.ts);
            });
}

void LamportMe::remove_entries_of(ProcessId k) {
  std::erase_if(queue_, [k](const QueueEntry& e) { return e.pid == k; });
}

void LamportMe::retire_stale_entries(ProcessId k, clk::Timestamp rts) {
  // REQk is monotone and rts = REQk at the message's send time, so any
  // entry of k strictly older than rts cannot be k's current request.
  std::erase_if(queue_, [k, rts](const QueueEntry& e) {
    return e.pid == k && clk::lt(e.ts, rts);
  });
}

void LamportMe::do_request() {
  insert_entry(pid(), req());
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k != pid()) send(k, net::MsgType::kRequest, req());
  }
}

void LamportMe::do_release(clk::Timestamp new_req) {
  remove_entries_of(pid());
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k != pid()) send(k, net::MsgType::kRelease, new_req);
  }
}

void LamportMe::handle(const net::Message& msg) {
  if (msg.from >= peers() || msg.from == pid()) return;  // corrupt origin
  const ProcessId k = msg.from;
  switch (msg.type) {
    case net::MsgType::kRequest:
      // receive-request: record k's request and acknowledge immediately
      // with our current REQ (while thinking that is the fresh clock value,
      // which is above msg.ts because the clock just witnessed it).
      last_heard_[k] = msg.ts;
      insert_entry(k, msg.ts);
      send(k, net::MsgType::kReply, req());
      break;
    case net::MsgType::kReply:
      last_heard_[k] = msg.ts;
      if (!options_.head_only_release) retire_stale_entries(k, msg.ts);
      break;
    case net::MsgType::kRelease:
      last_heard_[k] = msg.ts;
      if (options_.head_only_release) {
        // Ablation A2: the literal dequeue — only the head entry of k is
        // removed. A corrupted entry that never reaches the head (or whose
        // owner never releases) wedges the queue forever.
        if (!queue_.empty() && queue_.front().pid == k)
          queue_.erase(queue_.begin());
      } else {
        retire_stale_entries(k, msg.ts);
      }
      break;
  }
}

void LamportMe::do_corrupt(Rng& rng) {
  corrupt_base(rng);
  for (ProcessId k = 0; k < peers(); ++k) {
    if (rng.chance(0.5)) last_heard_[k] = random_timestamp(rng);
  }
  // Arbitrary queue corruption: drop entries, plant fabricated ones
  // (possibly duplicated pids), scramble order.
  std::erase_if(queue_, [&rng](const QueueEntry&) { return rng.chance(0.5); });
  const std::size_t plant = rng.uniform(0, peers());
  for (std::size_t i = 0; i < plant; ++i) {
    QueueEntry entry;
    entry.pid = static_cast<ProcessId>(rng.index(peers()));
    entry.ts = random_timestamp(rng);
    queue_.push_back(entry);
  }
  for (std::size_t i = queue_.size(); i > 1; --i)
    std::swap(queue_[i - 1], queue_[rng.index(i)]);
}

void LamportMe::fault_set_last_heard(ProcessId k, clk::Timestamp ts) {
  GBX_EXPECTS(k < peers());
  last_heard_[k] = ts;
  mark_observably_changed();
}

void LamportMe::fault_insert_queue_entry(ProcessId k, clk::Timestamp ts) {
  GBX_EXPECTS(k < peers());
  queue_.push_back(QueueEntry{k, ts});
  mark_observably_changed();
}

void LamportMe::fault_clear_queue() {
  queue_.clear();
  mark_observably_changed();
}

// --- Registry factory -------------------------------------------------------

namespace {

class LamportFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "lamport"; }
  SpecConformance conformance() const override { return SpecConformance{}; }
  std::vector<OptionSpec> option_schema() const override {
    return {{"head_only_release", "0",
             "ablation A2: a RELEASE dequeues only the head entry (a "
             "corrupted entry can wedge the queue forever)"}};
  }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& options) const
      override {
    GBX_EXPECTS(n == net.size());
    LamportOptions opts;
    opts.head_only_release = options.get_bool("head_only_release");
    return std::make_unique<LamportMe>(pid, net, opts);
  }
};

}  // namespace

const ProcessFactory& lamport_factory() {
  static const LamportFactory factory;
  return factory;
}

}  // namespace graybox::me
