#include "me/ricart_agrawala.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "me/protocol_registry.hpp"

namespace graybox::me {

RicartAgrawala::RicartAgrawala(ProcessId pid, net::Network& net,
                               RicartAgrawalaOptions options)
    : TmeProcess(pid, net), options_(options), received_(net.size(), 0) {
  // Init: j.REQk = 0 for all k, received(j.REQk) = false.
  view_.resize(net.size());
  for (ProcessId k = 0; k < net.size(); ++k)
    view_[k] = clk::Timestamp{0, k};
}

bool RicartAgrawala::knows_earlier(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return clk::lt(req(), view_[k]);
}

clk::Timestamp RicartAgrawala::view_of(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return view_[k];
}

bool RicartAgrawala::received_pending(ProcessId k) const {
  GBX_EXPECTS(k < peers());
  return received_[k] != 0;
}

bool RicartAgrawala::deferred(ProcessId k) const {
  // deferred_set.j = { k : received(j.REQk) /\ REQj lt j.REQk }.
  return received_pending(k) && clk::lt(req(), view_[k]);
}

void RicartAgrawala::set_received(ProcessId k, bool value) {
  GBX_EXPECTS(k < peers());
  received_[k] = value ? 1 : 0;
}

void RicartAgrawala::update_view(ProcessId k, clk::Timestamp ts) {
  if (options_.monotone_views && !clk::lt(view_[k], ts)) return;
  view_[k] = ts;
}

void RicartAgrawala::do_request() {
  // Request Spec: h.j |-> send(REQj, j, k) for every k != j.
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k != pid()) send(k, net::MsgType::kRequest, req());
  }
}

void RicartAgrawala::do_release(clk::Timestamp new_req) {
  // Release CS: reply to everyone deferred while we held our request. The
  // reply carries the post-release REQ (== new clock value), so receivers'
  // views match our new REQ exactly.
  for (ProcessId k = 0; k < peers(); ++k) {
    if (k == pid()) continue;
    if (deferred(k)) {
      send(k, net::MsgType::kReply, new_req);
      received_[k] = 0;
    }
  }
}

void RicartAgrawala::handle_request(const net::Message& msg) {
  const ProcessId k = msg.from;
  // receive-request: record k's request, then reply now unless deferring.
  update_view(k, msg.ts);
  received_[k] = 1;
  // Defer exactly when we are competing (hungry or eating) with an earlier
  // request of our own; the derived deferred_set captures this, because
  // while thinking our REQ tracks the clock, which has just witnessed
  // msg.ts and is therefore above it.
  if (!deferred(k)) {
    send(k, net::MsgType::kReply, req());
    received_[k] = 0;
  }
}

void RicartAgrawala::handle_reply(const net::Message& msg) {
  // receive-reply: the reply carries the sender's current REQ; recording it
  // (direct assignment) establishes REQj lt j.REQk when the reply answers
  // our outstanding request, and heals corrupted views otherwise.
  update_view(msg.from, msg.ts);
}

void RicartAgrawala::handle(const net::Message& msg) {
  if (msg.from >= peers() || msg.from == pid()) return;  // corrupt origin
  switch (msg.type) {
    case net::MsgType::kRequest:
      handle_request(msg);
      break;
    case net::MsgType::kReply:
      handle_reply(msg);
      break;
    case net::MsgType::kRelease:
      // Ricart-Agrawala has no releases; one can only arrive through fault
      // injection. Ignoring it keeps the handler total.
      break;
  }
}

void RicartAgrawala::do_corrupt(Rng& rng) {
  corrupt_base(rng);
  for (ProcessId k = 0; k < peers(); ++k) {
    if (rng.chance(0.5)) view_[k] = random_timestamp(rng);
    if (rng.chance(0.5)) received_[k] = rng.chance(0.5) ? 1 : 0;
  }
}

void RicartAgrawala::fault_set_view(ProcessId k, clk::Timestamp ts) {
  GBX_EXPECTS(k < peers());
  view_[k] = ts;
  mark_observably_changed();
}

void RicartAgrawala::fault_set_received(ProcessId k, bool value) {
  GBX_EXPECTS(k < peers());
  received_[k] = value ? 1 : 0;
  mark_observably_changed();
}

// --- Registry factory -------------------------------------------------------

namespace {

class RicartAgrawalaFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "ricart-agrawala"; }
  std::vector<std::string_view> aliases() const override { return {"ra"}; }
  SpecConformance conformance() const override { return SpecConformance{}; }
  std::vector<OptionSpec> option_schema() const override {
    return {{"monotone_views", "0",
             "ablation A1: update views with max() instead of assignment "
             "(loses recovery from corrupted-high views)"}};
  }
  std::unique_ptr<TmeProcess> make(ProcessId pid, std::size_t n,
                                   net::Network& net, Rng& /*rng*/,
                                   const ResolvedOptions& options) const
      override {
    GBX_EXPECTS(n == net.size());
    RicartAgrawalaOptions opts;
    opts.monotone_views = options.get_bool("monotone_views");
    return std::make_unique<RicartAgrawala>(pid, net, opts);
  }
};

}  // namespace

const ProcessFactory& ricart_agrawala_factory() {
  static const RicartAgrawalaFactory factory;
  return factory;
}

}  // namespace graybox::me
