#include "me/client.hpp"

namespace graybox::me {

Client::Client(sim::Scheduler& sched, TmeProcess& process, ClientConfig config,
               Rng rng)
    : sched_(sched),
      process_(process),
      config_(config),
      rng_(rng),
      timer_(sched, config.poll_interval, [this] { on_poll(); }) {
  next_request_at_ = rng_.exponential(config_.think_mean);
}

void Client::start() { timer_.start(); }
void Client::stop() { timer_.stop(); }

void Client::on_poll() {
  const TmeState current = process_.state();
  if (current != observed_) {
    // A transition happened since the last poll — either a program
    // transition or a corruption jump. Re-derive the deadline that the
    // observed state calls for; stale deadlines for other states are moot.
    observed_ = current;
    switch (current) {
      case TmeState::kThinking:
        next_request_at_ = sched_.now() + rng_.exponential(config_.think_mean);
        release_at_ = kNever;
        break;
      case TmeState::kEating:
        release_at_ = sched_.now() + rng_.exponential(config_.eat_mean);
        break;
      case TmeState::kHungry:
        release_at_ = kNever;
        break;
    }
  }

  switch (current) {
    case TmeState::kThinking:
      if (requesting_ && config_.wants_cs && sched_.now() >= next_request_at_) {
        ++requests_issued_;
        process_.request_cs();
        // If entry was immediate (single-process system), fall through to
        // the next poll for the release deadline.
        observed_ = process_.state();
        if (observed_ == TmeState::kEating)
          release_at_ = sched_.now() + rng_.exponential(config_.eat_mean);
      }
      break;
    case TmeState::kEating:
      // CS Spec: eating is transient — from ANY state in which we observe
      // eating (including a corruption that faked it), a release follows.
      if (sched_.now() >= release_at_) {
        ++releases_issued_;
        process_.release_cs();
        observed_ = process_.state();
        next_request_at_ = sched_.now() + rng_.exponential(config_.think_mean);
      }
      break;
    case TmeState::kHungry:
      // Waiting on the protocol; poke the entry condition (this is what
      // resumes progress when a corruption invalidated cached decisions).
      process_.poll();
      observed_ = process_.state();
      if (observed_ == TmeState::kEating)
        release_at_ = sched_.now() + rng_.exponential(config_.eat_mean);
      break;
  }
}

}  // namespace graybox::me
