// Always-clean program conformance monitors.
//
// These check the clauses of Lspec that constrain *program transitions*
// (as opposed to global configurations): Structural/Flow Spec, Timestamp
// Spec's monotone-send obligation, and Communication Spec (FIFO). Fault
// actions are not program transitions — the paper's model treats them as
// external perturbations — so:
//
//   * StructuralSpecMonitor listens to the processes' state-change
//     callbacks, which fire only for program transitions. It must stay
//     clean in EVERY run, faulty or not: a violation is a bug in this
//     library's programs, never an injected fault.
//   * SendMonotonicityMonitor and FifoMonitor watch real message traffic;
//     channel faults do perturb what they see, so they are asserted clean
//     only in fault-free runs (interference-freedom and throughput
//     experiments) and during clean suffixes otherwise.
#pragma once

#include <vector>

#include "me/tme_process.hpp"
#include "net/network.hpp"
#include "spec/violation.hpp"

namespace graybox::lspec {

/// Structural/Flow Spec: the only legal program transitions are t->h
/// (request), h->e (CS entry), e->t (release).
class StructuralSpecMonitor {
 public:
  /// Subscribes to every process's state observer.
  StructuralSpecMonitor(const std::vector<me::TmeProcess*>& procs,
                        sim::Scheduler& sched);

  const std::vector<spec::Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::uint64_t transitions_checked() const { return transitions_checked_; }

 private:
  void on_transition(ProcessId pid, me::TmeState from, me::TmeState to);
  sim::Scheduler& sched_;
  std::vector<spec::Violation> violations_;
  std::uint64_t transitions_checked_ = 0;
};

/// Timestamp Spec consequence: each process's outgoing timestamps are
/// nondecreasing (logical clocks never run backwards across sends).
class SendMonotonicityMonitor {
 public:
  /// Subscribes to the network's send observer.
  SendMonotonicityMonitor(net::Network& net, sim::Scheduler& sched);

  const std::vector<spec::Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::uint64_t sends_checked() const { return sends_checked_; }

 private:
  void on_send(const net::Message& msg);
  sim::Scheduler& sched_;
  std::vector<clk::Timestamp> last_sent_;
  std::vector<char> seen_;
  std::vector<spec::Violation> violations_;
  std::uint64_t sends_checked_ = 0;
};

/// Communication Spec: channels are FIFO — per directed pair, delivery
/// order equals send order. Judged by the uids Network::send assigns;
/// fabricated (fault-injected) messages carry uid 0 and are skipped.
class FifoMonitor {
 public:
  FifoMonitor(net::Network& net, sim::Scheduler& sched);

  const std::vector<spec::Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::uint64_t deliveries_checked() const { return deliveries_checked_; }

 private:
  void on_delivery(const net::Message& msg);
  sim::Scheduler& sched_;
  std::size_t n_;
  std::vector<std::uint64_t> last_uid_;  // per directed pair
  std::vector<spec::Violation> violations_;
  std::uint64_t deliveries_checked_ = 0;
};

}  // namespace graybox::lspec
