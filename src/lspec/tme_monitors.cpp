#include "lspec/tme_monitors.hpp"

#include <string>

#include "common/contracts.hpp"

namespace graybox::lspec {
namespace {

std::string pid_list(const GlobalSnapshot& s, me::TmeState state) {
  std::string out;
  for (std::size_t j = 0; j < s.procs.size(); ++j) {
    if (s.procs[j].state != state) continue;
    if (!out.empty()) out += ",";
    out += std::to_string(j);
  }
  return out;
}

}  // namespace

// --- ME1 -------------------------------------------------------------------

Me1Monitor::Me1Monitor() : TmeMonitor("ME1") {}

void Me1Monitor::begin(SimTime t, const GlobalSnapshot& s0) { check(t, s0); }

void Me1Monitor::step(SimTime t, const GlobalSnapshot&,
                      const GlobalSnapshot& cur) {
  check(t, cur);
}

void Me1Monitor::step_delta(SimTime t, const GlobalSnapshot& prev,
                            const GlobalSnapshot& cur, std::size_t dirty) {
  if (!incremental_) {
    step(t, prev, cur);
    return;
  }
  // While in violation every event must re-report (the stabilization
  // detector needs the exact end time); while clean, an untouched snapshot
  // cannot start one. check() itself is O(1) on the clean path thanks to
  // the cached eating count.
  if (!in_violation_ && dirty == spec::kDirtyNone) return;
  check(t, cur);
}

void Me1Monitor::check(SimTime t, const GlobalSnapshot& s) {
  const bool bad = s.eating_count() > 1;
  if (bad) {
    if (!in_violation_) ++episodes_;
    report(t, "processes {" + pid_list(s, me::TmeState::kEating) +
                  "} eating simultaneously");
  }
  in_violation_ = bad;
}

// --- ME2 -------------------------------------------------------------------

Me2Monitor::Me2Monitor(std::size_t n)
    : TmeMonitor("ME2"), hungry_since_(n, kNever) {}

void Me2Monitor::begin(SimTime t, const GlobalSnapshot& s0) { scan(t, s0); }

void Me2Monitor::step(SimTime t, const GlobalSnapshot& prev,
                      const GlobalSnapshot& cur) {
  for (std::size_t j = 0; j < cur.procs.size(); ++j) step_row(t, prev, cur, j);
}

void Me2Monitor::step_row(SimTime t, const GlobalSnapshot& prev,
                          const GlobalSnapshot& cur, std::size_t j) {
  // Collapsed request+entry (t -> e whose own vector-clock component
  // advanced — a genuine request ticks it, a fault jump does not; see
  // the file comment): the request was served within one event, wait 0.
  if (prev.procs[j].state == me::TmeState::kThinking &&
      cur.procs[j].eating() && cur.vc_row(j)[j] > prev.vc_row(j)[j]) {
    ++served_;
    ++collapsed_entries_;
  }
  scan_row(t, cur, j);
}

void Me2Monitor::step_delta(SimTime t, const GlobalSnapshot& prev,
                            const GlobalSnapshot& cur, std::size_t dirty) {
  if (!incremental_) {
    step(t, prev, cur);
    return;
  }
  // All bookkeeping is per-row-local: an untouched row has no transition
  // to count and its hungry episode neither opens nor closes (hungry_since_
  // was set when the row last changed).
  if (dirty == spec::kDirtyNone) return;
  if (dirty == spec::kDirtyAll) {
    step(t, prev, cur);
    return;
  }
  step_row(t, prev, cur, dirty);
}

void Me2Monitor::scan(SimTime t, const GlobalSnapshot& s) {
  for (std::size_t j = 0; j < s.procs.size(); ++j) scan_row(t, s, j);
}

void Me2Monitor::scan_row(SimTime t, const GlobalSnapshot& s, std::size_t j) {
  const bool hungry = s.procs[j].hungry();
  if (hungry) {
    if (hungry_since_[j] == kNever) hungry_since_[j] = t;
    return;
  }
  if (hungry_since_[j] != kNever) {
    // Leaving hungry by a program transition means entering the CS
    // (h -> e); a fault jump elsewhere simply cancels the episode.
    if (s.procs[j].eating()) {
      ++served_;
      const SimTime wait = t - hungry_since_[j];
      if (wait > max_wait_) max_wait_ = wait;
    }
    hungry_since_[j] = kNever;
  }
}

void Me2Monitor::finish(SimTime, const GlobalSnapshot&) {
  for (std::size_t j = 0; j < hungry_since_.size(); ++j) {
    if (hungry_since_[j] == kNever) continue;
    starvation_at_end_ = true;
    report(hungry_since_[j],
           "process " + std::to_string(j) +
               " hungry at end of drained run (starvation/deadlock)");
  }
}

// --- ME3 -------------------------------------------------------------------

Me3Monitor::Me3Monitor(std::size_t n) : TmeMonitor("ME3"), open_(n) {}

Me3Monitor::Me3Monitor(std::size_t n, std::vector<char> fcfs_claims)
    : TmeMonitor("ME3"), open_(n), claims_(std::move(fcfs_claims)) {
  GBX_EXPECTS(claims_.empty() || claims_.size() == n);
}

void Me3Monitor::begin(SimTime t, const GlobalSnapshot& s0) {
  // Processes already hungry in the very first state are open requests
  // whose causal position is the current clock.
  for (std::size_t j = 0; j < s0.procs.size(); ++j) {
    if (s0.procs[j].hungry()) on_request(j, t, s0);
  }
}

void Me3Monitor::step(SimTime t, const GlobalSnapshot& prev,
                      const GlobalSnapshot& cur) {
  for (std::size_t j = 0; j < cur.procs.size(); ++j) step_row(t, prev, cur, j);
}

void Me3Monitor::step_row(SimTime t, const GlobalSnapshot& prev,
                          const GlobalSnapshot& cur, std::size_t j) {
  const me::TmeState before = prev.procs[j].state;
  const me::TmeState after = cur.procs[j].state;
  if (before == after) return;
  if (after == me::TmeState::kHungry) on_request(j, t, cur);
  if (after == me::TmeState::kEating) {
    // Collapsed request+entry (t -> e in one event): a genuine program
    // step ticks the process's own vector-clock component when it
    // requests (net::Network::local_event); a fault jump into the CS
    // does not. Register the implicit request so the FCFS check runs
    // against the entry's true causal position instead of treating it
    // as a spurious jump.
    if (!open_[j].open && cur.vc_row(j)[j] > prev.vc_row(j)[j])
      on_request(j, t, cur);
    on_entry(j, t, cur);
  }
  if (after == me::TmeState::kThinking) open_[j].open = false;
}

void Me3Monitor::step_delta(SimTime t, const GlobalSnapshot& prev,
                            const GlobalSnapshot& cur, std::size_t dirty) {
  if (!incremental_) {
    step(t, prev, cur);
    return;
  }
  // The monitor only acts on state *transitions*, which an untouched row
  // cannot have; on_request/on_entry read only row j plus the open-request
  // table, both unaffected by skipped clean rows.
  if (dirty == spec::kDirtyNone) return;
  if (dirty == spec::kDirtyAll) {
    step(t, prev, cur);
    return;
  }
  step_row(t, prev, cur, dirty);
}

namespace {

/// happened_before over flat component rows: componentwise <= with at
/// least one strict < (exactly clk::VectorClock::happened_before).
bool vc_happened_before(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b) {
  bool some_strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) some_strict = true;
  }
  return some_strict;
}

}  // namespace

void Me3Monitor::on_request(std::size_t j, SimTime t,
                            const GlobalSnapshot& cur) {
  open_[j].open = true;
  open_[j].at = t;
  const auto row = cur.vc_row(j);
  open_[j].vc.assign(row.begin(), row.end());
}

void Me3Monitor::on_entry(std::size_t j, SimTime t,
                          const GlobalSnapshot& cur) {
  ++entries_checked_;
  if (open_[j].open) {
    // FCFS: no peer with a request that happened-before ours may still be
    // waiting when we enter. A process that does not claim
    // SpecConformance::fcfs is exempt: its permission-backed fast path
    // overtakes by design, fault-free.
    if (!claims_fcfs(j)) {
      open_[j].open = false;
      return;
    }
    for (std::size_t k = 0; k < open_.size(); ++k) {
      if (k == j || !open_[k].open) continue;
      if (!cur.procs[k].hungry()) continue;
      if (open_[k].vc.size() == open_[j].vc.size() &&
          vc_happened_before(open_[k].vc, open_[j].vc)) {
        report(t, "process " + std::to_string(j) + " overtook process " +
                      std::to_string(k) +
                      " whose request happened-before");
      }
    }
  } else {
    // Entry without a recorded request: a fault jump straight into the CS.
    // It overtakes every open request (there is no order to respect).
    for (std::size_t k = 0; k < open_.size(); ++k) {
      if (k == j || !open_[k].open) continue;
      if (!cur.procs[k].hungry()) continue;
      report(t, "process " + std::to_string(j) +
                    " entered the CS without a request while process " +
                    std::to_string(k) + " was waiting");
      break;  // one report per spurious entry suffices
    }
  }
  open_[j].open = false;
}

// --- Invariant I -------------------------------------------------------------

InvariantIMonitor::InvariantIMonitor() : TmeMonitor("InvariantI") {}

InvariantIMonitor::InvariantIMonitor(std::vector<char> claims)
    : TmeMonitor("InvariantI"), claims_(std::move(claims)) {}

void InvariantIMonitor::begin(SimTime t, const GlobalSnapshot& s0) {
  rebuild_counts(s0);
  check(t, s0);
}

void InvariantIMonitor::step(SimTime t, const GlobalSnapshot&,
                             const GlobalSnapshot& cur) {
  check(t, cur);
}

void InvariantIMonitor::step_delta(SimTime t, const GlobalSnapshot& prev,
                                   const GlobalSnapshot& cur,
                                   std::size_t dirty) {
  if (!incremental_) {
    step(t, prev, cur);
    return;
  }
  // While in violation every event must re-report (exact violation end
  // time); the maintained per-believer bad counts make both the fold and
  // the report O(N), so violating windows no longer pay the O(N²) sweep.
  if (dirty == spec::kDirtyAll) {
    rebuild_counts(cur);
    check(t, cur);
    return;
  }
  if (dirty != spec::kDirtyNone) fold_dirty_row(prev, cur, dirty);
  if (dirty == spec::kDirtyNone && !in_violation_) return;
  report_current(t, cur);
}

void InvariantIMonitor::rebuild_counts(const GlobalSnapshot& s) {
  const std::size_t n = s.procs.size();
  bad_k_count_.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (!claims(j)) continue;
    std::uint32_t c = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j || !s.knows_earlier(j, k)) continue;
      if (!clk::lt(s.procs[j].req, s.procs[k].req)) ++c;
    }
    bad_k_count_[j] = c;
  }
}

void InvariantIMonitor::fold_dirty_row(const GlobalSnapshot& prev,
                                       const GlobalSnapshot& cur,
                                       std::size_t m) {
  const std::size_t n = cur.procs.size();
  if (bad_k_count_.size() != n) {
    rebuild_counts(cur);
    return;
  }
  // m as believer: REQm and knows row m both changed — recompute its count.
  if (claims(m)) {
    std::uint32_t c = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == m || !cur.knows_earlier(m, k)) continue;
      if (!clk::lt(cur.procs[m].req, cur.procs[k].req)) ++c;
    }
    bad_k_count_[m] = c;
  }
  // m as believed-about: for every other believer j, only the (j, m) term
  // can have changed — knows_earlier(j, m) and REQj are in clean row j.
  for (std::size_t j = 0; j < n; ++j) {
    if (j == m || !claims(j)) continue;
    if (!cur.knows_earlier(j, m)) continue;
    const bool was_bad = !clk::lt(cur.procs[j].req, prev.procs[m].req);
    const bool is_bad = !clk::lt(cur.procs[j].req, cur.procs[m].req);
    if (was_bad != is_bad) bad_k_count_[j] += is_bad ? 1u : -1u;
  }
}

void InvariantIMonitor::report_current(SimTime t, const GlobalSnapshot& s) {
  bool bad = false;
  for (std::size_t j = 0; j < s.procs.size() && !bad; ++j) {
    if (!s.procs[j].hungry()) continue;
    if (j < claims_.size() && claims_[j] == 0) continue;
    if (bad_k_count_[j] == 0) continue;
    for (std::size_t k = 0; k < s.procs.size(); ++k) {
      if (k == j || !s.knows_earlier(j, k)) continue;
      if (!clk::lt(s.procs[j].req, s.procs[k].req)) {
        bad = true;
        report(t, "process " + std::to_string(j) + " believes " +
                      s.procs[j].req.to_string() + " lt REQ(" +
                      std::to_string(k) + ")=" + s.procs[k].req.to_string() +
                      ", which is false");
        break;
      }
    }
  }
  in_violation_ = bad;
}

void InvariantIMonitor::check(SimTime t, const GlobalSnapshot& s) {
  bool bad = false;
  for (std::size_t j = 0; j < s.procs.size() && !bad; ++j) {
    // The belief only matters while competing: Lspec reads the views in
    // CS Entry Spec's guard, which is conjoined with h.j.
    if (!s.procs[j].hungry()) continue;
    // A process that does not claim view_entry_truth (its entry guard is
    // permission-backed, not view-backed) is exempt; MutualBeliefMonitor
    // covers it instead.
    if (j < claims_.size() && claims_[j] == 0) continue;
    for (std::size_t k = 0; k < s.procs.size(); ++k) {
      if (k == j || !s.knows_earlier(j, k)) continue;
      if (!clk::lt(s.procs[j].req, s.procs[k].req)) {
        bad = true;
        // Report every bad state (the base class caps retention but keeps
        // exact first/last times), so the stabilization detector sees when
        // the violation *ended*, not just when it began.
        report(t, "process " + std::to_string(j) + " believes " +
                      s.procs[j].req.to_string() + " lt REQ(" +
                      std::to_string(k) + ")=" + s.procs[k].req.to_string() +
                      ", which is false");
        break;
      }
    }
  }
  in_violation_ = bad;
}

// --- Mutual Belief -----------------------------------------------------------

MutualBeliefMonitor::MutualBeliefMonitor() : TmeMonitor("MutualBelief") {}

void MutualBeliefMonitor::begin(SimTime t, const GlobalSnapshot& s0) {
  check(t, s0);
}

void MutualBeliefMonitor::step(SimTime t, const GlobalSnapshot&,
                               const GlobalSnapshot& cur) {
  check(t, cur);
}

void MutualBeliefMonitor::step_delta(SimTime t, const GlobalSnapshot& prev,
                                     const GlobalSnapshot& cur,
                                     std::size_t dirty) {
  if (!incremental_) {
    step(t, prev, cur);
    return;
  }
  if (in_violation_ || dirty == spec::kDirtyAll) {
    check(t, cur);
    return;
  }
  if (dirty == spec::kDirtyNone) return;
  if (row_may_violate(cur, dirty)) check(t, cur);
}

bool MutualBeliefMonitor::row_may_violate(const GlobalSnapshot& s,
                                          std::size_t m) const {
  // From a clean state, a new mutually-believing pair must involve the one
  // changed row.
  if (!s.procs[m].hungry()) return false;
  for (std::size_t k = 0; k < s.procs.size(); ++k) {
    if (k == m || !s.procs[k].hungry()) continue;
    if (s.knows_earlier(m, k) && s.knows_earlier(k, m)) return true;
  }
  return false;
}

void MutualBeliefMonitor::check(SimTime t, const GlobalSnapshot& s) {
  bool bad = false;
  for (std::size_t j = 0; j < s.procs.size() && !bad; ++j) {
    if (!s.procs[j].hungry()) continue;
    for (std::size_t k = j + 1; k < s.procs.size(); ++k) {
      if (!s.procs[k].hungry()) continue;
      if (s.knows_earlier(j, k) && s.knows_earlier(k, j)) {
        bad = true;
        // Like Invariant I, report every bad state so the stabilization
        // detector sees when the violation ended.
        report(t, "processes " + std::to_string(j) + " and " +
                      std::to_string(k) +
                      " each believe their request precedes the other's");
        break;
      }
    }
  }
  if (bad && !in_violation_) ++episodes_;
  in_violation_ = bad;
}

// --- Battery -----------------------------------------------------------------

TmeMonitors install_tme_monitors(TmeMonitorSet& set, std::size_t n) {
  return install_tme_monitors(set, n, {});
}

TmeMonitors install_tme_monitors(TmeMonitorSet& set, std::size_t n,
                                 std::vector<char> view_entry_truth_claims,
                                 std::vector<char> fcfs_claims) {
  bool all_claim = true;
  for (char c : view_entry_truth_claims)
    if (c == 0) all_claim = false;
  bool all_fcfs = true;
  for (char c : fcfs_claims)
    if (c == 0) all_fcfs = false;
  TmeMonitors handles;
  handles.me1 = &set.add<Me1Monitor>();
  handles.me2 = &set.add<Me2Monitor>(n);
  handles.me3 = all_fcfs ? &set.add<Me3Monitor>(n)
                         : &set.add<Me3Monitor>(n, std::move(fcfs_claims));
  if (all_claim) {
    handles.invariant_i = &set.add<InvariantIMonitor>();
  } else {
    handles.invariant_i =
        &set.add<InvariantIMonitor>(std::move(view_entry_truth_claims));
    handles.mutual_belief = &set.add<MutualBeliefMonitor>();
  }
  return handles;
}

}  // namespace graybox::lspec
