// Monitors for TME Spec (Section 3.1) and for the invariant the paper's
// Theorem A.1 derives from Lspec. These are the monitors whose violations
// are *expected* to occur transiently under faults and to cease after
// stabilization; the stabilization detector (src/core) measures the gap
// between the last injected fault and their last violation.
//
//   ME1 (Mutual Exclusion)      - at most one process eats at a time;
//   ME2 (Starvation Freedom)    - h.j |-> e.j, monitored as: a process
//                                 observed hungry eventually stops being
//                                 hungry, and in a drained run nobody is
//                                 left hungry at the end. (Program
//                                 transitions leave hungry only by eating,
//                                 so for program behaviour this coincides
//                                 with ME2; fault jumps h -> t are not
//                                 counted as service.)
//   ME3 (First-Come First-Serve)- if j's request happened-before k's
//                                 request, j enters the CS first. Decided
//                                 exactly with monitor-side vector clocks.
//   Invariant I (Theorem A.1)   - the safety-relevant projection of
//                                 "j.REQk = REQk \/ j.REQk lt REQk":
//                                 whenever a process *believes* its request
//                                 is earlier than k's (knows_earlier), the
//                                 requests' true timestamps agree.
#pragma once

#include "lspec/snapshot.hpp"
#include "spec/monitor.hpp"
#include "spec/unity.hpp"

namespace graybox::lspec {

using TmeMonitor = spec::Monitor<GlobalSnapshot>;
using TmeMonitorSet = spec::MonitorSet<GlobalSnapshot>;

/// ME1: (forall j,k :: e.j /\ e.k => j = k).
class Me1Monitor : public TmeMonitor {
 public:
  Me1Monitor();
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;

  /// Number of distinct overlap episodes (entries into violation).
  std::uint64_t episodes() const { return episodes_; }

 private:
  void check(SimTime t, const GlobalSnapshot& s);
  bool in_violation_ = false;
  std::uint64_t episodes_ = 0;
};

/// ME2: starvation freedom, with service statistics.
class Me2Monitor : public TmeMonitor {
 public:
  explicit Me2Monitor(std::size_t n);
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void finish(SimTime t, const GlobalSnapshot& last) override;

  std::uint64_t served() const { return served_; }
  /// Longest completed hungry->eating wait observed.
  SimTime max_wait() const { return max_wait_; }
  /// True iff the drained run ended with someone still hungry (deadlock or
  /// starvation — the failure mode of Section 4's scenario).
  bool starvation_at_end() const { return starvation_at_end_; }

 private:
  void scan(SimTime t, const GlobalSnapshot& s);
  std::vector<SimTime> hungry_since_;
  std::uint64_t served_ = 0;
  SimTime max_wait_ = 0;
  bool starvation_at_end_ = false;
};

/// ME3: FCFS via happened-before on request events.
class Me3Monitor : public TmeMonitor {
 public:
  explicit Me3Monitor(std::size_t n);
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;

  std::uint64_t entries_checked() const { return entries_checked_; }

 private:
  struct OpenRequest {
    bool open = false;
    SimTime at = 0;
    /// Flat vector-clock components at request time (copied from the
    /// snapshot's vc row; the allocation is reused across requests).
    std::vector<std::uint64_t> vc;
  };
  void on_request(std::size_t j, SimTime t, const GlobalSnapshot& cur);
  void on_entry(std::size_t j, SimTime t, const GlobalSnapshot& cur);

  std::vector<OpenRequest> open_;
  std::uint64_t entries_checked_ = 0;
};

/// Invariant I (relation form): knows_earlier(j,k) => REQj lt REQk.
class InvariantIMonitor : public TmeMonitor {
 public:
  InvariantIMonitor();
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;

 private:
  void check(SimTime t, const GlobalSnapshot& s);
  bool in_violation_ = false;
};

/// Convenience: populate a monitor set with the full TME battery. Returns
/// references to the individual monitors for stats queries.
struct TmeMonitors {
  Me1Monitor* me1 = nullptr;
  Me2Monitor* me2 = nullptr;
  Me3Monitor* me3 = nullptr;
  InvariantIMonitor* invariant_i = nullptr;
};
TmeMonitors install_tme_monitors(TmeMonitorSet& set, std::size_t n);

}  // namespace graybox::lspec
