// Monitors for TME Spec (Section 3.1) and for the invariant the paper's
// Theorem A.1 derives from Lspec. These are the monitors whose violations
// are *expected* to occur transiently under faults and to cease after
// stabilization; the stabilization detector (src/core) measures the gap
// between the last injected fault and their last violation.
//
//   ME1 (Mutual Exclusion)      - at most one process eats at a time;
//   ME2 (Starvation Freedom)    - h.j |-> e.j, monitored as: a process
//                                 observed hungry eventually stops being
//                                 hungry, and in a drained run nobody is
//                                 left hungry at the end. (Program
//                                 transitions leave hungry only by eating,
//                                 so for program behaviour this coincides
//                                 with ME2; fault jumps h -> t are not
//                                 counted as service.)
//   ME3 (First-Come First-Serve)- if j's request happened-before k's
//                                 request, j enters the CS first. Decided
//                                 exactly with monitor-side vector clocks.
//   Invariant I (Theorem A.1)   - the safety-relevant projection of
//                                 "j.REQk = REQk \/ j.REQk lt REQk":
//                                 whenever a process *believes* its request
//                                 is earlier than k's (knows_earlier), the
//                                 requests' true timestamps agree.
//   Mutual Belief               - the pairwise weakening of Invariant I for
//                                 implementations whose entry guard rests
//                                 on retained permissions rather than views
//                                 (Carvalho-Roucairol): two competing
//                                 processes must never simultaneously
//                                 believe they precede each other. Installed
//                                 only when some process's factory opts out
//                                 of Invariant I's per-view truth
//                                 (SpecConformance::view_entry_truth).
//
// Collapsed entries: a process whose entry guard already holds when it
// requests enters the CS within the same simulator event, so monitors
// observe t -> e directly (Carvalho-Roucairol does this on every retained
// permission; Ricart-Agrawala only from corrupted-high views). ME2 and ME3
// distinguish such genuine collapsed request+entry steps from fault jumps
// into the CS by the monitor-side vector clock: a real request ticks the
// process's own component (net::Network::local_event), a fault does not.
#pragma once

#include "lspec/snapshot.hpp"
#include "spec/monitor.hpp"
#include "spec/unity.hpp"

namespace graybox::lspec {

using TmeMonitor = spec::Monitor<GlobalSnapshot>;
using TmeMonitorSet = spec::MonitorSet<GlobalSnapshot>;

/// ME1: (forall j,k :: e.j /\ e.k => j = k).
class Me1Monitor : public TmeMonitor {
 public:
  Me1Monitor();
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override;

  /// Reference mode: false routes every event through the full step()
  /// (the pre-incremental behaviour); verdict-identical by contract.
  void set_incremental(bool v) { incremental_ = v; }

  /// Number of distinct overlap episodes (entries into violation).
  std::uint64_t episodes() const { return episodes_; }

 private:
  void check(SimTime t, const GlobalSnapshot& s);
  bool in_violation_ = false;
  bool incremental_ = true;
  std::uint64_t episodes_ = 0;
};

/// ME2: starvation freedom, with service statistics.
class Me2Monitor : public TmeMonitor {
 public:
  explicit Me2Monitor(std::size_t n);
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override;
  void finish(SimTime t, const GlobalSnapshot& last) override;

  void set_incremental(bool v) { incremental_ = v; }

  std::uint64_t served() const { return served_; }
  /// Collapsed t -> e entries counted as service (wait 0); see the file
  /// comment. A subset of served().
  std::uint64_t collapsed_entries() const { return collapsed_entries_; }
  /// Longest completed hungry->eating wait observed.
  SimTime max_wait() const { return max_wait_; }
  /// True iff the drained run ended with someone still hungry (deadlock or
  /// starvation — the failure mode of Section 4's scenario).
  bool starvation_at_end() const { return starvation_at_end_; }

 private:
  void scan(SimTime t, const GlobalSnapshot& s);
  void step_row(SimTime t, const GlobalSnapshot& prev,
                const GlobalSnapshot& cur, std::size_t j);
  void scan_row(SimTime t, const GlobalSnapshot& s, std::size_t j);
  bool incremental_ = true;
  std::vector<SimTime> hungry_since_;
  std::uint64_t served_ = 0;
  std::uint64_t collapsed_entries_ = 0;
  SimTime max_wait_ = 0;
  bool starvation_at_end_ = false;
};

/// ME3: FCFS via happened-before on request events.
///
/// `fcfs_claims` (optional) marks which processes assert
/// SpecConformance::fcfs. An entry by a non-claiming process
/// (Carvalho-Roucairol, whose leased fast path deliberately overtakes
/// causally earlier requests) is exempt from the overtake check; entries
/// without a recorded request — fault jumps into the CS — are reported for
/// every process. Empty means every process claims.
class Me3Monitor : public TmeMonitor {
 public:
  explicit Me3Monitor(std::size_t n);
  Me3Monitor(std::size_t n, std::vector<char> fcfs_claims);
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override;

  void set_incremental(bool v) { incremental_ = v; }

  std::uint64_t entries_checked() const { return entries_checked_; }

 private:
  struct OpenRequest {
    bool open = false;
    SimTime at = 0;
    /// Flat vector-clock components at request time (copied from the
    /// snapshot's vc row; the allocation is reused across requests).
    std::vector<std::uint64_t> vc;
  };
  void on_request(std::size_t j, SimTime t, const GlobalSnapshot& cur);
  void on_entry(std::size_t j, SimTime t, const GlobalSnapshot& cur);
  void step_row(SimTime t, const GlobalSnapshot& prev,
                const GlobalSnapshot& cur, std::size_t j);
  bool claims_fcfs(std::size_t j) const {
    return claims_.empty() || claims_[j] != 0;
  }

  std::vector<OpenRequest> open_;
  std::vector<char> claims_;
  bool incremental_ = true;
  std::uint64_t entries_checked_ = 0;
};

/// Invariant I (relation form): knows_earlier(j,k) => REQj lt REQk.
///
/// `claims` (optional) marks which processes assert
/// SpecConformance::view_entry_truth; the belief of a process that does not
/// claim it (Carvalho-Roucairol, whose entry guard is permission-backed) is
/// exempt from the per-view check. Empty means every process claims.
class InvariantIMonitor : public TmeMonitor {
 public:
  InvariantIMonitor();
  explicit InvariantIMonitor(std::vector<char> claims);
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override;

  void set_incremental(bool v) { incremental_ = v; }

 private:
  void check(SimTime t, const GlobalSnapshot& s);
  /// Recompute bad_k_count_ from scratch (O(N²)); begin and kDirtyAll only.
  void rebuild_counts(const GlobalSnapshot& s);
  /// Fold one dirty row into bad_k_count_: row m's believer count is
  /// recomputed (its req and knows row both changed, O(N)) and every other
  /// believer j adjusts only its (j, m) term — knows_earlier(j, m) and
  /// REQj live in row j, which is clean, so the term's old value is
  /// computable from `prev` in O(1). O(N) total per dirty row.
  void fold_dirty_row(const GlobalSnapshot& prev, const GlobalSnapshot& cur,
                      std::size_t m);
  /// Report exactly what check() would — the first hungry claiming believer
  /// with a bad k, and its first bad k — but gated by the maintained
  /// counts, so a violating event costs O(N) instead of O(N²).
  void report_current(SimTime t, const GlobalSnapshot& s);
  bool claims(std::size_t j) const {
    return j >= claims_.size() || claims_[j] != 0;
  }
  std::vector<char> claims_;
  /// Per believer j (claiming only): #{k != j : knows_earlier(j, k) and
  /// not REQj lt REQk}. Maintained for every j regardless of h.j — the
  /// hungry gate is applied at report time, matching check()'s scan.
  std::vector<std::uint32_t> bad_k_count_;
  bool in_violation_ = false;
  bool incremental_ = true;
};

/// Mutual Belief: (forall j != k :: h.j /\ h.k =>
/// !(knows_earlier(j,k) /\ knows_earlier(k,j))). The pairwise weakening of
/// Invariant I that every everywhere-implementation must satisfy regardless
/// of how its entry guard is backed: two competing processes believing they
/// precede each other is precisely the double-permission state from which
/// bare Carvalho-Roucairol violates ME1. Installed alongside Invariant I
/// when some process opts out of view_entry_truth.
class MutualBeliefMonitor : public TmeMonitor {
 public:
  MutualBeliefMonitor();
  void begin(SimTime t, const GlobalSnapshot& s0) override;
  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override;
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override;

  void set_incremental(bool v) { incremental_ = v; }

  /// Distinct entries into violation (mirrors Me1Monitor::episodes).
  std::uint64_t episodes() const { return episodes_; }

 private:
  void check(SimTime t, const GlobalSnapshot& s);
  bool row_may_violate(const GlobalSnapshot& s, std::size_t m) const;
  bool in_violation_ = false;
  bool incremental_ = true;
  std::uint64_t episodes_ = 0;
};

/// Convenience: populate a monitor set with the full TME battery. Returns
/// references to the individual monitors for stats queries.
struct TmeMonitors {
  Me1Monitor* me1 = nullptr;
  Me2Monitor* me2 = nullptr;
  Me3Monitor* me3 = nullptr;
  InvariantIMonitor* invariant_i = nullptr;
  /// Non-null only when the claim-aware overload below installed it.
  MutualBeliefMonitor* mutual_belief = nullptr;
};
TmeMonitors install_tme_monitors(TmeMonitorSet& set, std::size_t n);

/// Claim-aware battery: `view_entry_truth_claims[j]` is process j's
/// SpecConformance::view_entry_truth and `fcfs_claims[j]` its
/// SpecConformance::fcfs. When every process claims (or a vector is empty)
/// the corresponding monitor is exactly the one from the 4-monitor battery
/// above; otherwise Invariant I / ME3 exempt the non-claiming processes and
/// a MutualBeliefMonitor is appended as the 5th monitor (for
/// view_entry_truth opt-outs only).
TmeMonitors install_tme_monitors(TmeMonitorSet& set, std::size_t n,
                                 std::vector<char> view_entry_truth_claims,
                                 std::vector<char> fcfs_claims = {});

}  // namespace graybox::lspec
