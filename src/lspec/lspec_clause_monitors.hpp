// Lspec, clause by clause, as runtime monitors (paper Section 3.2).
//
// The TME Spec monitors (tme_monitors.hpp) judge the *derived* property the
// end user cares about; the monitors here judge the clauses of Lspec
// itself, built from the generic UNITY combinators in spec/unity.hpp:
//
//   Flow Spec       - per process, the state flows t -> h -> e -> t: as a
//                     global-state property, "h.j unless (e.j \/ t.j)" and
//                     its rotations, checked as legal snapshot transitions.
//                     (Fault jumps violate it transiently; program steps
//                     never do.)
//   CS Spec         - e.j |-> ~e.j: eating is transient (per process).
//   Request Spec    - (h.j => REQj = REQ'j): the request timestamp is
//                     frozen for the lifetime of a request.
//   CS Release Spec - t.j => REQj = ts.j: while thinking, REQ tracks the
//                     clock of the most recent event.
//   CS Entry Spec   - h.j /\ (forall k: REQj lt j.REQk) |-> e.j: an
//                     enabled entry is eventually taken.
//
// (Reply Spec and Timestamp/Communication Spec are message-level and live
// in program_monitors.hpp / the FIFO monitor.)
//
// Like the TME monitors, these are expected to be violated transiently by
// faults and clean afterwards: they witness, clause by clause, WHERE a
// fault hit and when Lspec conformance resumed — which is the graybox
// method's own diagnostic granularity.
#pragma once

#include "lspec/snapshot.hpp"
#include "lspec/tme_monitors.hpp"

namespace graybox::lspec {

/// Handles to the installed per-clause monitors (one entry per clause; the
/// per-process instances are folded into each monitor).
struct LspecClauseMonitors {
  spec::Monitor<GlobalSnapshot>* flow = nullptr;
  spec::Monitor<GlobalSnapshot>* cs_transient = nullptr;
  spec::Monitor<GlobalSnapshot>* request_frozen = nullptr;
  spec::Monitor<GlobalSnapshot>* release_tracks_clock = nullptr;
  spec::Monitor<GlobalSnapshot>* entry_taken = nullptr;

  /// Total violations across all clauses.
  std::uint64_t total_violations() const;
  /// Latest violation time across all clauses; kNever if clean.
  SimTime last_violation() const;
};

/// Install the per-clause battery into `set` for an n-process system.
LspecClauseMonitors install_lspec_clause_monitors(TmeMonitorSet& set,
                                                  std::size_t n);

}  // namespace graybox::lspec
