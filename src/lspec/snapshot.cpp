#include "lspec/snapshot.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::lspec {

void GlobalSnapshot::resize(std::size_t n) {
  procs.assign(n, ProcessSnapshot{});
  row_slot_.assign(n, -1);
  knows_pool_.clear();
  vc_pool_.clear();
  zero_vc_row_.assign(n, 0);
  counts_valid_ = false;
  eating_count_ = 0;
  hungry_count_ = 0;
  knows_true_.clear();
}

std::int32_t GlobalSnapshot::materialize_row(std::size_t j) {
  GBX_EXPECTS(j < procs.size());
  std::int32_t slot = row_slot_[j];
  if (slot >= 0) return slot;
  const std::size_t n = procs.size();
  slot = static_cast<std::int32_t>(knows_pool_.size() / n);
  knows_pool_.resize(knows_pool_.size() + n, 0);
  vc_pool_.resize(vc_pool_.size() + n, 0);
  row_slot_[j] = slot;
  return slot;
}

void GlobalSnapshot::set_knows_earlier(std::size_t j, std::size_t k,
                                       bool value) {
  char& cell = knows_row_mut(j)[k];
  const char next = value ? 1 : 0;
  if (counts_valid_ && next != cell)
    knows_true_[j] = static_cast<std::uint16_t>(knows_true_[j] + next -
                                                cell);
  cell = next;
}

void GlobalSnapshot::set_vc(std::size_t j, const clk::VectorClock& vc) {
  GBX_EXPECTS(j < procs.size());
  GBX_EXPECTS(vc.size() == procs.size());
  const auto& components = vc.components();
  std::copy(components.begin(), components.end(), vc_row_mut(j));
}

std::size_t GlobalSnapshot::eating_count() const {
  if (counts_valid_) return eating_count_;
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.eating()) ++count;
  return count;
}

std::size_t GlobalSnapshot::hungry_count() const {
  if (counts_valid_) return hungry_count_;
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.hungry()) ++count;
  return count;
}

bool GlobalSnapshot::knows_all_earlier(std::size_t j) const {
  if (counts_valid_)
    return static_cast<std::size_t>(knows_true_[j]) + 1 == procs.size();
  for (std::size_t k = 0; k < procs.size(); ++k) {
    if (k != j && !knows_earlier(j, k)) return false;
  }
  return true;
}

void GlobalSnapshot::enable_counts() {
  const std::size_t n = procs.size();
  eating_count_ = 0;
  hungry_count_ = 0;
  knows_true_.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (procs[j].eating()) ++eating_count_;
    if (procs[j].hungry()) ++hungry_count_;
    std::uint16_t row = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (knows_earlier(j, k)) ++row;
    knows_true_[j] = row;
  }
  counts_valid_ = true;
}

SnapshotSource::SnapshotSource(std::vector<me::TmeProcess*> processes,
                               const net::Network& net)
    : processes_(std::move(processes)), net_(net) {
  GBX_EXPECTS(!processes_.empty());
  GBX_EXPECTS(processes_.size() == net_.size());
  for (const auto* p : processes_) GBX_EXPECTS(p != nullptr);
  const std::size_t n = processes_.size();
  for (std::size_t b = 0; b < 2; ++b) {
    buffers_[b].resize(n);
    buffers_[b].enable_counts();
    row_versions_[b].assign(n, 0);
  }
}

void SnapshotSource::write_row(GlobalSnapshot& snap, std::size_t j) const {
  const me::TmeProcess& p = *processes_[j];
  ProcessSnapshot& ps = snap.procs[j];
  const me::TmeState next_state = p.state();
  if (snap.counts_valid_ && next_state != ps.state) {
    snap.eating_count_ += static_cast<std::size_t>(next_state ==
                                                   me::TmeState::kEating) -
                          static_cast<std::size_t>(ps.eating());
    snap.hungry_count_ += static_cast<std::size_t>(next_state ==
                                                   me::TmeState::kHungry) -
                          static_cast<std::size_t>(ps.hungry());
  }
  ps.state = next_state;
  ps.req = p.req();
  ps.clock_now = p.clock().now();
  snap.set_vc(j, net_.vclock(static_cast<ProcessId>(j)));
  char* knows = snap.knows_row_mut(j);
  const std::size_t n = processes_.size();
  std::uint16_t row_true = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const char v =
        (k != j && p.knows_earlier(static_cast<ProcessId>(k))) ? 1 : 0;
    knows[k] = v;
    row_true = static_cast<std::uint16_t>(row_true + v);
  }
  if (snap.counts_valid_) snap.knows_true_[j] = row_true;
}

const GlobalSnapshot& SnapshotSource::capture(SimTime t) {
  const std::size_t n = processes_.size();
  const std::size_t back = 1 - cur_;
  GlobalSnapshot& snap = buffers_[back];
  snap.time = t;
  snap.in_flight = net_.in_flight();

  std::size_t dirty_count = 0;
  std::size_t dirty_id = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t v = row_version(j);
    // Dirty relative to the snapshot the monitors saw last (the current
    // buffer). Row versions never decrease, so equality means untouched.
    if (!primed_ || v != row_versions_[cur_][j]) {
      ++dirty_count;
      dirty_id = j;
    }
    // The back buffer is two captures old: rewrite its row whenever the
    // live version moved past what that buffer recorded (a superset of the
    // dirty set above).
    if (!primed_ || v != row_versions_[back][j]) {
      write_row(snap, j);
      row_versions_[back][j] = v;
    }
  }

  if (!primed_) {
    last_dirty_ = spec::kDirtyAll;
    primed_ = true;
  } else if (dirty_count == 0) {
    last_dirty_ = spec::kDirtyNone;
  } else if (dirty_count == 1) {
    last_dirty_ = dirty_id;
  } else {
    last_dirty_ = spec::kDirtyAll;
  }
  cur_ = back;
  return snap;
}

GlobalSnapshot SnapshotSource::capture_full(SimTime t) const {
  GlobalSnapshot snap;
  snap.resize(processes_.size());
  snap.time = t;
  snap.in_flight = net_.in_flight();
  for (std::size_t j = 0; j < processes_.size(); ++j) write_row(snap, j);
  return snap;
}

}  // namespace graybox::lspec
