#include "lspec/snapshot.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace graybox::lspec {

void GlobalSnapshot::resize(std::size_t n) {
  procs.assign(n, ProcessSnapshot{});
  knows_.assign(n * n, 0);
  vc_.assign(n * n, 0);
}

void GlobalSnapshot::set_vc(std::size_t j, const clk::VectorClock& vc) {
  GBX_EXPECTS(j < procs.size());
  GBX_EXPECTS(vc.size() == procs.size());
  const auto& components = vc.components();
  std::copy(components.begin(), components.end(), vc_row_mut(j));
}

std::size_t GlobalSnapshot::eating_count() const {
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.eating()) ++count;
  return count;
}

std::size_t GlobalSnapshot::hungry_count() const {
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.hungry()) ++count;
  return count;
}

SnapshotSource::SnapshotSource(std::vector<me::TmeProcess*> processes,
                               const net::Network& net)
    : processes_(std::move(processes)), net_(net) {
  GBX_EXPECTS(!processes_.empty());
  GBX_EXPECTS(processes_.size() == net_.size());
  for (const auto* p : processes_) GBX_EXPECTS(p != nullptr);
  const std::size_t n = processes_.size();
  for (std::size_t b = 0; b < 2; ++b) {
    buffers_[b].resize(n);
    row_versions_[b].assign(n, 0);
  }
}

void SnapshotSource::write_row(GlobalSnapshot& snap, std::size_t j) const {
  const me::TmeProcess& p = *processes_[j];
  ProcessSnapshot& ps = snap.procs[j];
  ps.state = p.state();
  ps.req = p.req();
  ps.clock_now = p.clock().now();
  snap.set_vc(j, net_.vclock(static_cast<ProcessId>(j)));
  char* knows = snap.knows_row_mut(j);
  const std::size_t n = processes_.size();
  for (std::size_t k = 0; k < n; ++k) {
    knows[k] =
        (k != j && p.knows_earlier(static_cast<ProcessId>(k))) ? 1 : 0;
  }
}

const GlobalSnapshot& SnapshotSource::capture(SimTime t) {
  const std::size_t n = processes_.size();
  const std::size_t back = 1 - cur_;
  GlobalSnapshot& snap = buffers_[back];
  snap.time = t;
  snap.in_flight = net_.in_flight();

  std::size_t dirty_count = 0;
  std::size_t dirty_id = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t v = row_version(j);
    // Dirty relative to the snapshot the monitors saw last (the current
    // buffer). Row versions never decrease, so equality means untouched.
    if (!primed_ || v != row_versions_[cur_][j]) {
      ++dirty_count;
      dirty_id = j;
    }
    // The back buffer is two captures old: rewrite its row whenever the
    // live version moved past what that buffer recorded (a superset of the
    // dirty set above).
    if (!primed_ || v != row_versions_[back][j]) {
      write_row(snap, j);
      row_versions_[back][j] = v;
    }
  }

  if (!primed_) {
    last_dirty_ = spec::kDirtyAll;
    primed_ = true;
  } else if (dirty_count == 0) {
    last_dirty_ = spec::kDirtyNone;
  } else if (dirty_count == 1) {
    last_dirty_ = dirty_id;
  } else {
    last_dirty_ = spec::kDirtyAll;
  }
  cur_ = back;
  return snap;
}

GlobalSnapshot SnapshotSource::capture_full(SimTime t) const {
  GlobalSnapshot snap;
  snap.resize(processes_.size());
  snap.time = t;
  snap.in_flight = net_.in_flight();
  for (std::size_t j = 0; j < processes_.size(); ++j) write_row(snap, j);
  return snap;
}

}  // namespace graybox::lspec
