#include "lspec/snapshot.hpp"

#include "common/contracts.hpp"

namespace graybox::lspec {

std::size_t GlobalSnapshot::eating_count() const {
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.eating()) ++count;
  return count;
}

std::size_t GlobalSnapshot::hungry_count() const {
  std::size_t count = 0;
  for (const auto& p : procs)
    if (p.hungry()) ++count;
  return count;
}

SnapshotSource::SnapshotSource(std::vector<me::TmeProcess*> processes,
                               const net::Network& net)
    : processes_(std::move(processes)), net_(net) {
  GBX_EXPECTS(!processes_.empty());
  GBX_EXPECTS(processes_.size() == net_.size());
  for (const auto* p : processes_) GBX_EXPECTS(p != nullptr);
}

GlobalSnapshot SnapshotSource::capture(SimTime t) const {
  GlobalSnapshot snap;
  snap.time = t;
  snap.in_flight = net_.in_flight();
  snap.procs.resize(processes_.size());
  for (std::size_t j = 0; j < processes_.size(); ++j) {
    const me::TmeProcess& p = *processes_[j];
    ProcessSnapshot& ps = snap.procs[j];
    ps.state = p.state();
    ps.req = p.req();
    ps.clock_now = p.clock().now();
    ps.vc = net_.vclock(static_cast<ProcessId>(j));
    ps.knows_earlier.assign(processes_.size(), 0);
    for (std::size_t k = 0; k < processes_.size(); ++k) {
      if (k == j) continue;
      ps.knows_earlier[k] =
          p.knows_earlier(static_cast<ProcessId>(k)) ? 1 : 0;
    }
  }
  return snap;
}

}  // namespace graybox::lspec
