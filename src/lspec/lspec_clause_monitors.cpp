#include "lspec/lspec_clause_monitors.hpp"

#include "spec/unity.hpp"

namespace graybox::lspec {
namespace {

using me::TmeState;

bool legal_flow(TmeState from, TmeState to) {
  if (from == to) return true;
  using S = TmeState;
  // t -> e is also accepted: snapshots are per *event*, and a request whose
  // entry guard already holds (single-process system, or after the last
  // needed reply) performs t -> h -> e within one event.
  return (from == S::kThinking && to == S::kHungry) ||
         (from == S::kHungry && to == S::kEating) ||
         (from == S::kEating && to == S::kThinking) ||
         (from == S::kThinking && to == S::kEating);
}

/// Flow Spec over snapshots: each process moves only along t -> h -> e -> t
/// (or stays put) between consecutive global states.
class FlowSpecSnapshotMonitor : public TmeMonitor {
 public:
  FlowSpecSnapshotMonitor() : TmeMonitor("Lspec/FlowSpec") {}

  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override {
    for (std::size_t j = 0; j < cur.procs.size(); ++j) {
      if (!legal_flow(prev.procs[j].state, cur.procs[j].state)) {
        report(t, "process " + std::to_string(j) + " jumped " +
                      std::string(me::to_string(prev.procs[j].state)) +
                      " -> " +
                      std::string(me::to_string(cur.procs[j].state)));
      }
    }
  }
};

/// CS Spec: e.j |-> ~e.j — per-process obligations, reported at their open
/// time if still outstanding when observation ends.
class CsTransientMonitor : public TmeMonitor {
 public:
  explicit CsTransientMonitor(std::size_t n)
      : TmeMonitor("Lspec/CsSpec"), eating_since_(n, kNever) {}

  void begin(SimTime t, const GlobalSnapshot& s0) override { scan(t, s0); }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    scan(t, cur);
  }
  void finish(SimTime, const GlobalSnapshot&) override {
    for (std::size_t j = 0; j < eating_since_.size(); ++j) {
      if (eating_since_[j] == kNever) continue;
      report(eating_since_[j], "process " + std::to_string(j) +
                                   " still eating at end of run (CS Spec: "
                                   "eating must be transient)");
    }
  }

 private:
  void scan(SimTime t, const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) {
      if (s.procs[j].eating()) {
        if (eating_since_[j] == kNever) eating_since_[j] = t;
      } else {
        eating_since_[j] = kNever;
      }
    }
  }
  std::vector<SimTime> eating_since_;
};

/// Request Spec's safety half: h.j => REQj = REQ'j — a request's timestamp
/// never changes while the request is outstanding.
class RequestFrozenMonitor : public TmeMonitor {
 public:
  RequestFrozenMonitor() : TmeMonitor("Lspec/RequestSpec") {}

  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override {
    for (std::size_t j = 0; j < cur.procs.size(); ++j) {
      if (prev.procs[j].hungry() && cur.procs[j].hungry() &&
          !(prev.procs[j].req == cur.procs[j].req)) {
        report(t, "process " + std::to_string(j) + " REQ moved " +
                      prev.procs[j].req.to_string() + " -> " +
                      cur.procs[j].req.to_string() + " while hungry");
      }
    }
  }
};

/// CS Release Spec: t.j => REQj = ts.j (REQ glued to the clock of the most
/// recent event while thinking).
class ReleaseTracksClockMonitor : public TmeMonitor {
 public:
  ReleaseTracksClockMonitor() : TmeMonitor("Lspec/CsReleaseSpec") {}

  void begin(SimTime t, const GlobalSnapshot& s0) override { check(t, s0); }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    check(t, cur);
  }

 private:
  void check(SimTime t, const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) {
      if (s.procs[j].thinking() &&
          !(s.procs[j].req == s.procs[j].clock_now)) {
        report(t, "process " + std::to_string(j) + " thinking with REQ " +
                      s.procs[j].req.to_string() + " != ts " +
                      s.procs[j].clock_now.to_string());
      }
    }
  }
};

/// CS Entry Spec's progress half: when a process knows all peers' requests
/// are later, entry eventually follows (or the knowledge is revised).
class EntryTakenMonitor : public TmeMonitor {
 public:
  explicit EntryTakenMonitor(std::size_t n)
      : TmeMonitor("Lspec/CsEntrySpec"), enabled_since_(n, kNever) {}

  void begin(SimTime t, const GlobalSnapshot& s0) override { scan(t, s0); }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    scan(t, cur);
  }
  void finish(SimTime, const GlobalSnapshot&) override {
    for (std::size_t j = 0; j < enabled_since_.size(); ++j) {
      if (enabled_since_[j] == kNever) continue;
      report(enabled_since_[j],
             "process " + std::to_string(j) +
                 " had CS entry enabled but never entered (CS Entry Spec)");
    }
  }

 private:
  static bool entry_enabled(const ProcessSnapshot& p, std::size_t self) {
    if (!p.hungry()) return false;
    for (std::size_t k = 0; k < p.knows_earlier.size(); ++k) {
      if (k != self && !p.knows_earlier[k]) return false;
    }
    return true;
  }
  void scan(SimTime t, const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) {
      if (entry_enabled(s.procs[j], j)) {
        if (enabled_since_[j] == kNever) enabled_since_[j] = t;
      } else {
        enabled_since_[j] = kNever;
      }
    }
  }
  std::vector<SimTime> enabled_since_;
};

}  // namespace

std::uint64_t LspecClauseMonitors::total_violations() const {
  std::uint64_t total = 0;
  for (const auto* m :
       {flow, cs_transient, request_frozen, release_tracks_clock,
        entry_taken}) {
    if (m != nullptr) total += m->total_violations();
  }
  return total;
}

SimTime LspecClauseMonitors::last_violation() const {
  SimTime last = kNever;
  for (const auto* m :
       {flow, cs_transient, request_frozen, release_tracks_clock,
        entry_taken}) {
    if (m == nullptr) continue;
    const SimTime t = m->last_violation();
    if (t == kNever) continue;
    if (last == kNever || t > last) last = t;
  }
  return last;
}

LspecClauseMonitors install_lspec_clause_monitors(TmeMonitorSet& set,
                                                  std::size_t n) {
  LspecClauseMonitors handles;
  handles.flow = &set.add<FlowSpecSnapshotMonitor>();
  handles.cs_transient = &set.add<CsTransientMonitor>(n);
  handles.request_frozen = &set.add<RequestFrozenMonitor>();
  handles.release_tracks_clock = &set.add<ReleaseTracksClockMonitor>();
  handles.entry_taken = &set.add<EntryTakenMonitor>(n);
  return handles;
}

}  // namespace graybox::lspec
