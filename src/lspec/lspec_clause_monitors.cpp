#include "lspec/lspec_clause_monitors.hpp"

#include "spec/unity.hpp"

namespace graybox::lspec {
namespace {

using me::TmeState;

bool legal_flow(TmeState from, TmeState to) {
  if (from == to) return true;
  using S = TmeState;
  // t -> e is also accepted: snapshots are per *event*, and a request whose
  // entry guard already holds (single-process system, or after the last
  // needed reply) performs t -> h -> e within one event.
  return (from == S::kThinking && to == S::kHungry) ||
         (from == S::kHungry && to == S::kEating) ||
         (from == S::kEating && to == S::kThinking) ||
         (from == S::kThinking && to == S::kEating);
}

// Every clause below is per-process-local: what it reports about process j
// depends only on row j of the snapshot pair. That is what makes the
// step_delta overrides sound — a row outside the dirty hint is bit-identical
// to its predecessor, so skipping it can neither miss a transition nor
// change a per-row obligation (eating_since_ etc. are functions of the row
// history, which didn't advance).

/// Flow Spec over snapshots: each process moves only along t -> h -> e -> t
/// (or stays put) between consecutive global states.
class FlowSpecSnapshotMonitor : public TmeMonitor {
 public:
  FlowSpecSnapshotMonitor() : TmeMonitor("Lspec/FlowSpec") {}

  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override {
    for (std::size_t j = 0; j < cur.procs.size(); ++j) check(t, prev, cur, j);
  }

  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override {
    if (dirty == spec::kDirtyNone) return;
    if (dirty == spec::kDirtyAll) {
      step(t, prev, cur);
      return;
    }
    check(t, prev, cur, dirty);
  }

 private:
  void check(SimTime t, const GlobalSnapshot& prev, const GlobalSnapshot& cur,
             std::size_t j) {
    if (!legal_flow(prev.procs[j].state, cur.procs[j].state)) {
      report(t, "process " + std::to_string(j) + " jumped " +
                    std::string(me::to_string(prev.procs[j].state)) + " -> " +
                    std::string(me::to_string(cur.procs[j].state)));
    }
  }
};

/// CS Spec: e.j |-> ~e.j — per-process obligations, reported at their open
/// time if still outstanding when observation ends.
class CsTransientMonitor : public TmeMonitor {
 public:
  explicit CsTransientMonitor(std::size_t n)
      : TmeMonitor("Lspec/CsSpec"), eating_since_(n, kNever) {}

  void begin(SimTime t, const GlobalSnapshot& s0) override { scan(t, s0); }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    scan(t, cur);
  }
  void step_delta(SimTime t, const GlobalSnapshot&, const GlobalSnapshot& cur,
                  std::size_t dirty) override {
    if (dirty == spec::kDirtyNone) return;
    if (dirty == spec::kDirtyAll) {
      scan(t, cur);
      return;
    }
    scan_row(t, cur, dirty);
  }
  void finish(SimTime, const GlobalSnapshot&) override {
    for (std::size_t j = 0; j < eating_since_.size(); ++j) {
      if (eating_since_[j] == kNever) continue;
      report(eating_since_[j], "process " + std::to_string(j) +
                                   " still eating at end of run (CS Spec: "
                                   "eating must be transient)");
    }
  }

 private:
  void scan_row(SimTime t, const GlobalSnapshot& s, std::size_t j) {
    if (s.procs[j].eating()) {
      if (eating_since_[j] == kNever) eating_since_[j] = t;
    } else {
      eating_since_[j] = kNever;
    }
  }
  void scan(SimTime t, const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) scan_row(t, s, j);
  }
  std::vector<SimTime> eating_since_;
};

/// Request Spec's safety half: h.j => REQj = REQ'j — a request's timestamp
/// never changes while the request is outstanding.
class RequestFrozenMonitor : public TmeMonitor {
 public:
  RequestFrozenMonitor() : TmeMonitor("Lspec/RequestSpec") {}

  void step(SimTime t, const GlobalSnapshot& prev,
            const GlobalSnapshot& cur) override {
    for (std::size_t j = 0; j < cur.procs.size(); ++j) check(t, prev, cur, j);
  }
  void step_delta(SimTime t, const GlobalSnapshot& prev,
                  const GlobalSnapshot& cur, std::size_t dirty) override {
    if (dirty == spec::kDirtyNone) return;
    if (dirty == spec::kDirtyAll) {
      step(t, prev, cur);
      return;
    }
    check(t, prev, cur, dirty);
  }

 private:
  void check(SimTime t, const GlobalSnapshot& prev, const GlobalSnapshot& cur,
             std::size_t j) {
    if (prev.procs[j].hungry() && cur.procs[j].hungry() &&
        !(prev.procs[j].req == cur.procs[j].req)) {
      report(t, "process " + std::to_string(j) + " REQ moved " +
                    prev.procs[j].req.to_string() + " -> " +
                    cur.procs[j].req.to_string() + " while hungry");
    }
  }
};

/// CS Release Spec: t.j => REQj = ts.j (REQ glued to the clock of the most
/// recent event while thinking).
///
/// This clause reports on EVERY observed state while a row is bad, not only
/// on transitions into badness (the stabilization detector needs the exact
/// time the violation ended). The delta path therefore keeps a per-row bad
/// set: dirty rows update their flag, and as long as any row is bad the
/// full reporting sweep runs — identical reports to the full scan, but O(1)
/// per event on the (overwhelmingly common) all-clean path.
class ReleaseTracksClockMonitor : public TmeMonitor {
 public:
  explicit ReleaseTracksClockMonitor(std::size_t n)
      : TmeMonitor("Lspec/CsReleaseSpec"), bad_(n, 0) {}

  void begin(SimTime t, const GlobalSnapshot& s0) override {
    update_all(s0);
    report_bad(t, s0);
  }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    update_all(cur);
    report_bad(t, cur);
  }
  void step_delta(SimTime t, const GlobalSnapshot&, const GlobalSnapshot& cur,
                  std::size_t dirty) override {
    if (dirty == spec::kDirtyAll) {
      update_all(cur);
    } else if (dirty != spec::kDirtyNone) {
      update_row(cur, dirty);
    }
    report_bad(t, cur);
  }

 private:
  void update_row(const GlobalSnapshot& s, std::size_t j) {
    const char bad =
        (s.procs[j].thinking() && !(s.procs[j].req == s.procs[j].clock_now))
            ? 1
            : 0;
    bad_count_ += static_cast<std::size_t>(bad) -
                  static_cast<std::size_t>(bad_[j]);
    bad_[j] = bad;
  }
  void update_all(const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) update_row(s, j);
  }
  void report_bad(SimTime t, const GlobalSnapshot& s) {
    if (bad_count_ == 0) return;
    for (std::size_t j = 0; j < bad_.size(); ++j) {
      if (!bad_[j]) continue;
      report(t, "process " + std::to_string(j) + " thinking with REQ " +
                    s.procs[j].req.to_string() + " != ts " +
                    s.procs[j].clock_now.to_string());
    }
  }
  std::vector<char> bad_;
  std::size_t bad_count_ = 0;
};

/// CS Entry Spec's progress half: when a process knows all peers' requests
/// are later, entry eventually follows (or the knowledge is revised).
class EntryTakenMonitor : public TmeMonitor {
 public:
  explicit EntryTakenMonitor(std::size_t n)
      : TmeMonitor("Lspec/CsEntrySpec"), enabled_since_(n, kNever) {}

  void begin(SimTime t, const GlobalSnapshot& s0) override { scan(t, s0); }
  void step(SimTime t, const GlobalSnapshot&,
            const GlobalSnapshot& cur) override {
    scan(t, cur);
  }
  void step_delta(SimTime t, const GlobalSnapshot&, const GlobalSnapshot& cur,
                  std::size_t dirty) override {
    if (dirty == spec::kDirtyNone) return;
    if (dirty == spec::kDirtyAll) {
      scan(t, cur);
      return;
    }
    scan_row(t, cur, dirty);
  }
  void finish(SimTime, const GlobalSnapshot&) override {
    for (std::size_t j = 0; j < enabled_since_.size(); ++j) {
      if (enabled_since_[j] == kNever) continue;
      report(enabled_since_[j],
             "process " + std::to_string(j) +
                 " had CS entry enabled but never entered (CS Entry Spec)");
    }
  }

 private:
  static bool entry_enabled(const GlobalSnapshot& s, std::size_t j) {
    // knows_all_earlier is O(1) on SnapshotSource buffers (cached per-row
    // knows-true counts), turning this clause's per-dirty-row cost from
    // O(N) into O(1).
    return s.procs[j].hungry() && s.knows_all_earlier(j);
  }
  void scan_row(SimTime t, const GlobalSnapshot& s, std::size_t j) {
    if (entry_enabled(s, j)) {
      if (enabled_since_[j] == kNever) enabled_since_[j] = t;
    } else {
      enabled_since_[j] = kNever;
    }
  }
  void scan(SimTime t, const GlobalSnapshot& s) {
    for (std::size_t j = 0; j < s.procs.size(); ++j) scan_row(t, s, j);
  }
  std::vector<SimTime> enabled_since_;
};

}  // namespace

std::uint64_t LspecClauseMonitors::total_violations() const {
  std::uint64_t total = 0;
  for (const auto* m :
       {flow, cs_transient, request_frozen, release_tracks_clock,
        entry_taken}) {
    if (m != nullptr) total += m->total_violations();
  }
  return total;
}

SimTime LspecClauseMonitors::last_violation() const {
  SimTime last = kNever;
  for (const auto* m :
       {flow, cs_transient, request_frozen, release_tracks_clock,
        entry_taken}) {
    if (m == nullptr) continue;
    const SimTime t = m->last_violation();
    if (t == kNever) continue;
    if (last == kNever || t > last) last = t;
  }
  return last;
}

LspecClauseMonitors install_lspec_clause_monitors(TmeMonitorSet& set,
                                                  std::size_t n) {
  LspecClauseMonitors handles;
  handles.flow = &set.add<FlowSpecSnapshotMonitor>();
  handles.cs_transient = &set.add<CsTransientMonitor>(n);
  handles.request_frozen = &set.add<RequestFrozenMonitor>();
  handles.release_tracks_clock = &set.add<ReleaseTracksClockMonitor>(n);
  handles.entry_taken = &set.add<EntryTakenMonitor>(n);
  return handles;
}

}  // namespace graybox::lspec
