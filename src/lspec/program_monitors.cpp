#include "lspec/program_monitors.hpp"

#include <string>

#include "common/contracts.hpp"

namespace graybox::lspec {
namespace {

bool legal_transition(me::TmeState from, me::TmeState to) {
  using S = me::TmeState;
  return (from == S::kThinking && to == S::kHungry) ||
         (from == S::kHungry && to == S::kEating) ||
         (from == S::kEating && to == S::kThinking);
}

}  // namespace

StructuralSpecMonitor::StructuralSpecMonitor(
    const std::vector<me::TmeProcess*>& procs, sim::Scheduler& sched)
    : sched_(sched) {
  for (auto* p : procs) {
    GBX_EXPECTS(p != nullptr);
    const ProcessId pid = p->pid();
    p->add_state_observer([this, pid](me::TmeState from, me::TmeState to) {
      on_transition(pid, from, to);
    });
  }
}

void StructuralSpecMonitor::on_transition(ProcessId pid, me::TmeState from,
                                          me::TmeState to) {
  ++transitions_checked_;
  if (!legal_transition(from, to)) {
    violations_.push_back(spec::Violation{
        sched_.now(), "StructuralSpec",
        "process " + std::to_string(pid) + " took illegal transition " +
            std::string(me::to_string(from)) + " -> " +
            std::string(me::to_string(to))});
  }
}

SendMonotonicityMonitor::SendMonotonicityMonitor(net::Network& net,
                                                 sim::Scheduler& sched)
    : sched_(sched), last_sent_(net.size()), seen_(net.size(), 0) {
  net.add_send_observer([this](const net::Message& msg) { on_send(msg); });
}

void SendMonotonicityMonitor::on_send(const net::Message& msg) {
  if (msg.from >= last_sent_.size()) return;
  ++sends_checked_;
  if (seen_[msg.from] && clk::lt(msg.ts, last_sent_[msg.from])) {
    violations_.push_back(spec::Violation{
        sched_.now(), "TimestampSpec",
        "process " + std::to_string(msg.from) + " sent " +
            msg.ts.to_string() + " after having sent " +
            last_sent_[msg.from].to_string()});
  }
  last_sent_[msg.from] = msg.ts;
  seen_[msg.from] = 1;
}

FifoMonitor::FifoMonitor(net::Network& net, sim::Scheduler& sched)
    : sched_(sched), n_(net.size()), last_uid_(net.size() * net.size(), 0) {
  net.add_delivery_observer(
      [this](const net::Message& msg) { on_delivery(msg); });
}

void FifoMonitor::on_delivery(const net::Message& msg) {
  // Fabricated messages (uid 0 legacy, reserved range from fault_inject)
  // never passed Network::send; there is no FIFO position to correlate.
  if (msg.uid == 0 || net::is_spurious_uid(msg.uid)) return;
  if (msg.from >= n_ || msg.to >= n_) return;
  ++deliveries_checked_;
  const std::size_t pair = static_cast<std::size_t>(msg.from) * n_ + msg.to;
  if (msg.uid <= last_uid_[pair] && last_uid_[pair] != 0) {
    violations_.push_back(spec::Violation{
        sched_.now(), "CommunicationSpec",
        "channel " + std::to_string(msg.from) + "->" + std::to_string(msg.to) +
            " delivered uid " + std::to_string(msg.uid) + " after uid " +
            std::to_string(last_uid_[pair])});
  }
  if (msg.uid > last_uid_[pair]) last_uid_[pair] = msg.uid;
}

}  // namespace graybox::lspec
