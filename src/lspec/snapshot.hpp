// Global state snapshots: the monitoring substrate.
//
// Monitors judge UNITY properties over the sequence of global states, one
// per executed simulator event. A snapshot records, for every process, the
// Lspec observables (state, REQ, the knows_earlier relation) plus the
// monitor-side vector clock, and for the network the in-flight message
// count. Snapshots capture the *graybox* view — they contain nothing a
// wrapper could not also see — so a specification clause checkable on
// snapshots is by construction checkable without implementation knowledge.
//
// Storage: the per-process scalar observables live in one contiguous
// ProcessSnapshot array; the two per-pair relations (knows_earlier, vector
// clocks) are row-sparse — a row is backed by pool storage only once
// something writes it, and unmaterialized rows read as all-false/all-zero,
// exactly their dense zero-initialized contents. resize() is O(N); a row
// materializes at most once (first write), so steady-state captures into a
// sized snapshot allocate nothing. SnapshotSource keeps a double buffer of
// these and, using the observation version counters maintained by
// TmeProcess and Network, re-reads only the rows that actually changed
// since the previous event — O(dirty rows) per event instead of O(N²).
//
// Aggregate counts (eating/hungry totals, per-row knows-true counts) are
// cached so the monitors' hot-path guards are O(1). The cache is only
// enabled for SnapshotSource-maintained buffers: hand-built snapshots
// (tests mutate procs[j].state directly) keep the O(N) scan fallback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clock/timestamp.hpp"
#include "clock/vector_clock.hpp"
#include "me/tme_process.hpp"
#include "net/network.hpp"
#include "spec/monitor.hpp"

namespace graybox::lspec {

/// Per-process scalar observables; plain data, no heap.
struct ProcessSnapshot {
  me::TmeState state = me::TmeState::kThinking;
  clk::Timestamp req{};
  /// ts.j: the logical-clock value after the process's most recent event
  /// (CS Release Spec glues REQ to it while thinking).
  clk::Timestamp clock_now{};

  bool thinking() const { return state == me::TmeState::kThinking; }
  bool hungry() const { return state == me::TmeState::kHungry; }
  bool eating() const { return state == me::TmeState::kEating; }
};

class GlobalSnapshot {
 public:
  SimTime time = 0;
  /// One entry per process; index with the process id.
  std::vector<ProcessSnapshot> procs;
  std::size_t in_flight = 0;

  /// Size the storage for n processes; all observables read as zero.
  void resize(std::size_t n);
  std::size_t size() const { return procs.size(); }

  /// knows_earlier[j][k] = "REQj lt j.REQk" as process j reads it; the own
  /// index (k == j) is always false.
  bool knows_earlier(std::size_t j, std::size_t k) const {
    const std::int32_t slot = row_slot_[j];
    return slot >= 0 &&
           knows_pool_[static_cast<std::size_t>(slot) * procs.size() + k] != 0;
  }
  void set_knows_earlier(std::size_t j, std::size_t k, bool value);

  /// Monitor-side causal clock of process j (components, after its latest
  /// event). Unmaterialized rows read as all-zero.
  std::span<const std::uint64_t> vc_row(std::size_t j) const {
    const std::int32_t slot = row_slot_[j];
    if (slot < 0) return {zero_vc_row_.data(), procs.size()};
    return {vc_pool_.data() + static_cast<std::size_t>(slot) * procs.size(),
            procs.size()};
  }
  void set_vc(std::size_t j, const clk::VectorClock& vc);

  /// O(1) when the count cache is enabled (SnapshotSource buffers), O(N)
  /// scan otherwise (hand-built snapshots).
  std::size_t eating_count() const;
  std::size_t hungry_count() const;

  /// CS Entry Spec's guard aggregate: does j know its request precedes
  /// every peer's? O(1) when the count cache is enabled, O(N) otherwise.
  bool knows_all_earlier(std::size_t j) const;

 private:
  friend class SnapshotSource;

  /// Recompute and enable the aggregate-count cache. From then on
  /// SnapshotSource::write_row and set_knows_earlier maintain it
  /// incrementally; resize() disables it again.
  void enable_counts();

  std::int32_t materialize_row(std::size_t j);
  // materialize_row may grow the pools, so it must be sequenced before
  // data() is read.
  char* knows_row_mut(std::size_t j) {
    const auto slot = static_cast<std::size_t>(materialize_row(j));
    return knows_pool_.data() + slot * procs.size();
  }
  std::uint64_t* vc_row_mut(std::size_t j) {
    const auto slot = static_cast<std::size_t>(materialize_row(j));
    return vc_pool_.data() + slot * procs.size();
  }

  /// Row-sparse N×N relations: row j lives at pool offset row_slot_[j] * n
  /// once materialized, -1 before.
  std::vector<std::int32_t> row_slot_;
  std::vector<char> knows_pool_;
  std::vector<std::uint64_t> vc_pool_;
  /// Shared all-zero row backing vc_row() of unmaterialized rows.
  std::vector<std::uint64_t> zero_vc_row_;

  bool counts_valid_ = false;
  std::size_t eating_count_ = 0;
  std::size_t hungry_count_ = 0;
  /// Per row j: number of true knows_earlier(j, k) entries.
  std::vector<std::uint16_t> knows_true_;
};

/// Captures GlobalSnapshots from live processes and the network.
///
/// The delta path — capture() — writes into an internal double buffer:
/// the returned reference and the previously returned reference stay valid
/// and distinct across consecutive calls, which is what lets MonitorSet
/// observe by reference with no copy. Row rewrites are driven by the
/// observation version counters (TmeProcess::obs_version,
/// Network::vclock_version): a row is re-read only when its combined
/// version moved, and last_dirty() summarizes the change against the
/// previous snapshot for Monitor::step_delta.
class SnapshotSource {
 public:
  SnapshotSource(std::vector<me::TmeProcess*> processes,
                 const net::Network& net);

  /// Delta capture into the double buffer. Returns the new current
  /// snapshot; the previous one remains readable via previous().
  const GlobalSnapshot& capture(SimTime t);

  /// Dirty summary of the latest capture() relative to the snapshot before
  /// it: spec::kDirtyNone, a single process id, or spec::kDirtyAll.
  std::size_t last_dirty() const { return last_dirty_; }

  const GlobalSnapshot& current() const { return buffers_[cur_]; }
  const GlobalSnapshot& previous() const { return buffers_[1 - cur_]; }

  /// Reference path: allocate and fill a fresh snapshot, exactly like the
  /// pre-delta pipeline did every event. Retained for golden-equivalence
  /// tests (tests/test_snapshot_delta.cpp) and as the spec of capture().
  GlobalSnapshot capture_full(SimTime t) const;

  std::size_t size() const { return processes_.size(); }

 private:
  /// Combined observation version of row j; strictly increases whenever
  /// any observable of process j (including its monitor-side vclock)
  /// changes, because both summands are monotone.
  std::uint64_t row_version(std::size_t j) const {
    return processes_[j]->obs_version() +
           net_.vclock_version(static_cast<ProcessId>(j));
  }
  void write_row(GlobalSnapshot& snap, std::size_t j) const;

  std::vector<me::TmeProcess*> processes_;
  const net::Network& net_;
  GlobalSnapshot buffers_[2];
  /// Per-buffer: the row version each buffer's row j was written at.
  std::vector<std::uint64_t> row_versions_[2];
  std::size_t cur_ = 0;
  std::size_t last_dirty_ = spec::kDirtyAll;
  bool primed_ = false;
};

}  // namespace graybox::lspec
