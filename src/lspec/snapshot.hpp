// Global state snapshots: the monitoring substrate.
//
// Monitors judge UNITY properties over the sequence of global states, one
// per executed simulator event. A snapshot records, for every process, the
// Lspec observables (state, REQ, the knows_earlier relation) plus the
// monitor-side vector clock, and for the network the in-flight message
// count. Snapshots capture the *graybox* view — they contain nothing a
// wrapper could not also see — so a specification clause checkable on
// snapshots is by construction checkable without implementation knowledge.
//
// Storage is flattened for the per-event hot path: the per-process scalar
// observables live in one contiguous ProcessSnapshot array, and the two
// per-pair relations (knows_earlier, vector clocks) live in one N×N matrix
// each. resize() is the only allocating operation; capturing into a sized
// snapshot allocates nothing. SnapshotSource keeps a double buffer of these
// and, using the observation version counters maintained by TmeProcess and
// Network, re-reads only the rows that actually changed since the previous
// event — O(N) per event instead of O(N²) allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clock/timestamp.hpp"
#include "clock/vector_clock.hpp"
#include "me/tme_process.hpp"
#include "net/network.hpp"
#include "spec/monitor.hpp"

namespace graybox::lspec {

/// Per-process scalar observables; plain data, no heap.
struct ProcessSnapshot {
  me::TmeState state = me::TmeState::kThinking;
  clk::Timestamp req{};
  /// ts.j: the logical-clock value after the process's most recent event
  /// (CS Release Spec glues REQ to it while thinking).
  clk::Timestamp clock_now{};

  bool thinking() const { return state == me::TmeState::kThinking; }
  bool hungry() const { return state == me::TmeState::kHungry; }
  bool eating() const { return state == me::TmeState::kEating; }
};

class GlobalSnapshot {
 public:
  SimTime time = 0;
  /// One entry per process; index with the process id.
  std::vector<ProcessSnapshot> procs;
  std::size_t in_flight = 0;

  /// Size the flat storage for n processes; zeroes both matrices.
  void resize(std::size_t n);
  std::size_t size() const { return procs.size(); }

  /// knows_earlier[j][k] = "REQj lt j.REQk" as process j reads it; the own
  /// index (k == j) is always false.
  bool knows_earlier(std::size_t j, std::size_t k) const {
    return knows_[j * procs.size() + k] != 0;
  }
  void set_knows_earlier(std::size_t j, std::size_t k, bool value) {
    knows_[j * procs.size() + k] = value ? 1 : 0;
  }

  /// Monitor-side causal clock of process j (components, after its latest
  /// event).
  std::span<const std::uint64_t> vc_row(std::size_t j) const {
    return {vc_.data() + j * procs.size(), procs.size()};
  }
  void set_vc(std::size_t j, const clk::VectorClock& vc);

  std::size_t eating_count() const;
  std::size_t hungry_count() const;

 private:
  friend class SnapshotSource;
  char* knows_row_mut(std::size_t j) { return knows_.data() + j * procs.size(); }
  std::uint64_t* vc_row_mut(std::size_t j) {
    return vc_.data() + j * procs.size();
  }

  std::vector<char> knows_;          // n*n, row-major by observing process
  std::vector<std::uint64_t> vc_;    // n*n, row-major by process
};

/// Captures GlobalSnapshots from live processes and the network.
///
/// The delta path — capture() — writes into an internal double buffer:
/// the returned reference and the previously returned reference stay valid
/// and distinct across consecutive calls, which is what lets MonitorSet
/// observe by reference with no copy. Row rewrites are driven by the
/// observation version counters (TmeProcess::obs_version,
/// Network::vclock_version): a row is re-read only when its combined
/// version moved, and last_dirty() summarizes the change against the
/// previous snapshot for Monitor::step_delta.
class SnapshotSource {
 public:
  SnapshotSource(std::vector<me::TmeProcess*> processes,
                 const net::Network& net);

  /// Delta capture into the double buffer. Returns the new current
  /// snapshot; the previous one remains readable via previous().
  const GlobalSnapshot& capture(SimTime t);

  /// Dirty summary of the latest capture() relative to the snapshot before
  /// it: spec::kDirtyNone, a single process id, or spec::kDirtyAll.
  std::size_t last_dirty() const { return last_dirty_; }

  const GlobalSnapshot& current() const { return buffers_[cur_]; }
  const GlobalSnapshot& previous() const { return buffers_[1 - cur_]; }

  /// Reference path: allocate and fill a fresh snapshot, exactly like the
  /// pre-delta pipeline did every event. Retained for golden-equivalence
  /// tests (tests/test_snapshot_delta.cpp) and as the spec of capture().
  GlobalSnapshot capture_full(SimTime t) const;

  std::size_t size() const { return processes_.size(); }

 private:
  /// Combined observation version of row j; strictly increases whenever
  /// any observable of process j (including its monitor-side vclock)
  /// changes, because both summands are monotone.
  std::uint64_t row_version(std::size_t j) const {
    return processes_[j]->obs_version() +
           net_.vclock_version(static_cast<ProcessId>(j));
  }
  void write_row(GlobalSnapshot& snap, std::size_t j) const;

  std::vector<me::TmeProcess*> processes_;
  const net::Network& net_;
  GlobalSnapshot buffers_[2];
  /// Per-buffer: the row version each buffer's row j was written at.
  std::vector<std::uint64_t> row_versions_[2];
  std::size_t cur_ = 0;
  std::size_t last_dirty_ = spec::kDirtyAll;
  bool primed_ = false;
};

}  // namespace graybox::lspec
