// Global state snapshots: the monitoring substrate.
//
// Monitors judge UNITY properties over the sequence of global states, one
// per executed simulator event. A snapshot records, for every process, the
// Lspec observables (state, REQ, the knows_earlier relation) plus the
// monitor-side vector clock, and for the network the in-flight message
// count. Snapshots capture the *graybox* view — they contain nothing a
// wrapper could not also see — so a specification clause checkable on
// snapshots is by construction checkable without implementation knowledge.
#pragma once

#include <vector>

#include "clock/timestamp.hpp"
#include "clock/vector_clock.hpp"
#include "me/tme_process.hpp"
#include "net/network.hpp"

namespace graybox::lspec {

struct ProcessSnapshot {
  me::TmeState state = me::TmeState::kThinking;
  clk::Timestamp req{};
  /// ts.j: the logical-clock value after the process's most recent event
  /// (CS Release Spec glues REQ to it while thinking).
  clk::Timestamp clock_now{};
  /// knows_earlier[k] = "REQj lt j.REQk" as this process reads it; own
  /// index is false.
  std::vector<char> knows_earlier;
  /// Monitor-side causal clock (after the process's latest event).
  clk::VectorClock vc;

  bool thinking() const { return state == me::TmeState::kThinking; }
  bool hungry() const { return state == me::TmeState::kHungry; }
  bool eating() const { return state == me::TmeState::kEating; }
};

struct GlobalSnapshot {
  SimTime time = 0;
  std::vector<ProcessSnapshot> procs;
  std::size_t in_flight = 0;

  std::size_t eating_count() const;
  std::size_t hungry_count() const;
};

/// Captures GlobalSnapshots from live processes and the network.
class SnapshotSource {
 public:
  SnapshotSource(std::vector<me::TmeProcess*> processes,
                 const net::Network& net);

  GlobalSnapshot capture(SimTime t) const;

  std::size_t size() const { return processes_.size(); }

 private:
  std::vector<me::TmeProcess*> processes_;
  const net::Network& net_;
};

}  // namespace graybox::lspec
