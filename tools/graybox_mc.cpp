// graybox_mc: systematic schedule & fault-placement exploration over the
// simulated TME stack (mc::Explorer).
//
// Modes:
//   (default)          explore one configuration; print the verdict, the
//                      shrunk counterexample (if any) and explorer stats.
//   --sweep            bounded-exhaustive matrix: {ra, lamport, cr} x
//                      wrapper tiers x fault modes, CI-sized budgets.
//                      Fault-free cells assert no safety violation at all;
//                      fault cells run level-2-wrapped tiers and assert
//                      convergence (no violation past last-fault + settle,
//                      no starvation after drain) — the unwrapped tiers
//                      make no stabilization claim under faults (that gap
//                      is the paper's point), so the sweep does not test
//                      them there.
//   --mutation-smoke   run the explorer against the three seeded protocol
//                      mutants (mc/mutants.hpp); each must be found and
//                      shrink to a short trace. Exit 1 on any miss.
//   --replay=FILE      execute a saved trace twice; print outcome and
//                      digest; exit 1 unless the two digests agree and —
//                      when the trace came from --out — the bug still
//                      reproduces.
//
// Every mode prints one "mc-stats ..." line per explorer run; CI greps
// these into the job summary.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "core/harness.hpp"
#include "mc/explorer.hpp"
#include "mc/mutants.hpp"
#include "mc/trace.hpp"

namespace {

using namespace graybox;
using mc::BugProperty;
using mc::Explorer;
using mc::ExplorerConfig;
using mc::ExplorerResult;
using mc::ScheduleTrace;

void print_stats(const std::string& label, const mc::ExplorerStats& s) {
  std::cout << "mc-stats cell=" << label << " executions=" << s.executions
            << " choice_points=" << s.choice_points
            << " alternatives=" << s.alternatives
            << " pruned_sleep=" << s.pruned_sleep
            << " pruned_delay=" << s.pruned_delay
            << " faults_placed=" << s.faults_placed
            << " shrink_executions=" << s.shrink_executions << "\n";
}

void print_result(const std::string& label, Explorer& ex,
                  const ExplorerResult& r) {
  if (r.found) {
    std::cout << label << ": BUG kind=" << r.outcome.kind
              << " steps=" << r.counterexample.steps()
              << " (original steps=" << r.original.steps() << ")"
              << " digest=" << std::hex << r.outcome.digest << std::dec
              << "\n";
    std::cout << ex.explain(r.counterexample);
  } else {
    std::cout << label << ": clean\n";
  }
  print_stats(label, r.stats);
}

core::HarnessConfig harness_from_flags(const Flags& flags) {
  core::HarnessConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 3));
  cfg.algorithm = flags.get("algorithm", "ricart-agrawala");
  cfg.wrapped = flags.get_bool("wrapped", true);
  cfg.level1 = flags.get_bool("level1", false);
  cfg.wrapper.resend_period =
      static_cast<SimTime>(flags.get_int("resend", 25));
  cfg.client.think_mean = flags.get_double("think", 30.0);
  cfg.client.eat_mean = flags.get_double("eat", 8.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return cfg;
}

ExplorerConfig explorer_from_flags(const Flags& flags) {
  ExplorerConfig ec;
  ec.harness = harness_from_flags(flags);
  ec.property = flags.get("property", "safety") == "convergence"
                    ? BugProperty::kConvergence
                    : BugProperty::kAnySafetyViolation;
  ec.horizon = static_cast<SimTime>(flags.get_int("horizon", 1500));
  ec.budget = static_cast<std::uint64_t>(flags.get_int("budget", 500));
  ec.delay_budget =
      static_cast<std::uint32_t>(flags.get_int("delay-budget", 2));
  ec.fault_budget =
      static_cast<std::uint32_t>(flags.get_int("fault-budget", 0));
  ec.explore_lifecycle = flags.get_bool("lifecycle", false);
  ec.fault_window =
      static_cast<std::uint64_t>(flags.get_int("fault-window", 600));
  ec.fault_stride =
      static_cast<std::uint64_t>(flags.get_int("fault-stride", 60));
  const std::string mode = flags.get("fault-kind", "channel");
  if (mode == "all")
    ec.mix = net::FaultMix::all();
  else if (mode == "drop")
    ec.mix = net::FaultMix::only(net::FaultKind::kMessageDrop);
  else if (mode == "duplicate")
    ec.mix = net::FaultMix::only(net::FaultKind::kMessageDuplicate);
  else if (mode == "process")
    ec.mix = net::FaultMix::process_only();
  else
    ec.mix = net::FaultMix::channel_only();
  return ec;
}

int run_explore(const Flags& flags) {
  ExplorerConfig ec = explorer_from_flags(flags);
  Explorer ex(ec);
  const ExplorerResult r = ex.run();
  print_result("explore", ex, r);
  const std::string out = flags.get("out", "");
  if (r.found && !out.empty()) {
    std::ofstream f(out);
    f << r.counterexample.to_text();
    std::cout << "trace written to " << out << "\n";
  }
  return r.found ? 2 : 0;
}

int run_replay(const Flags& flags) {
  const std::string path = flags.get("replay", "");
  std::ifstream f(path);
  if (!f) {
    std::cerr << "replay: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const auto trace = ScheduleTrace::from_text(buf.str());
  if (!trace) {
    std::cerr << "replay: " << path << " is not a graybox-mc trace\n";
    return 1;
  }
  ExplorerConfig ec = explorer_from_flags(flags);
  Explorer ex(ec);
  const mc::Outcome first = ex.execute(*trace);
  const mc::Outcome second = ex.execute(*trace);
  std::cout << "replay: bug=" << (first.bug ? first.kind : "none")
            << " digest=" << std::hex << first.digest << std::dec << " "
            << first.detail << "\n";
  if (first.digest != second.digest) {
    std::cerr << "replay: NONDETERMINISTIC (digest mismatch on rerun)\n";
    return 1;
  }
  return 0;
}

/// One sweep cell: a harness configuration plus the property and fault
/// surface the explorer probes it with.
struct SweepCell {
  std::string label;
  ExplorerConfig config;
};

std::vector<SweepCell> build_sweep(const Flags& flags) {
  const std::uint64_t budget =
      static_cast<std::uint64_t>(flags.get_int("budget", 120));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  std::vector<SweepCell> cells;
  const std::vector<std::string> algos = {"ricart-agrawala", "lamport",
                                          "carvalho-roucairol"};
  for (const std::string& algo : algos) {
    auto base = [&](bool wrapped, bool level1) {
      ExplorerConfig ec;
      ec.harness.n = 3;
      ec.harness.algorithm = algo;
      ec.harness.wrapped = wrapped;
      ec.harness.level1 = level1;
      ec.harness.client.think_mean = 30.0;
      ec.harness.client.eat_mean = 8.0;
      ec.harness.seed = seed;
      ec.budget = budget;
      return ec;
    };
    auto add = [&](const char* tier, ExplorerConfig ec) {
      cells.push_back(SweepCell{algo + "/" + tier, std::move(ec)});
    };
    {  // Fault-free safety, all four tiers.
      add("bare/safety", base(false, false));
      add("level1/safety", base(false, true));
      add("wrapped/safety", base(true, false));
      add("both/safety", base(true, true));
    }
    {  // Channel faults, level-2-wrapped tiers, convergence.
      ExplorerConfig ec = base(true, false);
      ec.property = BugProperty::kConvergence;
      ec.fault_budget = 2;
      add("wrapped/channel", std::move(ec));
      ExplorerConfig ec2 = base(true, true);
      ec2.property = BugProperty::kConvergence;
      ec2.fault_budget = 2;
      add("both/channel", std::move(ec2));
    }
    {  // Crash/recover and partition/heal lifecycles, wrapped.
      ExplorerConfig ec = base(true, false);
      ec.property = BugProperty::kConvergence;
      ec.fault_budget = 1;
      ec.explore_lifecycle = true;
      add("wrapped/lifecycle", std::move(ec));
    }
  }
  return cells;
}

int run_sweep(const Flags& flags) {
  std::vector<SweepCell> cells = build_sweep(flags);
  std::size_t jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = std::min(jobs, cells.size());

  struct CellOut {
    ExplorerResult result;
    std::string rendered;  // explain() text for found bugs
  };
  std::vector<CellOut> out(cells.size());
  // Static round-robin sharding: cell i runs on worker i % jobs and lands
  // in out[i], so the printed report is byte-identical for every --jobs.
  auto worker = [&](std::size_t w) {
    for (std::size_t i = w; i < cells.size(); i += jobs) {
      Explorer ex(cells[i].config);
      out[i].result = ex.run();
      if (out[i].result.found)
        out[i].rendered = ex.explain(out[i].result.counterexample);
    }
  };
  if (jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
    for (std::thread& t : threads) t.join();
  }

  std::size_t bugs = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExplorerResult& r = out[i].result;
    if (r.found) {
      ++bugs;
      std::cout << cells[i].label << ": BUG kind=" << r.outcome.kind
                << " steps=" << r.counterexample.steps() << "\n";
      std::cout << out[i].rendered;
    } else {
      std::cout << cells[i].label << ": clean\n";
    }
    print_stats(cells[i].label, r.stats);
  }
  std::cout << "sweep: " << cells.size() << " cells, " << bugs
            << " with bugs\n";
  return bugs == 0 ? 0 : 2;
}

/// Per-mutant explorer setup: each mutant is paired with the narrowest
/// configuration whose clean counterpart provably admits no violation, so
/// any bug the explorer finds is the seeded defect.
int run_mutation_smoke(const Flags& flags) {
  const std::uint64_t budget =
      static_cast<std::uint64_t>(flags.get_int("budget", 400));
  struct MutantCase {
    const char* name;
    ExplorerConfig config;
  };
  std::vector<MutantCase> cases;
  {
    // Equal-counter concurrent requests; fault-free; pid tiebreak is the
    // only thing between them and mutual entry.
    ExplorerConfig ec;
    ec.harness.n = 2;
    ec.harness.algorithm = "mutant-ra-tiebreak";
    ec.harness.wrapped = false;
    // Short think times put first requests in each other's delivery
    // windows, where equal Lamport counters are common and only the pid
    // tiebreak separates the processes.
    ec.harness.client.think_mean = 3.0;
    ec.budget = budget;
    ec.delay_budget = 3;
    cases.push_back({"mutant-ra-tiebreak", std::move(ec)});
  }
  {
    // Release notifies nobody; a waiter's stale view starves it. Detected
    // unwrapped — the wrapper's resends would eventually repair the view,
    // which is exactly the graybox story, not the mutant's absence.
    ExplorerConfig ec;
    ec.harness.n = 2;
    ec.harness.algorithm = "mutant-ra-eager-reply";
    ec.harness.wrapped = false;
    ec.harness.client.think_mean = 20.0;
    ec.budget = budget;
    ec.delay_budget = 3;
    cases.push_back({"mutant-ra-eager-reply", std::move(ec)});
  }
  {
    // Concurrent requests whose carriers are still in flight: without the
    // acknowledgement wait, both sides enter on local queue evidence.
    // Fault-free, so any violation is the mutant's.
    ExplorerConfig ec;
    ec.harness.n = 2;
    ec.harness.algorithm = "mutant-lamport-no-ack";
    ec.harness.wrapped = false;
    ec.harness.client.think_mean = 10.0;
    ec.budget = budget;
    ec.delay_budget = 3;
    cases.push_back({"mutant-lamport-no-ack", std::move(ec)});
  }

  int missed = 0;
  for (MutantCase& c : cases) {
    bool found = false;
    // A fixed handful of root seeds; the smoke is deterministic because
    // the seed list and every per-seed exploration are.
    for (std::uint64_t seed = 1; seed <= 4 && !found; ++seed) {
      ExplorerConfig ec = c.config;
      ec.harness.seed = seed;
      Explorer ex(ec);
      const ExplorerResult r = ex.run();
      if (r.found) {
        found = true;
        std::cout << "mutant " << c.name << ": caught (seed=" << seed
                  << " kind=" << r.outcome.kind
                  << " steps=" << r.counterexample.steps()
                  << " original=" << r.original.steps() << ")\n";
        std::cout << ex.explain(r.counterexample);
        print_stats(c.name, r.stats);
        if (r.counterexample.steps() > 10) {
          std::cout << "mutant " << c.name
                    << ": FAIL shrunk trace exceeds 10 steps\n";
          ++missed;
        }
      }
    }
    if (!found) {
      std::cout << "mutant " << c.name << ": MISSED\n";
      ++missed;
    }
  }
  std::cout << "mutation-smoke: " << (cases.size() - missed) << "/"
            << cases.size() << " caught\n";
  return missed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      {{"n", "number of processes (default 3)"},
       {"algorithm", "registered algorithm name or alias (default ra)"},
       {"wrapped", "attach level-2 graybox wrappers (default true)"},
       {"level1", "attach level-1 local wrappers (default false)"},
       {"resend", "wrapper resend period (default 25)"},
       {"think", "client mean think time (default 30)"},
       {"eat", "client mean eat time (default 8)"},
       {"seed", "root seed for the DFS (default 1)"},
       {"budget", "max DFS executions (default 500; 120 per sweep cell)"},
       {"delay-budget", "max non-default choices per schedule (default 2)"},
       {"fault-budget", "max placed faults per trace (default 0)"},
       {"fault-window", "fault positions lie in [0, window) events"},
       {"fault-stride", "fault-position grid spacing in events (default 60)"},
       {"fault-kind",
        "channel | all | drop | duplicate | process (default channel)"},
       {"lifecycle", "also enumerate crash/recover and partition/heal"},
       {"horizon", "per-execution sim-time bound (default 1500)"},
       {"property", "safety | convergence (default safety)"},
       {"out", "write the shrunk counterexample trace to this file"},
       {"replay", "execute a saved trace file instead of exploring"},
       {"sweep", "run the algorithm x tier x fault matrix"},
       {"mutation-smoke", "assert the seeded mutants are caught"},
       {"jobs", "sweep worker threads (default 1; 0 = all cores)"}});
  graybox::mc::register_mutants();  // the mutants' home binary
  if (flags.has("mutation-smoke")) return run_mutation_smoke(flags);
  if (flags.has("replay")) return run_replay(flags);
  if (flags.has("sweep")) return run_sweep(flags);
  return run_explore(flags);
}
