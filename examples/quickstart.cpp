// Quickstart: build a wrapped timestamp-based mutual-exclusion system in a
// dozen lines, hit it with faults, watch it stabilize.
//
//   $ ./quickstart [--n=5] [--algorithm=ra|lamport] [--seed=1]
//
// This walks the library's main entry point, core::SystemHarness, which
// wires together everything the paper's case study needs: the simulator,
// FIFO channels, the mutual-exclusion processes, per-process clients, the
// graybox wrappers W' (Section 4), the fault injector, and the TME Spec
// monitors.
#include <iostream>

#include "common/flags.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

int main(int argc, char** argv) {
  using namespace graybox;
  using namespace graybox::core;

  Flags flags(argc, argv,
              {{"n", "number of processes (default 5)"},
               {"algorithm",
                "any registered algorithm name or alias (default ra)"},
               {"seed", "experiment seed (default 1)"}});

  HarnessConfig config;
  config.n = static_cast<std::size_t>(flags.get_int("n", 5));
  // Any registered name or alias works here; the registry canonicalizes.
  config.algorithm = flags.get("algorithm", "ra");
  config.wrapped = true;                 // attach the graybox wrapper W'
  config.wrapper.resend_period = 20;     // the timeout delta of Section 4
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  SystemHarness system(config);
  system.start();

  std::cout << "graybox-stabilization quickstart: " << config.n << " "
            << algorithm_spec(config)
            << " processes, wrapped with W' (delta=20)\n\n";

  // Phase 1: fault-free warmup.
  system.run_for(2000);
  std::cout << "after 2000 fault-free ticks: "
            << system.stats().cs_entries << " CS entries, "
            << system.stats().messages_sent << " messages, "
            << system.monitors().total_violations() << " violations\n";

  // Phase 2: an adversarial burst — messages lost/duplicated/corrupted,
  // process state overwritten arbitrarily (the full Section 3.1 model).
  system.faults().burst(12, net::FaultMix::all());
  std::cout << "\ninjected " << system.faults().total_injected()
            << " faults at t=" << system.scheduler().now() << "\n";

  // Phase 3: keep running; the wrapper repairs mutual inconsistencies.
  system.run_for(8000);
  system.drain(5000);

  const StabilizationReport report = system.stabilization_report();
  std::cout << "\nfinal verdict: " << report.to_string() << "\n";
  std::cout << "total CS entries " << system.stats().cs_entries
            << ", wrapper resends " << system.stats().wrapper_messages
            << "\n";
  std::cout << "violations by clause:";
  for (const auto& [name, total] : system.monitors().violations_total_by_monitor()) {
    if (total > 0) std::cout << " " << name << "=" << total;
  }
  std::cout << "\n";

  // The convergence story: fault burst -> violation decay -> quiescence.
  std::cout << "\n" << system.timeline().to_string();

  std::cout << "\nThe run " << (report.stabilized ? "STABILIZED" : "FAILED")
            << ": every TME Spec violation is confined to the window right "
               "after the burst, exactly as Theorem 8 promises.\n";
  return report.stabilized ? 0 : 1;
}
