// Graybox means: wrap what you cannot read.
//
//   $ ./closed_source_wrapping
//
// The paper's opening concern is that classical stabilization needs the
// implementation's source ("whitebox"), which is unavailable for
// closed-source components. This example plays that story out: a
// "vendor" hands us two black boxes behind the TmeProcess interface — we
// pretend not to know whether each is Ricart-Agrawala or Lamport — and the
// SAME wrapper object, which can only touch the Lspec observables (state,
// REQ, knows_earlier), stabilizes both after identical fault bursts.
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "me/client.hpp"
#include "me/lamport.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

namespace {

using namespace graybox;

// The "vendor": returns implementations of the specification-level
// interface. Callers get no concrete type — exactly the graybox setting.
std::unique_ptr<me::TmeProcess> vendor_process(int vendor, ProcessId pid,
                                               net::Network& net) {
  if (vendor == 0)
    return std::make_unique<me::RicartAgrawala>(pid, net);
  return std::make_unique<me::LamportMe>(pid, net);
}

bool run_vendor_system(int vendor) {
  sim::Scheduler sched;
  net::Network net(sched, 3, net::DelayModel::uniform(1, 4), Rng(11));

  std::vector<std::unique_ptr<me::TmeProcess>> procs;
  std::vector<std::unique_ptr<me::Client>> clients;
  std::vector<std::unique_ptr<wrapper::GrayboxWrapper>> wrappers;
  Rng rng(99);
  for (ProcessId pid = 0; pid < 3; ++pid) {
    procs.push_back(vendor_process(vendor, pid, net));
    me::TmeProcess* p = procs.back().get();
    net.set_handler(pid, [p](const net::Message& m) { p->on_message(m); });
    me::ClientConfig client_config;
    client_config.think_mean = 30;
    client_config.eat_mean = 6;
    clients.push_back(
        std::make_unique<me::Client>(sched, *p, client_config, rng.split()));
    clients.back()->start();
    // The wrapper sees only the TmeProcess interface: this line compiles
    // for ANY implementation of Lspec, which is the whole point.
    wrappers.push_back(std::make_unique<wrapper::GrayboxWrapper>(
        sched, net, *p, wrapper::WrapperConfig{.resend_period = 15}));
    wrappers.back()->start();
  }

  net::FaultInjector faults(sched, net, Rng(44),
                            [&](ProcessId pid, Rng& r) {
                              procs[pid]->corrupt_state(r);
                            });

  sched.run_until(1000);
  faults.burst(10, net::FaultMix::all());
  sched.run_until(12000);
  for (auto& c : clients) c->stop_requesting();
  sched.run_until(18000);

  std::uint64_t entries = 0;
  bool all_thinking = true;
  for (const auto& p : procs) {
    entries += p->cs_entries();
    all_thinking = all_thinking && p->thinking();
  }
  std::cout << "  vendor box #" << vendor << " (claims to satisfy Lspec; "
            << "actually " << procs[0]->algorithm() << "): " << entries
            << " CS entries, " << faults.total_injected() << " faults, "
            << net.sent_by_wrapper() << " wrapper resends, final state "
            << (all_thinking ? "quiescent" : "STUCK") << "\n";
  return all_thinking && entries > 0;
}

}  // namespace

int main() {
  std::cout << "Wrapping closed-source components with one graybox "
               "wrapper:\n\n";
  const bool ok0 = run_vendor_system(0);
  const bool ok1 = run_vendor_system(1);
  std::cout << "\nThe wrapper never saw either implementation's internals — "
               "it is written against Lspec's observables alone — yet both "
               "black boxes recover from the same adversary. That is "
               "Corollary 11: reusability at the specification level.\n";
  return ok0 && ok1 ? 0 : 1;
}
