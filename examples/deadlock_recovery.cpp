// The paper's Section 4 deadlock, narrated step by step.
//
//   $ ./deadlock_recovery [--wrapped=true] [--delta=10]
//
// Two processes request the critical section; both request messages are
// lost. Each waits for the other's reply forever — "the state of M has a
// deadlock". Run with --wrapped=false to watch the bare protocol hang;
// with the wrapper (default) the W' resends repair the mutual
// inconsistency and both processes are served.
//
// The system here is hand-wired (no SystemHarness), which also demos the
// observability layer at the component level: an EventBus shared by the
// network, processes, wrappers, and the fault injector, and a stabilization
// timeline derived purely from that bus.
#include <iostream>

#include "common/flags.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "obs/event_bus.hpp"
#include "obs/timeline.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

int main(int argc, char** argv) {
  using namespace graybox;

  Flags flags(argc, argv,
              {{"wrapped", "attach wrappers (default true)"},
               {"delta", "wrapper timeout (default 10)"}});
  const bool wrapped = flags.get_bool("wrapped", true);
  const auto delta = static_cast<SimTime>(flags.get_int("delta", 10));

  sim::Scheduler sched;
  obs::EventBus bus(sched, 4096);
  bus.set_fault_kind_names(net::fault_kind_names());

  net::Network net(sched, 2, net::DelayModel::fixed(1), Rng(3));
  net.set_event_bus(&bus);
  me::RicartAgrawala j(0, net), k(1, net);
  j.set_event_bus(&bus);
  k.set_event_bus(&bus);
  net.set_handler(0, [&](const net::Message& m) { j.on_message(m); });
  net.set_handler(1, [&](const net::Message& m) { k.on_message(m); });

  // Log every state transition so the narrative is visible.
  auto log_transitions = [&](me::TmeProcess& p, const char* name) {
    p.add_state_observer([&, name](me::TmeState from, me::TmeState to) {
      std::cout << "  [t=" << sched.now() << "] " << name << ": "
                << me::to_string(from) << " -> " << me::to_string(to)
                << "\n";
    });
  };
  log_transitions(j, "j");
  log_transitions(k, "k");

  std::unique_ptr<wrapper::GrayboxWrapper> wj, wk;
  if (wrapped) {
    wj = std::make_unique<wrapper::GrayboxWrapper>(
        sched, net, j, wrapper::WrapperConfig{.resend_period = delta});
    wk = std::make_unique<wrapper::GrayboxWrapper>(
        sched, net, k, wrapper::WrapperConfig{.resend_period = delta});
    wj->set_event_bus(&bus);
    wk->set_event_bus(&bus);
    wj->start();
    wk->start();
  }

  std::cout << "Section 4 scenario (" << (wrapped ? "wrapped" : "BARE")
            << "):\n";
  std::cout << "  both processes request the CS...\n";
  j.request_cs();
  k.request_cs();

  std::cout << "  ...and both request messages are dropped from the "
               "channels.\n";
  // Two channel-clear faults through the injector (so the burst is on the
  // record): the first clear hits one of the two nonempty channels, the
  // second hits the only one left — together they empty both.
  net::FaultInjector injector(sched, net, Rng(7), nullptr);
  injector.set_event_bus(&bus);
  injector.inject(net::FaultKind::kChannelClear);
  injector.inject(net::FaultKind::kChannelClear);

  std::cout << "  now j.REQk lt REQj and k.REQj lt REQk: neither can "
               "enter.\n\n";

  for (int phase = 0; phase < 6; ++phase) {
    sched.run_for(100);
    // Clients would do this; we emulate the release obligation inline.
    if (j.eating()) j.release_cs();
    if (k.eating()) k.release_cs();
  }

  std::cout << "\nafter 600 ticks: j=" << me::to_string(j.state())
            << " k=" << me::to_string(k.state()) << ", CS entries j="
            << j.cs_entries() << " k=" << k.cs_entries() << "\n";
  if (wrapped) {
    std::cout << "wrapper resends: " << net.sent_by_wrapper()
              << " — the graybox repair of the paper's deadlock.\n";
  } else {
    std::cout << "no recovery mechanism: this deadlock persists forever "
                 "(rerun with --wrapped=true).\n";
  }

  // The convergence story, reconstructed from the event bus alone.
  std::cout << "\n" << obs::timeline_from_bus(bus).to_string();

  const bool served = j.cs_entries() + k.cs_entries() >= 2;
  return wrapped == served ? 0 : 1;
}
