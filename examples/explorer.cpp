// explorer: a flag-driven experiment CLI over the whole library.
//
//   $ ./explorer --n=6 --algorithm=mixed --delta=25 --faults=20
//                --fault-kind=all --horizon=10000 --seed=7 --trace
//
// Builds a wrapped (or bare) TME system, runs warmup / fault burst /
// observation / drain, and prints the full monitoring report: per-monitor
// violations, stabilization verdict, message accounting, per-process
// service. Everything the bench binaries measure, on demand for one
// configuration — the "poke at it yourself" entry point.
#include <cstdlib>
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "obs/causal_dag.hpp"
#include "obs/perfetto.hpp"

int main(int argc, char** argv) {
  using namespace graybox;
  using namespace graybox::core;

  Flags flags(argc, argv,
              {{"n", "number of processes (default 5)"},
               {"algorithm",
                "any registered algorithm name or alias, or 'mixed' "
                "(default ra; unknown names list the registry)"},
               {"options",
                "comma-separated key=value algorithm options, resolved "
                "against the algorithm's schema (e.g. lease=4)"},
               {"wrapped", "attach graybox wrappers W' (default true)"},
               {"level1", "attach level-1 local wrappers too (default false)"},
               {"delta", "wrapper timeout (default 20)"},
               {"faults", "fault burst size after warmup (default 10)"},
               {"fault-kind",
                "all | drop | duplicate | corrupt | reorder | spurious | "
                "process | clear (default all)"},
               {"fault-load",
                "sustained load: mean ticks between arrivals on EACH "
                "message-fault stream (drop/duplicate/corrupt/spurious/"
                "process), running from warmup end to drain start "
                "(default 0 = off)"},
               {"crash-rate",
                "sustained load: mean ticks between process crashes "
                "(default 0 = off)"},
               {"downtime", "mean crash downtime ticks (default 150)"},
               {"partition-rate",
                "sustained load: mean ticks between partitions "
                "(default 0 = off)"},
               {"hold", "mean partition hold ticks (default 120)"},
               {"warmup", "fault-free prefix ticks (default 1000)"},
               {"horizon", "observation ticks after the burst (default 8000)"},
               {"drain", "drain ticks before judging liveness (default 5000)"},
               {"think", "client mean think time (default 40)"},
               {"eat", "client mean eat time (default 8)"},
               {"seed", "experiment seed (default 1)"},
               {"trace", "print the tail of the event trace"},
               {"perfetto",
                "write a Chrome/Perfetto trace_event JSON to this path "
                "(implies --trace)"},
               {"metrics", "write the run's metrics JSON to this path"},
               {"provenance",
                "track causal provenance: taint propagation and per-fault "
                "blast radius (default false; implied by --why and "
                "--blast-radius)"},
               {"why",
                "explain a recorded event: bus index, or 'violation' for "
                "the last retained monitor violation; prints the causal "
                "chain back to the fault injection (implies --provenance "
                "and a full-run trace)"},
               {"blast-radius",
                "print the per-fault blast-radius table (implies "
                "--provenance)"}});

  HarnessConfig config;
  config.n = static_cast<std::size_t>(flags.get_int("n", 5));
  const std::string algo = flags.get("algorithm", "ra");
  const me::ProtocolRegistry& registry = me::ProtocolRegistry::instance();
  if (algo == "mixed") {
    config.per_process_algorithms.resize(config.n);
    for (std::size_t j = 0; j < config.n; ++j) {
      config.per_process_algorithms[j] =
          j % 2 == 0 ? "ricart-agrawala" : "lamport";
    }
  } else if (const me::ProcessFactory* factory = registry.find(algo)) {
    config.algorithm = std::string(factory->name());
  } else {
    std::cerr << "unknown algorithm '" << algo << "'; registered:";
    for (std::string_view name : registry.names()) std::cerr << " " << name;
    std::cerr << " (or 'mixed')\n";
    return 2;
  }
  const std::string options = flags.get("options", "");
  for (std::size_t pos = 0; pos < options.size();) {
    const std::size_t comma = options.find(',', pos);
    const std::size_t end = comma == std::string::npos ? options.size() : comma;
    if (end > pos) config.algorithm_options.push_back(options.substr(pos, end - pos));
    pos = end + 1;
  }
  config.wrapped = flags.get_bool("wrapped", true);
  config.level1 = flags.get_bool("level1", false);
  config.wrapper.resend_period =
      static_cast<SimTime>(flags.get_int("delta", 20));
  config.client.think_mean = flags.get_double("think", 40);
  config.client.eat_mean = flags.get_double("eat", 8);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (flags.get_bool("trace", false)) config.trace_capacity = 2048;
  const std::string perfetto_path = flags.get("perfetto", "");
  const std::string metrics_path = flags.get("metrics", "");
  // A Perfetto export wants the whole run retained, not just a debug tail.
  if (!perfetto_path.empty() && config.trace_capacity < 1 << 20)
    config.trace_capacity = 1 << 20;
  if (!metrics_path.empty()) config.collect_metrics = true;
  const std::string why_arg = flags.get("why", "");
  const bool blast_radius = flags.get_bool("blast-radius", false);
  config.provenance = flags.get_bool("provenance", false) ||
                      !why_arg.empty() || blast_radius;
  // Explaining an event needs the whole run retained, like a Perfetto
  // export: a chain whose injection was evicted cannot be reconstructed.
  if (!why_arg.empty() && config.trace_capacity < 1 << 20)
    config.trace_capacity = 1 << 20;

  const std::string kind_name = flags.get("fault-kind", "all");
  net::FaultMix mix = net::FaultMix::all();
  if (kind_name == "drop")
    mix = net::FaultMix::only(net::FaultKind::kMessageDrop);
  else if (kind_name == "duplicate")
    mix = net::FaultMix::only(net::FaultKind::kMessageDuplicate);
  else if (kind_name == "corrupt")
    mix = net::FaultMix::only(net::FaultKind::kMessageCorrupt);
  else if (kind_name == "reorder")
    mix = net::FaultMix::only(net::FaultKind::kMessageReorder);
  else if (kind_name == "spurious")
    mix = net::FaultMix::only(net::FaultKind::kSpuriousMessage);
  else if (kind_name == "process")
    mix = net::FaultMix::only(net::FaultKind::kProcessCorrupt);
  else if (kind_name == "clear")
    mix = net::FaultMix::only(net::FaultKind::kChannelClear);

  const auto warmup = static_cast<SimTime>(flags.get_int("warmup", 1000));
  const auto horizon = static_cast<SimTime>(flags.get_int("horizon", 8000));
  const auto drain = static_cast<SimTime>(flags.get_int("drain", 5000));
  const auto burst = static_cast<std::size_t>(flags.get_int("faults", 10));

  // Sustained fault load (net::FaultProcess): continuous seeded streams
  // over the observation window, on top of (or instead of) the burst.
  const double load = flags.get_double("fault-load", 0);
  if (load > 0) {
    config.fault_process.drop_mean = load;
    config.fault_process.duplicate_mean = load;
    config.fault_process.corrupt_mean = load;
    config.fault_process.spurious_mean = load;
    config.fault_process.process_corrupt_mean = load;
  }
  config.fault_process.crash_mean = flags.get_double("crash-rate", 0);
  config.fault_process.downtime_mean = flags.get_double("downtime", 150);
  config.fault_process.partition_mean = flags.get_double("partition-rate", 0);
  config.fault_process.partition_hold_mean = flags.get_double("hold", 120);
  if (config.fault_process.any_enabled()) {
    // Keep the warmup fault-free and the drain quiet so the stabilization
    // verdict keeps its meaning.
    config.fault_process.start = warmup;
    config.fault_process.end = warmup + horizon;
  }

  SystemHarness system(config);
  system.start();

  system.run_for(warmup);
  if (burst > 0) system.faults().burst(burst, mix);
  system.run_for(horizon);
  system.drain(drain);

  // --- report ------------------------------------------------------------
  const RunStats stats = system.stats();
  const StabilizationReport report = system.stabilization_report();

  std::cout << "configuration: n=" << config.n
            << " algorithm=" << algorithm_spec(config)
            << " wrapped=" << (config.wrapped ? "yes" : "no")
            << " level1=" << (config.level1 ? "yes" : "no")
            << " delta=" << config.wrapper.resend_period
            << " seed=" << config.seed << "\n";
  std::cout << "faults: " << system.faults().total_injected() << " of kind "
            << kind_name << " at t=" << warmup;
  if (config.fault_process.any_enabled()) {
    std::cout << " + sustained load (" << stats.faults_injected
              << " total arrivals, " << stats.crashes << " crashes, "
              << stats.partitions << " partitions)";
  }
  std::cout << "\n\n";

  Table monitors({"monitor", "violations", "first", "last"});
  for (const auto& m : system.monitors().monitors()) {
    monitors.row(m->name(), m->total_violations(),
                 m->clean() ? "-" : std::to_string(m->first_violation()),
                 m->clean() ? "-" : std::to_string(m->last_violation()));
  }
  monitors.row("StructuralSpec (program steps)",
               system.structural_monitor().violations().size(), "-", "-");
  monitors.print(std::cout);

  Table summary({"metric", "value"});
  summary.row("verdict", report.stabilized ? "STABILIZED" : "NOT STABILIZED");
  summary.row("stabilization latency", report.latency);
  summary.row("CS entries", stats.cs_entries);
  summary.row("requests issued", stats.requests_issued);
  summary.row("messages (protocol)",
              stats.messages_sent - stats.wrapper_messages);
  summary.row("messages (wrapper)", stats.wrapper_messages);
  if (config.level1) summary.row("level-1 corrections", stats.level1_corrections);
  summary.row("max CS wait", stats.me2_max_wait);
  summary.row("events executed", stats.events_executed);
  if (config.fault_process.any_enabled() || stats.crashes > 0 ||
      stats.partitions > 0) {
    summary.row("deliveries to crashed", stats.deliveries_to_crashed);
    summary.row("dropped by partition", stats.dropped_by_partition);
    summary.row("mean reconverge (ticks)",
                stats.reconverge_windows > 0
                    ? stats.reconverge_ticks_total / stats.reconverge_windows
                    : 0);
  }
  std::cout << "\n";
  summary.print(std::cout);

  Table procs({"process", "algorithm", "CS entries", "final state"});
  for (ProcessId pid = 0; pid < config.n; ++pid) {
    procs.row(pid, std::string(system.process(pid).algorithm()),
              system.process(pid).cs_entries(),
              me::to_string(system.process(pid).state()));
  }
  std::cout << "\n";
  procs.print(std::cout);

  std::cout << "\n" << system.timeline().to_string();

  if (config.trace_capacity > 0) {
    std::cout << "\nevent trace tail:\n";
    system.trace().dump(std::cout, 32);
  }
  if (blast_radius && system.provenance() != nullptr) {
    const obs::ProvenanceTracker& prov = *system.provenance();
    Table blast({"id", "fault", "origin", "injected", "procs tainted",
                 "msgs tainted", "violations", "containment"});
    for (const obs::BlastRadius& b : prov.blast()) {
      blast.row(b.id, net::fault_code_name(b.code),
                b.origin == kNoProcess ? std::string("-")
                                       : std::to_string(b.origin),
                b.injected_at, b.processes_tainted, b.messages_tainted,
                b.violations_attributed, b.containment());
    }
    std::cout << "\nblast radius (" << prov.minted() << " faults minted):\n";
    blast.print(std::cout);
  }
  if (!why_arg.empty()) {
    const obs::EventBus& bus = system.events();
    std::size_t target = bus.size();
    if (why_arg == "violation") {
      for (std::size_t i = bus.size(); i > 0; --i) {
        if (bus.event(i - 1).kind == obs::EventKind::kMonitorViolation) {
          target = i - 1;
          break;
        }
      }
      if (target == bus.size())
        std::cout << "\n--why=violation: no monitor violation retained\n";
    } else {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(why_arg.c_str(), &end, 10);
      if (end == why_arg.c_str() || *end != '\0') {
        std::cerr << "--why expects a bus index or 'violation', got '"
                  << why_arg << "'\n";
        return 2;
      }
      target = static_cast<std::size_t>(v);
      if (target >= bus.size()) {
        std::cout << "\n--why=" << why_arg << ": index out of range (trace"
                  << " holds " << bus.size() << " events)\n";
        target = bus.size();
      }
    }
    if (target < bus.size()) {
      const std::vector<std::size_t> chain = obs::why(bus, target);
      std::cout << "\ncausal chain for event #" << target << " ("
                << bus.render(bus.event(target)) << "):\n";
      if (chain.empty()) {
        std::cout << "  no recorded fault injection upstream of this event\n";
      } else {
        for (std::size_t idx : chain) {
          const obs::Event& e = bus.event(idx);
          std::cout << "  #" << idx << "  t=" << e.time << "  "
                    << bus.render(e) << "\n";
        }
      }
    }
  }
  if (!perfetto_path.empty()) {
    obs::write_perfetto_file(perfetto_path, system.events());
    std::cout << "\nwrote Perfetto trace (open in ui.perfetto.dev): "
              << perfetto_path << "\n";
  }
  if (!metrics_path.empty()) {
    report::write_json_file(
        metrics_path, obs::metrics_snapshot_to_json(stats.metrics));
    std::cout << "wrote metrics JSON: " << metrics_path << "\n";
  }
  return report.stabilized ? 0 : 1;
}
