// Watching a specification: the UNITY monitors in action.
//
//   $ ./spec_monitor_demo
//
// Runs a 3-process Ricart-Agrawala system, injects one surgical fault — a
// corrupted-high view, the inconsistency at the heart of Section 4 — and
// prints the violations the TME Spec monitors record: a brief ME1 overlap
// and an Invariant-I breach, both confined to the window before the system
// heals. The same monitors report nothing before the fault and nothing
// after stabilization.
#include <iostream>

#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "me/ricart_agrawala.hpp"

int main() {
  using namespace graybox;
  using namespace graybox::core;

  HarnessConfig config;
  config.n = 3;
  config.algorithm = Algorithm::kRicartAgrawala;
  config.wrapped = true;
  config.wrapper.resend_period = 15;
  config.client.think_mean = 25;
  config.client.eat_mean = 6;
  config.seed = 5;

  SystemHarness system(config);
  system.start();

  std::cout << "spec_monitor_demo: 3-process Ricart-Agrawala, full TME "
               "monitor battery\n\n";

  system.run_for(1500);
  std::cout << "fault-free prefix: " << system.monitors().total_violations()
            << " violations over " << system.monitors().observed_states()
            << " observed global states\n";

  // Wait for a moment at which some peer is inside the critical section,
  // so the fault provably matters.
  while (!(system.process(1).eating() || system.process(2).eating())) {
    system.run_for(1);
  }

  // One surgical fault: process 0 is led to believe its request is earlier
  // than everyone else's — the false "REQj lt j.REQk" belief of Section 4 —
  // and it requests the CS on that belief, entering alongside the real
  // occupant.
  auto& p0 = dynamic_cast<me::RicartAgrawala&>(system.process(0));
  if (!p0.thinking()) p0.fault_set_state(me::TmeState::kThinking);
  p0.fault_set_view(1, clk::Timestamp{1'000'000, 1});
  p0.fault_set_view(2, clk::Timestamp{1'000'000, 2});
  p0.request_cs();
  const SimTime fault_at = system.scheduler().now();
  std::cout << "\n[t=" << fault_at
            << "] fault injected: process 0's views of its peers corrupted "
               "sky-high while a peer holds the CS\n\n";

  system.run_for(6000);
  system.drain(3000);

  std::cout << "violations recorded by each monitor:\n";
  for (const auto& monitor : system.monitors().monitors()) {
    std::cout << "  " << monitor->name() << ": "
              << monitor->total_violations() << " violation(s)";
    if (!monitor->clean()) {
      std::cout << ", window [" << monitor->first_violation() << ", "
                << monitor->last_violation() << "]";
    }
    std::cout << "\n";
    std::size_t shown = 0;
    for (const auto& v : monitor->violations()) {
      if (++shown > 3) {
        std::cout << "      ...\n";
        break;
      }
      std::cout << "      " << v.to_string() << "\n";
    }
  }

  const StabilizationReport report = system.stabilization_report();
  std::cout << "\nverdict: " << report.to_string() << "\n";
  std::cout << "\nEvery violation sits inside a finite window after the "
               "fault at t=" << fault_at
            << "; the suffix is clean — the monitors have watched the "
               "system stabilize.\n";
  return report.stabilized ? 0 : 1;
}
