// A guided tour of the Section 3.1 fault model.
//
//   $ ./fault_tour [--seed=9]
//
// For each fault kind the paper allows — message loss, duplication,
// corruption, reordering, spurious messages, arbitrary process-state
// corruption, channel wipes — this example injects a burst of exactly that
// kind into a wrapped Ricart-Agrawala system, then reports the violation
// window and the stabilization verdict, plus a tail of the event trace for
// the most interesting case.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

int main(int argc, char** argv) {
  using namespace graybox;
  using namespace graybox::core;

  Flags flags(argc, argv, {{"seed", "experiment seed (default 9)"}});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));

  const net::FaultKind kinds[] = {
      net::FaultKind::kMessageDrop,     net::FaultKind::kMessageDuplicate,
      net::FaultKind::kMessageCorrupt,  net::FaultKind::kMessageReorder,
      net::FaultKind::kSpuriousMessage, net::FaultKind::kProcessCorrupt,
      net::FaultKind::kChannelClear};

  std::cout << "fault_tour: one fault kind at a time against a wrapped "
               "4-process Ricart-Agrawala system\n\n";

  Table table({"fault kind", "injected", "violations", "violation window",
               "verdict"});
  for (const auto kind : kinds) {
    HarnessConfig config;
    config.n = 4;
    config.algorithm = Algorithm::kRicartAgrawala;
    config.wrapped = true;
    config.wrapper.resend_period = 15;
    config.client.think_mean = 30;
    config.client.eat_mean = 6;
    config.seed = seed;
    config.trace_capacity = kind == net::FaultKind::kProcessCorrupt ? 64 : 0;

    SystemHarness h(config);
    h.start();
    h.run_for(800);
    // Message faults need traffic to bite on: wait for a busy instant
    // (reordering in particular needs a channel holding two messages).
    while (h.network().in_flight() < 5 && h.scheduler().now() < 5000) {
      h.run_for(1);
    }
    h.faults().burst(6, net::FaultMix::only(kind));
    h.run_for(6000);
    h.drain(4000);

    const StabilizationReport report = h.stabilization_report();
    const std::uint64_t violations = h.monitors().total_violations();
    std::string window = "-";
    if (const SimTime last = h.monitors().last_violation(); last != kNever) {
      window = "[" + std::to_string(report.last_fault) + ", " +
               std::to_string(last) + "]";
    }
    table.row(net::to_string(kind), h.faults().total_injected(), violations,
              window, report.stabilized ? "stabilized" : "FAILED");

    if (config.trace_capacity > 0) {
      std::cout << "trace tail around the " << net::to_string(kind)
                << " burst:\n";
      h.trace().dump(std::cout, 8);
      std::cout << "\n";
    }
  }
  table.print(std::cout);

  std::cout << "\nEvery row stabilizes: the wrapper needs no knowledge of "
               "which fault hit, only the Lspec-level observables — that is "
               "what makes it a graybox component.\n";
  return 0;
}
