// Heterogeneous systems: Lspec is a LOCAL everywhere specification, so the
// graybox theory applies process-by-process — nothing requires every
// process to run the same program. These tests mix RicartAgrawala and
// LamportMe in one system and probe:
//
//   * wrapped mixed systems satisfy TME Spec fault-free and stabilize
//     after arbitrary fault bursts, with the SAME wrapper on every process
//     (the strongest form of Corollary 11's reusability);
//   * an interoperation subtlety the wrapper heals: a Lamport process's
//     queue entry for a Ricart-Agrawala peer is normally retired by that
//     peer's RELEASE broadcast — which RA never sends. A scripted bare run
//     wedges on exactly that stale entry; the wrapper's resend draws a
//     fresh reply that retires it. Protocol-interop gaps are just another
//     mutual inconsistency at the Lspec level.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "me/carvalho_roucairol.hpp"
#include "me/lamport.hpp"

namespace graybox::core {
namespace {

HarnessConfig mixed_config(std::uint64_t seed, bool wrapped) {
  HarnessConfig config;
  config.n = 4;
  config.per_process_algorithms = {
      Algorithm::kRicartAgrawala, Algorithm::kLamport,
      Algorithm::kRicartAgrawala, Algorithm::kLamport};
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

TEST(Heterogeneous, ConfiguredAlgorithmsAreHonoured) {
  SystemHarness h(mixed_config(1, true));
  EXPECT_EQ(h.process(0).algorithm(), "ricart-agrawala");
  EXPECT_EQ(h.process(1).algorithm(), "lamport");
  EXPECT_EQ(h.process(2).algorithm(), "ricart-agrawala");
  EXPECT_EQ(h.process(3).algorithm(), "lamport");
}

TEST(Heterogeneous, WrappedMixedSystemIsCorrectFaultFree) {
  SystemHarness h(mixed_config(2, true));
  h.start();
  h.run_for(6000);
  h.drain(4000);
  EXPECT_EQ(h.tme_monitors().me1->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().me3->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().invariant_i->total_violations(), 0u);
  EXPECT_FALSE(h.tme_monitors().me2->starvation_at_end());
  EXPECT_TRUE(h.structural_monitor().clean());
  EXPECT_GT(h.stats().cs_entries, 20u);
  // Every process got service, regardless of its implementation.
  for (ProcessId pid = 0; pid < 4; ++pid)
    EXPECT_GT(h.process(pid).cs_entries(), 0u);
}

TEST(MixedStabilization, RecoversFromMixedFaultBursts) {
  // Seeds 600..607 through the engine: one cell, eight consecutive seeds,
  // trials fanned across two workers.
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 12;
  scenario.mix = net::FaultMix::all();
  scenario.observation = 7000;
  scenario.drain = 5000;
  const RepeatedResult result = repeat_fault_experiment(
      mixed_config(600, true), scenario, /*trials=*/8, /*jobs=*/2);
  EXPECT_TRUE(result.all_stabilized())
      << result.stabilized << "/" << result.trials << " stabilized, "
      << result.starved << " starved";
}

// --- Three-way mix with per-process options ------------------------------------

HarnessConfig three_way_config(std::uint64_t seed) {
  // RA, Lamport, and Carvalho-Roucairol in ONE system, with a per-process
  // option (a shortened CR lease) — the registry's per-process resolution
  // path that the uniform tests never touch.
  HarnessConfig config;
  config.n = 4;
  config.per_process_algorithms = {"ricart-agrawala", "lamport",
                                   "carvalho-roucairol", "ricart-agrawala"};
  config.per_process_options = {{}, {}, {"lease=4"}, {}};
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

TEST(ThreeWayMix, PerProcessOptionsReachTheProcesses) {
  SystemHarness h(three_way_config(1));
  EXPECT_EQ(h.process(0).algorithm(), "ricart-agrawala");
  EXPECT_EQ(h.process(1).algorithm(), "lamport");
  EXPECT_EQ(h.process(2).algorithm(), "carvalho-roucairol");
  EXPECT_EQ(h.process(3).algorithm(), "ricart-agrawala");
  auto* cr = dynamic_cast<me::CarvalhoRoucairol*>(&h.process(2));
  ASSERT_NE(cr, nullptr);
  EXPECT_EQ(cr->lease(), 4u);  // the per-process option, not the default 8

  // The canonical spec serializes the heterogeneous vector per process.
  EXPECT_EQ(algorithm_spec(h.config()),
            "ricart-agrawala[monotone_views=0]+lamport[head_only_release=0]+"
            "carvalho-roucairol[lease=4]+ricart-agrawala[monotone_views=0]");
}

TEST(ThreeWayMix, WrappedSystemIsCorrectFaultFree) {
  // A CR process in the mix drops view_entry_truth, so the battery swaps
  // in the mutual-belief monitor — and the mixed system still serves
  // everyone cleanly.
  SystemHarness h(three_way_config(2));
  EXPECT_NE(h.tme_monitors().mutual_belief, nullptr);
  h.start();
  h.run_for(6000);
  h.drain(4000);
  EXPECT_EQ(h.monitors().total_violations(), 0u);
  EXPECT_FALSE(h.tme_monitors().me2->starvation_at_end());
  for (ProcessId pid = 0; pid < 4; ++pid)
    EXPECT_GT(h.process(pid).cs_entries(), 0u);
}

TEST(ThreeWayMix, StabilizesFromMixedFaultBursts) {
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 12;
  scenario.mix = net::FaultMix::all();
  scenario.observation = 7000;
  scenario.drain = 5000;
  const RepeatedResult result = repeat_fault_experiment(
      three_way_config(700), scenario, /*trials=*/8, /*jobs=*/2);
  EXPECT_TRUE(result.all_stabilized())
      << result.stabilized << "/" << result.trials << " stabilized, "
      << result.starved << " starved";
}

// --- The interop wedge ---------------------------------------------------------

// The two programs advertise "my request is over" differently: RA answers
// its deferred peers with a REPLY; Lamport broadcasts a RELEASE. An RA
// process ignores RELEASEs, so when it loses a contention round to a
// Lamport peer, nothing the bare protocol sends will ever refresh its view
// of that peer: it waits forever.
//
// (The mirrored wedge — a Lamport process holding a stale queue entry for
// an RA peer — is already healed by this library's stale-entry retirement,
// exercised in ablation A2: the ordinary REPLY to the Lamport process's
// own next request carries fresh evidence. Only the RA side needs the
// wrapper.)
//
// Script: Lamport process 1 wins the CS; RA process 0 requests while 1 is
// eating; 1 releases with a RELEASE broadcast that 0 ignores.
void build_interop_wedge(SystemHarness& h) {
  h.process(1).request_cs();
  while (!h.process(1).eating()) h.run_for(2);
  h.process(0).request_cs();
  h.run_for(10);  // 0's request delivered; 1's reply carries its old REQ
  // 1's client releases it; the RELEASE broadcast means nothing to 0.
  while (!h.process(1).thinking()) h.run_for(2);
  h.run_for(30);
}

TEST(Heterogeneous, BareInteropWedgesOnIgnoredRelease) {
  HarnessConfig config = mixed_config(3, false);
  config.client.wants_cs = false;  // scripted only
  SystemHarness h(config);
  h.start();
  build_interop_wedge(h);
  h.run_for(50000);
  // Process 0 still believes process 1's old request is outstanding.
  EXPECT_TRUE(h.process(0).hungry());
  EXPECT_EQ(h.process(0).cs_entries(), 0u);
}

TEST(Heterogeneous, WrapperHealsTheInteropWedge) {
  HarnessConfig config = mixed_config(3, true);
  config.client.wants_cs = false;
  SystemHarness h(config);
  h.start();
  build_interop_wedge(h);
  h.run_for(200);
  // The wrapper resent REQ0 to the Lamport peer, whose REPLY carries its
  // current (post-release) REQ: the view refreshes and 0 enters.
  EXPECT_EQ(h.process(0).cs_entries(), 1u);
}

TEST(Heterogeneous, BareMixedSystemsStarveOnceTrafficStops) {
  // The gap is symmetric: an RA process never reads Lamport's RELEASE, so
  // its view of a Lamport peer only refreshes on that peer's next REQUEST
  // or REPLY. While everyone keeps requesting, fresh traffic papers over
  // both wedges; the moment clients stop (the drain), whoever is stuck
  // behind stale information starves. This seed deterministically does.
  SystemHarness h(mixed_config(4, false));
  h.start();
  h.run_for(8000);
  h.drain(5000);
  EXPECT_TRUE(h.tme_monitors().me2->starvation_at_end());

  // The identical run, wrapped: live. (The wrapper resend draws a fresh
  // REPLY carrying the peer's current REQ, which both programs accept.)
  SystemHarness wrapped(mixed_config(4, true));
  wrapped.start();
  wrapped.run_for(8000);
  wrapped.drain(5000);
  EXPECT_FALSE(wrapped.tme_monitors().me2->starvation_at_end());
}

}  // namespace
}  // namespace graybox::core
