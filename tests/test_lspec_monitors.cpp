// Unit tests for the TME Spec monitors (ME1/ME2/ME3/Invariant I) driven
// with hand-built snapshots, plus the program-transition monitors on live
// processes.
#include <gtest/gtest.h>

#include <memory>

#include "lspec/program_monitors.hpp"
#include "lspec/snapshot.hpp"
#include "lspec/tme_monitors.hpp"
#include "me/ricart_agrawala.hpp"

namespace graybox::lspec {
namespace {

using me::TmeState;

GlobalSnapshot make_snapshot(std::size_t n,
                             std::initializer_list<TmeState> states) {
  GlobalSnapshot s;
  s.resize(n);  // zeroes the knows_earlier and vector-clock matrices
  std::size_t j = 0;
  for (const auto st : states) {
    s.procs[j].state = st;
    s.procs[j].req = clk::Timestamp{j + 1, static_cast<ProcessId>(j)};
    ++j;
  }
  return s;
}

// --- snapshot helpers -------------------------------------------------------

TEST(GlobalSnapshot, CountsStates) {
  const auto s = make_snapshot(
      3, {TmeState::kEating, TmeState::kHungry, TmeState::kEating});
  EXPECT_EQ(s.eating_count(), 2u);
  EXPECT_EQ(s.hungry_count(), 1u);
}

// --- ME1 -----------------------------------------------------------------------

TEST(Me1Monitor, CleanWithSingleEater) {
  TmeMonitorSet set;
  auto& me1 = set.add<Me1Monitor>();
  set.observe(0, make_snapshot(3, {TmeState::kEating, TmeState::kThinking,
                                   TmeState::kHungry}));
  set.observe(1, make_snapshot(3, {TmeState::kThinking, TmeState::kEating,
                                   TmeState::kHungry}));
  EXPECT_TRUE(me1.clean());
}

TEST(Me1Monitor, FlagsOverlap) {
  TmeMonitorSet set;
  auto& me1 = set.add<Me1Monitor>();
  set.observe(5, make_snapshot(2, {TmeState::kEating, TmeState::kEating}));
  EXPECT_EQ(me1.total_violations(), 1u);
  EXPECT_EQ(me1.last_violation(), 5u);
  EXPECT_EQ(me1.episodes(), 1u);
}

TEST(Me1Monitor, EpisodeCountsDistinctOverlaps) {
  TmeMonitorSet set;
  auto& me1 = set.add<Me1Monitor>();
  set.observe(0, make_snapshot(2, {TmeState::kEating, TmeState::kEating}));
  set.observe(1, make_snapshot(2, {TmeState::kEating, TmeState::kEating}));
  set.observe(2, make_snapshot(2, {TmeState::kEating, TmeState::kThinking}));
  set.observe(3, make_snapshot(2, {TmeState::kEating, TmeState::kEating}));
  EXPECT_EQ(me1.episodes(), 2u);
  EXPECT_EQ(me1.total_violations(), 3u);
  EXPECT_EQ(me1.last_violation(), 3u);
}

// --- ME2 -----------------------------------------------------------------------

TEST(Me2Monitor, ServedRequestIsClean) {
  TmeMonitorSet set;
  auto& me2 = set.add<Me2Monitor>(2);
  set.observe(0, make_snapshot(2, {TmeState::kThinking, TmeState::kThinking}));
  set.observe(1, make_snapshot(2, {TmeState::kHungry, TmeState::kThinking}));
  set.observe(4, make_snapshot(2, {TmeState::kEating, TmeState::kThinking}));
  set.finish(5);
  EXPECT_TRUE(me2.clean());
  EXPECT_EQ(me2.served(), 1u);
  EXPECT_EQ(me2.max_wait(), 3u);
  EXPECT_FALSE(me2.starvation_at_end());
}

TEST(Me2Monitor, HungryAtEndIsStarvation) {
  TmeMonitorSet set;
  auto& me2 = set.add<Me2Monitor>(2);
  set.observe(0, make_snapshot(2, {TmeState::kThinking, TmeState::kThinking}));
  set.observe(3, make_snapshot(2, {TmeState::kHungry, TmeState::kThinking}));
  set.observe(9, make_snapshot(2, {TmeState::kHungry, TmeState::kThinking}));
  set.finish(10);
  EXPECT_TRUE(me2.starvation_at_end());
  EXPECT_EQ(me2.total_violations(), 1u);
  EXPECT_EQ(me2.last_violation(), 3u);  // reported at hungry-since
}

TEST(Me2Monitor, FaultJumpCancelsEpisodeWithoutService) {
  TmeMonitorSet set;
  auto& me2 = set.add<Me2Monitor>(1);
  set.observe(0, make_snapshot(1, {TmeState::kHungry}));
  set.observe(1, make_snapshot(1, {TmeState::kThinking}));  // corruption jump
  set.finish(2);
  EXPECT_TRUE(me2.clean());
  EXPECT_EQ(me2.served(), 0u);
}

TEST(Me2Monitor, TracksMaxAcrossMultipleWaits) {
  TmeMonitorSet set;
  auto& me2 = set.add<Me2Monitor>(1);
  set.observe(0, make_snapshot(1, {TmeState::kHungry}));
  set.observe(2, make_snapshot(1, {TmeState::kEating}));
  set.observe(3, make_snapshot(1, {TmeState::kThinking}));
  set.observe(4, make_snapshot(1, {TmeState::kHungry}));
  set.observe(14, make_snapshot(1, {TmeState::kEating}));
  set.finish(15);
  EXPECT_EQ(me2.served(), 2u);
  EXPECT_EQ(me2.max_wait(), 10u);
}

// --- ME3 -----------------------------------------------------------------------

class Me3Test : public ::testing::Test {
 protected:
  // Build snapshots with controllable vector clocks so happened-before can
  // be forced. Two processes.
  GlobalSnapshot snap(TmeState s0, TmeState s1, const clk::VectorClock& vc0,
                      const clk::VectorClock& vc1) {
    auto s = make_snapshot(2, {s0, s1});
    s.set_vc(0, vc0);
    s.set_vc(1, vc1);
    return s;
  }
};

TEST_F(Me3Test, CausallyOrderedEntriesInOrderAreClean) {
  TmeMonitorSet set;
  auto& me3 = set.add<Me3Monitor>(2);
  clk::VectorClock v0(0, 2);
  v0.tick();  // request event of 0
  clk::VectorClock v1(1, 2);
  v1.witness(v0);  // 1 requests after hearing from 0: hb holds
  set.observe(0, snap(TmeState::kThinking, TmeState::kThinking,
                      clk::VectorClock(0, 2), clk::VectorClock(1, 2)));
  set.observe(1, snap(TmeState::kHungry, TmeState::kThinking, v0,
                      clk::VectorClock(1, 2)));
  set.observe(2, snap(TmeState::kHungry, TmeState::kHungry, v0, v1));
  // 0 (earlier) enters first: clean.
  set.observe(3, snap(TmeState::kEating, TmeState::kHungry, v0, v1));
  set.observe(4, snap(TmeState::kThinking, TmeState::kHungry, v0, v1));
  set.observe(5, snap(TmeState::kThinking, TmeState::kEating, v0, v1));
  EXPECT_TRUE(me3.clean());
  EXPECT_EQ(me3.entries_checked(), 2u);
}

TEST_F(Me3Test, OvertakingCausalRequestIsViolation) {
  TmeMonitorSet set;
  auto& me3 = set.add<Me3Monitor>(2);
  clk::VectorClock v0(0, 2);
  v0.tick();
  clk::VectorClock v1(1, 2);
  v1.witness(v0);  // 0's request hb 1's request
  set.observe(0, snap(TmeState::kThinking, TmeState::kThinking,
                      clk::VectorClock(0, 2), clk::VectorClock(1, 2)));
  set.observe(1, snap(TmeState::kHungry, TmeState::kThinking, v0,
                      clk::VectorClock(1, 2)));
  set.observe(2, snap(TmeState::kHungry, TmeState::kHungry, v0, v1));
  // 1 enters while 0 (whose request happened-before) still waits: FCFS
  // violation.
  set.observe(3, snap(TmeState::kHungry, TmeState::kEating, v0, v1));
  EXPECT_EQ(me3.total_violations(), 1u);
  EXPECT_EQ(me3.last_violation(), 3u);
}

TEST_F(Me3Test, ConcurrentRequestsMayEnterInAnyOrder) {
  TmeMonitorSet set;
  auto& me3 = set.add<Me3Monitor>(2);
  clk::VectorClock v0(0, 2), v1(1, 2);
  v0.tick();
  v1.tick();  // concurrent requests
  set.observe(0, snap(TmeState::kThinking, TmeState::kThinking,
                      clk::VectorClock(0, 2), clk::VectorClock(1, 2)));
  set.observe(1, snap(TmeState::kHungry, TmeState::kHungry, v0, v1));
  set.observe(2, snap(TmeState::kHungry, TmeState::kEating, v0, v1));
  EXPECT_TRUE(me3.clean());
}

TEST_F(Me3Test, EntryWithoutRequestWhilePeersWaitIsViolation) {
  TmeMonitorSet set;
  auto& me3 = set.add<Me3Monitor>(2);
  clk::VectorClock v0(0, 2), v1(1, 2);
  v0.tick();
  set.observe(0, snap(TmeState::kThinking, TmeState::kThinking,
                      clk::VectorClock(0, 2), v1));
  set.observe(1, snap(TmeState::kHungry, TmeState::kThinking, v0, v1));
  // Corruption jumps 1 straight into the CS while 0 waits.
  set.observe(2, snap(TmeState::kHungry, TmeState::kEating, v0, v1));
  EXPECT_EQ(me3.total_violations(), 1u);
}

// --- Invariant I -------------------------------------------------------------------

TEST(InvariantIMonitor, CleanWhenBeliefsMatchReality) {
  TmeMonitorSet set;
  auto& inv = set.add<InvariantIMonitor>();
  auto s = make_snapshot(2, {TmeState::kHungry, TmeState::kThinking});
  s.procs[0].req = clk::Timestamp{1, 0};
  s.procs[1].req = clk::Timestamp{5, 1};
  s.set_knows_earlier(0, 1, true);  // true: {1,0} lt {5,1}
  set.observe(0, s);
  EXPECT_TRUE(inv.clean());
}

TEST(InvariantIMonitor, FlagsFalseBelief) {
  TmeMonitorSet set;
  auto& inv = set.add<InvariantIMonitor>();
  auto s = make_snapshot(2, {TmeState::kHungry, TmeState::kThinking});
  s.procs[0].req = clk::Timestamp{9, 0};
  s.procs[1].req = clk::Timestamp{5, 1};
  s.set_knows_earlier(0, 1, true);  // false belief: {9,0} not lt {5,1}
  set.observe(7, s);
  EXPECT_EQ(inv.total_violations(), 1u);
  EXPECT_EQ(inv.last_violation(), 7u);
}

TEST(InvariantIMonitor, BeliefOnlyJudgedWhileHungry) {
  TmeMonitorSet set;
  auto& inv = set.add<InvariantIMonitor>();
  auto s = make_snapshot(2, {TmeState::kThinking, TmeState::kThinking});
  s.procs[0].req = clk::Timestamp{9, 0};
  s.procs[1].req = clk::Timestamp{5, 1};
  s.set_knows_earlier(0, 1, true);
  set.observe(0, s);
  EXPECT_TRUE(inv.clean());
}

// --- install helper ------------------------------------------------------------------

TEST(InstallTmeMonitors, WiresAllFour) {
  TmeMonitorSet set;
  const TmeMonitors handles = install_tme_monitors(set, 3);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_NE(handles.me1, nullptr);
  EXPECT_NE(handles.me2, nullptr);
  EXPECT_NE(handles.me3, nullptr);
  EXPECT_NE(handles.invariant_i, nullptr);
}

// --- program monitors on live processes ------------------------------------------------

class ProgramMonitorTest : public ::testing::Test {
 protected:
  ProgramMonitorTest() : net(sched, 2, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < 2; ++pid) {
      procs.push_back(std::make_unique<me::RicartAgrawala>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
      raw.push_back(p);
    }
  }
  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<me::RicartAgrawala>> procs;
  std::vector<me::TmeProcess*> raw;
};

TEST_F(ProgramMonitorTest, StructuralSpecCleanOnProtocolRun) {
  StructuralSpecMonitor mon(raw, sched);
  procs[0]->request_cs();
  sched.run_all();
  procs[0]->release_cs();
  sched.run_all();
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.transitions_checked(), 3u);
}

TEST_F(ProgramMonitorTest, StructuralSpecIgnoresFaultJumps) {
  StructuralSpecMonitor mon(raw, sched);
  procs[0]->fault_set_state(me::TmeState::kEating);  // not a program step
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.transitions_checked(), 0u);
}

TEST_F(ProgramMonitorTest, FifoCleanOnFaultFreeTraffic) {
  FifoMonitor mon(net, sched);
  procs[0]->request_cs();
  sched.run_all();
  procs[0]->release_cs();
  sched.run_all();
  EXPECT_TRUE(mon.clean());
  EXPECT_GT(mon.deliveries_checked(), 0u);
}

TEST_F(ProgramMonitorTest, FifoFlagsReorderFault) {
  FifoMonitor mon(net, sched);
  net.send(0, 1, net::MsgType::kRequest, clk::Timestamp{1, 0});
  net.send(0, 1, net::MsgType::kRequest, clk::Timestamp{2, 0});
  net.channel(0, 1).fault_swap(0, 1);
  sched.run_all();
  EXPECT_FALSE(mon.clean());
}

TEST_F(ProgramMonitorTest, FifoSkipsFabricatedMessages) {
  FifoMonitor mon(net, sched);
  net::Message fake;
  fake.type = net::MsgType::kRelease;  // ignored by RA: no response traffic
  fake.from = 0;
  fake.to = 1;
  fake.ts = clk::Timestamp{1, 0};
  net.channel(0, 1).fault_inject(fake);  // uid 0
  sched.run_all();
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.deliveries_checked(), 0u);
}

TEST_F(ProgramMonitorTest, SendMonotonicityCleanFaultFree) {
  SendMonotonicityMonitor mon(net, sched);
  procs[0]->request_cs();
  sched.run_all();
  procs[0]->release_cs();
  procs[1]->request_cs();
  sched.run_all();
  EXPECT_TRUE(mon.clean());
  EXPECT_GT(mon.sends_checked(), 0u);
}

TEST_F(ProgramMonitorTest, SendMonotonicityFlagsClockRollback) {
  SendMonotonicityMonitor mon(net, sched);
  procs[0]->request_cs();
  sched.run_all();
  procs[0]->release_cs();
  // A peer request pushes 0's clock (and hence its reply timestamp) up.
  procs[1]->request_cs();
  sched.run_all();
  EXPECT_TRUE(mon.clean());
  // Corrupt the clock backwards; the next request sends a smaller ts.
  procs[0]->fault_set_clock(0);
  procs[0]->request_cs();
  EXPECT_FALSE(mon.clean());
}

}  // namespace
}  // namespace graybox::lspec
