// Unit and property tests for the Section 6 extension: masking, fail-safe,
// and nonmasking tolerance over explicit fault relations, and the graybox
// transfer of wrapper-added tolerance to everywhere implementations.
#include <gtest/gtest.h>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/tolerance.hpp"

namespace graybox::algebra {
namespace {

// A small running specification: ring 0 -> 1 -> 2 -> 0, initial {0},
// recurrent {0} ("the token returns to the root infinitely often").
LiveSpec ring_spec() {
  System safety(4);
  safety.add_transition(0, 1);
  safety.add_transition(1, 2);
  safety.add_transition(2, 0);
  safety.add_transition(3, 0);  // recovery edge allowed by the spec
  safety.set_initial(0);
  LiveSpec spec;
  spec.recurrent = Bitset(4);
  spec.recurrent.set(0);
  spec.safety = safety;
  return spec;
}

System ring_impl() {
  System c(4);
  c.add_transition(0, 1);
  c.add_transition(1, 2);
  c.add_transition(2, 0);
  c.add_transition(3, 0);
  c.set_initial(0);
  return c;
}

System no_faults() { return System(4); }

TEST(LiveSpec, TrivialMakesEveryStateRecurrent) {
  const LiveSpec spec = LiveSpec::trivial(ring_impl());
  EXPECT_EQ(spec.recurrent.count(), 4u);
}

TEST(WithFaults, UnionsRelationsKeepsInit) {
  System f(4);
  f.add_transition(0, 3);
  const System perturbed = with_faults(ring_impl(), f);
  EXPECT_TRUE(perturbed.has_transition(0, 3));
  EXPECT_TRUE(perturbed.has_transition(0, 1));
  EXPECT_TRUE(perturbed.is_initial(0));
  EXPECT_FALSE(perturbed.is_initial(3));
}

TEST(Masking, HoldsWithNoFaults) {
  EXPECT_TRUE(masking_tolerant(ring_impl(), no_faults(), ring_spec()));
  EXPECT_TRUE(failsafe_tolerant(ring_impl(), no_faults(), ring_spec()));
}

TEST(Masking, HoldsWhenFaultEdgesAreSpecEdges) {
  // A "fault" that jumps 3 -> 0 is an edge the spec itself allows: the
  // perturbed computations still implement the spec.
  System f(4);
  f.add_transition(3, 0);
  EXPECT_TRUE(masking_tolerant(ring_impl(), f, ring_spec()));
}

TEST(Masking, FailsWhenFaultLeavesSafety) {
  // Fault edge 1 -> 3 is not a safety edge: the observed computation
  // violates the spec outright — no masking, no fail-safe.
  System f(4);
  f.add_transition(1, 3);
  EXPECT_FALSE(failsafe_tolerant(ring_impl(), f, ring_spec()));
  EXPECT_FALSE(masking_tolerant(ring_impl(), f, ring_spec()));
}

TEST(Masking, LivenessSeparatesMaskingFromFailsafe) {
  // Give the implementation a safety-allowed stutter cycle away from the
  // recurrent state: safety still holds under faults (fail-safe), but the
  // computation can starve the recurrence obligation (no masking).
  LiveSpec spec = ring_spec();
  spec.safety.add_transition(1, 1);  // spec tolerates stuttering at 1...
  System c = ring_impl();
  c.add_transition(1, 1);  // ...and the implementation may loop there
  EXPECT_TRUE(failsafe_tolerant(c, no_faults(), spec));
  EXPECT_FALSE(masking_tolerant(c, no_faults(), spec));
}

TEST(Masking, FaultReachableCyclesCount) {
  // The starving cycle sits in a region only reachable THROUGH a fault:
  // masking fails once the fault relation exposes it. Both the perturbing
  // jump 0 -> 3 and the stutter 3 -> 3 are safety-allowed, so fail-safe
  // survives while masking loses its liveness half.
  LiveSpec spec = ring_spec();
  spec.safety.add_transition(0, 3);
  spec.safety.add_transition(3, 3);
  System c = ring_impl();
  c.add_transition(3, 3);
  // Without faults state 3 is unreachable from init: masking holds.
  EXPECT_TRUE(masking_tolerant(c, no_faults(), spec));
  System f(4);
  f.add_transition(0, 3);
  EXPECT_TRUE(failsafe_tolerant(c, f, spec));
  EXPECT_FALSE(masking_tolerant(c, f, spec));
}

TEST(Nonmasking, RingWithRecoveryIsNonmasking) {
  EXPECT_TRUE(nonmasking_tolerant(ring_impl(), ring_spec()));
}

TEST(Nonmasking, FailsWithoutConvergence) {
  // Replace the recovery edge with a self-loop at 3: computations starting
  // there never rejoin the spec.
  System c = ring_impl();
  c.remove_transition(3, 0);
  c.add_transition(3, 3);
  EXPECT_FALSE(nonmasking_tolerant(c, ring_spec()));
}

TEST(Nonmasking, FailsWhenConvergedSuffixStarvesRecurrence) {
  LiveSpec spec = ring_spec();
  spec.safety.add_transition(1, 1);
  System c = ring_impl();
  c.add_transition(1, 1);
  EXPECT_TRUE(stabilizes_to(c, spec.safety));
  EXPECT_FALSE(nonmasking_tolerant(c, spec));
}

TEST(Nonmasking, TrivialLivenessReducesToStabilization) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const System a = random_system(rng, {});
    const System c = random_everywhere_implementation(rng, a);
    const LiveSpec spec = LiveSpec::trivial(a);
    EXPECT_EQ(nonmasking_tolerant(c, spec), stabilizes_to(c, a));
  }
}

// --- Graybox transfer (the Section 6 claim) --------------------------------

class ToleranceSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
  static constexpr int kTrials = 300;
};

TEST_P(ToleranceSweep, MaskingTransfersToEverywhereImplementations) {
  // If A boxed with wrapper W is masking tolerant to spec under F, then so
  // is C boxed with W' for every [C => A] and [W' => W] — same shape as
  // Theorem 1, decided with the masking procedure.
  int premise_held = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, rng.index(6));
    const System aw = System::box(a, w);

    LiveSpec spec;
    spec.safety = aw;  // the wrapped spec system itself as safety envelope
    spec.recurrent = Bitset(a.num_states());
    spec.recurrent.fill();

    const System f =
        random_fault_relation(rng, a.num_states(), 1 + rng.index(4));
    if (!masking_tolerant(aw, f, spec)) continue;
    ++premise_held;

    const System c = random_everywhere_implementation(rng, a);
    const System wi = random_everywhere_implementation(rng, w);
    System cw = System::box(c, wi);
    if (!cw.initial().any()) continue;
    EXPECT_TRUE(masking_tolerant(cw, f, spec));
    EXPECT_TRUE(failsafe_tolerant(cw, f, spec));
  }
  EXPECT_GT(premise_held, 0);
}

TEST_P(ToleranceSweep, FailsafeTransfersToEverywhereImplementations) {
  int premise_held = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, rng.index(6));
    const System aw = System::box(a, w);
    LiveSpec spec = LiveSpec::trivial(aw);
    const System f =
        random_fault_relation(rng, a.num_states(), 1 + rng.index(6));
    if (!failsafe_tolerant(aw, f, spec)) continue;
    ++premise_held;
    const System c = random_everywhere_implementation(rng, a);
    const System wi = random_everywhere_implementation(rng, w);
    System cw = System::box(c, wi);
    if (!cw.initial().any()) continue;
    EXPECT_TRUE(failsafe_tolerant(cw, f, spec));
  }
  EXPECT_GT(premise_held, 0);
}

TEST_P(ToleranceSweep, NonmaskingTransfersToEverywhereImplementations) {
  int premise_held = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(6));
    const System aw = System::box(a, w);
    LiveSpec spec = LiveSpec::trivial(a);
    if (!aw.total() || !nonmasking_tolerant(aw, spec)) continue;
    ++premise_held;
    const System c = random_everywhere_implementation(rng, a);
    const System wi = random_everywhere_implementation(rng, w);
    const System cw = System::box(c, wi);
    EXPECT_TRUE(nonmasking_tolerant(cw, spec));
  }
  EXPECT_GT(premise_held, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToleranceSweep,
                         ::testing::Values(2u, 4u, 6u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace graybox::algebra
