// Causal provenance: fault taint propagation, blast-radius attribution,
// the happened-before DAG with obs::why(), and the determinism guarantee
// that the blast-radius rollup in engine artifacts is byte-identical
// across --jobs values.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/report.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "obs/causal_dag.hpp"
#include "obs/event_bus.hpp"
#include "obs/provenance.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

namespace graybox {
namespace {

using obs::Event;
using obs::EventKind;
using obs::ProvenanceId;
using obs::ProvenanceTracker;
using obs::TaintSet;

// --- TaintSet ----------------------------------------------------------------

TEST(TaintSet, AddDeduplicatesAndRejectsZero) {
  TaintSet t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.add(obs::kNoProvenance));
  EXPECT_TRUE(t.add(3));
  EXPECT_FALSE(t.add(3));  // already present
  EXPECT_TRUE(t.add(7));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(7));
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.overflowed());
}

TEST(TaintSet, SaturatesKeepingOldestAndFlagsDrop) {
  TaintSet t;
  for (ProvenanceId id = 1; id <= TaintSet::kCapacity; ++id) {
    EXPECT_TRUE(t.add(id));
  }
  EXPECT_FALSE(t.add(99));  // full: the newcomer is dropped, not an elder
  EXPECT_EQ(t.size(), TaintSet::kCapacity);
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(99));
  EXPECT_TRUE(t.overflowed());
}

TEST(TaintSet, MergeUnionsAndClearResets) {
  TaintSet a, b;
  a.add(1);
  b.add(1);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(2));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.overflowed());
}

TEST(TaintSet, DropCounterCountsEachRefusedIdAndSaturates) {
  TaintSet t;
  for (ProvenanceId id = 1; id <= TaintSet::kCapacity; ++id) t.add(id);
  t.add(100);
  t.add(101);
  t.add(101);  // not a drop: already-refused ids are still "not present"
  EXPECT_EQ(t.dropped, 3u);
  t.add(1);  // not a drop either: it IS present
  EXPECT_EQ(t.dropped, 3u);
  for (int i = 0; i < 300; ++i) t.add(200 + static_cast<ProvenanceId>(i));
  EXPECT_EQ(t.dropped, 0xffu);  // saturates instead of wrapping
  EXPECT_EQ(t.size(), TaintSet::kCapacity);
  EXPECT_TRUE(t.contains(1));  // the oldest ids survived all of it
}

TEST(TaintSet, MergeAccumulatesUpstreamDrops) {
  TaintSet a, b;
  for (ProvenanceId id = 1; id <= TaintSet::kCapacity + 2; ++id) a.add(id);
  for (ProvenanceId id = 10; id <= 10 + TaintSet::kCapacity; ++id) b.add(id);
  EXPECT_EQ(a.dropped, 2u);
  EXPECT_EQ(b.dropped, 1u);
  // merge drops b's four ids (a is full) AND folds b's own drop count in:
  // 2 (a's) + 4 (refused here) + 1 (b's upstream) — additive, not OR'd.
  a.merge(b);
  EXPECT_EQ(a.dropped, 7u);
}

// --- ProvenanceTracker -------------------------------------------------------

TEST(ProvenanceTracker, TaintOverflowCounterMakesUnderAttributionVisible) {
  ProvenanceTracker prov(2);
  ProvenanceId ids[6];
  for (int i = 0; i < 6; ++i)
    ids[i] = prov.mint(/*code=*/0, kNoProcess, /*now=*/10 + i);
  for (int i = 0; i < 6; ++i) prov.taint_process(0, ids[i]);
  // Keep-oldest saturation: ids 1..4 stick, 5 and 6 are dropped and the
  // run-wide counter records exactly those two under-attributions.
  const TaintSet& t = prov.process_taint(0);
  EXPECT_EQ(t.size(), TaintSet::kCapacity);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(t.contains(ids[i]));
  EXPECT_FALSE(t.contains(ids[4]));
  EXPECT_FALSE(t.contains(ids[5]));
  EXPECT_EQ(prov.taint_overflows(), 2u);
  // Re-offering a dropped id counts again (it is still being refused),
  // while re-offering a held id does not.
  prov.taint_process(0, ids[5]);
  prov.taint_process(0, ids[0]);
  EXPECT_EQ(prov.taint_overflows(), 3u);
  // A different process has its own headroom: no spurious overflow.
  prov.taint_process(1, ids[5]);
  EXPECT_EQ(prov.taint_overflows(), 3u);
}


TEST(ProvenanceTracker, MintsSequentialIdsAndRecordsOrigin) {
  ProvenanceTracker prov(4);
  const ProvenanceId a = prov.mint(/*code=*/5, /*origin=*/2, /*now=*/100);
  const ProvenanceId b = prov.mint(/*code=*/0, kNoProcess, /*now=*/150);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_EQ(prov.minted(), 2u);
  EXPECT_EQ(prov.blast()[0].code, 5u);
  EXPECT_EQ(prov.blast()[0].origin, 2u);
  EXPECT_EQ(prov.blast()[0].injected_at, 100u);
  EXPECT_EQ(prov.blast()[1].origin, kNoProcess);
}

TEST(ProvenanceTracker, TaintCountsDistinctProcessesNotReinfections) {
  ProvenanceTracker prov(4);
  const ProvenanceId id = prov.mint(5, 0, 10);
  prov.taint_process(0, id);
  prov.taint_process(1, id);
  prov.taint_process(1, id);  // already tainted: no new spread
  prov.clear_process(1);
  prov.taint_process(1, id);  // re-infection: reach is unchanged
  const obs::BlastRadius& b = prov.blast()[0];
  EXPECT_EQ(b.processes_tainted, 2u);
  EXPECT_EQ(b.process_mask, 0b11u);
  // Out-of-range pid and unknown id are ignored, not UB.
  prov.taint_process(99, id);
  prov.taint_process(0, 42);
  EXPECT_EQ(prov.blast()[0].processes_tainted, 2u);
}

TEST(ProvenanceTracker, AttributionUnionsTaintsAndFallsBackToLatestFault) {
  ProvenanceTracker prov(3);
  const ProvenanceId a = prov.mint(5, 0, 10);
  const ProvenanceId b = prov.mint(2, kNoProcess, 20);
  prov.taint_process(0, a);
  prov.taint_process(2, b);

  const TaintSet attributed = prov.attribute_violation(/*now=*/30);
  EXPECT_TRUE(attributed.contains(a));
  EXPECT_TRUE(attributed.contains(b));
  EXPECT_EQ(prov.blast()[0].violations_attributed, 1u);
  EXPECT_EQ(prov.blast()[1].violations_attributed, 1u);
  EXPECT_EQ(prov.blast()[0].last_violation, 30u);
  EXPECT_EQ(prov.blast()[0].containment(), 20u);  // 30 - 10

  // With every process clean (e.g. the corruption lives in a channel the
  // taint sets cannot see anymore), the violation still gets a root cause:
  // the most recently minted fault.
  prov.clear_process(0);
  prov.clear_process(2);
  const TaintSet fallback = prov.attribute_violation(/*now=*/50);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0], b);
  EXPECT_EQ(prov.blast()[1].violations_attributed, 2u);
  EXPECT_EQ(prov.blast()[1].last_violation, 50u);
}

TEST(ProvenanceTracker, MessageTaintTally) {
  ProvenanceTracker prov(2);
  const ProvenanceId id = prov.mint(2, kNoProcess, 5);
  TaintSet t;
  t.add(id);
  prov.note_message_taint(t);
  prov.note_message_taint(t);
  EXPECT_EQ(prov.blast()[0].messages_tainted, 2u);
}

// --- Taint clearing at wrapper corrections (hand-wired) ----------------------

TEST(WrapperProvenance, CorrectionClearsTaintAndSubsequentSendsAreClean) {
  sim::Scheduler sched;
  obs::EventBus bus(sched, 256);
  net::Network net(sched, 2, net::DelayModel::fixed(1), Rng(1));
  net.set_event_bus(&bus);
  ProvenanceTracker prov(2);
  net.set_provenance(&prov);
  me::RicartAgrawala p0(0, net), p1(1, net);
  net.set_handler(0, [&](const net::Message& m) { p0.on_message(m); });
  net.set_handler(1, [&](const net::Message& m) { p1.on_message(m); });

  // A process-corrupt fault taints p0; its protocol sends inherit the
  // taint on the wire.
  const ProvenanceId id = prov.mint(5, 0, 0);
  prov.taint_process(0, id);
  p0.request_cs();
  ASSERT_GT(bus.size(), 0u);
  const Event& request = bus.event(bus.size() - 1);
  ASSERT_EQ(request.kind, EventKind::kSend);
  EXPECT_TRUE(request.taint.contains(id));
  EXPECT_EQ(prov.blast()[0].messages_tainted, 1u);

  // The wrapper correction: the resend still carries the taint (it is the
  // last trace of the corruption), then the process is clean.
  wrapper::WrapperConfig wc;
  wc.resend_period = 10;
  wc.unrefined_send_all = true;  // force a resend regardless of views
  wrapper::GrayboxWrapper w(sched, net, p0, wc);
  w.set_event_bus(&bus);
  w.set_provenance(&prov);
  w.evaluate();
  ASSERT_GT(w.resends(), 0u);
  bool saw_tainted_correction = false;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Event& e = bus.event(i);
    if (e.kind == EventKind::kWrapperCorrection) {
      saw_tainted_correction = e.taint.contains(id);
    }
  }
  EXPECT_TRUE(saw_tainted_correction);
  EXPECT_TRUE(prov.process_taint(0).empty());

  // Regression pin: after the correction, nothing p0 sends carries stale
  // provenance — neither the wrapper's own resends nor protocol traffic.
  const std::size_t mark = bus.size();
  w.evaluate();
  while (sched.step()) {
  }
  ASSERT_GT(bus.size(), mark);
  for (std::size_t i = mark; i < bus.size(); ++i) {
    const Event& e = bus.event(i);
    if (e.kind == EventKind::kSend && e.pid == 0) {
      EXPECT_TRUE(e.taint.empty()) << "stale taint on send #" << i;
    }
  }
}

// --- Harness integration: attribution and why() ------------------------------

core::HarnessConfig prov_config(std::uint64_t seed) {
  core::HarnessConfig config;
  config.n = 4;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = seed;
  config.provenance = true;
  return config;
}

void run_fault_load(core::SystemHarness& h) {
  h.start();
  h.run_for(400);
  h.faults().burst(6, net::FaultMix::all());
  h.run_for(2500);
  h.drain(2000);
}

TEST(HarnessProvenance, EveryViolationAttributedAndTalliesConsistent) {
  core::HarnessConfig config = prov_config(42);
  config.trace_capacity = 1u << 20;
  config.fault_process.corrupt_mean = 250;
  config.fault_process.process_corrupt_mean = 300;
  config.fault_process.spurious_mean = 250;
  config.fault_process.start = 400;
  config.fault_process.end = 2900;
  core::SystemHarness h(config);
  run_fault_load(h);

  // Every recorded violation names at least one root-cause fault.
  std::size_t violations = 0;
  const obs::EventBus& bus = h.events();
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Event& e = bus.event(i);
    if (e.kind == EventKind::kMonitorViolation) {
      ++violations;
      EXPECT_FALSE(e.taint.empty()) << "unattributed violation at #" << i;
    }
  }
  ASSERT_GT(violations, 0u) << "seed produced no violations; pick another";

  // The rollup agrees with the authoritative component state.
  const core::RunStats stats = h.stats();
  ASSERT_NE(h.provenance(), nullptr);
  EXPECT_EQ(stats.provenance_faults, stats.faults_injected);
  EXPECT_GE(stats.violations_attributed, violations);
  EXPECT_GT(stats.messages_tainted, 0u);
  EXPECT_GT(stats.processes_tainted, 0u);
  // Containment is measured per fault: injection -> last attributed
  // violation, never negative.
  for (const obs::BlastRadius& b : h.provenance()->blast()) {
    if (b.last_violation != kNever) {
      EXPECT_GE(b.last_violation, b.injected_at);
    }
    EXPECT_EQ(b.containment(),
              b.last_violation == kNever ? 0 : b.last_violation - b.injected_at);
  }

  // Provenance off (the default): same machinery reports zeros, and the
  // hot paths never touch the tracker.
  core::HarnessConfig off = prov_config(42);
  off.provenance = false;
  core::SystemHarness h2(off);
  run_fault_load(h2);
  EXPECT_EQ(h2.provenance(), nullptr);
  EXPECT_EQ(h2.stats().provenance_faults, 0u);
}

TEST(HarnessProvenance, WhyReproducesChainBackToInjection) {
  core::HarnessConfig config = prov_config(7);
  config.trace_capacity = 1u << 20;
  config.fault_process.corrupt_mean = 250;
  config.fault_process.process_corrupt_mean = 300;
  config.fault_process.start = 400;
  config.fault_process.end = 2900;
  core::SystemHarness h(config);
  run_fault_load(h);

  const obs::EventBus& bus = h.events();
  std::size_t target = bus.size();
  for (std::size_t i = bus.size(); i > 0; --i) {
    if (bus.event(i - 1).kind == EventKind::kMonitorViolation) {
      target = i - 1;
      break;
    }
  }
  ASSERT_LT(target, bus.size()) << "seed produced no violations; pick another";

  const std::vector<std::size_t> chain = obs::why(bus, target);
  ASSERT_FALSE(chain.empty());
  // Injection-first, queried event last, happened-before order throughout.
  EXPECT_EQ(bus.event(chain.front()).kind, EventKind::kFaultInjected);
  EXPECT_EQ(chain.back(), target);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i - 1], chain[i]);
    EXPECT_LE(bus.event(chain[i - 1]).time, bus.event(chain[i]).time);
  }
  // The chain's root shares a taint id with the violation it explains
  // (unless the violation itself carries no taint, which the attribution
  // fallback prevents).
  const Event& root = bus.event(chain.front());
  const Event& queried = bus.event(target);
  bool shared = false;
  for (std::size_t i = 0; i < root.taint.size(); ++i) {
    shared = shared || queried.taint.contains(root.taint[i]);
  }
  EXPECT_TRUE(shared);

  // Out of range: empty, not UB.
  EXPECT_TRUE(obs::why(bus, bus.size()).empty());
}

TEST(CausalDag, ProgramOrderAndMessageEdges) {
  core::HarnessConfig config = prov_config(3);
  config.trace_capacity = 1u << 20;
  core::SystemHarness h(config);
  h.start();
  h.run_for(600);

  const obs::EventBus& bus = h.events();
  const obs::CausalDag dag = obs::CausalDag::build(bus);
  ASSERT_EQ(dag.size(), bus.size());
  // Every deliver is preceded by its send (uid pairing), and every
  // predecessor respects the recording order.
  std::size_t paired = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    for (const std::uint32_t p : dag.preds(i)) {
      EXPECT_LT(p, i);
    }
    if (bus.event(i).kind != EventKind::kDeliver) continue;
    for (const std::uint32_t p : dag.preds(i)) {
      const Event& pe = bus.event(p);
      if (pe.kind == EventKind::kSend && pe.uid == bus.event(i).uid) ++paired;
    }
  }
  EXPECT_GT(paired, 0u);
}

// --- Engine artifacts: blast-radius rollup byte-identical across jobs --------

TEST(EngineProvenance, BlastRadiusJsonByteIdenticalAcrossJobs) {
  core::FaultScenario scenario;
  scenario.warmup = 300;
  scenario.burst = 6;
  scenario.observation = 2500;
  scenario.drain = 2000;
  core::SpecGrid grid;
  core::HarnessConfig config = prov_config(1234);
  config.provenance = false;  // the engine forces it per trial
  grid.add("prov_cell", config, scenario, 6);

  const core::GridResult serial =
      core::ExperimentEngine(core::EngineOptions{.jobs = 1}).run(grid);
  const core::GridResult parallel =
      core::ExperimentEngine(core::EngineOptions{.jobs = 8}).run(grid);

  const std::string full = core::grid_to_json("prov_smoke", serial).dump();
  EXPECT_NE(full.find("\"provenance.faults_minted\""), std::string::npos);
  EXPECT_NE(full.find("\"provenance.violations_attributed\""),
            std::string::npos);
  EXPECT_NE(full.find("\"provenance.containment_ticks\""), std::string::npos);

  const std::string a = report::strip_volatile_lines(full);
  const std::string b = report::strip_volatile_lines(
      core::grid_to_json("prov_smoke", parallel).dump());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"provenance.faults_minted\""), std::string::npos);
}

}  // namespace
}  // namespace graybox
