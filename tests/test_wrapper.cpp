// Unit tests for the graybox wrapper W' — guard evaluation, refinement,
// timeout behaviour, and the Section 4 repairs in isolation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/lamport.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

namespace graybox::wrapper {
namespace {

using me::RicartAgrawala;
using me::TmeState;

class WrapperTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;

  WrapperTest() : net(sched, kN, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < kN; ++pid) {
      procs.push_back(std::make_unique<RicartAgrawala>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }

  RicartAgrawala& p(ProcessId pid) { return *procs[pid]; }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<RicartAgrawala>> procs;
};

TEST_F(WrapperTest, IdleWhileThinking) {
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  w.start();
  sched.run_until(200);
  EXPECT_EQ(w.resends(), 0u);
  EXPECT_GT(w.evaluations(), 0u);
}

TEST_F(WrapperTest, IdleWhileEating) {
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  p(0).request_cs();
  sched.run_all();
  ASSERT_TRUE(p(0).eating());
  w.start();
  sched.run_until(200);
  EXPECT_EQ(w.resends(), 0u);
}

TEST_F(WrapperTest, ResendsOnlyToStalePeers) {
  // Hungry with one favorable view and one stale: the refined W sends only
  // to the stale peer.
  p(0).fault_set_state(TmeState::kHungry);
  p(0).fault_set_req(clk::Timestamp{10, 0});
  p(0).fault_set_view(1, clk::Timestamp{50, 1});  // knows_earlier(1)
  p(0).fault_set_view(2, clk::Timestamp{1, 2});   // stale
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  w.evaluate();
  EXPECT_EQ(w.resends(), 1u);
  EXPECT_EQ(net.channel(0, 2).in_flight(), 1u);
  EXPECT_EQ(net.channel(0, 1).in_flight(), 0u);
  // The resent message is a REQUEST carrying REQj, tagged as wrapper
  // traffic.
  const auto& msg = net.channel(0, 2).contents().front();
  EXPECT_EQ(msg.type, net::MsgType::kRequest);
  EXPECT_EQ(msg.ts, (clk::Timestamp{10, 0}));
  EXPECT_TRUE(msg.from_wrapper);
}

TEST_F(WrapperTest, UnrefinedVariantSendsToAll) {
  p(0).fault_set_state(TmeState::kHungry);
  p(0).fault_set_req(clk::Timestamp{10, 0});
  p(0).fault_set_view(1, clk::Timestamp{50, 1});
  p(0).fault_set_view(2, clk::Timestamp{1, 2});
  GrayboxWrapper w(sched, net, p(0),
                   {.resend_period = 10, .unrefined_send_all = true});
  w.evaluate();
  EXPECT_EQ(w.resends(), 2u);
}

TEST_F(WrapperTest, PeriodGovernsEvaluationRate) {
  GrayboxWrapper slow(sched, net, p(0), {.resend_period = 50});
  GrayboxWrapper fast(sched, net, p(1), {.resend_period = 5});
  slow.start();
  fast.start();
  sched.run_until(100);
  EXPECT_EQ(slow.evaluations(), 2u);
  EXPECT_EQ(fast.evaluations(), 20u);
}

TEST_F(WrapperTest, ZeroPeriodIsMaximalRate) {
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 0});
  w.start();
  sched.run_until(10);
  EXPECT_EQ(w.evaluations(), 10u);  // once per tick
}

TEST_F(WrapperTest, StopDisarms) {
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  w.start();
  sched.run_until(20);
  w.stop();
  const auto evals = w.evaluations();
  sched.run_until(200);
  EXPECT_EQ(w.evaluations(), evals);
  EXPECT_FALSE(w.running());
}

TEST_F(WrapperTest, RepairsDroppedRequestScenario) {
  // Section 4's deadlock, in miniature: 0 requests but the requests are
  // lost. Without the wrapper nothing ever moves; with it the resend
  // triggers the replies and 0 enters.
  p(0).request_cs();
  net.channel(0, 1).fault_clear();
  net.channel(0, 2).fault_clear();
  sched.run_all();
  ASSERT_TRUE(p(0).hungry());  // wedged without the wrapper

  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  w.start();
  sched.run_until(50);
  EXPECT_TRUE(p(0).eating());
  EXPECT_GT(w.resends(), 0u);
}

TEST_F(WrapperTest, StopsResendingOnceConsistent) {
  p(0).request_cs();
  net.channel(0, 1).fault_clear();
  net.channel(0, 2).fault_clear();
  GrayboxWrapper w(sched, net, p(0), {.resend_period = 10});
  w.start();
  sched.run_until(60);
  ASSERT_TRUE(p(0).eating());
  const auto resends = w.resends();
  sched.run_until(600);
  // Eating (and later thinking) disables the guard: no further traffic.
  EXPECT_EQ(w.resends(), resends);
}

TEST_F(WrapperTest, GrayboxAcrossImplementations) {
  // The SAME wrapper code drives a Lamport process through the identical
  // repair — byte-for-byte reuse across implementations (Corollary 11).
  sim::Scheduler sched2;
  net::Network net2(sched2, 2, net::DelayModel::fixed(1), Rng(6));
  me::LamportMe a(0, net2), b(1, net2);
  net2.set_handler(0, [&](const net::Message& m) { a.on_message(m); });
  net2.set_handler(1, [&](const net::Message& m) { b.on_message(m); });
  a.request_cs();
  net2.channel(0, 1).fault_clear();
  sched2.run_all();
  ASSERT_TRUE(a.hungry());
  GrayboxWrapper w(sched2, net2, a, {.resend_period = 10});
  w.start();
  sched2.run_until(100);
  EXPECT_TRUE(a.eating());
}

TEST_F(WrapperTest, MutualDeadlockRepairedByPairOfWrappers) {
  // The paper's two-process mutual inconsistency: both hungry, both
  // request messages lost, each waiting for the other.
  p(0).request_cs();
  p(1).request_cs();
  net.channel(0, 1).fault_clear();
  net.channel(1, 0).fault_clear();
  sched.run_all();
  ASSERT_TRUE(p(0).hungry());
  ASSERT_TRUE(p(1).hungry());

  GrayboxWrapper w0(sched, net, p(0), {.resend_period = 10});
  GrayboxWrapper w1(sched, net, p(1), {.resend_period = 10});
  w0.start();
  w1.start();
  sched.run_until(100);
  // The earlier request won; after its holder releases, the other follows.
  EXPECT_TRUE(p(0).eating() || p(1).eating());
}

}  // namespace
}  // namespace graybox::wrapper
