// The negative control: FragileMe implements Lspec from initial states but
// not everywhere, and the graybox wrapper demonstrably fails to stabilize
// it — the executable content of Figure 1 and of Theorem 8's premise.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "me/fragile.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

namespace graybox {
namespace {

using me::FragileMe;
using me::TmeState;

class FragileRig {
 public:
  explicit FragileRig(bool wrapped)
      : net(sched, 2, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < 2; ++pid) {
      procs.push_back(std::make_unique<FragileMe>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
    if (wrapped) {
      for (ProcessId pid = 0; pid < 2; ++pid) {
        wrappers.push_back(std::make_unique<wrapper::GrayboxWrapper>(
            sched, net, *procs[pid],
            wrapper::WrapperConfig{.resend_period = 10}));
        wrappers.back()->start();
      }
    }
  }
  FragileMe& p(ProcessId pid) { return *procs[pid]; }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<FragileMe>> procs;
  std::vector<std::unique_ptr<wrapper::GrayboxWrapper>> wrappers;
};

TEST(Fragile, FaultFreeProtocolIsCorrect) {
  // [FragileMe => Lspec]init: from initial states it is indistinguishable
  // from Ricart-Agrawala.
  FragileRig rig(/*wrapped=*/false);
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.sched.run_all();
  EXPECT_TRUE(rig.p(0).eating());
  EXPECT_TRUE(rig.p(1).hungry());
  rig.p(0).release_cs();
  rig.sched.run_all();
  EXPECT_TRUE(rig.p(1).eating());
}

TEST(Fragile, IgnoresResentRequestWhenFlagCorrupted) {
  // The everywhere-violation in isolation: with received(j.REQk) corrupted
  // to true, Reply Spec is broken — a fresh request gets no reply.
  FragileRig rig(/*wrapped=*/false);
  rig.p(1).fault_set_received(0, true);
  rig.p(0).request_cs();
  rig.sched.run_all();
  EXPECT_TRUE(rig.p(0).hungry());  // no reply ever came
  EXPECT_EQ(rig.net.sent_of_type(net::MsgType::kReply), 0u);
}

TEST(Fragile, WrapperCannotRepairTheCorruptedFlag) {
  // Theorem 8's conclusion fails: the SAME wrapper that stabilizes RA and
  // Lamport resends forever and FragileMe ignores every resend.
  FragileRig rig(/*wrapped=*/true);
  rig.p(1).fault_set_received(0, true);
  rig.p(0).request_cs();
  rig.sched.run_until(5000);
  EXPECT_TRUE(rig.p(0).hungry());              // wedged despite the wrapper
  EXPECT_GT(rig.net.sent_by_wrapper(), 100u);  // it certainly tried
  EXPECT_EQ(rig.net.sent_of_type(net::MsgType::kReply), 0u);
}

TEST(Fragile, SameFaultIsRepairedOnRealRicartAgrawala) {
  // Control for the control: genuine RA heals the identical corruption,
  // isolating the fragile shortcut as the cause.
  sim::Scheduler sched;
  net::Network net(sched, 2, net::DelayModel::fixed(1), Rng(5));
  me::RicartAgrawala a(0, net), b(1, net);
  net.set_handler(0, [&](const net::Message& m) { a.on_message(m); });
  net.set_handler(1, [&](const net::Message& m) { b.on_message(m); });
  wrapper::GrayboxWrapper w(sched, net, a, {.resend_period = 10});
  w.start();
  b.fault_set_received(0, true);
  a.request_cs();
  sched.run_until(5000);
  EXPECT_TRUE(a.eating());
}

TEST(Fragile, EndToEndStabilizationFailureUnderProcessCorruption) {
  // Through the full harness: hammer FragileMe with process corruptions
  // across seeds. The wedge state is reachable, so at least one run must
  // fail to stabilize — whereas RicartAgrawala under the identical
  // adversary never does.
  std::size_t fragile_failures = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    core::HarnessConfig config;
    config.n = 3;
    config.algorithm = core::Algorithm::kFragile;
    config.wrapped = true;
    config.wrapper.resend_period = 15;
    config.client.think_mean = 30;
    config.client.eat_mean = 5;
    config.seed = 1000 + seed;

    core::FaultScenario scenario;
    scenario.warmup = 400;
    scenario.burst = 8;
    scenario.mix = net::FaultMix::process_only();
    scenario.observation = 5000;
    scenario.drain = 4000;

    auto result = core::run_fault_experiment(config, scenario);
    if (!result.report.stabilized) ++fragile_failures;

    config.algorithm = core::Algorithm::kRicartAgrawala;
    result = core::run_fault_experiment(config, scenario);
    EXPECT_TRUE(result.report.stabilized)
        << "RA failed under seed " << config.seed << ": "
        << result.report.to_string();
  }
  EXPECT_GT(fragile_failures, 0u)
      << "the fragile wedge never triggered; adversary too weak";
}

TEST(Fragile, AlgorithmName) {
  FragileRig rig(false);
  EXPECT_EQ(rig.p(0).algorithm(), "fragile-ra");
}

}  // namespace
}  // namespace graybox
