// The sustained fault-load subsystem: FaultProcess stream determinism,
// crash/recovery and partition/heal lifecycles through the harness, their
// observability (timeline parity, metrics), and the engine-level guarantee
// that fault-load experiments stay byte-identical across --jobs values.
#include <gtest/gtest.h>

#include <vector>

#include "common/report.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_process.hpp"
#include "obs/timeline.hpp"

namespace graybox::core {
namespace {

HarnessConfig load_config(std::uint64_t seed) {
  HarnessConfig config;
  config.n = 4;
  config.seed = seed;
  config.wrapper.resend_period = 20;
  return config;
}

net::FaultProcessConfig modest_load() {
  net::FaultProcessConfig fp;
  fp.drop_mean = 150;
  fp.duplicate_mean = 300;
  fp.corrupt_mean = 300;
  fp.spurious_mean = 250;
  fp.process_corrupt_mean = 400;
  fp.crash_mean = 1200;
  fp.downtime_mean = 150;
  fp.partition_mean = 1500;
  fp.partition_hold_mean = 120;
  return fp;
}

// --- FaultProcess determinism ----------------------------------------------

TEST(FaultProcess, SameSeedSameSchedule) {
  // The applied fault schedule is a pure function of the seed: two
  // identical systems produce entry-for-entry identical schedules.
  std::vector<net::FaultArrival> schedules[2];
  for (int run = 0; run < 2; ++run) {
    HarnessConfig config = load_config(42);
    config.fault_process = modest_load();
    SystemHarness h(config);
    h.fault_load().record_schedule(true);
    h.start();
    h.run_for(6000);
    schedules[run] = h.fault_load().schedule();
  }
  ASSERT_FALSE(schedules[0].empty());
  ASSERT_EQ(schedules[0].size(), schedules[1].size());
  for (std::size_t i = 0; i < schedules[0].size(); ++i) {
    EXPECT_EQ(schedules[0][i].time, schedules[1][i].time) << i;
    EXPECT_EQ(schedules[0][i].code, schedules[1][i].code) << i;
    EXPECT_EQ(schedules[0][i].pid, schedules[1][i].pid) << i;
  }
}

TEST(FaultProcess, DifferentSeedsDifferentSchedules) {
  std::vector<net::FaultArrival> schedules[2];
  const std::uint64_t seeds[2] = {42, 43};
  for (int run = 0; run < 2; ++run) {
    HarnessConfig config = load_config(seeds[run]);
    config.fault_process = modest_load();
    SystemHarness h(config);
    h.fault_load().record_schedule(true);
    h.start();
    h.run_for(6000);
    schedules[run] = h.fault_load().schedule();
  }
  ASSERT_FALSE(schedules[0].empty());
  bool differ = schedules[0].size() != schedules[1].size();
  for (std::size_t i = 0; !differ && i < schedules[0].size(); ++i) {
    differ = schedules[0][i].time != schedules[1][i].time ||
             schedules[0][i].code != schedules[1][i].code;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultProcess, DisabledByDefaultDrawsNothing) {
  // All-zero rates: the subsystem arms nothing and perturbs nothing —
  // a run with the default config matches a run from before it existed.
  HarnessConfig config = load_config(7);
  SystemHarness h(config);
  h.start();
  h.run_for(3000);
  EXPECT_FALSE(h.fault_load().running());
  EXPECT_EQ(h.fault_load().arrivals_fired(), 0u);
  EXPECT_EQ(h.stats().faults_injected, 0u);
}

TEST(FaultProcess, StreamsStopAtEnd) {
  HarnessConfig config = load_config(9);
  config.fault_process.drop_mean = 50;
  config.fault_process.spurious_mean = 60;
  config.fault_process.end = 1000;
  SystemHarness h(config);
  h.fault_load().record_schedule(true);
  h.start();
  h.run_for(5000);
  ASSERT_FALSE(h.fault_load().schedule().empty());
  for (const net::FaultArrival& a : h.fault_load().schedule())
    EXPECT_LT(a.time, 1000u);
}

// --- Crash / recovery -------------------------------------------------------

TEST(HarnessLifecycle, CrashSwallowsDeliveriesUntilRecovery) {
  HarnessConfig config = load_config(11);
  SystemHarness h(config);
  h.start();
  h.run_for(500);
  ASSERT_TRUE(h.crash(1));
  EXPECT_TRUE(h.crashed(1));
  EXPECT_FALSE(h.crash(1));  // already down: not a second fault
  const std::uint64_t entries_at_crash = h.process(1).cs_entries();
  h.run_for(1500);
  // The dead process took no steps; traffic to it was swallowed.
  EXPECT_EQ(h.process(1).cs_entries(), entries_at_crash);
  const RunStats mid = h.stats();
  EXPECT_EQ(mid.crashes, 1u);
  EXPECT_EQ(mid.recoveries, 0u);
  EXPECT_GT(mid.deliveries_to_crashed, 0u);

  ASSERT_TRUE(h.recover(1));
  EXPECT_FALSE(h.crashed(1));
  EXPECT_FALSE(h.recover(1));
  h.run_for(4000);
  h.drain(3000);
  const RunStats end = h.stats();
  EXPECT_EQ(end.recoveries, 1u);
  // Crash/recovery are faults; stabilization is judged from the last one.
  const StabilizationReport report = h.stabilization_report();
  EXPECT_TRUE(report.faults_injected);
  // The wrapped system must come back: the recovered process re-entered
  // an improperly initialized state and still made progress afterwards.
  EXPECT_TRUE(report.stabilized);
  EXPECT_GT(h.process(1).cs_entries(), entries_at_crash);
}

TEST(HarnessLifecycle, PartitionBlocksCrossTrafficUntilHealed) {
  HarnessConfig config = load_config(13);
  SystemHarness h(config);
  h.start();
  h.run_for(500);
  ASSERT_TRUE(h.partition(0b0001));  // isolate process 0
  EXPECT_TRUE(h.partitioned());
  EXPECT_FALSE(h.partition(0b0011));  // one partition at a time
  h.run_for(1000);
  const RunStats mid = h.stats();
  EXPECT_EQ(mid.partitions, 1u);
  EXPECT_GT(mid.dropped_by_partition, 0u);
  ASSERT_TRUE(h.heal_partition());
  EXPECT_FALSE(h.partitioned());
  EXPECT_FALSE(h.heal_partition());
  h.run_for(4000);
  h.drain(3000);
  const RunStats end = h.stats();
  EXPECT_EQ(end.partition_heals, 1u);
  EXPECT_TRUE(h.stabilization_report().stabilized);
}

// --- Observability ----------------------------------------------------------

TEST(HarnessLifecycle, TimelineParityWithBusUnderLifecycleFaults) {
  // Lifecycle faults flow through the same fault-code space as injector
  // faults; the live timeline and the bus derivation must agree on every
  // shared field, including the lifecycle entries.
  HarnessConfig config = load_config(17);
  config.trace_capacity = 1u << 20;
  SystemHarness h(config);
  h.start();
  h.run_for(400);
  h.faults().burst(4, net::FaultMix::all());
  h.crash(2);
  h.run_for(300);
  h.recover(2);
  h.partition(0b0110);
  h.run_for(300);
  h.heal_partition();
  h.run_for(2000);
  h.drain(2000);

  const obs::StabilizationTimeline live = h.timeline();
  const obs::StabilizationTimeline from_bus =
      obs::timeline_from_bus(h.events());
  EXPECT_EQ(from_bus.faults_injected, live.faults_injected);
  EXPECT_EQ(from_bus.first_fault, live.first_fault);
  EXPECT_EQ(from_bus.last_fault, live.last_fault);
  ASSERT_EQ(from_bus.faults.size(), live.faults.size());
  for (std::size_t i = 0; i < live.faults.size(); ++i) {
    EXPECT_EQ(from_bus.faults[i].name, live.faults[i].name) << i;
    EXPECT_EQ(from_bus.faults[i].count, live.faults[i].count) << i;
    EXPECT_EQ(from_bus.faults[i].first, live.faults[i].first) << i;
    EXPECT_EQ(from_bus.faults[i].last, live.faults[i].last) << i;
  }
  bool saw_crash = false, saw_heal = false;
  for (const obs::TimelineEntry& f : live.faults) {
    saw_crash = saw_crash || f.name == "process-crash";
    saw_heal = saw_heal || f.name == "partition-heal";
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_heal);
}

TEST(HarnessLifecycle, MetricsCarryAvailabilityInstruments) {
  HarnessConfig config = load_config(19);
  config.collect_metrics = true;
  config.fault_process = modest_load();
  SystemHarness h(config);
  h.start();
  h.run_for(6000);
  h.drain(3000);
  const RunStats stats = h.stats();
  bool saw_rate = false, saw_avail = false, saw_reconverge = false;
  for (const obs::MetricSample& s : stats.metrics) {
    saw_rate = saw_rate || s.name == "fault_rate_per_kilotick";
    saw_avail = saw_avail || s.name == "availability_ppm";
    saw_reconverge = saw_reconverge || s.name == "reconverge_ticks";
  }
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_avail);
  EXPECT_TRUE(saw_reconverge);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.reconverge_windows, 0u);
}

// --- Liveness under sustained load ------------------------------------------

TEST(SustainedLoad, WrappedSystemStaysLiveUnderModestContinuousFaults) {
  // The regime the ROADMAP cares about: faults keep arriving, and the
  // wrapped system keeps serving the critical section between them.
  HarnessConfig config = load_config(23);
  config.fault_process = modest_load();
  config.fault_process.end = 6000;  // quiesce before the drain
  SystemHarness h(config);
  h.start();
  h.run_for(8000);
  h.drain(4000);
  const RunStats stats = h.stats();
  EXPECT_GT(stats.faults_injected, 10u);
  EXPECT_GT(stats.cs_entries, 0u);
  EXPECT_TRUE(h.stabilization_report().stabilized);
}

// --- Engine determinism ------------------------------------------------------

TEST(SustainedLoad, EngineJsonByteIdenticalAcrossJobs) {
  // Fault-load cells ride the experiment engine like any other: the whole
  // artifact is byte-identical between --jobs 1 and --jobs 8 (modulo
  // wall-clock lines).
  auto grid = [] {
    SpecGrid g;
    for (const std::uint64_t rate : {0ull, 200ull}) {
      HarnessConfig config;
      config.n = 4;
      config.seed = 7;
      if (rate > 0) {
        config.fault_process.drop_mean = static_cast<double>(rate);
        config.fault_process.spurious_mean = static_cast<double>(rate);
        config.fault_process.crash_mean = static_cast<double>(rate) * 10;
        config.fault_process.downtime_mean = 100;
        config.fault_process.end = 2500;
      }
      FaultScenario scenario;
      scenario.warmup = 300;
      scenario.burst = 0;  // the sustained load IS the adversary
      scenario.observation = 2500;
      scenario.drain = 1500;
      g.add("rate_" + std::to_string(rate), config, scenario, 4);
    }
    return g;
  };
  const GridResult serial = ExperimentEngine(EngineOptions{.jobs = 1}).run(grid());
  const GridResult parallel =
      ExperimentEngine(EngineOptions{.jobs = 8}).run(grid());
  const std::string a =
      report::strip_volatile_lines(grid_to_json("fault_load", serial).dump());
  const std::string b =
      report::strip_volatile_lines(grid_to_json("fault_load", parallel).dump());
  EXPECT_EQ(a, b);
  // The digest must key on the fault-load shape: distinct cells differ.
  ASSERT_EQ(serial.cells.size(), 2u);
  EXPECT_NE(serial.cells[0].config_digest, serial.cells[1].config_digest);
}

}  // namespace
}  // namespace graybox::core
