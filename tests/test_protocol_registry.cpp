// The protocol registry: the open seam the harness resolves algorithms
// through. Covers name/alias lookup, option resolution against schemas,
// the canonical serialization that config digests hash, openness to
// factories the library has never heard of, and the completeness smoke
// that runs every registered implementation through a wrapped fault burst
// (the CI registry smoke is this test).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/report.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "me/protocol_registry.hpp"
#include "me/ricart_agrawala.hpp"

namespace graybox::core {
namespace {

using me::ProcessFactory;
using me::ProtocolRegistry;

// --- names and lookup --------------------------------------------------------

TEST(ProtocolRegistry, BuiltinsAreRegistered) {
  ProtocolRegistry& reg = ProtocolRegistry::instance();
  // Prefix check, not exact: tests in this binary may add factories.
  const auto names = reg.names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "ricart-agrawala");
  EXPECT_EQ(names[1], "lamport");
  EXPECT_EQ(names[2], "carvalho-roucairol");
  EXPECT_EQ(names[3], "fragile-ra");
}

TEST(ProtocolRegistry, AliasesResolveToTheSameFactory) {
  ProtocolRegistry& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.find("ra"), reg.find("ricart-agrawala"));
  EXPECT_EQ(reg.find("cr"), reg.find("carvalho-roucairol"));
  EXPECT_EQ(reg.find("fragile"), reg.find("fragile-ra"));
  EXPECT_NE(reg.find("lamport"), nullptr);
  EXPECT_EQ(reg.find("zab"), nullptr);
  EXPECT_EQ(reg.find(""), nullptr);
}

TEST(ProtocolRegistryDeathTest, RequireDiesListingRegisteredNames) {
  // The fail-fast configuration path: a typo'd name aborts and the message
  // carries every registered name (the explorer prints the same list).
  EXPECT_DEATH(ProtocolRegistry::instance().require("paxos"),
               "unknown algorithm 'paxos'.*ricart-agrawala.*lamport"
               ".*carvalho-roucairol.*fragile-ra");
}

TEST(ProtocolRegistry, ConformanceFlagsMatchTheImplementations) {
  ProtocolRegistry& reg = ProtocolRegistry::instance();
  EXPECT_TRUE(reg.require("ra").conformance().everywhere);
  EXPECT_TRUE(reg.require("ra").conformance().view_entry_truth);
  EXPECT_TRUE(reg.require("ra").conformance().fcfs);
  EXPECT_TRUE(reg.require("lamport").conformance().everywhere);
  EXPECT_TRUE(reg.require("lamport").conformance().fcfs);
  EXPECT_TRUE(reg.require("cr").conformance().everywhere);
  EXPECT_FALSE(reg.require("cr").conformance().view_entry_truth);
  EXPECT_FALSE(reg.require("cr").conformance().fcfs);
  EXPECT_FALSE(reg.require("fragile").conformance().everywhere);
  EXPECT_TRUE(reg.require("fragile").conformance().fcfs);
}

// --- option resolution -------------------------------------------------------

TEST(ProtocolRegistry, ResolveFillsDefaultsInSchemaOrder) {
  const ProcessFactory& ra = ProtocolRegistry::instance().require("ra");
  const me::ResolvedOptions defaults = ra.resolve({});
  EXPECT_EQ(defaults.canonical(), "monotone_views=0");
  EXPECT_FALSE(defaults.get_bool("monotone_views"));
  EXPECT_EQ(ra.canonical_spec(defaults),
            "ricart-agrawala[monotone_views=0]");
}

TEST(ProtocolRegistry, LaterOptionEntriesWin) {
  const ProcessFactory& cr = ProtocolRegistry::instance().require("cr");
  const me::ResolvedOptions opts =
      cr.resolve({"lease=4", "lease=16"});
  EXPECT_EQ(opts.get_u64("lease"), 16u);
  EXPECT_EQ(cr.canonical_spec(opts), "carvalho-roucairol[lease=16]");
}

TEST(ProtocolRegistry, EmptySchemaYieldsBareSpec) {
  const ProcessFactory& fragile =
      ProtocolRegistry::instance().require("fragile");
  EXPECT_EQ(fragile.canonical_spec(fragile.resolve({})), "fragile-ra");
}

TEST(ProtocolRegistryDeathTest, UnknownOptionKeyDiesListingSchema) {
  const ProcessFactory& ra = ProtocolRegistry::instance().require("ra");
  EXPECT_DEATH(ra.resolve({"bogus=1"}), "monotone_views");
}

// --- openness ----------------------------------------------------------------

// A factory the library has never heard of: RA under a new name, with its
// own option. Registering it must make it reachable through every layer
// (registry lookup, harness construction, algorithm_spec, config digest)
// without touching library code.
class ExternalFactory : public ProcessFactory {
 public:
  std::string_view name() const override { return "external-ra"; }
  std::vector<std::string_view> aliases() const override { return {"xra"}; }
  me::SpecConformance conformance() const override { return {}; }
  std::vector<me::OptionSpec> option_schema() const override {
    return {{"flavor", "plain", "exercise external option plumbing"}};
  }
  std::unique_ptr<me::TmeProcess> make(
      ProcessId pid, std::size_t n, net::Network& net, Rng& /*rng*/,
      const me::ResolvedOptions& /*options*/) const override {
    EXPECT_EQ(n, net.size());
    return std::make_unique<me::RicartAgrawala>(pid, net);
  }
};

TEST(ProtocolRegistry, ExternalFactoryReachesEveryLayer) {
  static const ExternalFactory factory;
  ProtocolRegistry::instance().add(&factory);
  EXPECT_EQ(ProtocolRegistry::instance().find("xra"), &factory);

  HarnessConfig config;
  config.n = 3;
  config.algorithm = "external-ra";
  config.algorithm_options = {"flavor=test"};
  config.wrapped = true;
  config.seed = 11;
  EXPECT_EQ(algorithm_spec(config), "external-ra[flavor=test]");
  EXPECT_NE(config_digest(config), config_digest(HarnessConfig{}));

  SystemHarness h(config);
  h.start();
  h.run_for(3000);
  h.drain(2000);
  EXPECT_EQ(h.process(0).algorithm(), "ricart-agrawala");  // the impl's name
  EXPECT_EQ(h.monitors().total_violations(), 0u);
  EXPECT_GT(h.stats().cs_entries, 0u);
}

// --- canonical-serialization digests ----------------------------------------

TEST(ConfigDigest, LegacySpellingEqualsGenericSpelling) {
  // The deprecated enum + option structs and the registry spelling resolve
  // to the same processes, so they must digest identically — the digest
  // hashes the canonical serialization, not struct-field order.
  HarnessConfig legacy;
  legacy.n = 4;
  legacy.algorithm = Algorithm::kRicartAgrawala;
  legacy.ra_options.monotone_views = true;

  HarnessConfig generic;
  generic.n = 4;
  generic.algorithm = "ra";  // alias: canonicalized by the registry
  generic.algorithm_options = {"monotone_views=1"};

  EXPECT_EQ(algorithm_spec(legacy), algorithm_spec(generic));
  EXPECT_EQ(config_digest(legacy), config_digest(generic));
}

TEST(ConfigDigest, UniformVectorEqualsUniformScalar) {
  HarnessConfig scalar;
  scalar.n = 3;
  scalar.algorithm = "lamport";

  HarnessConfig vector = scalar;
  vector.per_process_algorithms = {"lamport", "lamport", "lamport"};

  EXPECT_EQ(algorithm_spec(vector), algorithm_spec(scalar));
  EXPECT_EQ(config_digest(vector), config_digest(scalar));
}

TEST(ConfigDigest, PinnedValuesForBenchArtifacts) {
  // Regression pin for BENCH_*.json stability: these are the digests the
  // bench_reusability RA and Lamport cells record. If either moves, every
  // committed artifact silently stops being comparable PR-over-PR — treat
  // a failure here as "I changed what a digest means" and regenerate all
  // BENCH artifacts in the same commit.
  HarnessConfig ra;
  ra.n = 4;
  ra.algorithm = "ricart-agrawala";
  ra.wrapped = true;
  ra.wrapper.resend_period = 20;
  ra.client.think_mean = 35;
  ra.client.eat_mean = 7;
  ra.seed = 500;
  HarnessConfig lamport = ra;
  lamport.algorithm = "lamport";

  EXPECT_EQ(config_digest(ra), "8b21a08ffa81dd7e");
  EXPECT_EQ(config_digest(lamport), "a2cca858be4bf291");
}

TEST(ConfigDigest, MovesWithAlgorithmOptionsAndTiers) {
  HarnessConfig base;
  base.n = 4;
  base.algorithm = "cr";
  const std::string digest = config_digest(base);

  HarnessConfig lease = base;
  lease.algorithm_options = {"lease=4"};
  EXPECT_NE(config_digest(lease), digest);

  HarnessConfig redundant = base;
  redundant.algorithm_options = {"lease=8"};  // == the default
  EXPECT_EQ(config_digest(redundant), digest);

  HarnessConfig level1 = base;
  level1.level1 = true;
  EXPECT_NE(config_digest(level1), digest);

  HarnessConfig tiers = base;
  tiers.per_process_tiers = {kTierLevel2, kTierLevel2, kTierLevel2,
                             kTierLevel1 | kTierLevel2};
  EXPECT_NE(config_digest(tiers), digest);

  HarnessConfig per_proc = base;
  per_proc.per_process_options = {{}, {"lease=4"}, {}, {}};
  EXPECT_NE(config_digest(per_proc), digest);
}

// --- completeness smoke ------------------------------------------------------

TEST(RegistrySmoke, EveryFactoryRunsWrappedAndRoundTripsItsName) {
  // One short wrapped fault-burst per registered implementation (message
  // drops only: recoverable for every entry including the fragile negative
  // control, whose documented failure mode is process corruption). Asserts
  // stabilization and that the engine's JSON cell round-trips the
  // registry-canonical algorithm spec.
  for (const ProcessFactory* factory :
       ProtocolRegistry::instance().factories()) {
    RunSpec spec;
    spec.name = std::string(factory->name());
    spec.config.n = 3;
    spec.config.algorithm = std::string(factory->name());
    spec.config.wrapped = true;
    spec.config.client.think_mean = 30;
    spec.config.client.eat_mean = 5;
    spec.config.seed = 7100;
    spec.scenario.warmup = 400;
    spec.scenario.burst = 6;
    spec.scenario.mix = net::FaultMix::only(net::FaultKind::kMessageDrop);
    spec.scenario.observation = 4000;
    spec.scenario.drain = 3000;
    spec.trials = 2;

    const CellResult cell =
        ExperimentEngine(EngineOptions{.jobs = 1}).run_cell(spec);
    EXPECT_EQ(cell.result.stabilized, cell.result.trials)
        << factory->name() << " failed the wrapped drop-burst smoke";

    const std::string json = cell_to_json(cell).dump(0);
    const std::string spec_string =
        factory->canonical_spec(factory->resolve({}));
    EXPECT_NE(json.find("\"algorithm\":\"" + spec_string + "\""),
              std::string::npos)
        << factory->name() << " cell JSON: " << json.substr(0, 200);
  }
}

}  // namespace
}  // namespace graybox::core
