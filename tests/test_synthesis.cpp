// Tests for wrapper synthesis and fair stabilization (the Section 6
// "automatic synthesis" direction): the synthesized reset wrapper fairly
// stabilizes the specification and every everywhere implementation; the
// fair semantics is provably weaker-or-equal than the demonic one; and the
// Figure-1 spec — unrepairable demonically — is repaired under fairness.
#include <gtest/gtest.h>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/synthesis.hpp"

namespace graybox::algebra {
namespace {

System empty_wrapper(std::size_t n) {
  System w(n);
  for (State s = 0; s < n; ++s) w.set_initial(s);
  return w;
}

TEST(ResetWrapper, TargetsOnlyStrayStates) {
  const System a = figure1_specification();
  const System w = synthesize_reset_wrapper(a);
  // Reach_A(init) = {s0..s3}; only s* is stray.
  EXPECT_EQ(w.num_transitions(), 1u);
  EXPECT_TRUE(w.has_transition(kFig1StateCorrupt, kFig1S0));
  for (State s = 0; s < w.num_states(); ++s) EXPECT_TRUE(w.is_initial(s));
}

TEST(ResetWrapper, EmptyWhenEverythingReachable) {
  System a(2);
  a.add_transition(0, 1);
  a.add_transition(1, 0);
  a.set_initial(0);
  EXPECT_EQ(synthesize_reset_wrapper(a).num_transitions(), 0u);
}

TEST(FairStabilization, RepairsFigure1Implementation) {
  // The paper's broken C (spins at s*) is beyond demonic repair — boxing
  // only adds computations — but the synthesized wrapper repairs it under
  // fair execution: exactly what W's timer buys in the real system.
  const System a = figure1_specification();
  const System c = figure1_implementation();
  const System w = synthesize_reset_wrapper(a);
  EXPECT_FALSE(stabilizes_to(System::box(c, w), a));  // demonic: hopeless
  EXPECT_TRUE(fair_stabilizes_to(c, w, a));           // fair: repaired
}

TEST(FairStabilization, WithoutWrapperMatchesDemonicOnFigure1) {
  const System a = figure1_specification();
  const System c = figure1_implementation();
  EXPECT_FALSE(fair_stabilizes_to(c, empty_wrapper(a.num_states()), a));
  const System fixed = figure1_everywhere_implementation();
  EXPECT_TRUE(fair_stabilizes_to(fixed, empty_wrapper(a.num_states()), a));
}

TEST(FairStabilization, ConvergenceRegionIsReachWhenClosed) {
  const System a = figure1_specification();
  const System c = figure1_everywhere_implementation();
  const Bitset g =
      fair_convergence_region(c, empty_wrapper(a.num_states()), a);
  const Bitset reach = a.reachable_from_initial();
  EXPECT_EQ(g, reach);
}

TEST(FairStabilization, WrapperEdgeLeavingGoodRegionShrinksIt) {
  // A wrapper that "repairs" by jumping OUT of the reachable region makes
  // matters worse; the convergence region must exclude the states it can
  // eject, and fair stabilization must fail.
  System a(3);
  a.add_transition(0, 1);
  a.add_transition(1, 0);
  a.add_transition(2, 2);
  a.set_initial(0);
  System w = empty_wrapper(3);
  w.add_transition(1, 2);  // ejects from the good region
  const Bitset g = fair_convergence_region(a, w, a);
  EXPECT_FALSE(g.test(1));
  EXPECT_FALSE(fair_stabilizes_to(a, w, a));
}

TEST(FairStabilization, SkipStatesKeepAdversaryAlive) {
  // A stray 2-cycle where only ONE state has a recovery edge: the
  // adversary serves every fairness obligation at the other state (where
  // the wrapper skips), so the system does not fairly stabilize. Adding
  // the second recovery edge fixes it.
  System a(3);
  a.add_transition(0, 0);
  a.add_transition(1, 2);
  a.add_transition(2, 1);
  a.set_initial(0);
  System c = a;
  System w = empty_wrapper(3);
  w.add_transition(1, 0);
  EXPECT_FALSE(fair_stabilizes_to(c, w, a));
  w.add_transition(2, 0);
  EXPECT_TRUE(fair_stabilizes_to(c, w, a));
}

TEST(FairStabilization, WrapperEdgeWithinBadRegionStillEscapes) {
  // Recovery in two hops: 1's wrapper edge goes to 2 (still stray), whose
  // wrapper edge goes home. The marked 1->2 edge lies on no cycle, so the
  // adversary cannot exploit it: fair stabilization holds.
  System a(3);
  a.add_transition(0, 0);
  a.add_transition(1, 1);
  a.add_transition(2, 2);
  a.set_initial(0);
  System w = empty_wrapper(3);
  w.add_transition(1, 2);
  w.add_transition(2, 0);
  EXPECT_TRUE(fair_stabilizes_to(a, w, a));
  // But a wrapper 2 -> 1 closing the loop revives the adversary.
  System w2 = empty_wrapper(3);
  w2.add_transition(1, 2);
  w2.add_transition(2, 1);
  EXPECT_FALSE(fair_stabilizes_to(a, w2, a));
}

// --- Property sweeps -----------------------------------------------------------

class SynthesisSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
  static constexpr int kTrials = 250;
};

TEST_P(SynthesisSweep, SynthesizedWrapperFairlyStabilizesSpec) {
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    const System w = synthesize_reset_wrapper(a);
    EXPECT_TRUE(fair_stabilizes_to(a, w, a))
        << "A:\n" << a.to_string() << "W:\n" << w.to_string();
  }
}

TEST_P(SynthesisSweep, SynthesizedWrapperTransfersToEverywhereImpls) {
  // The graybox synthesis theorem: W derived from A alone fairly
  // stabilizes EVERY everywhere implementation of A.
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    const System w = synthesize_reset_wrapper(a);
    const System c = random_everywhere_implementation(rng, a);
    EXPECT_TRUE(fair_stabilizes_to(c, w, a))
        << "A:\n" << a.to_string() << "C:\n" << c.to_string();
  }
}

TEST_P(SynthesisSweep, DemonicStabilizationImpliesFair) {
  // Fairness only removes adversary behaviours: whatever stabilizes
  // demonically stabilizes fairly. Checked for recovery-style wrappers
  // (edges only outside Reach_A(init)), where the fair procedure is exact.
  int checked = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    // Random recovery wrapper: a few edges from stray states only.
    const Bitset reach = a.reachable_from_initial();
    System w = empty_wrapper(a.num_states());
    for (State s = 0; s < a.num_states(); ++s) {
      if (reach.test(s)) continue;
      if (rng.chance(0.7))
        w.add_transition(s, rng.index(a.num_states()));
    }
    const System cw = System::box(a, w);
    if (!stabilizes_to(cw, a)) continue;
    ++checked;
    EXPECT_TRUE(fair_stabilizes_to(a, w, a))
        << "A:\n" << a.to_string() << "W:\n" << w.to_string();
  }
  EXPECT_GT(checked, 0);
}

TEST_P(SynthesisSweep, FairnessIsSometimesNecessary) {
  // The other direction must fail on some draws: specs whose stray states
  // cycle are unrepairable demonically yet fairly repaired by synthesis.
  int fair_only = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 4 + rng.index(6);
    params.initial_density = 0.15;  // leave stray regions
    const System a = random_system(rng, params);
    const System w = synthesize_reset_wrapper(a);
    const bool demonic = stabilizes_to(System::box(a, w), a);
    const bool fair = fair_stabilizes_to(a, w, a);
    EXPECT_TRUE(fair);
    if (fair && !demonic) ++fair_only;
  }
  EXPECT_GT(fair_only, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisSweep,
                         ::testing::Values(1u, 9u, 17u, 33u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace graybox::algebra
