// Cross-cutting property sweeps (parameterized): fault-free specification
// conformance over the full configuration grid, recovery under continuous
// fault pressure once it stops, and structural properties of the traffic.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/harness.hpp"

namespace graybox::core {
namespace {

// --- Grid: n x algorithm x delay model, fault-free ---------------------------

struct GridParam {
  std::size_t n;
  Algorithm algorithm;
  SimTime delay_min;
  SimTime delay_max;
};

class FaultFreeGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(FaultFreeGrid, TmeSpecHolds) {
  const GridParam param = GetParam();
  HarnessConfig config;
  config.n = param.n;
  config.algorithm = param.algorithm;
  config.wrapped = true;
  config.wrapper.resend_period = 25;
  config.delay = net::DelayModel::uniform(param.delay_min, param.delay_max);
  config.client.think_mean = 50;
  config.client.eat_mean = 6;
  config.seed = 17 * param.n + static_cast<std::uint64_t>(param.algorithm);
  SystemHarness h(config);
  h.start();
  h.run_for(4000);
  h.drain(3000);

  EXPECT_EQ(h.tme_monitors().me1->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().me3->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().invariant_i->total_violations(), 0u);
  EXPECT_FALSE(h.tme_monitors().me2->starvation_at_end());
  EXPECT_TRUE(h.structural_monitor().clean());
  EXPECT_TRUE(h.fifo_monitor().clean());
  EXPECT_TRUE(h.send_monitor().clean());
  EXPECT_GT(h.stats().cs_entries, 0u);
}

std::vector<GridParam> grid() {
  std::vector<GridParam> params;
  for (const std::size_t n : {2u, 3u, 6u, 9u}) {
    for (const Algorithm algo :
         {Algorithm::kRicartAgrawala, Algorithm::kLamport}) {
      params.push_back(GridParam{n, algo, 1, 1});    // fixed fast
      params.push_back(GridParam{n, algo, 1, 30});   // widely variable
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, FaultFreeGrid, ::testing::ValuesIn(grid()),
                         [](const auto& info) {
                           const GridParam& p = info.param;
                           std::string name = "n" + std::to_string(p.n);
                           name += p.algorithm == Algorithm::kRicartAgrawala
                                       ? "_ra"
                                       : "_lamport";
                           name += "_d" + std::to_string(p.delay_max);
                           return name;
                         });

// --- Continuous fault pressure, then calm -------------------------------------

TEST(ContinuousPressure, CleanSuffixAfterFaultsStop) {
  // Seeds 400..405, fanned out by the engine (jobs > 1 also exercises the
  // concurrent scripted_fault path: the callable captures nothing and each
  // call only touches its own harness).
  HarnessConfig config;
  config.n = 4;
  config.algorithm = Algorithm::kRicartAgrawala;
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 35;
  config.client.eat_mean = 6;
  config.seed = 400;

  FaultScenario scenario;
  scenario.warmup = 300;
  scenario.observation = 8700;
  scenario.drain = 4000;
  // One random fault every 150 ticks for 3000 ticks, then calm.
  scenario.scripted_fault = [](SystemHarness& h) {
    const SimTime now = h.scheduler().now();
    h.faults().schedule_continuous(now, now + 3000, 150,
                                   net::FaultMix::all());
  };

  const RepeatedResult result = repeat_fault_experiment(
      config, scenario, /*trials=*/6, /*jobs=*/2);
  // Every seed recovered once the pressure stopped...
  EXPECT_TRUE(result.all_stabilized())
      << result.stabilized << "/" << result.trials << " stabilized";
  EXPECT_EQ(result.starved, 0u);
  // ...and service resumed in every trial after the fault window.
  ASSERT_EQ(result.cs_entries.count(), 6u);
  EXPECT_GT(result.cs_entries.min(), 20.0);
}

// --- Traffic structure ------------------------------------------------------------

TEST(TrafficShape, RicartAgrawalaMessageComplexity) {
  // Fault-free RA: 2(n-1) messages per CS entry, exactly (Ricart-Agrawala's
  // optimality claim), since every request triggers one reply.
  HarnessConfig config;
  config.n = 5;
  config.algorithm = Algorithm::kRicartAgrawala;
  config.wrapped = false;  // isolate protocol traffic
  config.client.think_mean = 60;
  config.client.eat_mean = 5;
  config.seed = 321;
  SystemHarness h(config);
  h.start();
  h.run_for(6000);
  h.drain(3000);
  const RunStats stats = h.stats();
  ASSERT_GT(stats.cs_entries, 0u);
  EXPECT_EQ(stats.messages_sent, stats.cs_entries * 2 * (config.n - 1));
  EXPECT_EQ(stats.sent_request, stats.sent_reply);
}

TEST(TrafficShape, LamportMessageComplexity) {
  // Fault-free Lamport: 3(n-1) per entry (request + reply + release).
  HarnessConfig config;
  config.n = 5;
  config.algorithm = Algorithm::kLamport;
  config.wrapped = false;
  config.client.think_mean = 60;
  config.client.eat_mean = 5;
  config.seed = 321;
  SystemHarness h(config);
  h.start();
  h.run_for(6000);
  h.drain(3000);
  const RunStats stats = h.stats();
  ASSERT_GT(stats.cs_entries, 0u);
  EXPECT_EQ(stats.messages_sent, stats.cs_entries * 3 * (config.n - 1));
  EXPECT_EQ(stats.sent_request, stats.sent_reply);
  EXPECT_EQ(stats.sent_request, stats.sent_release);
}

TEST(TrafficShape, WrapperSilentInFaultFreeRuns) {
  // Interference freedom in traffic terms: while the system is consistent,
  // the refined wrapper sends only during hungry phases where views are
  // still catching up — with delta larger than the longest wait, nothing.
  HarnessConfig config;
  config.n = 4;
  config.algorithm = Algorithm::kRicartAgrawala;
  config.wrapped = true;
  config.wrapper.resend_period = 100000;  // effectively never fires mid-wait
  config.client.think_mean = 50;
  config.client.eat_mean = 5;
  config.seed = 11;
  SystemHarness h(config);
  h.start();
  h.run_for(8000);
  EXPECT_EQ(h.stats().wrapper_messages, 0u);
}

TEST(TrafficShape, DrainedSystemGoesQuiet) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = Algorithm::kLamport;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = 13;
  SystemHarness h(config);
  h.start();
  h.run_for(3000);
  h.drain(3000);
  EXPECT_TRUE(h.quiescent());
  EXPECT_EQ(h.network().in_flight(), 0u);
}

// --- Determinism across the grid -----------------------------------------------

TEST(Determinism, FaultyRunsReplayExactly) {
  auto run = [] {
    HarnessConfig config;
    config.n = 4;
    config.algorithm = Algorithm::kLamport;
    config.wrapped = true;
    config.seed = 555;
    SystemHarness h(config);
    h.start();
    h.faults().schedule_burst(500, 10, net::FaultMix::all());
    h.run_for(4000);
    h.drain(2000);
    return h.stats();
  };
  const RunStats a = run(), b = run();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.cs_entries, b.cs_entries);
  EXPECT_EQ(a.me1_violations, b.me1_violations);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace graybox::core
