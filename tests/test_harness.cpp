// Integration tests for SystemHarness: wiring, fault-free conformance of
// both algorithms, drain semantics, stats, and determinism.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

namespace graybox::core {
namespace {

HarnessConfig base_config(Algorithm algo, bool wrapped) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = algo;
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = 99;
  return config;
}

class FaultFreeConformance
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(FaultFreeConformance, NoViolationsAndProgress) {
  const auto [algo, wrapped] = GetParam();
  SystemHarness h(base_config(algo, wrapped));
  h.start();
  h.run_for(4000);
  h.drain(2000);

  // TME Spec holds throughout (Theorem 5: Lspec implementations implement
  // TME Spec from initial states).
  EXPECT_EQ(h.tme_monitors().me1->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().me3->total_violations(), 0u);
  EXPECT_EQ(h.tme_monitors().invariant_i->total_violations(), 0u);
  EXPECT_FALSE(h.tme_monitors().me2->starvation_at_end());

  // Program-transition conformance.
  EXPECT_TRUE(h.structural_monitor().clean());
  EXPECT_TRUE(h.send_monitor().clean());
  EXPECT_TRUE(h.fifo_monitor().clean());

  // Real progress was made and everything settled.
  const RunStats stats = h.stats();
  EXPECT_GT(stats.cs_entries, 20u);
  EXPECT_EQ(stats.cs_entries, stats.me2_served);
  EXPECT_TRUE(h.quiescent());

  const StabilizationReport report = h.stabilization_report();
  EXPECT_TRUE(report.stabilized);
  EXPECT_FALSE(report.faults_injected);
  EXPECT_EQ(report.violations_total, 0u);
}

std::string conformance_name(
    const ::testing::TestParamInfo<std::tuple<Algorithm, bool>>& info) {
  std::string name = to_string(std::get<0>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  name += std::get<1>(info.param) ? "_wrapped" : "_bare";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndWrapping, FaultFreeConformance,
    ::testing::Combine(::testing::Values(Algorithm::kRicartAgrawala,
                                         Algorithm::kLamport,
                                         Algorithm::kFragile),
                       ::testing::Bool()),
    conformance_name);

TEST(Harness, WrapperAccessReflectsConfig) {
  SystemHarness wrapped(base_config(Algorithm::kRicartAgrawala, true));
  EXPECT_NE(wrapped.wrapper(0), nullptr);
  SystemHarness bare(base_config(Algorithm::kRicartAgrawala, false));
  EXPECT_EQ(bare.wrapper(0), nullptr);
}

TEST(Harness, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    HarnessConfig config = base_config(Algorithm::kRicartAgrawala, true);
    config.seed = seed;
    SystemHarness h(config);
    h.start();
    h.run_for(3000);
    h.drain(1000);
    return h.stats();
  };
  const RunStats a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a.cs_entries, b.cs_entries);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
  // A different seed should genuinely change the run.
  EXPECT_NE(a.messages_sent, c.messages_sent);
}

TEST(Harness, AlgorithmNamesExposed) {
  EXPECT_STREQ(to_string(Algorithm::kRicartAgrawala), "ricart-agrawala");
  EXPECT_STREQ(to_string(Algorithm::kLamport), "lamport");
  EXPECT_STREQ(to_string(Algorithm::kFragile), "fragile-ra");
}

TEST(Harness, ProcessesMatchConfiguredAlgorithm) {
  SystemHarness h(base_config(Algorithm::kLamport, false));
  for (ProcessId pid = 0; pid < 4; ++pid)
    EXPECT_EQ(h.process(pid).algorithm(), "lamport");
}

TEST(Harness, WrapperTrafficOnlyWhenWrapped) {
  SystemHarness bare(base_config(Algorithm::kRicartAgrawala, false));
  bare.start();
  bare.run_for(3000);
  EXPECT_EQ(bare.stats().wrapper_messages, 0u);
}

TEST(Harness, MonitorsCanBeDisabled) {
  HarnessConfig config = base_config(Algorithm::kRicartAgrawala, true);
  config.install_monitors = false;
  SystemHarness h(config);
  h.start();
  h.run_for(1000);
  EXPECT_EQ(h.monitors().size(), 0u);
  EXPECT_GT(h.stats().cs_entries, 0u);
}

TEST(Harness, SingleProcessSystemWorks) {
  HarnessConfig config = base_config(Algorithm::kRicartAgrawala, true);
  config.n = 1;
  SystemHarness h(config);
  h.start();
  h.run_for(2000);
  h.drain(500);
  EXPECT_GT(h.stats().cs_entries, 0u);
  EXPECT_EQ(h.stats().messages_sent, 0u);
  EXPECT_TRUE(h.stabilization_report().stabilized);
}

TEST(Harness, StatsMessageTypeBreakdownConsistent) {
  SystemHarness h(base_config(Algorithm::kLamport, true));
  h.start();
  h.run_for(3000);
  const RunStats stats = h.stats();
  EXPECT_EQ(stats.messages_sent,
            stats.sent_request + stats.sent_reply + stats.sent_release);
  EXPECT_GT(stats.sent_release, 0u);  // Lamport uses releases
}

TEST(Harness, RicartAgrawalaSendsNoReleases) {
  SystemHarness h(base_config(Algorithm::kRicartAgrawala, true));
  h.start();
  h.run_for(3000);
  EXPECT_EQ(h.stats().sent_release, 0u);
}

TEST(Experiment, FaultFreeScenarioViaRunner) {
  FaultScenario scenario;
  scenario.burst = 0;
  scenario.warmup = 500;
  scenario.observation = 1500;
  scenario.drain = 1500;
  const ExperimentResult result = run_fault_experiment(
      base_config(Algorithm::kRicartAgrawala, true), scenario);
  EXPECT_TRUE(result.report.stabilized);
  EXPECT_FALSE(result.report.faults_injected);
  EXPECT_GT(result.stats.cs_entries, 0u);
}

TEST(Experiment, RepeatAggregatesTrials) {
  FaultScenario scenario;
  scenario.burst = 0;
  scenario.warmup = 200;
  scenario.observation = 800;
  scenario.drain = 1000;
  const RepeatedResult result = repeat_fault_experiment(
      base_config(Algorithm::kRicartAgrawala, true), scenario, 3);
  EXPECT_EQ(result.trials, 3u);
  EXPECT_TRUE(result.all_stabilized());
  EXPECT_EQ(result.cs_entries.count(), 3u);
}

TEST(StabilizationReport, ToStringMentionsVerdict) {
  StabilizationReport report;
  report.stabilized = true;
  EXPECT_NE(report.to_string().find("stabilized"), std::string::npos);
  report.stabilized = false;
  report.starvation = true;
  const std::string s = report.to_string();
  EXPECT_NE(s.find("NOT STABILIZED"), std::string::npos);
  EXPECT_NE(s.find("STARVATION"), std::string::npos);
}

}  // namespace
}  // namespace graybox::core
