// Scripted scenario tests reproducing, step by step, the concrete fault
// situations the paper discusses in prose: the Section 4 deadlock, the
// corrupted-view inconsistencies, and the clock-corruption behaviours. Each
// scenario is built surgically (fault_set_*) so the mechanism — not just
// the end-to-end statistics — is pinned down.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "me/client.hpp"
#include "me/lamport.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/graybox_wrapper.hpp"

namespace graybox {
namespace {

using me::TmeState;

// A two-process rig with optional wrappers, generic over implementation.
template <typename Impl>
class Rig {
 public:
  explicit Rig(bool wrapped, SimTime period = 10)
      : net(sched, 2, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < 2; ++pid) {
      procs.push_back(std::make_unique<Impl>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
    if (wrapped) {
      for (ProcessId pid = 0; pid < 2; ++pid) {
        wrappers.push_back(std::make_unique<wrapper::GrayboxWrapper>(
            sched, net, *procs[pid],
            wrapper::WrapperConfig{.resend_period = period}));
        wrappers.back()->start();
      }
    }
  }

  Impl& p(ProcessId pid) { return *procs[pid]; }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<Impl>> procs;
  std::vector<std::unique_ptr<wrapper::GrayboxWrapper>> wrappers;
};

// --- Section 4: "due to transient faults there might be more than one
// process accessing CS at the same time" ------------------------------------

TEST(Section4, DoubleEntryIsTransient) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  rig.p(0).request_cs();
  rig.sched.run_until(50);
  ASSERT_TRUE(rig.p(0).eating());
  // Corruption fakes a second eater.
  rig.p(1).fault_set_state(TmeState::kEating);
  EXPECT_EQ(rig.p(0).state(), TmeState::kEating);
  EXPECT_EQ(rig.p(1).state(), TmeState::kEating);
  // CS Spec (client side) releases both; afterwards ME behaves normally.
  rig.p(0).release_cs();
  rig.p(1).release_cs();
  rig.sched.run_until(rig.sched.now() + 100);
  rig.p(1).request_cs();
  rig.sched.run_until(rig.sched.now() + 100);
  EXPECT_TRUE(rig.p(1).eating());
  EXPECT_TRUE(rig.p(0).thinking());
}

// --- Section 4: the deadlock scenario, verbatim ------------------------------
//
// "Suppose processes j and k have both requested CS. Due to transient
//  faults (e.g., REQj and REQk are both dropped from the channels) j and k
//  may have mutually inconsistent information: j.REQk lt REQj and
//  k.REQj lt REQk. Process j cannot enter CS because j.REQk lt REQj.
//  Likewise, k cannot enter. ... Therefore, the state of M has a deadlock."

template <typename Impl>
void build_section4_deadlock(Rig<Impl>& rig) {
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  // Both request messages dropped from the channels.
  rig.net.channel(0, 1).fault_clear();
  rig.net.channel(1, 0).fault_clear();
}

TEST(Section4, BareRicartAgrawalaDeadlocks) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/false);
  build_section4_deadlock(rig);
  rig.sched.run_until(100000);
  EXPECT_TRUE(rig.p(0).hungry());
  EXPECT_TRUE(rig.p(1).hungry());
  EXPECT_EQ(rig.net.in_flight(), 0u);  // nothing will ever move again
}

TEST(Section4, BareLamportDeadlocks) {
  Rig<me::LamportMe> rig(/*wrapped=*/false);
  build_section4_deadlock(rig);
  rig.sched.run_until(100000);
  EXPECT_TRUE(rig.p(0).hungry());
  EXPECT_TRUE(rig.p(1).hungry());
}

TEST(Section4, WrapperBreaksRicartAgrawalaDeadlock) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  build_section4_deadlock(rig);
  rig.sched.run_until(200);
  // The earlier request (process 0, pid tiebreak) won.
  EXPECT_TRUE(rig.p(0).eating());
  EXPECT_TRUE(rig.p(1).hungry());
  rig.p(0).release_cs();
  rig.sched.run_until(400);
  EXPECT_TRUE(rig.p(1).eating());
}

TEST(Section4, WrapperBreaksLamportDeadlock) {
  Rig<me::LamportMe> rig(/*wrapped=*/true);
  build_section4_deadlock(rig);
  rig.sched.run_until(200);
  EXPECT_TRUE(rig.p(0).eating());
  rig.p(0).release_cs();
  rig.sched.run_until(400);
  EXPECT_TRUE(rig.p(1).eating());
}

TEST(Section4, RecoveryTimeScalesWithTimeoutPeriod) {
  // W' with larger delta recovers later: measure time-to-first-entry.
  auto recovery_time = [](SimTime period) {
    Rig<me::RicartAgrawala> rig(/*wrapped=*/true, period);
    build_section4_deadlock(rig);
    SimTime entered = 0;
    while (rig.sched.step()) {
      if (rig.p(0).eating() || rig.p(1).eating()) {
        entered = rig.sched.now();
        break;
      }
    }
    return entered;
  };
  const SimTime fast = recovery_time(5);
  const SimTime slow = recovery_time(200);
  EXPECT_GT(fast, 0u);
  EXPECT_GT(slow, fast);
}

// --- Mutually inconsistent views without message loss -------------------------

TEST(MutualInconsistency, CorruptedLowViewsDeadlockBare) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/false);
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.sched.run_all();
  // One of them ate; force both back to a hungry, mutually-stale state.
  rig.p(0).fault_set_state(TmeState::kHungry);
  rig.p(1).fault_set_state(TmeState::kHungry);
  rig.p(0).fault_set_req(clk::Timestamp{100, 0});
  rig.p(1).fault_set_req(clk::Timestamp{100, 1});
  rig.p(0).fault_set_view(1, clk::Timestamp{1, 1});   // j.REQk lt REQj
  rig.p(1).fault_set_view(0, clk::Timestamp{1, 0});   // k.REQj lt REQk
  rig.sched.run_until(rig.sched.now() + 50000);
  rig.p(0).poll();
  rig.p(1).poll();
  EXPECT_TRUE(rig.p(0).hungry());
  EXPECT_TRUE(rig.p(1).hungry());
}

TEST(MutualInconsistency, WrapperRepairsCorruptedLowViews) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  rig.p(0).fault_set_state(TmeState::kHungry);
  rig.p(1).fault_set_state(TmeState::kHungry);
  rig.p(0).fault_set_req(clk::Timestamp{100, 0});
  rig.p(1).fault_set_req(clk::Timestamp{100, 1});
  rig.p(0).fault_set_view(1, clk::Timestamp{1, 1});
  rig.p(1).fault_set_view(0, clk::Timestamp{1, 0});
  rig.sched.run_until(300);
  EXPECT_TRUE(rig.p(0).eating());  // {100,0} lt {100,1}: 0 wins
  rig.p(0).release_cs();
  rig.sched.run_until(600);
  EXPECT_TRUE(rig.p(1).eating());
}

TEST(MutualInconsistency, WrapperSendsNothingWhenViewsConsistent) {
  // Refinement check at system level: consistent hungry states produce no
  // wrapper traffic even with the timer running.
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  rig.p(0).request_cs();
  rig.sched.run_until(50);
  ASSERT_TRUE(rig.p(0).eating());  // hungry phase passed, views consistent
  const auto wrapper_msgs = rig.net.sent_by_wrapper();
  rig.sched.run_until(rig.sched.now() + 1000);
  EXPECT_EQ(rig.net.sent_by_wrapper(), wrapper_msgs);
}

// --- Clock corruption ---------------------------------------------------------

TEST(ClockCorruption, HugeClockPropagatesWithoutStall) {
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  rig.p(0).fault_set_clock(1'000'000'000);
  rig.p(0).request_cs();
  rig.sched.run_until(100);
  EXPECT_TRUE(rig.p(0).eating());
  rig.p(0).release_cs();
  rig.p(1).request_cs();
  rig.sched.run_until(200);
  EXPECT_TRUE(rig.p(1).eating());
  EXPECT_GT(rig.p(1).req().counter, 1'000'000'000u);
}

TEST(ClockCorruption, HungryWithHugeReqIsEventuallyServed) {
  Rig<me::LamportMe> rig(/*wrapped=*/true);
  rig.p(0).fault_set_state(TmeState::kHungry);
  rig.p(0).fault_set_req(clk::Timestamp{1'000'000'000, 0});
  rig.sched.run_until(500);
  rig.p(0).poll();
  EXPECT_TRUE(rig.p(0).eating());
}

// --- Corrupted-high views: the one-extra-violation heal --------------------------

TEST(CorruptedHighView, TransientDoubleEntryThenHeals) {
  // j's view of k corrupted high: j enters without k's reply. If k is
  // eating, ME1 is briefly violated; the violation cannot recur after the
  // heal (j sees k's genuine request).
  Rig<me::RicartAgrawala> rig(/*wrapped=*/true);
  rig.p(1).request_cs();
  rig.sched.run_until(50);
  ASSERT_TRUE(rig.p(1).eating());
  rig.p(0).fault_set_view(1, clk::Timestamp{1'000'000, 1});
  rig.p(0).request_cs();  // enters immediately on the corrupt belief
  EXPECT_TRUE(rig.p(0).eating());
  EXPECT_TRUE(rig.p(1).eating());  // ME1 violated...
  rig.p(0).release_cs();
  rig.p(1).release_cs();
  rig.sched.run_until(200);
  // ...but the views have healed: a new contention round is exclusive.
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.sched.run_until(400);
  EXPECT_EQ((rig.p(0).eating() ? 1 : 0) + (rig.p(1).eating() ? 1 : 0), 1);
}

// --- The same Section 4 script, driven through the engine ---------------------

TEST(Section4, EngineGridReproducesTheDeadlockVerdicts) {
  // The scripted deadlock as a four-cell engine grid (algorithm x wrapped),
  // run with two workers: the scripted_fault callable is shared by
  // concurrent trials, capturing nothing and touching only the harness it
  // is handed — the thread-safety contract RunSpec documents.
  core::FaultScenario scenario;
  scenario.warmup = 100;
  scenario.observation = 8000;
  scenario.drain = 6000;
  scenario.scripted_fault = [](core::SystemHarness& h) {
    h.process(0).request_cs();
    h.process(1).request_cs();
    for (ProcessId to = 0; to < h.network().size(); ++to) {
      if (to != 0) h.network().channel(0, to).fault_clear();
      if (to != 1) h.network().channel(1, to).fault_clear();
    }
  };

  core::SpecGrid grid;
  for (const core::Algorithm algo :
       {core::Algorithm::kRicartAgrawala, core::Algorithm::kLamport}) {
    for (const bool wrapped : {false, true}) {
      core::HarnessConfig config;
      config.n = 3;
      config.algorithm = algo;
      config.wrapped = wrapped;
      config.wrapper.resend_period = 20;
      config.client.wants_cs = false;  // scripted requests only
      config.seed = 7;
      grid.add(std::string(core::to_string(algo)) +
                   (wrapped ? "/wrapped" : "/bare"),
               config, scenario, 1);
    }
  }
  const core::GridResult result =
      core::ExperimentEngine(core::EngineOptions{.jobs = 2}).run(grid);

  for (const char* algo : {"ricart-agrawala", "lamport"}) {
    const core::RepeatedResult& bare =
        result.cell(std::string(algo) + "/bare").result;
    const core::RepeatedResult& wrapped =
        result.cell(std::string(algo) + "/wrapped").result;
    EXPECT_EQ(bare.stabilized, 0u) << algo;    // deadlocked forever
    EXPECT_EQ(bare.starved, 1u) << algo;
    EXPECT_TRUE(wrapped.all_stabilized()) << algo;
    EXPECT_GE(wrapped.cs_entries.sum(), 2.0) << algo;
  }
}

}  // namespace
}  // namespace graybox
