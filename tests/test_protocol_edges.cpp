// Protocol edge cases under message-level anomalies: duplication, stale
// replays, and cross-ordering that the fault model can produce. Handlers
// must stay total and the healing rules must not overreact to replayed
// evidence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/lamport.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::me {
namespace {

template <typename Impl>
class EdgeRig {
 public:
  EdgeRig() : net(sched, 3, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<Impl>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }
  Impl& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sched.run_all(); }

  net::Message msg(net::MsgType type, ProcessId from, ProcessId to,
                   clk::Timestamp ts) {
    net::Message m;
    m.type = type;
    m.from = from;
    m.to = to;
    m.ts = ts;
    return m;
  }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<Impl>> procs;
};

// --- Ricart-Agrawala ---------------------------------------------------------

using RaEdge = EdgeRig<RicartAgrawala>;

TEST(RaEdges, DuplicatedRequestGetsDuplicatedReplyHarmlessly) {
  RaEdge rig;
  rig.p(1).request_cs();
  const auto req1 = rig.p(1).req();
  rig.settle();
  const auto replies_before = rig.net.sent_of_type(net::MsgType::kReply);
  // Replay 1's original request at 0 (duplication fault).
  rig.p(0).on_message(
      rig.msg(net::MsgType::kRequest, 1, 0, req1));
  rig.settle();
  // 0 answered again (Reply Spec: each received earlier request is
  // answered); 1's state is unaffected by the extra reply.
  EXPECT_GT(rig.net.sent_of_type(net::MsgType::kReply), replies_before);
  EXPECT_TRUE(rig.p(1).eating());
  rig.p(1).release_cs();
  rig.settle();
  EXPECT_TRUE(rig.p(1).thinking());
}

TEST(RaEdges, StaleReplayedRequestIsOvertakenByNextGenuineOne) {
  RaEdge rig;
  // Full cycle by 1 so 0 holds 1's old request timestamp.
  rig.p(1).request_cs();
  const auto old_req = rig.p(1).req();
  rig.settle();
  rig.p(1).release_cs();
  rig.settle();
  // Replay the stale request: 0's view of 1 temporarily regresses...
  rig.p(0).on_message(rig.msg(net::MsgType::kRequest, 1, 0, old_req));
  EXPECT_EQ(rig.p(0).view_of(1), old_req);
  // ...and the next genuine request overwrites it (direct assignment).
  rig.p(1).request_cs();
  const auto new_req = rig.p(1).req();
  rig.settle();
  EXPECT_EQ(rig.p(0).view_of(1), new_req);
  EXPECT_TRUE(clk::lt(old_req, new_req));
}

TEST(RaEdges, ReplayedStaleReplyCannotUnblockEarlierRequest) {
  RaEdge rig;
  // 0 and 1 contend; 0 wins (earlier timestamp).
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.settle();
  ASSERT_TRUE(rig.p(0).eating());
  ASSERT_TRUE(rig.p(1).hungry());
  // Replay 0's pre-contention reply to 1 (a stale "go ahead"): its
  // timestamp is below 1's request, so it cannot satisfy knows_earlier.
  rig.p(1).on_message(
      rig.msg(net::MsgType::kReply, 0, 1, clk::Timestamp{1, 0}));
  rig.p(1).poll();
  EXPECT_TRUE(rig.p(1).hungry());  // still correctly blocked
}

TEST(RaEdges, SimultaneousContentionAmongThree) {
  RaEdge rig;
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.p(2).request_cs();
  // All three have counter 1; pid breaks ties: order must be 0, 1, 2.
  for (ProcessId expected = 0; expected < 3; ++expected) {
    rig.settle();
    for (ProcessId pid = 0; pid < 3; ++pid) {
      EXPECT_EQ(rig.p(pid).eating(), pid == expected) << "round " << expected;
    }
    rig.p(expected).release_cs();
  }
  rig.settle();
  for (ProcessId pid = 0; pid < 3; ++pid) EXPECT_TRUE(rig.p(pid).thinking());
}

// --- Lamport --------------------------------------------------------------------

using LamportEdge = EdgeRig<LamportMe>;

TEST(LamportEdges, DuplicateReleaseIsIdempotent) {
  LamportEdge rig;
  rig.p(0).request_cs();
  rig.settle();
  rig.p(0).release_cs();
  rig.settle();
  const auto release_ts = rig.p(0).req();
  ASSERT_TRUE(rig.p(1).queue().empty());
  // Replayed release: nothing left to retire, no crash, queue unchanged.
  rig.p(1).on_message(rig.msg(net::MsgType::kRelease, 0, 1, release_ts));
  EXPECT_TRUE(rig.p(1).queue().empty());
}

TEST(LamportEdges, LateReleaseCannotRetireNewerRequest) {
  LamportEdge rig;
  // Cycle 1: request + release, but hold the release's timestamp.
  rig.p(0).request_cs();
  rig.settle();
  rig.p(0).release_cs();
  rig.settle();
  const auto old_release_ts = rig.p(0).req();
  // Cycle 2's request lands at 1...
  rig.p(0).request_cs();
  const auto new_req = rig.p(0).req();
  rig.settle();
  bool found = false;
  for (const auto& e : rig.p(1).queue())
    if (e.pid == 0 && e.ts == new_req) found = true;
  ASSERT_TRUE(found);
  // ...and a duplicated OLD release arrives late: the newer entry stays
  // (retirement only removes entries strictly older than the evidence).
  rig.p(1).on_message(
      rig.msg(net::MsgType::kRelease, 0, 1, old_release_ts));
  found = false;
  for (const auto& e : rig.p(1).queue())
    if (e.pid == 0 && e.ts == new_req) found = true;
  EXPECT_TRUE(found);
}

TEST(LamportEdges, ReplayedOldRequestRegressesThenHeals) {
  LamportEdge rig;
  rig.p(0).request_cs();
  const auto old_req = rig.p(0).req();
  rig.settle();
  rig.p(0).release_cs();
  rig.settle();
  // Replay the old request: modification 1 (one entry per process) admits
  // it as 0's "current" request...
  rig.p(1).on_message(rig.msg(net::MsgType::kRequest, 0, 1, old_req));
  EXPECT_EQ(rig.p(1).view_of(0), old_req);
  // ...but the reply that 1 just sent is answered by nothing; the heal
  // comes from 0's next genuine request replacing the entry.
  rig.p(0).request_cs();
  const auto new_req = rig.p(0).req();
  rig.settle();
  EXPECT_EQ(rig.p(1).view_of(0), new_req);
  EXPECT_TRUE(rig.p(0).eating());
}

TEST(LamportEdges, RequestArrivingDuringEatingDefersViaQueue) {
  LamportEdge rig;
  rig.p(0).request_cs();
  rig.settle();
  ASSERT_TRUE(rig.p(0).eating());
  rig.p(1).request_cs();
  rig.settle();
  // 1 is doubly blocked: by 0's queue entry, and by the grant — 0's reply
  // carries its (earlier) outstanding REQ, which cannot acknowledge a
  // later request. The idle peer 2 grants immediately.
  EXPECT_TRUE(rig.p(1).hungry());
  EXPECT_FALSE(rig.p(1).granted(0));
  EXPECT_TRUE(rig.p(1).granted(2));
  // The release message carries 0's fresh post-release REQ: it retires the
  // queue entry AND supplies the grant in one stroke.
  rig.p(0).release_cs();
  rig.settle();
  EXPECT_TRUE(rig.p(1).eating());
}

TEST(LamportEdges, SimultaneousContentionAmongThree) {
  LamportEdge rig;
  rig.p(0).request_cs();
  rig.p(1).request_cs();
  rig.p(2).request_cs();
  for (ProcessId expected = 0; expected < 3; ++expected) {
    rig.settle();
    for (ProcessId pid = 0; pid < 3; ++pid) {
      EXPECT_EQ(rig.p(pid).eating(), pid == expected) << "round " << expected;
    }
    rig.p(expected).release_cs();
  }
  rig.settle();
  for (ProcessId pid = 0; pid < 3; ++pid) {
    EXPECT_TRUE(rig.p(pid).thinking());
    EXPECT_TRUE(rig.p(pid).queue().empty());
  }
}

}  // namespace
}  // namespace graybox::me
