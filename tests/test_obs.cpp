// The observability layer: typed EventBus (ring + exact aggregates),
// metrics registry and its engine-side aggregate fold, stabilization
// timelines, and the Perfetto export — plus the load-bearing guarantees
// that (a) every exported metric/timeline artifact is byte-identical
// across --jobs values and repeated runs, and (b) the two timeline
// derivations (live harness state vs. bus aggregates) agree.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/report.hpp"
#include "core/engine.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_injector.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeline.hpp"
#include "sim/scheduler.hpp"

namespace graybox {
namespace {

using obs::Event;
using obs::EventBus;
using obs::EventKind;

// --- EventBus: ring, aggregates, rendering -----------------------------------

Event send_event(ProcessId from, ProcessId to, std::uint64_t counter = 0) {
  Event e;
  e.kind = EventKind::kSend;
  e.pid = from;
  e.peer = to;
  e.payload = counter;
  return e;
}

TEST(EventBus, StampsSchedulerTimeAndRetainsOldestFirst) {
  sim::Scheduler sched;
  EventBus bus(sched, 16);
  EXPECT_TRUE(bus.enabled());
  for (const SimTime t : {3, 7, 7, 12}) {
    sched.schedule_after(t - sched.now(),
                         [&bus] { bus.record(send_event(0, 1)); });
    while (sched.step()) {
    }
  }
  ASSERT_EQ(bus.size(), 4u);
  EXPECT_EQ(bus.total_recorded(), 4u);
  const SimTime expected[] = {3, 7, 7, 12};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(bus.event(i).time, expected[i]) << i;
  }
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).count, 4u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).first, 3u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).last, 12u);
  EXPECT_EQ(bus.kind_stats(EventKind::kDeliver).count, 0u);
  EXPECT_EQ(bus.kind_stats(EventKind::kDeliver).first, kNever);
}

TEST(EventBus, DisabledBusRecordsNothing) {
  sim::Scheduler sched;
  EventBus bus(sched, 0);
  EXPECT_FALSE(bus.enabled());
  bus.record(send_event(0, 1));
  bus.record(send_event(1, 0));
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_recorded(), 0u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).count, 0u);
}

TEST(EventBus, RingEvictsOldestButAggregatesStayExact) {
  sim::Scheduler sched;
  EventBus bus(sched, 3);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    sched.schedule_after(1, [&bus, i] { bus.record(send_event(0, 1, i)); });
    while (sched.step()) {
    }
  }
  // Only the last 3 are retained...
  ASSERT_EQ(bus.size(), 3u);
  EXPECT_EQ(bus.event(0).payload, 8u);
  EXPECT_EQ(bus.event(1).payload, 9u);
  EXPECT_EQ(bus.event(2).payload, 10u);
  // ...but counts and first/last survive eviction exactly.
  EXPECT_EQ(bus.total_recorded(), 10u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).count, 10u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).first, 1u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).last, 10u);
}

TEST(EventBus, PerMonitorAndPerFaultAggregates) {
  sim::Scheduler sched;
  EventBus bus(sched, 8);
  bus.set_monitor_names({"ME1", "ME2"});
  bus.set_fault_kind_names(net::fault_kind_names());
  ASSERT_EQ(bus.monitor_stats().size(), 2u);
  // The name table covers the injector's kinds plus the lifecycle codes
  // (crash/recover/partition/heal) the harness records.
  ASSERT_EQ(bus.fault_stats().size(), net::kFaultCodeCount);

  auto at = [&](SimTime delay, Event e) {
    sched.schedule_after(delay, [&bus, e] { bus.record(e); });
    while (sched.step()) {
    }
  };
  Event v;
  v.kind = EventKind::kMonitorViolation;
  v.monitor = 1;
  at(5, v);
  at(2, v);  // t = 7
  Event f;
  f.kind = EventKind::kFaultInjected;
  f.a = static_cast<std::uint8_t>(net::FaultKind::kChannelClear);
  at(1, f);  // t = 8

  EXPECT_EQ(bus.monitor_stats()[0].count, 0u);
  EXPECT_EQ(bus.monitor_stats()[1].count, 2u);
  EXPECT_EQ(bus.monitor_stats()[1].first, 5u);
  EXPECT_EQ(bus.monitor_stats()[1].last, 7u);
  const auto clear = static_cast<std::size_t>(net::FaultKind::kChannelClear);
  EXPECT_EQ(bus.fault_stats()[clear].count, 1u);
  EXPECT_EQ(bus.fault_stats()[clear].first, 8u);
}

TEST(EventBus, ClearResetsRingAndAggregates) {
  sim::Scheduler sched;
  EventBus bus(sched, 4);
  bus.set_monitor_names({"ME1"});
  Event v;
  v.kind = EventKind::kMonitorViolation;
  v.monitor = 0;
  bus.record(v);
  bus.record(send_event(0, 1));
  ASSERT_EQ(bus.size(), 2u);
  bus.clear();
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_recorded(), 0u);
  EXPECT_EQ(bus.kind_stats(EventKind::kSend).count, 0u);
  EXPECT_EQ(bus.monitor_stats()[0].count, 0u);
  // The bus remains usable after clear().
  bus.record(send_event(2, 3));
  EXPECT_EQ(bus.size(), 1u);
  EXPECT_EQ(bus.total_recorded(), 1u);
}

TEST(EventBus, RenderMatchesLegacyTraceText) {
  sim::Scheduler sched;
  EventBus bus(sched, 4);
  bus.set_monitor_names({"ME1"});
  bus.set_fault_kind_names(net::fault_kind_names());

  Event send = send_event(0, 1, 5);
  send.a = 0;  // request
  send.aux = 0;
  EXPECT_EQ(bus.render(send), "send request(5.0) 0->1");
  send.flags = Event::kFromWrapper;
  EXPECT_EQ(bus.render(send), "send request(5.0) 0->1 [wrapper]");

  Event recv = send_event(1, 0, 3);
  recv.kind = EventKind::kDeliver;
  recv.a = 1;  // reply
  recv.aux = 2;
  EXPECT_EQ(bus.render(recv), "recv reply(3.2) 1->0");

  Event drop;
  drop.kind = EventKind::kDrop;
  drop.payload = 4;
  EXPECT_EQ(bus.render(drop), "drop 4 message(s)");

  Event step;
  step.kind = EventKind::kLocalStep;
  step.pid = 0;
  step.a = 0;  // thinking
  step.b = 1;  // hungry
  EXPECT_EQ(bus.render(step), "proc 0: thinking -> hungry");

  Event fault;
  fault.kind = EventKind::kFaultInjected;
  fault.a = static_cast<std::uint8_t>(net::FaultKind::kProcessCorrupt);
  fault.pid = 2;
  EXPECT_EQ(bus.render(fault),
            std::string("fault ") +
                net::to_string(net::FaultKind::kProcessCorrupt) + " @proc 2");

  Event resend;
  resend.kind = EventKind::kWrapperCorrection;
  resend.pid = 1;
  resend.peer = 3;
  EXPECT_EQ(bus.render(resend), "wrapper 1: resend REQ to 3");

  Event viol;
  viol.kind = EventKind::kMonitorViolation;
  viol.monitor = 0;
  EXPECT_EQ(bus.render(viol), "violation ME1");
  viol.monitor = 9;  // out of table
  EXPECT_EQ(bus.render(viol), "violation monitor#9");
}

TEST(EventBus, RendersAllElevenFaultCodeNames) {
  // Golden text for the full fault-code space: injector kinds 0-6 plus the
  // lifecycle codes 7-10. Pinned in one place so a renamed code shows up as
  // a test diff, not as a silently relabeled trace.
  const char* const kGolden[net::kFaultCodeCount] = {
      "message-drop",   "message-duplicate", "message-corrupt",
      "message-reorder", "spurious-message", "process-corrupt",
      "channel-clear",  "process-crash",     "process-recover",
      "partition",      "partition-heal"};
  sim::Scheduler sched;
  // The harness path registers net's table; a hand-wired bus has none and
  // must fall back to the builtin table. Both must agree with net's names.
  EventBus registered(sched, 4);
  registered.set_fault_kind_names(net::fault_kind_names());
  EventBus bare(sched, 4);
  for (std::uint8_t code = 0; code < net::kFaultCodeCount; ++code) {
    Event f;
    f.kind = EventKind::kFaultInjected;
    f.a = code;
    const std::string expected = std::string("fault ") + kGolden[code];
    EXPECT_EQ(registered.render(f), expected) << unsigned{code};
    EXPECT_EQ(bare.render(f), expected) << unsigned{code};
    EXPECT_STREQ(net::fault_code_name(code), kGolden[code]);
    EXPECT_STREQ(obs::fault_code_builtin_name(code), kGolden[code]);
  }
  // Past both tables: numeric fallback, never a null or a stale label.
  Event f;
  f.kind = EventKind::kFaultInjected;
  f.a = 42;
  EXPECT_EQ(bare.render(f), "fault fault#42");
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, Pow2BoundsShape) {
  const auto bounds = obs::Histogram::pow2_bounds(4);
  const std::vector<std::uint64_t> expected = {0, 1, 2, 4, 8, 16};
  EXPECT_EQ(bounds, expected);
}

TEST(Histogram, BucketAssignmentAndMoments) {
  obs::Histogram h(obs::Histogram::pow2_bounds(3));  // 0,1,2,4,8 + overflow
  ASSERT_EQ(h.buckets().size(), 6u);
  for (const std::uint64_t v : {0u, 0u, 1u, 2u, 3u, 4u, 8u, 9u, 100u}) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 127u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 127.0 / 9.0);
  // Bucket i counts values in (bounds[i-1], bounds[i]].
  EXPECT_EQ(h.buckets()[0], 2u);  // <= 0
  EXPECT_EQ(h.buckets()[1], 1u);  // 1
  EXPECT_EQ(h.buckets()[2], 1u);  // 2
  EXPECT_EQ(h.buckets()[3], 2u);  // 3..4
  EXPECT_EQ(h.buckets()[4], 1u);  // 5..8
  EXPECT_EQ(h.buckets()[5], 2u);  // overflow: 9, 100
}

TEST(Histogram, EmptyIsWellDefined) {
  obs::Histogram h({10, 20});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateAndSnapshotOrder) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("zebra").inc(3);
  reg.gauge("alpha").set(-5);
  reg.gauge("alpha").set(9);
  reg.histogram("wait", obs::Histogram::pow2_bounds(2)).observe(3);
  reg.counter("zebra").inc();  // same instrument, not a new entry
  EXPECT_EQ(reg.size(), 3u);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Registration order, not alphabetical.
  EXPECT_EQ(snap[0].name, "zebra");
  EXPECT_EQ(snap[0].kind, obs::MetricSample::Kind::kCounter);
  EXPECT_EQ(snap[0].value, 4);
  EXPECT_EQ(snap[1].name, "alpha");
  EXPECT_EQ(snap[1].kind, obs::MetricSample::Kind::kGauge);
  EXPECT_EQ(snap[1].value, 9);
  EXPECT_EQ(snap[2].name, "wait");
  EXPECT_EQ(snap[2].kind, obs::MetricSample::Kind::kHistogram);
  EXPECT_EQ(snap[2].value, 1);  // observation count
  EXPECT_EQ(snap[2].sum, 3u);
  ASSERT_EQ(snap[2].buckets.size(), snap[2].bounds.size() + 1);
}

TEST(Gauge, TracksWatermarks) {
  obs::Gauge g;
  EXPECT_FALSE(g.ever_set());
  g.set(5);
  g.set(-2);
  g.set(3);
  EXPECT_TRUE(g.ever_set());
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.low(), -2);
  EXPECT_EQ(g.high(), 5);
}

TEST(MetricsSnapshotJson, CarriesEveryInstrument) {
  obs::MetricsRegistry reg;
  reg.counter("sends").inc(7);
  reg.histogram("depth", {1, 2}).observe(2);
  const std::string text =
      obs::metrics_snapshot_to_json(reg.snapshot()).dump();
  EXPECT_NE(text.find("\"sends\""), std::string::npos);
  EXPECT_NE(text.find("\"depth\""), std::string::npos);
  EXPECT_NE(text.find("\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"histogram\""), std::string::npos);
}

// --- MetricsAggregate: the engine's fold -------------------------------------

obs::MetricsSnapshot fake_trial_snapshot(std::uint64_t seed) {
  obs::MetricsRegistry reg;
  reg.counter("cs").inc(10 + seed);
  auto& h = reg.histogram("wait", obs::Histogram::pow2_bounds(3));
  for (std::uint64_t v = 0; v <= seed; ++v) h.observe(v);
  return reg.snapshot();
}

TEST(MetricsAggregate, SplitMergeEqualsSequentialFold) {
  obs::MetricsAggregate serial;
  for (std::uint64_t s = 0; s < 6; ++s) serial.add(fake_trial_snapshot(s));

  obs::MetricsAggregate left, right;
  for (std::uint64_t s = 0; s < 3; ++s) left.add(fake_trial_snapshot(s));
  for (std::uint64_t s = 3; s < 6; ++s) right.add(fake_trial_snapshot(s));
  left.merge(right);

  // Same fold, byte for byte — the engine's jobs-independence argument.
  EXPECT_EQ(left.to_json().dump(), serial.to_json().dump());

  obs::MetricsAggregate identity;
  identity.merge(serial);
  EXPECT_EQ(identity.to_json().dump(), serial.to_json().dump());
}

TEST(MetricsAggregate, JsonShape) {
  obs::MetricsAggregate agg;
  agg.add(fake_trial_snapshot(1));
  agg.add(fake_trial_snapshot(2));
  const std::string text = agg.to_json().dump(0);
  EXPECT_NE(text.find("\"cs\""), std::string::npos);
  EXPECT_NE(text.find("\"trials\":2"), std::string::npos);
  EXPECT_NE(text.find("\"mean\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\""), std::string::npos);
}

// --- Harness integration -----------------------------------------------------

core::HarnessConfig obs_config(std::uint64_t seed) {
  core::HarnessConfig config;
  config.n = 3;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = seed;
  return config;
}

// One short faulted run: warmup, burst, observation, drain.
void run_burst(core::SystemHarness& h, std::size_t burst = 8) {
  h.start();
  h.run_for(400);
  h.faults().burst(burst, net::FaultMix::all());
  h.run_for(2500);
  h.drain(2000);
}

TEST(HarnessMetrics, CollectedAndDeterministic) {
  core::HarnessConfig config = obs_config(42);
  config.collect_metrics = true;
  core::SystemHarness h(config);
  run_burst(h);
  const core::RunStats stats = h.stats();
  ASSERT_FALSE(stats.metrics.empty());

  std::uint64_t fault_counter_sum = 0;
  std::uint64_t violation_counter_sum = 0;
  std::uint64_t cs_wait_count = 0;
  bool saw_depth = false, saw_in_flight = false, saw_resends = false;
  for (const obs::MetricSample& s : stats.metrics) {
    if (s.name.rfind("faults.", 0) == 0) {
      fault_counter_sum += static_cast<std::uint64_t>(s.value);
    } else if (s.name.rfind("violations.", 0) == 0) {
      violation_counter_sum += static_cast<std::uint64_t>(s.value);
    } else if (s.name == "cs_wait_ticks") {
      cs_wait_count = static_cast<std::uint64_t>(s.value);
    } else if (s.name == "channel_queue_depth") {
      saw_depth = true;
    } else if (s.name == "net_in_flight") {
      saw_in_flight = true;
    } else if (s.name == "wrapper_resends") {
      saw_resends = s.value >= 0;
    }
  }
  // The pull counters mirror the authoritative component state exactly.
  EXPECT_EQ(fault_counter_sum, stats.faults_injected);
  EXPECT_EQ(violation_counter_sum, h.monitors().total_violations());
  // Every hungry -> eating entry recorded a wait; corruption-induced CS
  // entries (no hungry phase) legitimately record none.
  EXPECT_GT(stats.cs_entries, 0u);
  EXPECT_GT(cs_wait_count, 0u);
  EXPECT_LE(cs_wait_count, stats.cs_entries);
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_in_flight);
  EXPECT_TRUE(saw_resends);

  // Identical seed, fresh harness: byte-identical metrics artifact.
  core::SystemHarness h2(config);
  run_burst(h2);
  EXPECT_EQ(obs::metrics_snapshot_to_json(h2.stats().metrics).dump(),
            obs::metrics_snapshot_to_json(stats.metrics).dump());
}

TEST(HarnessTimeline, ConsistentWithStabilizationReport) {
  core::SystemHarness h(obs_config(7));
  run_burst(h);
  const core::StabilizationReport report = h.stabilization_report();
  const obs::StabilizationTimeline tl = h.timeline();

  EXPECT_EQ(tl.run_end, h.scheduler().now());
  EXPECT_GT(tl.faults_injected, 0u);
  EXPECT_EQ(tl.last_fault, report.last_fault);
  EXPECT_LE(tl.first_fault, tl.last_fault);

  // The timeline watches every monitor; the report only the safety subset.
  // Its divergent window can therefore only be wider than the report's
  // latency, never narrower.
  EXPECT_GE(tl.divergent_window(), report.latency);
  EXPECT_EQ(tl.clauses.size(), h.monitors().monitors().size());
  std::uint64_t clause_sum = 0;
  for (const obs::TimelineEntry& c : tl.clauses) clause_sum += c.count;
  EXPECT_EQ(clause_sum, tl.violations_total);
  EXPECT_EQ(tl.violations_total, h.monitors().total_violations());
  if (report.stabilized && tl.quiescent) {
    EXPECT_TRUE(tl.stabilized());
  }

  // Per-kind fault entries sum back to the burst total.
  std::uint64_t fault_sum = 0;
  for (const obs::TimelineEntry& f : tl.faults) fault_sum += f.count;
  EXPECT_EQ(fault_sum, tl.faults_injected);
  EXPECT_EQ(tl.faults_injected, h.faults().total_injected());

  // Rendering mentions every phase of the convergence story.
  const std::string text = tl.to_string();
  EXPECT_NE(text.find("fault burst:"), std::string::npos);
  EXPECT_NE(text.find("first violation:"), std::string::npos);
  EXPECT_NE(text.find("violation decay:"), std::string::npos);
  EXPECT_NE(text.find("divergent window:"), std::string::npos);
  EXPECT_NE(text.find("quiescence:"), std::string::npos);
  // And the JSON form is present and structurally sound.
  const report::Json doc = tl.to_json();
  EXPECT_TRUE(doc.contains("fault_burst"));
  EXPECT_TRUE(doc.contains("violations"));
  EXPECT_TRUE(doc.contains("divergent_window"));
}

TEST(HarnessTimeline, BusDerivationAgreesWithLiveState) {
  core::HarnessConfig config = obs_config(11);
  config.trace_capacity = 1u << 20;  // retain the whole run
  core::SystemHarness h(config);
  run_burst(h);

  const obs::StabilizationTimeline live = h.timeline();
  const obs::StabilizationTimeline from_bus = obs::timeline_from_bus(h.events());

  EXPECT_EQ(from_bus.run_end, live.run_end);
  EXPECT_EQ(from_bus.faults_injected, live.faults_injected);
  EXPECT_EQ(from_bus.first_fault, live.first_fault);
  EXPECT_EQ(from_bus.last_fault, live.last_fault);
  EXPECT_EQ(from_bus.violations_total, live.violations_total);
  EXPECT_EQ(from_bus.first_violation, live.first_violation);
  EXPECT_EQ(from_bus.last_violation, live.last_violation);
  EXPECT_EQ(from_bus.last_activity, live.last_activity);
  EXPECT_EQ(from_bus.divergent_window(), live.divergent_window());

  // Same per-clause decay, by name and by numbers.
  ASSERT_EQ(from_bus.clauses.size(), live.clauses.size());
  for (std::size_t i = 0; i < live.clauses.size(); ++i) {
    EXPECT_EQ(from_bus.clauses[i].name, live.clauses[i].name) << i;
    EXPECT_EQ(from_bus.clauses[i].count, live.clauses[i].count) << i;
    EXPECT_EQ(from_bus.clauses[i].first, live.clauses[i].first) << i;
    EXPECT_EQ(from_bus.clauses[i].last, live.clauses[i].last) << i;
  }
}

TEST(HarnessTimeline, BusAggregatesSurviveRingEviction) {
  // A pathologically tiny ring under sustained fault load: nearly every
  // event is evicted, but the bus's first/last aggregates are exact, so
  // the bus-derived timeline still equals the live-harness derivation.
  core::HarnessConfig config = obs_config(21);
  config.trace_capacity = 8;
  config.fault_process.drop_mean = 150;
  config.fault_process.corrupt_mean = 150;
  config.fault_process.process_corrupt_mean = 300;
  config.fault_process.start = 400;
  config.fault_process.end = 2900;
  core::SystemHarness h(config);
  h.start();
  h.run_for(2900);
  h.drain(2000);

  ASSERT_EQ(h.events().size(), 8u);  // only the tail is retained...
  EXPECT_GT(h.events().total_recorded(), 1000u);  // ...of a long run

  const obs::StabilizationTimeline live = h.timeline();
  const obs::StabilizationTimeline from_bus =
      obs::timeline_from_bus(h.events());
  EXPECT_EQ(from_bus.run_end, live.run_end);
  EXPECT_EQ(from_bus.faults_injected, live.faults_injected);
  EXPECT_EQ(from_bus.first_fault, live.first_fault);
  EXPECT_EQ(from_bus.last_fault, live.last_fault);
  EXPECT_EQ(from_bus.violations_total, live.violations_total);
  EXPECT_EQ(from_bus.first_violation, live.first_violation);
  EXPECT_EQ(from_bus.last_violation, live.last_violation);
  EXPECT_EQ(from_bus.last_activity, live.last_activity);
  EXPECT_EQ(from_bus.divergent_window(), live.divergent_window());
  ASSERT_EQ(from_bus.clauses.size(), live.clauses.size());
  for (std::size_t i = 0; i < live.clauses.size(); ++i) {
    EXPECT_EQ(from_bus.clauses[i].name, live.clauses[i].name) << i;
    EXPECT_EQ(from_bus.clauses[i].count, live.clauses[i].count) << i;
    EXPECT_EQ(from_bus.clauses[i].first, live.clauses[i].first) << i;
    EXPECT_EQ(from_bus.clauses[i].last, live.clauses[i].last) << i;
  }
  ASSERT_EQ(from_bus.faults.size(), live.faults.size());
  for (std::size_t i = 0; i < live.faults.size(); ++i) {
    EXPECT_EQ(from_bus.faults[i].name, live.faults[i].name) << i;
    EXPECT_EQ(from_bus.faults[i].count, live.faults[i].count) << i;
    EXPECT_EQ(from_bus.faults[i].first, live.faults[i].first) << i;
    EXPECT_EQ(from_bus.faults[i].last, live.faults[i].last) << i;
  }
}

TEST(HarnessTrace, LazyViewPreservesLegacyFormat) {
  core::HarnessConfig config = obs_config(5);
  config.trace_capacity = 2048;
  core::SystemHarness h(config);
  h.start();
  h.run_for(500);

  const sim::Trace& trace = h.trace();
  ASSERT_GT(trace.size(), 0u);
  EXPECT_LE(trace.size(), 2048u);
  bool saw_send = false, saw_recv = false, saw_transition = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::string& text = trace.at(i).text;
    saw_send = saw_send || text.rfind("send ", 0) == 0;
    saw_recv = saw_recv || text.rfind("recv ", 0) == 0;
    saw_transition = saw_transition || text.rfind("proc ", 0) == 0;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_transition);

  // The view tracks the bus: more simulation, more (or newer) records.
  const std::uint64_t before = h.events().total_recorded();
  h.run_for(500);
  EXPECT_GT(h.events().total_recorded(), before);
  // The re-rendered view covers exactly the retained ring.
  EXPECT_EQ(h.trace().total_recorded(), h.events().size());
  EXPECT_EQ(h.trace().size(), h.events().size());

  // dump() keeps the legacy "[time] text" shape.
  std::ostringstream os;
  h.trace().dump(os, 5);
  EXPECT_EQ(os.str().front(), '[');
}

TEST(HarnessTrace, DisabledByDefault) {
  core::SystemHarness h(obs_config(5));
  h.start();
  h.run_for(300);
  EXPECT_FALSE(h.events().enabled());
  EXPECT_EQ(h.events().total_recorded(), 0u);
  EXPECT_TRUE(h.trace().empty());
  EXPECT_TRUE(h.stats().metrics.empty());
}

// --- Perfetto export ---------------------------------------------------------

TEST(Perfetto, ExportsValidTrackLayout) {
  core::HarnessConfig config = obs_config(13);
  config.trace_capacity = 1u << 20;
  core::SystemHarness h(config);
  run_burst(h);

  const report::Json doc = obs::perfetto_trace_json(h.events());
  ASSERT_TRUE(doc.contains("traceEvents"));
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_GT(doc.at("traceEvents").size(), 100u);

  const std::string text = doc.dump(0);
  // Track metadata for all three pids.
  EXPECT_NE(text.find("\"processes\""), std::string::npos);
  EXPECT_NE(text.find("\"network\""), std::string::npos);
  EXPECT_NE(text.find("\"monitors\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  // Metadata, instant, and complete events all present: a faulted run has
  // traffic instants and CS occupancy slices.
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"critical section\""), std::string::npos);
  EXPECT_NE(text.find("\"fault "), std::string::npos);

  // Deterministic: same seed, fresh run, identical artifact.
  core::SystemHarness h2(config);
  run_burst(h2);
  EXPECT_EQ(obs::perfetto_trace_json(h2.events()).dump(0), text);
}

// --- Engine artifacts: byte-identical across jobs ----------------------------

TEST(EngineMetrics, CellJsonByteIdenticalAcrossJobs) {
  core::FaultScenario scenario;
  scenario.warmup = 300;
  scenario.burst = 6;
  scenario.observation = 2500;
  scenario.drain = 2000;
  core::SpecGrid grid;
  grid.add("obs_cell", obs_config(1234), scenario, 6);

  const core::GridResult serial =
      core::ExperimentEngine(core::EngineOptions{.jobs = 1}).run(grid);
  const core::GridResult parallel =
      core::ExperimentEngine(core::EngineOptions{.jobs = 8}).run(grid);

  // The engine forces metrics collection per trial, so the artifact grows a
  // metrics section...
  const std::string full =
      core::grid_to_json("obs_smoke", serial).dump();
  EXPECT_NE(full.find("\"metrics\""), std::string::npos);
  EXPECT_NE(full.find("\"cs_wait_ticks\""), std::string::npos);
  EXPECT_NE(full.find("\"wrapper_resends\""), std::string::npos);

  // ...and that section — like everything else — is byte-identical between
  // --jobs 1 and --jobs 8 once the wall-clock lines are stripped.
  const std::string a = report::strip_volatile_lines(
      core::grid_to_json("obs_smoke", serial).dump());
  const std::string b = report::strip_volatile_lines(
      core::grid_to_json("obs_smoke", parallel).dump());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace graybox
