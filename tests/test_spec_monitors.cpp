// Unit tests for the generic UNITY monitor framework, driven with a simple
// integer snapshot type.
#include <gtest/gtest.h>

#include "spec/monitor.hpp"
#include "spec/unity.hpp"

namespace graybox::spec {
namespace {

struct IntState {
  int x = 0;
};

using Set = MonitorSet<IntState>;

void feed(Set& set, std::initializer_list<int> values, SimTime start = 0) {
  SimTime t = start;
  for (const int v : values) set.observe(t++, IntState{v});
}

Pred<IntState> equals(int v) {
  return [v](const IntState& s) { return s.x == v; };
}
Pred<IntState> at_least(int v) {
  return [v](const IntState& s) { return s.x >= v; };
}

// --- Unless ---------------------------------------------------------------

TEST(UnlessMonitor, HoldsWhenPPersists) {
  Set set;
  auto& m = set.add<UnlessMonitor<IntState>>("u", at_least(1), equals(99));
  feed(set, {1, 2, 3});
  EXPECT_TRUE(m.clean());
}

TEST(UnlessMonitor, HoldsWhenQTakesOver) {
  Set set;
  auto& m = set.add<UnlessMonitor<IntState>>("u", equals(1), equals(99));
  feed(set, {1, 99, 0});
  EXPECT_TRUE(m.clean());
}

TEST(UnlessMonitor, ViolatedWhenBothFall) {
  Set set;
  auto& m = set.add<UnlessMonitor<IntState>>("u", equals(1), equals(99));
  feed(set, {1, 5});
  EXPECT_FALSE(m.clean());
  EXPECT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.last_violation(), 1u);
}

TEST(UnlessMonitor, NotTriggeredWhenPNeverHolds) {
  Set set;
  auto& m = set.add<UnlessMonitor<IntState>>("u", equals(1), equals(99));
  feed(set, {5, 6, 7});
  EXPECT_TRUE(m.clean());
}

TEST(UnlessMonitor, QAlreadyTrueDisablesObligation) {
  // p /\ q in the current state: "p unless q" says nothing about the next.
  Set set;
  auto& m = set.add<UnlessMonitor<IntState>>("u", at_least(99), equals(99));
  feed(set, {99, 0});
  EXPECT_TRUE(m.clean());
}

// --- Stable ----------------------------------------------------------------

TEST(StableMonitor, CleanWhilePredicatePersists) {
  Set set;
  auto& m = set.add<StableMonitor<IntState>>("s", at_least(1));
  feed(set, {0, 1, 2, 3});
  EXPECT_TRUE(m.clean());
}

TEST(StableMonitor, ViolatedWhenPredicateFalls) {
  Set set;
  auto& m = set.add<StableMonitor<IntState>>("s", at_least(2));
  feed(set, {3, 4, 1});
  EXPECT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.last_violation(), 2u);
}

TEST(StableMonitor, EachFallReported) {
  Set set;
  auto& m = set.add<StableMonitor<IntState>>("s", at_least(2));
  feed(set, {3, 1, 3, 1});
  EXPECT_EQ(m.total_violations(), 2u);
}

// --- Invariant ----------------------------------------------------------------

TEST(InvariantMonitor, ChecksFirstState) {
  Set set;
  auto& m = set.add<InvariantMonitor<IntState>>("i", at_least(1));
  feed(set, {0});
  EXPECT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.first_violation(), 0u);
}

TEST(InvariantMonitor, ChecksEveryState) {
  Set set;
  auto& m = set.add<InvariantMonitor<IntState>>("i", at_least(1));
  feed(set, {1, 0, 1, 0});
  EXPECT_EQ(m.total_violations(), 2u);
}

TEST(InvariantMonitor, CleanRun) {
  Set set;
  auto& m = set.add<InvariantMonitor<IntState>>("i", at_least(0));
  feed(set, {0, 5, 3});
  EXPECT_TRUE(m.clean());
}

// --- LeadsTo -------------------------------------------------------------------

TEST(LeadsToMonitor, DischargedObligationIsClean) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {0, 1, 0, 2});
  set.finish(10);
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(m.discharged(), 1u);
}

TEST(LeadsToMonitor, UndischargedReportedAtOpenTime) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {0, 0, 1, 0});
  set.finish(10);
  EXPECT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.last_violation(), 2u);  // time p first held
}

TEST(LeadsToMonitor, PAndQSimultaneouslyDischarges) {
  // "then or later" includes "then": a state satisfying both opens and
  // immediately discharges.
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", at_least(2), at_least(2));
  feed(set, {0, 5});
  set.finish(10);
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(m.discharged(), 1u);
}

TEST(LeadsToMonitor, RepeatedCycles) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {1, 2, 1, 2, 1, 2});
  set.finish(10);
  EXPECT_EQ(m.discharged(), 3u);
  EXPECT_TRUE(m.clean());
}

TEST(LeadsToMonitor, ObligationOpenQuery) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {0, 1});
  EXPECT_TRUE(m.obligation_open());
  feed(set, {2}, 2);
  EXPECT_FALSE(m.obligation_open());
}

TEST(LeadsToMonitor, BeginStateCanOpen) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {1});
  EXPECT_TRUE(m.obligation_open());
  set.finish(5);
  EXPECT_EQ(m.total_violations(), 1u);
}

// --- LeadsToAlways -----------------------------------------------------------

TEST(LeadsToAlwaysMonitor, CleanWhenQReachedAndStable) {
  Set set;
  auto& m =
      set.add<LeadsToAlwaysMonitor<IntState>>("la", equals(1), at_least(2));
  feed(set, {0, 1, 2, 3, 4});
  set.finish(10);
  EXPECT_TRUE(m.clean());
}

TEST(LeadsToAlwaysMonitor, ViolatedWhenQFallsAfterReached) {
  Set set;
  auto& m =
      set.add<LeadsToAlwaysMonitor<IntState>>("la", equals(1), at_least(2));
  feed(set, {1, 2, 0});
  set.finish(10);
  EXPECT_FALSE(m.clean());
}

TEST(LeadsToAlwaysMonitor, ViolatedWhenQNeverReached) {
  Set set;
  auto& m =
      set.add<LeadsToAlwaysMonitor<IntState>>("la", equals(1), at_least(2));
  feed(set, {1, 0, 0});
  set.finish(10);
  EXPECT_FALSE(m.clean());
}

// --- Transition / State monitors -------------------------------------------------

TEST(TransitionMonitor, SeesPrevAndCur) {
  Set set;
  auto& m = set.add<TransitionMonitor<IntState>>(
      "t", [](const IntState& prev, const IntState& cur)
          -> std::optional<std::string> {
        if (cur.x < prev.x) return "decreased";
        return std::nullopt;
      });
  feed(set, {1, 2, 1, 3});
  EXPECT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.last_violation(), 2u);
}

TEST(StateMonitor, ChecksEveryStateIncludingFirst) {
  Set set;
  auto& m = set.add<StateMonitor<IntState>>(
      "s", [](const IntState& s) -> std::optional<std::string> {
        if (s.x % 2 != 0) return "odd";
        return std::nullopt;
      });
  feed(set, {1, 2, 3});
  EXPECT_EQ(m.total_violations(), 2u);
}

// --- MonitorSet -------------------------------------------------------------------

TEST(MonitorSet, AggregatesAcrossMonitors) {
  Set set;
  set.add<InvariantMonitor<IntState>>("a", at_least(1));
  set.add<InvariantMonitor<IntState>>("b", at_least(2));
  feed(set, {1});
  EXPECT_FALSE(set.clean());
  EXPECT_EQ(set.total_violations(), 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.all_violations().size(), 1u);
  EXPECT_EQ(set.all_violations()[0].clause, "b");
}

TEST(MonitorSet, LastViolationAcrossMonitors) {
  Set set;
  set.add<StableMonitor<IntState>>("a", at_least(2));
  set.add<InvariantMonitor<IntState>>("b", at_least(0));
  feed(set, {2, 1, -1, 0});
  EXPECT_EQ(set.last_violation(), 2u);  // the b violation at t=2
}

TEST(MonitorSet, CleanWhenNoViolation) {
  Set set;
  set.add<InvariantMonitor<IntState>>("a", at_least(0));
  feed(set, {0, 1});
  EXPECT_TRUE(set.clean());
  EXPECT_EQ(set.last_violation(), kNever);
}

TEST(MonitorSet, FinishIsIdempotent) {
  Set set;
  auto& m = set.add<LeadsToMonitor<IntState>>("l", equals(1), equals(2));
  feed(set, {1});
  set.finish(5);
  set.finish(6);
  EXPECT_EQ(m.total_violations(), 1u);
}

TEST(MonitorSet, ObservedStatesCounted) {
  Set set;
  feed(set, {1, 2, 3});
  EXPECT_EQ(set.observed_states(), 3u);
}

// --- Violation caps ------------------------------------------------------------

TEST(MonitorBase, RetentionCapKeepsExactCounters) {
  Set set;
  auto& m = set.add<InvariantMonitor<IntState>>("i", at_least(1));
  for (int i = 0; i < 1000; ++i) set.observe(static_cast<SimTime>(i),
                                             IntState{0});
  EXPECT_EQ(m.total_violations(), 1000u);
  EXPECT_LE(m.violations().size(), 256u);
  EXPECT_EQ(m.last_violation(), 999u);
  EXPECT_EQ(m.first_violation(), 0u);
}

// --- Violation helpers ------------------------------------------------------------

TEST(ViolationHelpers, LastTimeAndCountAfter) {
  std::vector<Violation> vs{{5, "a", ""}, {9, "b", ""}, {2, "c", ""}};
  EXPECT_EQ(last_violation_time(vs), 9u);
  EXPECT_EQ(violations_at_or_after(vs, 5), 2u);
  EXPECT_EQ(violations_at_or_after(vs, 10), 0u);
  EXPECT_EQ(last_violation_time({}), kNever);
}

TEST(ViolationHelpers, ToString) {
  const Violation v{7, "ME1", "two eaters"};
  EXPECT_EQ(v.to_string(), "[7] ME1: two eaters");
}

}  // namespace
}  // namespace graybox::spec
