// Carvalho-Roucairol: unit tests for the retained-permission optimization
// (grant, fast entry, surrender, the re-request rule, the lease), and the
// extended-reusability claim — the byte-for-byte unchanged GrayboxWrapper
// stabilizes CR across the full E8 fault matrix, including the
// double-permission corruption that bare CR can never detect.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "me/carvalho_roucairol.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::me {
namespace {

class CrTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;

  explicit CrTest(CarvalhoRoucairolOptions options = {})
      : net(sched, kN, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < kN; ++pid) {
      procs.push_back(
          std::make_unique<CarvalhoRoucairol>(pid, net, options));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }

  CarvalhoRoucairol& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sched.run_all(); }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<CarvalhoRoucairol>> procs;
};

TEST_F(CrTest, FirstEntryUsesTheFullHandshake) {
  p(0).request_cs();
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), kN - 1);
  settle();
  EXPECT_TRUE(p(0).eating());
  // Every REPLY granted its sender's permission, lease fresh.
  EXPECT_TRUE(p(0).authorized(1));
  EXPECT_TRUE(p(0).authorized(2));
  EXPECT_EQ(p(0).uses(1), 0u);
}

TEST_F(CrTest, ConsecutiveEntrySendsNoRequests) {
  p(0).request_cs();
  settle();
  p(0).release_cs();
  settle();
  const std::uint64_t requests_before =
      net.sent_of_type(net::MsgType::kRequest);

  // The CR saving: permissions retained from the first round cover the
  // second request entirely — entry is immediate and message-free.
  p(0).request_cs();
  EXPECT_TRUE(p(0).eating());
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), requests_before);
  EXPECT_TRUE(p(0).relied(1));
  EXPECT_TRUE(p(0).relied(2));
  EXPECT_EQ(p(0).uses(1), 1u);
}

TEST_F(CrTest, PeerRequestSurrendersTheRetainedPermission) {
  p(0).request_cs();
  settle();
  p(0).release_cs();
  settle();
  ASSERT_TRUE(p(0).authorized(1));

  // 1's REQUEST reaches thinking 0, which replies — the pair's token moves
  // to 1, so 0's retained permission from 1 is gone.
  p(1).request_cs();
  settle();
  EXPECT_TRUE(p(1).eating());
  EXPECT_FALSE(p(0).authorized(1));
  EXPECT_TRUE(p(0).authorized(2));  // the 0-2 pair is untouched
  EXPECT_TRUE(p(1).authorized(0));
}

TEST_F(CrTest, SurrenderWhileRelyingTriggersTheReRequest) {
  // Put 0 in the adversarial spot directly: hungry, relying on a retained
  // permission from 2, with a request timestamp later than 2's incoming
  // one (so 0 must yield rather than defer).
  p(0).fault_set_state(TmeState::kHungry);
  p(0).fault_set_req(clk::Timestamp{50, 0});
  p(0).fault_set_clock(50);
  p(0).fault_set_authorized(2, true);
  p(0).fault_set_relied(2, true);

  const std::uint64_t requests_before =
      net.sent_of_type(net::MsgType::kRequest);
  p(2).request_cs();  // fresh clock: ts well below 0's req
  settle();

  // 0 surrendered the permission it was relying on, and chased its
  // outstanding request with the REQUEST it had optimized away.
  EXPECT_FALSE(p(0).authorized(2));
  EXPECT_FALSE(p(0).relied(2));
  EXPECT_GE(net.sent_of_type(net::MsgType::kRequest) - requests_before, 3u)
      << "expected 2's broadcast (2 msgs) plus 0's re-request";
}

class CrLeaseTest : public CrTest {
 protected:
  CrLeaseTest() : CrTest(CarvalhoRoucairolOptions{.lease = 2}) {}
};

TEST_F(CrLeaseTest, LeaseExhaustionRestoresTheHandshake) {
  p(0).request_cs();  // full handshake
  settle();
  const std::uint64_t after_first = net.sent_of_type(net::MsgType::kRequest);

  // Two fast entries consume the lease...
  for (int i = 0; i < 2; ++i) {
    p(0).release_cs();
    settle();
    p(0).request_cs();
    ASSERT_TRUE(p(0).eating()) << "fast entry " << i;
  }
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), after_first);
  EXPECT_EQ(p(0).uses(1), 2u);

  // ...so the next request is plain Ricart-Agrawala again, and the fresh
  // REPLYs restart the lease.
  p(0).release_cs();
  settle();
  p(0).request_cs();
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), after_first + kN - 1);
  settle();
  EXPECT_TRUE(p(0).eating());
  EXPECT_EQ(p(0).uses(1), 0u);
}

TEST_F(CrLeaseTest, SpentLeaseNeverCoversARequest) {
  // The everywhere-modification, pinned at the unit level: a (possibly
  // corrupt) retained permission whose lease is spent is re-requested, so
  // a fault-planted duplicate permission survives at most `lease` cycles.
  p(0).fault_set_authorized(1, true);
  p(0).fault_set_uses(1, p(0).lease());
  p(0).request_cs();
  EXPECT_FALSE(p(0).relied(1));
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), kN - 1);
}

}  // namespace
}  // namespace graybox::me

namespace graybox::core {
namespace {

HarnessConfig cr_config(std::uint64_t seed, bool wrapped) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = "carvalho-roucairol";
  config.wrapped = wrapped;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

TEST(CrHarness, InstallsTheMutualBeliefMonitorInsteadOfPerViewTruth) {
  // CR opts out of view_entry_truth, so the battery swaps Invariant I's
  // per-view reading for the pairwise mutual-belief monitor.
  SystemHarness h(cr_config(1, true));
  EXPECT_NE(h.tme_monitors().mutual_belief, nullptr);

  SystemHarness ra(HarnessConfig{});
  EXPECT_EQ(ra.tme_monitors().mutual_belief, nullptr);
}

TEST(CrHarness, WrappedFaultFreeRunIsClean) {
  SystemHarness h(cr_config(2, true));
  h.start();
  h.run_for(6000);
  h.drain(4000);
  EXPECT_EQ(h.monitors().total_violations(), 0u);
  EXPECT_FALSE(h.tme_monitors().me2->starvation_at_end());
  EXPECT_GT(h.stats().cs_entries, 20u);
  for (ProcessId pid = 0; pid < 4; ++pid)
    EXPECT_GT(h.process(pid).cs_entries(), 0u);
}

TEST(CrHarness, Me3ExemptsTheLeasedFastPathOvertake) {
  // Quickstart's exact fault-free configuration (n=5, seed 1, default
  // client cadence) makes a leased re-entry overtake a causally earlier
  // open request at t=367 — real CR behaviour, not a bug: the fast path
  // trades FCFS for message-free consecutive entries. CR's factory opts
  // out of SpecConformance::fcfs, so ME3 must stay silent while still
  // checking every entry.
  HarnessConfig config;
  config.n = 5;
  config.algorithm = "carvalho-roucairol";
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.seed = 1;
  SystemHarness h(config);
  h.start();
  h.run_for(2000);
  EXPECT_EQ(h.monitors().total_violations(), 0u);
  EXPECT_GT(h.tme_monitors().me3->entries_checked(), 0u);

  // The exemption is per-process, not global: the same cadence under RA
  // keeps the full FCFS check and is genuinely first-come first-serve.
  config.algorithm = "ricart-agrawala";
  SystemHarness ra(config);
  ra.start();
  ra.run_for(2000);
  EXPECT_EQ(ra.monitors().total_violations(), 0u);
}

TEST(CrStabilization, UnchangedWrapperStabilizesAcrossTheFullFaultMatrix) {
  // The extended-reusability claim (Corollary 11 applied to an algorithm
  // the wrapper has never seen): every E8 fault kind, the same W'.
  const net::FaultKind kinds[] = {
      net::FaultKind::kMessageDrop,     net::FaultKind::kMessageDuplicate,
      net::FaultKind::kMessageCorrupt,  net::FaultKind::kMessageReorder,
      net::FaultKind::kSpuriousMessage, net::FaultKind::kProcessCorrupt,
      net::FaultKind::kChannelClear};
  for (const net::FaultKind kind : kinds) {
    FaultScenario scenario;
    scenario.warmup = 600;
    scenario.burst = 12;
    scenario.mix = net::FaultMix::only(kind);
    scenario.observation = 7000;
    scenario.drain = 5000;
    const RepeatedResult result = repeat_fault_experiment(
        cr_config(900, true), scenario, /*trials=*/4, /*jobs=*/2);
    EXPECT_TRUE(result.all_stabilized())
        << net::to_string(kind) << ": " << result.stabilized << "/"
        << result.trials << " stabilized, " << result.starved << " starved";
  }
}

TEST(CrStabilization, WrapperHealsAFaultPlantedDoublePermission) {
  // The scenario bare CR cannot detect: both sides of a pair hold the
  // permission, both relied flags set — the handshake that would expose
  // the collision has been optimized away on both sides. The lease plus
  // the wrapper's resend restore single ownership and the run stabilizes.
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 0;
  scenario.observation = 7000;
  scenario.drain = 5000;
  scenario.scripted_fault = [](SystemHarness& h) {
    auto* a = dynamic_cast<me::CarvalhoRoucairol*>(&h.process(0));
    auto* b = dynamic_cast<me::CarvalhoRoucairol*>(&h.process(1));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    a->fault_set_authorized(1, true);
    a->fault_set_uses(1, 0);
    b->fault_set_authorized(0, true);
    b->fault_set_uses(0, 0);
  };
  const ExperimentResult result =
      run_fault_experiment(cr_config(31, true), scenario);
  EXPECT_TRUE(result.report.stabilized) << result.report.to_string();
}

TEST(CrStabilization, BareCrLosesRunsTheWrapperSaves) {
  // Negative control for the reusability claim: under process corruption
  // some seed wedges bare CR (corrupt retained permissions / views) that
  // the wrapped run recovers. Scan a small seed window for one.
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 12;
  scenario.mix = net::FaultMix::only(net::FaultKind::kProcessCorrupt);
  scenario.observation = 7000;
  scenario.drain = 5000;

  bool found_divergence = false;
  for (std::uint64_t seed = 950; seed < 966 && !found_divergence; ++seed) {
    const ExperimentResult bare =
        run_fault_experiment(cr_config(seed, false), scenario);
    if (bare.report.stabilized) continue;
    const ExperimentResult wrapped =
        run_fault_experiment(cr_config(seed, true), scenario);
    found_divergence = wrapped.report.stabilized;
  }
  EXPECT_TRUE(found_divergence)
      << "no seed in [950,966) wedged bare CR while wrapped CR recovered";
}

}  // namespace
}  // namespace graybox::core
