// Unit tests for the finite-system algebra: bitsets, systems, SCCs, and the
// decision procedures, including an explicit-path cross-check of
// stabilizes_to on small systems and the Figure 1 counterexample.
#include <gtest/gtest.h>

#include "algebra/bitset.hpp"
#include "algebra/checks.hpp"
#include "algebra/generate.hpp"
#include "algebra/scc.hpp"
#include "algebra/system.hpp"

namespace graybox::algebra {
namespace {

// --- Bitset -----------------------------------------------------------------

TEST(Bitset, SetTestReset) {
  Bitset bs(100);
  EXPECT_FALSE(bs.test(63));
  bs.set(63);
  bs.set(64);
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  bs.reset(63);
  EXPECT_FALSE(bs.test(63));
  EXPECT_EQ(bs.count(), 1u);
}

TEST(Bitset, FillRespectsSize) {
  Bitset bs(70);
  bs.fill();
  EXPECT_EQ(bs.count(), 70u);
}

TEST(Bitset, SubsetAndIntersects) {
  Bitset a(10), b(10);
  a.set(1);
  a.set(3);
  b.set(1);
  b.set(3);
  b.set(5);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  Bitset c(10);
  c.set(7);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(c.is_subset_of(b) == false);
}

TEST(Bitset, EmptySubsetOfAnything) {
  Bitset empty(10), b(10);
  b.set(2);
  EXPECT_TRUE(empty.is_subset_of(b));
  EXPECT_TRUE(empty.is_subset_of(empty));
  EXPECT_FALSE(empty.any());
}

TEST(Bitset, BitwiseOps) {
  Bitset a(10), b(10);
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_EQ(a.count(), 2u);
  a &= b;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(2));
  a.subtract(b);
  EXPECT_TRUE(a.none());
}

TEST(Bitset, NextSetIteration) {
  Bitset bs(130);
  bs.set(0);
  bs.set(64);
  bs.set(129);
  std::vector<std::size_t> seen;
  for (const auto i : bits(bs)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 64, 129}));
}

TEST(Bitset, NextSetFromMiddle) {
  Bitset bs(100);
  bs.set(10);
  bs.set(50);
  EXPECT_EQ(bs.next_set(0), 10u);
  EXPECT_EQ(bs.next_set(11), 50u);
  EXPECT_EQ(bs.next_set(51), 100u);
}

TEST(Bitset, ToString) {
  Bitset bs(8);
  bs.set(0);
  bs.set(3);
  EXPECT_EQ(bs.to_string(), "{0,3}");
}

// --- System -------------------------------------------------------------------

TEST(System, TransitionsAndInitial) {
  System sys(3);
  sys.add_transition(0, 1);
  sys.set_initial(0);
  EXPECT_TRUE(sys.has_transition(0, 1));
  EXPECT_FALSE(sys.has_transition(1, 0));
  EXPECT_TRUE(sys.is_initial(0));
  EXPECT_EQ(sys.num_transitions(), 1u);
}

TEST(System, WellFormedNeedsTotalityAndInit) {
  System sys(2);
  sys.set_initial(0);
  EXPECT_FALSE(sys.well_formed());  // no successors
  sys.add_transition(0, 1);
  EXPECT_FALSE(sys.well_formed());  // state 1 still stuck
  sys.add_transition(1, 0);
  EXPECT_TRUE(sys.well_formed());
  System no_init(1);
  no_init.add_transition(0, 0);
  EXPECT_FALSE(no_init.well_formed());
}

TEST(System, EnsureTotalAddsSelfLoops) {
  System sys(3);
  sys.add_transition(0, 1);
  sys.ensure_total();
  EXPECT_TRUE(sys.has_transition(1, 1));
  EXPECT_TRUE(sys.has_transition(2, 2));
  EXPECT_FALSE(sys.has_transition(0, 0));  // already total
}

TEST(System, ReachableFromInitial) {
  System sys(4);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  sys.add_transition(2, 2);
  sys.add_transition(3, 0);
  sys.set_initial(0);
  const Bitset reach = sys.reachable_from_initial();
  EXPECT_TRUE(reach.test(0));
  EXPECT_TRUE(reach.test(1));
  EXPECT_TRUE(reach.test(2));
  EXPECT_FALSE(reach.test(3));
}

TEST(System, BoxUnionsRelationsIntersectsInits) {
  System a(3), b(3);
  a.add_transition(0, 1);
  a.set_initial(0);
  a.set_initial(1);
  b.add_transition(1, 2);
  b.set_initial(1);
  b.set_initial(2);
  const System boxed = System::box(a, b);
  EXPECT_TRUE(boxed.has_transition(0, 1));
  EXPECT_TRUE(boxed.has_transition(1, 2));
  EXPECT_TRUE(boxed.is_initial(1));
  EXPECT_FALSE(boxed.is_initial(0));
  EXPECT_FALSE(boxed.is_initial(2));
}

TEST(System, BoxIsCommutativeOnRelations) {
  Rng rng(3);
  const System a = random_system(rng, {});
  const System b = random_system(rng, {});
  const System ab = System::box(a, b);
  const System ba = System::box(b, a);
  EXPECT_TRUE(ab.relation_subset_of(ba));
  EXPECT_TRUE(ba.relation_subset_of(ab));
  EXPECT_EQ(ab.initial(), ba.initial());
}

TEST(System, RelationSubset) {
  System a(2), b(2);
  a.add_transition(0, 1);
  b.add_transition(0, 1);
  b.add_transition(1, 0);
  EXPECT_TRUE(a.relation_subset_of(b));
  EXPECT_FALSE(b.relation_subset_of(a));
}

TEST(System, ToStringWithNames) {
  System sys(2);
  sys.add_transition(0, 1);
  sys.set_initial(0);
  const std::string out = sys.to_string({"p", "q"});
  EXPECT_NE(out.find("initial: {p}"), std::string::npos);
  EXPECT_NE(out.find("p -> {q}"), std::string::npos);
}

// --- SCC ------------------------------------------------------------------------

TEST(Scc, SingleCycle) {
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  sys.add_transition(2, 0);
  const SccResult scc = strongly_connected_components(sys);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_TRUE(scc.same_component(0, 2));
}

TEST(Scc, ChainHasSingletonComponents) {
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  const SccResult scc = strongly_connected_components(sys);
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_FALSE(scc.same_component(0, 1));
}

TEST(Scc, TwoCyclesBridged) {
  System sys(5);
  sys.add_transition(0, 1);
  sys.add_transition(1, 0);
  sys.add_transition(1, 2);  // bridge
  sys.add_transition(2, 3);
  sys.add_transition(3, 4);
  sys.add_transition(4, 2);
  const SccResult scc = strongly_connected_components(sys);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_TRUE(scc.same_component(0, 1));
  EXPECT_TRUE(scc.same_component(2, 4));
  EXPECT_FALSE(scc.same_component(0, 2));
}

TEST(Scc, TarjanEmitsReverseTopologicalOrder) {
  // Sinks get smaller component ids than their predecessors — the
  // bad-step-bound DP relies on this.
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  const SccResult scc = strongly_connected_components(sys);
  EXPECT_LT(scc.component[2], scc.component[1]);
  EXPECT_LT(scc.component[1], scc.component[0]);
}

TEST(Scc, EdgeOnCycleDetection) {
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 0);
  sys.add_transition(1, 2);
  sys.add_transition(2, 2);
  const SccResult scc = strongly_connected_components(sys);
  EXPECT_TRUE(edge_on_cycle(sys, scc, 0, 1));
  EXPECT_TRUE(edge_on_cycle(sys, scc, 1, 0));
  EXPECT_FALSE(edge_on_cycle(sys, scc, 1, 2));
  EXPECT_TRUE(edge_on_cycle(sys, scc, 2, 2));  // self-loop
}

// --- Decision procedures ------------------------------------------------------

System chain_system() {
  // 0 -> 1 -> 2 -> 2, initial {0}.
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  sys.add_transition(2, 2);
  sys.set_initial(0);
  return sys;
}

TEST(Checks, ImplementsInitReflexive) {
  const System sys = chain_system();
  EXPECT_TRUE(implements_init(sys, sys));
  EXPECT_TRUE(implements_everywhere(sys, sys));
}

TEST(Checks, ImplementsInitRejectsExtraInitialStates) {
  System a = chain_system();
  System c = chain_system();
  c.set_initial(1);
  EXPECT_FALSE(implements_init(c, a));
}

TEST(Checks, ImplementsInitRejectsExtraReachableTransition) {
  System a = chain_system();
  System c = chain_system();
  c.add_transition(1, 0);  // reachable from init, not in a
  EXPECT_FALSE(implements_init(c, a));
}

TEST(Checks, ImplementsInitIgnoresUnreachableBehaviour) {
  // C may do anything on states its initial computations never visit.
  System a(4);
  a.add_transition(0, 1);
  a.add_transition(1, 1);
  a.add_transition(2, 2);
  a.add_transition(3, 3);
  a.set_initial(0);
  System c = a;
  c.add_transition(3, 2);  // 3 unreachable from {0}
  EXPECT_TRUE(implements_init(c, a));
  EXPECT_FALSE(implements_everywhere(c, a));
}

TEST(Checks, EverywhereImpliesInitWhenInitsAgree) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const System a = random_system(rng, {});
    const System c = random_everywhere_implementation(rng, a);
    EXPECT_TRUE(implements_everywhere(c, a));
    EXPECT_TRUE(implements_init(c, a));
  }
}

TEST(Checks, StabilizesToSelfWhenAllStatesReachInit) {
  // 0 <-> 1 with initial {0}: every computation stays in Reach_A(init).
  System sys(2);
  sys.add_transition(0, 1);
  sys.add_transition(1, 0);
  sys.set_initial(0);
  EXPECT_TRUE(stabilizes_to(sys, sys));
}

TEST(Checks, SelfStabilizationFailsWithUnreachableCycle) {
  // State 2's self-loop is outside Reach(init): computations starting
  // there never join an initial computation.
  System sys(3);
  sys.add_transition(0, 1);
  sys.add_transition(1, 0);
  sys.add_transition(2, 2);
  sys.set_initial(0);
  EXPECT_FALSE(stabilizes_to(sys, sys));
  const auto verdict = stabilizes_to_verdict(sys, sys);
  EXPECT_TRUE(verdict.has_witness);
  EXPECT_EQ(verdict.witness_from, 2u);
  EXPECT_EQ(verdict.witness_to, 2u);
}

TEST(Checks, TransientDivergenceStabilizes) {
  // 2 -> 0 funnels the stray state into the initial region: stabilizing,
  // with exactly one bad step possible.
  System c(3);
  c.add_transition(0, 1);
  c.add_transition(1, 0);
  c.add_transition(2, 0);
  c.set_initial(0);
  System a(3);
  a.add_transition(0, 1);
  a.add_transition(1, 0);
  a.add_transition(2, 2);
  a.set_initial(0);
  EXPECT_TRUE(stabilizes_to(c, a));
  EXPECT_EQ(stabilization_bad_step_bound(c, a), 1u);
}

TEST(Checks, BadStepBoundCountsLongestChain) {
  // 4 -> 3 -> 2 -> 1 -> 0(loop), A only has the 0-loop reachable.
  System c(5);
  for (State s = 4; s >= 1; --s) c.add_transition(s, s - 1);
  c.add_transition(0, 0);
  c.set_initial(0);
  System a(5);
  a.add_transition(0, 0);
  for (State s = 1; s <= 4; ++s) a.add_transition(s, s);
  a.set_initial(0);
  EXPECT_TRUE(stabilizes_to(c, a));
  EXPECT_EQ(stabilization_bad_step_bound(c, a), 4u);
}

TEST(Checks, BadStepBoundZeroWhenIdentical) {
  const System sys = chain_system();
  EXPECT_EQ(stabilization_bad_step_bound(sys, sys), 0u);
}

TEST(Checks, StabilizationNeedsSuffixInsideReachOfInit) {
  // C cycles in states that A allows but that A's initial computations
  // never visit: the suffix is an A-path but not a suffix of an A-init
  // computation, so C does NOT stabilize to A.
  System a(4);
  a.add_transition(0, 1);
  a.add_transition(1, 0);
  a.add_transition(2, 3);
  a.add_transition(3, 2);
  a.set_initial(0);
  System c(4);
  c.add_transition(0, 1);
  c.add_transition(1, 0);
  c.add_transition(2, 3);
  c.add_transition(3, 2);
  c.set_initial(0);
  EXPECT_TRUE(implements_everywhere(c, a));
  EXPECT_FALSE(stabilizes_to(c, a));
}

// --- Figure 1 -----------------------------------------------------------------

TEST(Figure1, SpecificationIsSelfStabilizing) {
  const System a = figure1_specification();
  EXPECT_TRUE(a.well_formed());
  EXPECT_TRUE(stabilizes_to(a, a));
}

TEST(Figure1, ImplementationImplementsFromInit) {
  const System a = figure1_specification();
  const System c = figure1_implementation();
  EXPECT_TRUE(implements_init(c, a));
}

TEST(Figure1, ImplementationIsNotEverywhere) {
  const System a = figure1_specification();
  const System c = figure1_implementation();
  EXPECT_FALSE(implements_everywhere(c, a));
}

TEST(Figure1, ImplementationDoesNotStabilize) {
  // The paper's counterexample: [C => A]init and A stabilizing to A, yet C
  // is not stabilizing to A.
  const System a = figure1_specification();
  const System c = figure1_implementation();
  EXPECT_FALSE(stabilizes_to(c, a));
  const auto verdict = stabilizes_to_verdict(c, a);
  EXPECT_EQ(verdict.witness_from, kFig1StateCorrupt);
}

TEST(Figure1, EverywhereFixStabilizes) {
  const System a = figure1_specification();
  const System fixed = figure1_everywhere_implementation();
  EXPECT_TRUE(implements_everywhere(fixed, a));
  EXPECT_TRUE(stabilizes_to(fixed, a));
}

// --- lift_local ------------------------------------------------------------------

TEST(LiftLocal, ProductTransitionsMoveOneComponent) {
  System local(2);
  local.add_transition(0, 1);
  local.add_transition(1, 1);
  local.set_initial(0);
  const System lifted = lift_local(local, 0, 2, 3);
  EXPECT_EQ(lifted.num_states(), 6u);
  // (0, w) -> (1, w) for every w.
  for (State w = 0; w < 3; ++w) {
    EXPECT_TRUE(lifted.has_transition(w * 2 + 0, w * 2 + 1));
  }
  EXPECT_TRUE(lifted.well_formed());
}

TEST(LiftLocal, BoxOfLiftsInterleaves) {
  System p(2), q(2);
  p.add_transition(0, 1);
  p.add_transition(1, 1);
  p.set_initial(0);
  q.add_transition(0, 1);
  q.add_transition(1, 1);
  q.set_initial(0);
  const System sys =
      System::box(lift_local(p, 0, 2, 2), lift_local(q, 1, 2, 2));
  // From (0,0) both the p-move and the q-move are enabled.
  EXPECT_TRUE(sys.has_transition(0, 1));  // (0,0)->(1,0)
  EXPECT_TRUE(sys.has_transition(0, 2));  // (0,0)->(0,1)
  EXPECT_TRUE(sys.is_initial(0));
  EXPECT_TRUE(sys.well_formed());
}

}  // namespace
}  // namespace graybox::algebra
