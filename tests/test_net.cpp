// Unit tests for channels (FIFO + fault surface), the network (routing,
// causality threading, accounting), and the fault injector.
#include <gtest/gtest.h>

#include <vector>

#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::net {
namespace {

Message make_msg(ProcessId from, ProcessId to, std::uint64_t counter,
                 MsgType type = MsgType::kRequest) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  m.ts = clk::Timestamp{counter, from};
  return m;
}

// --- Channel ---------------------------------------------------------------

class ChannelTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  std::vector<Message> delivered;

  std::unique_ptr<Channel> make_channel(DelayModel delay) {
    return std::make_unique<Channel>(
        sched, delay, Rng(7),
        [this](const Message& m) { delivered.push_back(m); });
  }
};

TEST_F(ChannelTest, DeliversAfterFixedDelay) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 5));
  sched.run_until(9);
  EXPECT_TRUE(delivered.empty());
  sched.run_until(10);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ts.counter, 5u);
}

TEST_F(ChannelTest, FifoOrderWithFixedDelay) {
  auto ch = make_channel(DelayModel::fixed(5));
  for (std::uint64_t i = 0; i < 10; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(delivered[i].ts.counter, i);
}

TEST_F(ChannelTest, FifoOrderWithRandomDelays) {
  // Even with wildly variable delays, delivery must respect send order
  // (Communication Spec: channels are FIFO).
  auto ch = make_channel(DelayModel::uniform(1, 100));
  for (std::uint64_t i = 0; i < 50; ++i) {
    ch->enqueue(make_msg(0, 1, i));
    sched.run_for(3);  // interleave sends with partial delivery
  }
  sched.run_for(500);
  ASSERT_EQ(delivered.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i)
    EXPECT_EQ(delivered[i].ts.counter, i);
}

TEST_F(ChannelTest, DropRemovesExactlyOne) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 1));
  ch->enqueue(make_msg(0, 1, 2));
  ch->fault_drop(0);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ts.counter, 2u);
  EXPECT_EQ(ch->dropped_by_fault(), 1u);
}

TEST_F(ChannelTest, DuplicateDeliversTwice) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 1));
  ch->fault_duplicate(0);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].ts.counter, 1u);
  EXPECT_EQ(delivered[1].ts.counter, 1u);
}

TEST_F(ChannelTest, CorruptRewritesPayloadKeepsIdentity) {
  auto ch = make_channel(DelayModel::fixed(10));
  Message original = make_msg(0, 1, 1);
  original.uid = 77;
  ch->enqueue(original);
  Message corrupted = make_msg(0, 1, 999, MsgType::kRelease);
  ch->fault_corrupt(0, corrupted);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ts.counter, 999u);
  EXPECT_EQ(delivered[0].type, MsgType::kRelease);
  EXPECT_EQ(delivered[0].uid, 77u);  // physical identity preserved
}

TEST_F(ChannelTest, SwapReordersDelivery) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 1));
  ch->enqueue(make_msg(0, 1, 2));
  ch->fault_swap(0, 1);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].ts.counter, 2u);
  EXPECT_EQ(delivered[1].ts.counter, 1u);
}

TEST_F(ChannelTest, InjectFabricatesDelivery) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->fault_inject(make_msg(0, 1, 42));
  sched.run_all();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ts.counter, 42u);
}

TEST_F(ChannelTest, ClearSilencesEverything) {
  auto ch = make_channel(DelayModel::fixed(10));
  for (std::uint64_t i = 0; i < 5; ++i) ch->enqueue(make_msg(0, 1, i));
  ch->fault_clear();
  sched.run_all();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(ch->dropped_by_fault(), 5u);
  EXPECT_EQ(ch->in_flight(), 0u);
}

TEST_F(ChannelTest, InjectFoldsTickTimeIntoArrivalFloor) {
  // Regression: fault_inject scheduled its delivery tick at
  // max(now, last_arrival_) but never folded that time back into
  // last_arrival_, so the documented monotone-arrival invariant was
  // silently broken whenever the channel had already drained (stale floor
  // below now).
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 1));  // arrival (and floor) = 10
  sched.run_all();                 // delivered; floor left at 10
  EXPECT_EQ(ch->last_arrival(), 10u);
  sched.schedule_at(25, [&] { ch->fault_inject(make_msg(0, 1, 42)); });
  sched.run_until(25);
  // The fabricated message's tick is at t=25; the floor must cover it.
  EXPECT_EQ(ch->last_arrival(), 25u);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 2u);
}

TEST_F(ChannelTest, DuplicateFoldsTickTimeIntoArrivalFloor) {
  auto ch = make_channel(DelayModel::fixed(10));
  ch->enqueue(make_msg(0, 1, 1));
  sched.schedule_at(4, [&] { ch->fault_duplicate(0); });
  sched.run_until(4);
  // Duplicate tick lands at max(4, 10) = 10 — already covered, and the
  // floor must stay exactly there (monotone, no regression below).
  EXPECT_EQ(ch->last_arrival(), 10u);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 2u);
}

TEST_F(ChannelTest, ClearForgetsDelayFloorAndStaleTicks) {
  // Regression: fault_clear dropped the queue but kept last_arrival_ at
  // the cleared tail and left the cleared backlog's ticks armed. A
  // post-clear message then (a) inherited the dead backlog's delay floor
  // and (b) could be delivered *early* by a stale tick. An improperly
  // initialized channel must forget everything.
  auto ch = make_channel(DelayModel::fixed(50));
  ch->enqueue(make_msg(0, 1, 1));  // arrival 50, tick armed at 50
  sched.schedule_at(10, [&] {
    ch->fault_clear();
    EXPECT_EQ(ch->last_arrival(), 10u);  // floor reset to now
    ch->enqueue(make_msg(0, 1, 2));      // arrival 10 + 50 = 60
  });
  sched.run_until(59);
  // Pre-fix the stale tick at t=50 delivered the new message 10 early.
  EXPECT_TRUE(delivered.empty());
  sched.run_until(60);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ts.counter, 2u);
}

TEST_F(ChannelTest, InjectStampsDistinctSpuriousUids) {
  // Regression: fabricated messages all carried uid = 0, so every spurious
  // message aliased every other one (and uid-0 legacy traffic) in the
  // monitors' send/delivery correlation.
  auto ch = make_channel(DelayModel::fixed(5));
  ch->fault_inject(make_msg(0, 1, 1));
  ch->fault_inject(make_msg(0, 1, 2));
  sched.run_all();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_TRUE(is_spurious_uid(delivered[0].uid));
  EXPECT_TRUE(is_spurious_uid(delivered[1].uid));
  EXPECT_NE(delivered[0].uid, delivered[1].uid);
}

TEST_F(ChannelTest, InjectKeepsCallerProvidedUid) {
  // Scenario tests may fabricate messages with an explicit identity; only
  // uid-less messages get a spurious stamp.
  auto ch = make_channel(DelayModel::fixed(5));
  Message fake = make_msg(0, 1, 1);
  fake.uid = 1234;
  ch->fault_inject(fake);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].uid, 1234u);
}

TEST_F(ChannelTest, AccountingCounters) {
  auto ch = make_channel(DelayModel::fixed(1));
  ch->enqueue(make_msg(0, 1, 1));
  ch->enqueue(make_msg(0, 1, 2));
  sched.run_all();
  EXPECT_EQ(ch->enqueued(), 2u);
  EXPECT_EQ(ch->delivered(), 2u);
}

// --- Message ring wraparound -------------------------------------------------
//
// The queue behind a channel is a ring buffer whose head walks forward with
// every delivery; once traffic exceeds the initial capacity the logical
// queue straddles the physical wrap point. These tests park the queue in
// that wrapped state and then exercise the positional fault surface, which
// is exactly where an index-translation bug would corrupt order.

TEST_F(ChannelTest, RingWraparoundKeepsFifoUnderSustainedTraffic) {
  auto ch = make_channel(DelayModel::fixed(3));
  // Interleave enqueue/deliver far past any power-of-two capacity so the
  // head wraps many times while the queue stays short.
  std::uint64_t next = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 7; ++i) ch->enqueue(make_msg(0, 1, next++));
    sched.run_for(2);  // partial drains keep a straddling backlog
  }
  sched.run_all();
  ASSERT_EQ(delivered.size(), next);
  for (std::uint64_t i = 0; i < next; ++i)
    EXPECT_EQ(delivered[i].ts.counter, i);
}

TEST_F(ChannelTest, FaultSwapOnWrappedQueue) {
  auto ch = make_channel(DelayModel::fixed(100));
  // Wrap the head: push/pop cycles move head_ near the end of the initial
  // 8-slot block, then leave a backlog that straddles the boundary.
  for (std::uint64_t i = 0; i < 6; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();  // head has advanced 6 slots
  delivered.clear();
  for (std::uint64_t i = 0; i < 6; ++i)
    ch->enqueue(make_msg(0, 1, 100 + i));  // physically wraps
  ch->fault_swap(0, 5);  // swap across the physical wrap point
  const auto view = ch->contents();
  EXPECT_EQ(view[0].ts.counter, 105u);
  EXPECT_EQ(view[5].ts.counter, 100u);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 6u);
  EXPECT_EQ(delivered[0].ts.counter, 105u);
  EXPECT_EQ(delivered[5].ts.counter, 100u);
  for (std::uint64_t i = 1; i < 5; ++i)
    EXPECT_EQ(delivered[i].ts.counter, 100 + i);
}

TEST_F(ChannelTest, FaultDropAndDuplicateOnWrappedQueue) {
  auto ch = make_channel(DelayModel::fixed(100));
  for (std::uint64_t i = 0; i < 5; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();
  delivered.clear();
  for (std::uint64_t i = 0; i < 6; ++i) ch->enqueue(make_msg(0, 1, 200 + i));
  ch->fault_drop(4);          // erase shifts across the wrap
  ch->fault_duplicate(1);     // insert shifts across the wrap
  const auto view = ch->contents();
  ASSERT_EQ(view.size(), 6u);
  EXPECT_EQ(view[1].ts.counter, 201u);
  EXPECT_EQ(view[2].ts.counter, 201u);  // the duplicate, right behind
  EXPECT_EQ(view[3].ts.counter, 202u);
  EXPECT_EQ(view[4].ts.counter, 203u);
  EXPECT_EQ(view[5].ts.counter, 205u);  // 204 was dropped
  sched.run_all();
  EXPECT_EQ(delivered.size(), 6u);
}

TEST_F(ChannelTest, ComposedSameTickFaultsOnWrappedQueue) {
  // The explorer composes several targeted faults at one grid position —
  // all inside a single tick, with no deliveries between them. Each
  // fault's indices address the queue AS LEFT BY THE PREVIOUS ONE (not
  // the pre-tick snapshot): swap first relocates messages, then drop and
  // duplicate see the post-swap order. Pinned here across the physical
  // ring-wrap boundary, where a stale-snapshot or index-translation bug
  // would silently target the wrong message.
  auto ch = make_channel(DelayModel::fixed(100));
  for (std::uint64_t i = 0; i < 6; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();  // head sits near the end of the initial 8-slot block
  delivered.clear();
  for (std::uint64_t i = 0; i < 7; ++i)
    ch->enqueue(make_msg(0, 1, 600 + i));  // physically wraps
  // Queue: 600 601 602 603 604 605 606
  ch->fault_swap(1, 6);   // -> 600 606 602 603 604 605 601
  ch->fault_drop(3);      // -> 600 606 602 604 605 601
  ch->fault_duplicate(0); // -> 600 600 606 602 604 605 601
  const std::uint64_t want[] = {600, 600, 606, 602, 604, 605, 601};
  const auto view = ch->contents();
  ASSERT_EQ(view.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(view[i].ts.counter, want[i]) << "in-flight index " << i;
  // Tick accounting composes too: the drop's orphaned tick no-ops and the
  // duplicate adds one, so exactly 7 messages deliver, in the faulted
  // order.
  sched.run_all();
  ASSERT_EQ(delivered.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(delivered[i].ts.counter, want[i]) << "delivery " << i;
  EXPECT_EQ(ch->dropped_by_fault(), 1u);
}

TEST_F(ChannelTest, FaultClearThenRefillOnWrappedQueue) {
  auto ch = make_channel(DelayModel::fixed(10));
  for (std::uint64_t i = 0; i < 7; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();
  delivered.clear();
  for (std::uint64_t i = 0; i < 5; ++i) ch->enqueue(make_msg(0, 1, 300 + i));
  ch->fault_clear();  // resets the ring while wrapped
  EXPECT_TRUE(ch->contents().empty());
  for (std::uint64_t i = 0; i < 10; ++i) ch->enqueue(make_msg(0, 1, 400 + i));
  sched.run_all();
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(delivered[i].ts.counter, 400 + i);
}

TEST_F(ChannelTest, FaultInjectGrowsWrappedQueue) {
  auto ch = make_channel(DelayModel::fixed(100));
  for (std::uint64_t i = 0; i < 6; ++i) ch->enqueue(make_msg(0, 1, i));
  sched.run_all();
  delivered.clear();
  // Fill past the physical capacity with the head mid-block: push_back has
  // to grow and linearize a wrapped queue without reordering it.
  for (std::uint64_t i = 0; i < 9; ++i) ch->enqueue(make_msg(0, 1, 500 + i));
  ch->fault_inject(make_msg(0, 1, 999));
  const auto view = ch->contents();
  ASSERT_EQ(view.size(), 10u);
  for (std::uint64_t i = 0; i < 9; ++i)
    EXPECT_EQ(view[i].ts.counter, 500 + i);
  EXPECT_EQ(view.back().ts.counter, 999u);
  sched.run_all();
  ASSERT_EQ(delivered.size(), 10u);
  EXPECT_EQ(delivered.back().ts.counter, 999u);
}

// --- Network -----------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net(sched, 3, DelayModel::fixed(5), Rng(11)) {
    for (ProcessId pid = 0; pid < 3; ++pid) {
      net.set_handler(pid, [this, pid](const Message& m) {
        received[pid].push_back(m);
      });
    }
  }
  sim::Scheduler sched;
  Network net;
  std::vector<Message> received[3];
};

TEST_F(NetworkTest, RoutesToRecipient) {
  net.send(0, 2, MsgType::kRequest, clk::Timestamp{1, 0});
  sched.run_all();
  EXPECT_EQ(received[0].size(), 0u);
  EXPECT_EQ(received[1].size(), 0u);
  ASSERT_EQ(received[2].size(), 1u);
  EXPECT_EQ(received[2][0].from, 0u);
}

TEST_F(NetworkTest, AssignsUniqueIncreasingUids) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  net.send(1, 2, MsgType::kReply, clk::Timestamp{2, 1});
  sched.run_all();
  ASSERT_EQ(received[1].size(), 1u);
  ASSERT_EQ(received[2].size(), 1u);
  EXPECT_LT(received[1][0].uid, received[2][0].uid);
  EXPECT_NE(received[1][0].uid, 0u);
}

TEST_F(NetworkTest, ThreadsVectorClocksThroughMessages) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  sched.run_all();
  // After delivery, 1's vclock dominates 0's at-send clock (materialized
  // from the sparse stamp: unlisted components were zero at send time).
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[1][0].vc.size(), net.size());
  EXPECT_TRUE(received[1][0].vc.to_clock().happened_before(net.vclock(1)));
}

TEST_F(NetworkTest, LocalEventTicksClock) {
  const auto before = net.vclock(1).component(1);
  net.local_event(1);
  EXPECT_EQ(net.vclock(1).component(1), before + 1);
}

TEST_F(NetworkTest, InFlightCountsAcrossChannels) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  net.send(2, 1, MsgType::kRequest, clk::Timestamp{1, 2});
  EXPECT_EQ(net.in_flight(), 2u);
  sched.run_all();
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST_F(NetworkTest, SendAndDeliveryObserversFire) {
  int sends = 0, deliveries = 0;
  net.add_send_observer([&](const Message&) { ++sends; });
  net.add_delivery_observer([&](const Message&) { ++deliveries; });
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(deliveries, 0);
  sched.run_all();
  EXPECT_EQ(deliveries, 1);
}

TEST_F(NetworkTest, TypeAndWrapperAccounting) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0}, true);
  net.send(0, 1, MsgType::kReply, clk::Timestamp{2, 0});
  net.send(0, 1, MsgType::kRelease, clk::Timestamp{3, 0});
  EXPECT_EQ(net.total_sent(), 3u);
  EXPECT_EQ(net.sent_by_wrapper(), 1u);
  EXPECT_EQ(net.sent_of_type(MsgType::kRequest), 1u);
  EXPECT_EQ(net.sent_of_type(MsgType::kReply), 1u);
  EXPECT_EQ(net.sent_of_type(MsgType::kRelease), 1u);
}

TEST_F(NetworkTest, FabricatedMessageWithEmptyVcStillDelivered) {
  Message fake = make_msg(0, 1, 9);
  net.channel(0, 1).fault_inject(fake);
  sched.run_all();
  ASSERT_EQ(received[1].size(), 1u);
}

TEST_F(NetworkTest, SpuriousUidsUniqueAcrossChannels) {
  // The spurious-uid counter is network-wide: injections on different
  // channels must never collide.
  net.channel(0, 1).fault_inject(make_msg(0, 1, 1));
  net.channel(1, 2).fault_inject(make_msg(1, 2, 2));
  sched.run_all();
  ASSERT_EQ(received[1].size(), 1u);
  ASSERT_EQ(received[2].size(), 1u);
  EXPECT_TRUE(is_spurious_uid(received[1][0].uid));
  EXPECT_TRUE(is_spurious_uid(received[2][0].uid));
  EXPECT_NE(received[1][0].uid, received[2][0].uid);
}

TEST_F(NetworkTest, PartitionDropsCrossSideSendsUntilHealed) {
  net.set_partition(0b001);  // {0} vs {1, 2}
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});  // cross: lost
  net.send(1, 2, MsgType::kReply, clk::Timestamp{2, 1});    // same side
  sched.run_all();
  EXPECT_EQ(received[1].size(), 0u);
  ASSERT_EQ(received[2].size(), 1u);
  EXPECT_EQ(net.dropped_by_partition(), 1u);
  // The send still happened from the sender's point of view.
  EXPECT_EQ(net.total_sent(), 2u);

  net.set_partition(0);  // heal
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{3, 0});
  sched.run_all();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(net.dropped_by_partition(), 1u);
}

TEST_F(NetworkTest, PartitionLeavesInFlightMessagesAlone) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});  // on the wire
  net.set_partition(0b001);
  sched.run_all();
  // The cut severs the link, not messages already in transit.
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(net.dropped_by_partition(), 0u);
}

TEST_F(NetworkTest, MessageToString) {
  Message m = make_msg(0, 1, 9);
  m.from_wrapper = true;
  EXPECT_EQ(m.to_string(), "request(9.0) 0->1 [wrapper]");
}

// --- FaultInjector -------------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest()
      : net(sched, 3, DelayModel::fixed(50), Rng(13)),
        injector(sched, net, Rng(17), [this](ProcessId pid, Rng&) {
          corrupted.push_back(pid);
        }) {
    for (ProcessId pid = 0; pid < 3; ++pid) {
      net.set_handler(pid, [this](const Message& m) {
        delivered.push_back(m);
      });
    }
  }
  sim::Scheduler sched;
  Network net;
  std::vector<Message> delivered;
  std::vector<ProcessId> corrupted;
  FaultInjector injector;
};

TEST_F(FaultInjectorTest, MessageFaultsNeedTargets) {
  EXPECT_FALSE(injector.inject(FaultKind::kMessageDrop));
  EXPECT_FALSE(injector.inject(FaultKind::kMessageDuplicate));
  EXPECT_FALSE(injector.inject(FaultKind::kMessageCorrupt));
  EXPECT_FALSE(injector.inject(FaultKind::kMessageReorder));
  EXPECT_EQ(injector.total_injected(), 0u);
  EXPECT_EQ(injector.last_fault_time(), kNever);
}

TEST_F(FaultInjectorTest, DropReducesInFlight) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  EXPECT_TRUE(injector.inject(FaultKind::kMessageDrop));
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(injector.count(FaultKind::kMessageDrop), 1u);
}

TEST_F(FaultInjectorTest, DuplicateIncreasesInFlight) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  EXPECT_TRUE(injector.inject(FaultKind::kMessageDuplicate));
  EXPECT_EQ(net.in_flight(), 2u);
}

TEST_F(FaultInjectorTest, ReorderNeedsTwoMessagesInOneChannel) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  net.send(2, 1, MsgType::kRequest, clk::Timestamp{1, 2});
  // Two messages in flight but in *different* channels: reorder unavailable.
  EXPECT_FALSE(injector.inject(FaultKind::kMessageReorder));
  net.send(0, 1, MsgType::kReply, clk::Timestamp{2, 0});
  EXPECT_TRUE(injector.inject(FaultKind::kMessageReorder));
}

TEST_F(FaultInjectorTest, SpuriousMessageArrives) {
  EXPECT_TRUE(injector.inject(FaultKind::kSpuriousMessage));
  sched.run_all();
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(FaultInjectorTest, ProcessCorruptRoutesToCallback) {
  EXPECT_TRUE(injector.inject(FaultKind::kProcessCorrupt));
  EXPECT_EQ(corrupted.size(), 1u);
  EXPECT_LT(corrupted[0], 3u);
}

TEST_F(FaultInjectorTest, ChannelClearEmptiesOnePair) {
  for (int i = 0; i < 3; ++i)
    net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  // Repeat until the random pair selection hits channel 0->1.
  while (net.in_flight() == 3) injector.inject(FaultKind::kChannelClear);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST_F(FaultInjectorTest, BurstInjectsRequestedCount) {
  for (int i = 0; i < 10; ++i)
    net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  injector.burst(5, FaultMix::all());
  EXPECT_EQ(injector.total_injected(), 5u);
}

TEST_F(FaultInjectorTest, ScheduledBurstFiresAtTime) {
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  injector.schedule_burst(20, 1, FaultMix::process_only());
  sched.run_until(19);
  EXPECT_EQ(injector.total_injected(), 0u);
  sched.run_until(20);
  EXPECT_EQ(injector.total_injected(), 1u);
  EXPECT_EQ(injector.last_fault_time(), 20u);
}

TEST_F(FaultInjectorTest, ContinuousInjectsAtInterval) {
  injector.schedule_continuous(10, 50, 10, FaultMix::process_only());
  sched.run_until(100);
  EXPECT_EQ(injector.count(FaultKind::kProcessCorrupt), 4u);  // 10,20,30,40
}

TEST_F(FaultInjectorTest, InjectRandomSkipsInapplicableKinds) {
  // Empty network traffic: among {drop, corrupt-process}, only process
  // corruption has a target, so the random pick must fall through to it.
  FaultMix mix = FaultMix::only(FaultKind::kMessageDrop);
  mix.process_corrupt = true;
  EXPECT_TRUE(injector.inject_random(mix));
  EXPECT_EQ(injector.count(FaultKind::kProcessCorrupt), 1u);
  EXPECT_EQ(injector.count(FaultKind::kMessageDrop), 0u);
}

TEST_F(FaultInjectorTest, MixOnlyRestrictsKinds) {
  const FaultMix mix = FaultMix::only(FaultKind::kMessageDrop);
  EXPECT_FALSE(injector.inject_random(mix));  // nothing in flight
  net.send(0, 1, MsgType::kRequest, clk::Timestamp{1, 0});
  EXPECT_TRUE(injector.inject_random(mix));
  EXPECT_EQ(injector.count(FaultKind::kMessageDrop), 1u);
  EXPECT_EQ(injector.total_injected(), 1u);
}

TEST_F(FaultInjectorTest, FaultMixEnabledKinds) {
  EXPECT_EQ(FaultMix::all().enabled_kinds().size(), kFaultKindCount);
  EXPECT_EQ(FaultMix::only(FaultKind::kProcessCorrupt).enabled_kinds().size(),
            1u);
  EXPECT_FALSE(FaultMix::channel_only().enabled(FaultKind::kProcessCorrupt));
  EXPECT_TRUE(FaultMix::process_only().enabled(FaultKind::kProcessCorrupt));
}

TEST_F(FaultInjectorTest, FaultKindNames) {
  EXPECT_STREQ(to_string(FaultKind::kMessageDrop), "message-drop");
  EXPECT_STREQ(to_string(FaultKind::kProcessCorrupt), "process-corrupt");
}

}  // namespace
}  // namespace graybox::net
